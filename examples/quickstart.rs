//! Quickstart: build a normalized matrix from two base tables, run the
//! Table 1 operators, and confirm the factorized results equal the
//! materialized ones.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use morpheus::prelude::*;

fn main() {
    // The entity table S (five customers, two numeric features) and the
    // attribute table R (two employers, two features), joined on a foreign
    // key — the paper's running example shape.
    let s = DenseMatrix::from_rows(&[
        &[1.0, 2.0],
        &[4.0, 3.0],
        &[5.0, 6.0],
        &[8.0, 7.0],
        &[9.0, 1.0],
    ]);
    let r = DenseMatrix::from_rows(&[&[1.1, 2.2], &[3.3, 4.4]]);
    let fk = [0usize, 1, 1, 0, 1]; // S.K -> row of R

    // The normalized matrix T_N = (S, K, R). No join is ever materialized.
    let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
    println!(
        "normalized matrix: {} x {} over {} base tables",
        tn.rows(),
        tn.cols(),
        tn.parts().len()
    );
    println!(
        "tuple ratio = {:.2}, feature ratio = {:.2}",
        tn.stats().tuple_ratio,
        tn.stats().feature_ratio
    );

    // For comparison only: the materialized join output T = [S, KR].
    let t = tn.materialize();

    // --- Element-wise scalar ops stay normalized (closure) -------------
    let doubled = tn.scalar_mul(2.0);
    assert!(doubled.materialize().approx_eq(&t.scalar_mul(2.0), 1e-12));
    println!("scalar ops        : factorized == materialized ✓");

    // --- Aggregations ---------------------------------------------------
    assert!(tn.row_sums().approx_eq(&t.row_sums(), 1e-12));
    assert!(tn.col_sums().approx_eq(&t.col_sums(), 1e-12));
    assert!((tn.sum() - t.sum()).abs() < 1e-9);
    println!("aggregations      : factorized == materialized ✓");

    // --- LMM: the Figure 2 worked example -------------------------------
    let x = DenseMatrix::col_vector(&[1.0, 2.0, 3.0, 4.0]);
    let tx = tn.lmm(&x);
    println!("T x               = {:?}", tx.col(0));
    assert!(tx.approx_eq(&t.matmul_dense(&x), 1e-12));

    // --- Cross-product and pseudo-inverse -------------------------------
    let cp = tn.crossprod();
    assert!(cp.approx_eq(&t.crossprod(), 1e-10));
    let pinv = tn.ginv();
    let td = t.to_dense();
    assert!(td.matmul(&pinv).matmul(&td).approx_eq(&td, 1e-7));
    println!("crossprod + ginv  : factorized == materialized ✓");

    // --- Transpose is a flag, and appendix-A rules fire ------------------
    let ttn = tn.transpose();
    let y = DenseMatrix::from_rows(&[&[1.0], &[0.5], &[-1.0], &[2.0], &[0.0]]);
    assert!(ttn.lmm(&y).approx_eq(&t.t_matmul_dense(&y), 1e-12));
    println!("transposed LMM    : factorized == materialized ✓");

    // --- The scripting layer with the script planner ---------------------
    // The same computation as an R-flavored script, run through the
    // holistic planner (CSE + fusion + plan cache; `MORPHEUS_PLAN_CACHE=off`
    // plans from scratch every call). The repeated `crossprod(T)` is
    // evaluated once, and results match the interpreter exactly.
    let script = "a = sum(crossprod(T))\nb = sum(crossprod(T))\nsum(exp(T / 10) * 2) + a + b";
    let program = parse(script).expect("script parses");
    let mk_env = || {
        let mut env = Env::new();
        env.bind("T", Value::normalized(tn.clone()));
        env
    };
    let planned = run_program(&program, &mut mk_env()).expect("planned run");
    let interpreted = eval_program(&program, &mut mk_env()).expect("interpreted run");
    assert_eq!(planned.as_scalar(), interpreted.as_scalar());
    let stats = morpheus::lang::plan_cache_stats();
    println!(
        "scripted run      : planned == interpreted ✓ (plan cache: {} hit(s), {} miss(es))",
        stats.hits, stats.misses
    );

    println!("\nAll factorized operators agree with the materialized join.");
}
