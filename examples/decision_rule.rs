//! The heuristic decision rule in action (paper §3.7 / §5.1): factorized
//! execution is *not* always faster, and the τ/ρ threshold rule predicts
//! when to fall back to materialized execution.
//!
//! Sweeps the (tuple ratio, feature ratio) plane, measures the LMM speedup
//! at each point, and shows `AdaptiveMatrix` routing.
//!
//! ```sh
//! cargo run --release --example decision_rule
//! ```

use morpheus::core::LinearOperand;
use morpheus::data::synth::PkFkSpec;
use morpheus::prelude::*;
use std::time::Instant;

fn time_lmm<M: LinearOperand>(t: &M, x: &DenseMatrix, reps: usize) -> f64 {
    let _ = t.lmm(x); // warmup
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(t.lmm(x));
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let rule = DecisionRule::default();
    println!(
        "decision rule: factorize iff TR >= {} and FR >= {}\n",
        rule.tau, rule.rho
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9} {:>11} {:>9}",
        "TR", "FR", "F (s)", "M (s)", "speedup", "predicted", "routed"
    );

    for &tr in &[1.0, 2.0, 5.0, 10.0, 20.0] {
        for &fr in &[0.25, 1.0, 4.0] {
            let ds = PkFkSpec::from_ratios(tr, fr, 1_000, 20, 9).generate();
            let tm = ds.tn.materialize();
            let x = DenseMatrix::from_fn(ds.tn.cols(), 4, |i, j| ((i + j) % 5) as f64 * 0.2);
            let t_f = time_lmm(&ds.tn, &x, 5);
            let t_m = time_lmm(&tm, &x, 5);
            let predicted = rule.should_factorize(&ds.tn);
            let adaptive = AdaptiveMatrix::with_rule(ds.tn, &rule);
            println!(
                "{:>6} {:>6} {:>12.6} {:>12.6} {:>8.2}x {:>11} {:>9}",
                tr,
                fr,
                t_f,
                t_m,
                t_m / t_f,
                if predicted { "factorize" } else { "material." },
                if adaptive.is_factorized() { "F" } else { "M" },
            );
        }
    }

    println!("\nThe low-TR/low-FR corner is the paper's \"L-shaped\" slow-down region;");
    println!("the conservative thresholds route those cases to materialized execution.");
}
