//! The two planning strategies side by side (paper §3.7 / §5.1):
//! factorized execution is *not* always faster, and both the paper's τ/ρ
//! threshold rule and the calibrated cost-based planner predict when to
//! fall back to materialized execution — but the cost-based planner
//! decides *per operator*, so one matrix can run its cross-product
//! factorized while routing an LMM materialized.
//!
//! Sweeps the (tuple ratio, feature ratio) plane, measures the LMM speedup
//! at each point, and prints the heuristic verdict next to the cost-based
//! per-operator verdicts.
//!
//! ```sh
//! cargo run --release --example decision_rule
//! ```

use morpheus::core::cost::OpKind;
use morpheus::core::LinearOperand;
use morpheus::data::synth::PkFkSpec;
use morpheus::prelude::*;
use std::time::Instant;

fn time_lmm<M: LinearOperand>(t: &M, x: &DenseMatrix, reps: usize) -> f64 {
    let _ = t.lmm(x); // warmup
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(t.lmm(x));
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn fm(factorized: bool) -> &'static str {
    if factorized {
        "F"
    } else {
        "M"
    }
}

fn main() {
    let rule = DecisionRule::default();
    let profile = *MachineProfile::global();
    println!(
        "heuristic: factorize iff TR >= {} and FR >= {}",
        rule.tau, rule.rho
    );
    println!(
        "cost-based: calibrated rates — dense {:.2}/{:.2}/{:.2} ns/flop (L2/L3/DRAM tiers), \
         elementwise {:.2} ns, sparse {:.2} ns, gather {:.2} ns, {:.0} ns/part overhead\n",
        profile.dense_tiers[0].ns,
        profile.dense_tiers[1].ns,
        profile.dense_tiers[2].ns,
        profile.ew_ns,
        profile.sparse_ns,
        profile.gather_ns,
        profile.op_overhead_ns
    );
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>9} | {:>9} | {:>8} {:>9} {:>8} {:>7}",
        "TR",
        "FR",
        "F (s)",
        "M (s)",
        "speedup",
        "heuristic",
        "cost:lmm",
        "cost:xprod",
        "cost:agg",
        "cost:ew"
    );

    for &tr in &[1.0, 2.0, 5.0, 10.0, 20.0] {
        for &fr in &[0.25, 1.0, 4.0] {
            let ds = PkFkSpec::from_ratios(tr, fr, 1_000, 20, 9).generate();
            let tm = ds.tn.materialize();
            let x = DenseMatrix::from_fn(ds.tn.cols(), 4, |i, j| ((i + j) % 5) as f64 * 0.2);
            let t_f = time_lmm(&ds.tn, &x, 5);
            let t_m = time_lmm(&tm, &x, 5);
            let heuristic = rule.should_factorize(&ds.tn);
            let planned =
                PlannedMatrix::with_strategy(ds.tn, Strategy::CostBased).with_profile(profile);
            // Fill the memo so the verdicts compare operator against
            // operator — the same comparison the measured columns make
            // (tm is prebuilt above). A first-call verdict additionally
            // charges the join materialization to the M route.
            let _ = planned.materialize();
            let verdict = |op: OpKind| fm(planned.plan(op).expect("factorized repr").factorized);
            println!(
                "{:>6} {:>6} {:>12.6} {:>12.6} {:>8.2}x | {:>9} | {:>8} {:>9} {:>8} {:>7}",
                tr,
                fr,
                t_f,
                t_m,
                t_m / t_f,
                if heuristic { "factorize" } else { "material." },
                verdict(OpKind::Lmm { m: 4 }),
                verdict(OpKind::Crossprod),
                verdict(OpKind::RowSums),
                verdict(OpKind::Elementwise),
            );
        }
    }

    println!("\nThe low-TR/low-FR corner is the paper's \"L-shaped\" slow-down region;");
    println!("both strategies route those cases to materialized execution. Where they");
    println!("differ, the cost-based planner splits per operator: the cross-product's");
    println!("quadratic-in-d savings keep it factorized (F) at points where the linear");
    println!("operators already fall back (M) — the per-operator crossover of §3.4.");
}
