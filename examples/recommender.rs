//! Star-schema recommender analytics (paper §3.5's motivating shape):
//! `Ratings ⋈ Users ⋈ Movies`, with K-Means for audience segmentation and
//! GNMF for topic extraction — both over the normalized matrix.
//!
//! The ratings table has two foreign keys (user, movie); the join output
//! replicates every user profile once per rating they gave, which is the
//! redundancy the factorized operators skip.
//!
//! ```sh
//! cargo run --release --example recommender
//! ```

use morpheus::ml::gnmf::Gnmf;
use morpheus::ml::kmeans::KMeans;
use morpheus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let n_ratings = 30_000;
    let n_users = 400;
    let n_movies = 150;

    // Ratings: a single numeric column (the star rating itself).
    let ratings = DenseMatrix::from_fn(n_ratings, 1, |_, _| rng.gen_range(0.0..5.0));
    // Users: non-negative profile features (age bucket, activity, …).
    let users = DenseMatrix::from_fn(n_users, 30, |_, _| rng.gen_range(0.0..1.0));
    // Movies: non-negative genre intensities.
    let movies = DenseMatrix::from_fn(n_movies, 40, |_, _| rng.gen_range(0.0..1.0));

    let user_fk: Vec<usize> = (0..n_ratings)
        .map(|i| {
            if i < n_users {
                i
            } else {
                rng.gen_range(0..n_users)
            }
        })
        .collect();
    let movie_fk: Vec<usize> = (0..n_ratings)
        .map(|i| {
            if i < n_movies {
                i
            } else {
                rng.gen_range(0..n_movies)
            }
        })
        .collect();

    let tn = NormalizedMatrix::star(
        ratings.into(),
        vec![(user_fk, users.into()), (movie_fk, movies.into())],
    );
    println!(
        "Ratings ⋈ Users ⋈ Movies: {} x {} over {} tables (redundancy x{:.1})",
        tn.rows(),
        tn.cols(),
        tn.parts().len(),
        tn.redundancy_ratio()
    );

    // --- K-Means segmentation (factorized vs materialized) -------------
    let km = KMeans::new(8, 10);
    let t0 = Instant::now();
    let seg_f = km.fit(&tn);
    let time_f = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let tm = tn.materialize();
    let seg_m = km.fit(&tm);
    let time_m = t1.elapsed().as_secs_f64();
    assert_eq!(seg_f.assignments, seg_m.assignments);
    println!(
        "K-Means (k=8, 10 iters): factorized {time_f:.3}s vs materialized {time_m:.3}s → {:.1}x; inertia {:.1}",
        time_m / time_f,
        seg_f.inertia
    );
    let mut sizes = vec![0usize; 8];
    for &a in &seg_f.assignments {
        sizes[a] += 1;
    }
    println!("segment sizes: {sizes:?}");

    // --- GNMF topics -----------------------------------------------------
    let gn = Gnmf::new(4, 15);
    let t2 = Instant::now();
    let topics_f = gn.fit(&tn);
    let gf = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let topics_m = gn.fit(&tm);
    let gm = t3.elapsed().as_secs_f64();
    assert!(topics_f.h.approx_eq(&topics_m.h, 1e-6));
    let err = topics_f.reconstruction_error(&tm.to_dense());
    let scale = tm.to_dense().frobenius_norm();
    println!(
        "GNMF (r=4, 15 iters): factorized {gf:.3}s vs materialized {gm:.3}s → {:.1}x; rel. error {:.3}",
        gm / gf,
        err / scale
    );
}
