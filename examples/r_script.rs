//! The paper's headline workflow (Figure 1c): take a *standard LA script*
//! for logistic regression, change nothing, and run it factorized by
//! binding `T` to a normalized matrix instead of the join output.
//!
//! ```sh
//! cargo run --release --example r_script
//! ```

use morpheus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

// The script is (modulo surface syntax) Algorithm 3 of the paper — the
// *standard*, single-table version. No factorized variant is ever written.
const SCRIPT: &str = r#"
    # Logistic regression via gradient descent (paper Algorithm 3).
    w = zeros(d, 1)
    for (i in 1:20) {
        w = w + alpha * (t(T) %*% (Y / (1 + exp(Y * (T %*% w)))))
    }
    w
"#;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let (n_s, n_r, d_s, d_r) = (30_000, 1_000, 20, 60);
    let s = DenseMatrix::from_fn(n_s, d_s, |_, _| rng.gen_range(-1.0..1.0));
    let r = DenseMatrix::from_fn(n_r, d_r, |_, _| rng.gen_range(-1.0..1.0));
    let fk: Vec<usize> = (0..n_s)
        .map(|i| if i < n_r { i } else { rng.gen_range(0..n_r) })
        .collect();
    let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
    let d = tn.cols();
    let w_true = DenseMatrix::from_fn(d, 1, |i, _| ((i % 11) as f64 - 5.0) * 0.1);
    let y = tn.lmm(&w_true).map(|m| if m > 0.0 { 1.0 } else { -1.0 });

    let program = parse(SCRIPT).expect("script parses");
    println!("script:\n{SCRIPT}");

    // Run 1: T bound to the NORMALIZED matrix — every %*% and t() routes
    // through the factorized rewrites. `run_program` plans the script
    // first (CSE, element-wise fusion, whole-script materialize verdicts,
    // keyed plan cache) and then evaluates the plan.
    let mut env_f = Env::new();
    env_f.bind("T", Value::normalized(tn.clone()));
    env_f.bind("Y", Value::Dense(y.clone()));
    env_f.bind("alpha", Value::Scalar(1e-4));
    env_f.bind("d", Value::Scalar(d as f64));
    let t0 = Instant::now();
    let w_f = run_program(&program, &mut env_f).expect("factorized run");
    let time_f = t0.elapsed().as_secs_f64();

    // Run 2: the same program object, T bound to the materialized join.
    let t1 = Instant::now();
    let tm = tn.materialize().to_dense();
    let mut env_m = Env::new();
    env_m.bind("T", Value::Dense(tm));
    env_m.bind("Y", Value::Dense(y.clone()));
    env_m.bind("alpha", Value::Scalar(1e-4));
    env_m.bind("d", Value::Scalar(d as f64));
    let w_m = run_program(&program, &mut env_m).expect("materialized run");
    let time_m = t1.elapsed().as_secs_f64();

    let wf = w_f.as_dense().expect("weights");
    let wm = w_m.as_dense().expect("weights");
    assert!(wf.approx_eq(wm, 1e-8), "the two runs must agree exactly");

    // Sanity: the script matches the native Rust trainer.
    let native = LogisticRegressionGd::new(1e-4, 20).fit(&tn, &y);
    assert!(wf.approx_eq(&native.w, 1e-8));

    println!("factorized run   : {time_f:.3}s");
    println!("materialized run : {time_m:.3}s (incl. join)");
    println!("speedup          : {:.1}x", time_m / time_f);
    println!("identical weights from both runs (and from the native trainer).");
}
