//! Linear algebra over a many-to-many join (paper §3.6): two tables joined
//! on a non-key attribute, where the join output can explode to many times
//! the base-table sizes.
//!
//! Here: `Transactions ⋈ Promotions` on `store_region` — every transaction
//! joins with every promotion active in its region. Linear regression over
//! the joined features runs factorized through `(S, I_S, I_R, R)` without
//! building the blown-up output.
//!
//! ```sh
//! cargo run --release --example mn_join_analytics
//! ```

use morpheus::ml::linreg::LinearRegressionNe;
use morpheus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let n_tx = 3_000;
    let n_promo = 3_000;
    let n_regions = 60; // uniqueness degree 0.02 → heavy blow-up

    let tx = DenseMatrix::from_fn(n_tx, 10, |_, _| rng.gen_range(-1.0..1.0));
    let promos = DenseMatrix::from_fn(n_promo, 10, |_, _| rng.gen_range(-1.0..1.0));
    let tx_region: Vec<u64> = (0..n_tx)
        .map(|i| {
            if i < n_regions {
                i as u64
            } else {
                rng.gen_range(0..n_regions as u64)
            }
        })
        .collect();
    let promo_region: Vec<u64> = (0..n_promo)
        .map(|i| {
            if i < n_regions {
                i as u64
            } else {
                rng.gen_range(0..n_regions as u64)
            }
        })
        .collect();

    let t0 = Instant::now();
    let tn = NormalizedMatrix::mn_join_on_keys(tx.into(), &tx_region, promos.into(), &promo_region);
    let build = t0.elapsed().as_secs_f64();
    println!(
        "M:N join: {} transactions x {} promotions over {} regions → |T| = {} rows ({}x blow-up), built in {build:.3}s",
        n_tx,
        n_promo,
        n_regions,
        tn.rows(),
        tn.rows() / n_tx
    );

    // Response: promotion lift, a linear function of the joined features.
    let w_truth = DenseMatrix::from_fn(tn.cols(), 1, |i, _| ((i % 7) as f64 - 3.0) * 0.1);
    let y = tn.lmm(&w_truth);

    let solver = LinearRegressionNe::new();
    let t1 = Instant::now();
    let w_f = solver.fit(&tn, &y);
    let time_f = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let tm = tn.materialize();
    let w_m = solver.fit(&tm, &y);
    let time_m = t2.elapsed().as_secs_f64();

    assert!(w_f.approx_eq(&w_m, 1e-6));
    assert!(w_f.approx_eq(&w_truth, 1e-5), "planted model recovered");
    println!("linear regression (normal equations):");
    println!("  factorized   : {time_f:.3}s");
    println!("  materialized : {time_m:.3}s (incl. join)");
    println!(
        "  speedup      : {:.1}x — identical coefficients",
        time_m / time_f
    );

    // The same data through the chunked (ORE-analog) backend; chunk-level
    // parallelism comes from the shared Runtime budget.
    let cn = morpheus::chunked::ChunkedNormalizedMatrix::new(&tn, 16_384);
    let t3 = Instant::now();
    let w_c = solver.fit(&cn, &y);
    let time_c = t3.elapsed().as_secs_f64();
    assert!(w_c.approx_eq(&w_f, 1e-6));
    println!(
        "  chunked backend ({} chunks): {time_c:.3}s — same model, no code changes",
        cn.n_chunks()
    );
}
