//! The paper's §2 motivating scenario: an insurance analyst predicts
//! customer churn with logistic regression over `Customers ⋈ Employers`,
//! without ever materializing the join.
//!
//! `Customers (CustomerID, Churn, Age, Income, EmployerID)` is the entity
//! table; `Employers (EmployerID, Revenue, Country…)` is the attribute
//! table. Many customers share an employer, so the join output is highly
//! redundant — exactly the redundancy Morpheus avoids.
//!
//! ```sh
//! cargo run --release --example churn_prediction
//! ```

use morpheus::ml::logreg::predict_proba;
use morpheus::ml::metrics;
use morpheus::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let mut rng = StdRng::seed_from_u64(2017);
    let n_customers = 40_000;
    let n_employers = 800;

    // Customers: 20 numeric features (age, income, tenure, usage, ...).
    let customers = DenseMatrix::from_fn(n_customers, 20, |_, _| rng.gen_range(-1.0..1.0));
    // Employers: 40 features (revenue, country indicators, sector, ...).
    let employers = DenseMatrix::from_fn(n_employers, 40, |_, _| rng.gen_range(-1.0..1.0));
    // Foreign key: every employer employs at least one customer.
    let employer_of: Vec<usize> = (0..n_customers)
        .map(|i| {
            if i < n_employers {
                i
            } else {
                rng.gen_range(0..n_employers)
            }
        })
        .collect();

    let tn = NormalizedMatrix::pk_fk(customers.into(), &employer_of, employers.into());
    let stats = tn.stats();
    println!(
        "Customers ⋈ Employers: {} x {} (TR = {:.0}, FR = {:.0}, redundancy x{:.1})",
        tn.rows(),
        tn.cols(),
        stats.tuple_ratio,
        stats.feature_ratio,
        tn.redundancy_ratio()
    );

    // The analyst's hunch from the paper: customers of rich employers in
    // rich countries don't churn. Plant that model and generate labels.
    let w_truth = DenseMatrix::from_fn(60, 1, |i, _| ((i % 9) as f64 - 4.0) * 0.15);
    let margins = tn.lmm(&w_truth);
    let churn = margins.map(|m| if m > 0.0 { 1.0 } else { -1.0 });

    let trainer = LogisticRegressionGd::new(1e-4, 20);

    // Factorized training — straight on the base tables.
    let t0 = Instant::now();
    let model_f = trainer.fit(&tn, &churn);
    let time_f = t0.elapsed().as_secs_f64();

    // Materialized training — join first, then learn.
    let t1 = Instant::now();
    let t = tn.materialize();
    let model_m = trainer.fit(&t, &churn);
    let time_m = t1.elapsed().as_secs_f64();

    assert!(
        model_f.w.approx_eq(&model_m.w, 1e-8),
        "models must be identical"
    );

    let proba = predict_proba(&tn, &model_f.w);
    let acc = metrics::accuracy(&proba, &churn);
    println!("factorized   : {time_f:.3}s");
    println!("materialized : {time_m:.3}s (incl. join)");
    println!("speedup      : {:.1}x", time_m / time_f);
    println!(
        "train accuracy {:.3} — identical models from both paths",
        acc
    );

    // The heuristic decision rule agrees this join is worth factorizing.
    let rule = DecisionRule::default();
    println!(
        "decision rule (τ=5, ρ=1): factorize? {}",
        rule.should_factorize(&tn)
    );
}
