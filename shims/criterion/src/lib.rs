//! Offline, API-compatible stand-in for the subset of `criterion` used by
//! the `morpheus-bench` benches: `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and `black_box`.
//!
//! The build container cannot reach crates.io, so the real crate cannot be
//! fetched. The shim runs each routine `sample_size` times around a
//! monotonic clock and prints a `name ... median ns/iter` line — no
//! statistics, plots, or outlier analysis. Swapping the real criterion
//! back in is a one-line `Cargo.toml` change; the bench sources are
//! unchanged.
//!
//! Unlike the real crate, the shim also **persists** every median to a
//! flat JSON map at `<workspace>/target/bench-baselines.json` (override
//! the path with `MORPHEUS_BENCH_BASELINES`), merging with whatever is
//! already there — bench binaries run as separate processes, so each
//! merges its own results in. The committed baseline gate
//! (`morpheus-bench/src/bin/bench_gate.rs`) compares this file against a
//! checked-in snapshot and fails CI on regressions.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Instant;

pub use std::hint::black_box;

/// Where bench medians are persisted: `MORPHEUS_BENCH_BASELINES` if set,
/// else `target/bench-baselines.json` under the nearest ancestor directory
/// holding a `Cargo.lock` (the workspace root; bench binaries may run with
/// a member crate as their working directory).
fn baselines_path() -> PathBuf {
    if let Ok(p) = std::env::var("MORPHEUS_BENCH_BASELINES") {
        return PathBuf::from(p);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench-baselines.json");
        }
        if !dir.pop() {
            return PathBuf::from("target/bench-baselines.json");
        }
    }
}

/// Parses the shim's own flat `{"name": nanos, ...}` JSON (string keys,
/// unsigned-integer values, no escapes — exactly what [`write_baselines`]
/// emits). Unknown or malformed content yields an empty map.
pub fn parse_baselines(text: &str) -> Vec<(String, u128)> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = rest[..end].to_string();
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u128>() {
            out.push((key, v));
        }
    }
    out
}

/// Merges `results` into the persisted baseline file (existing keys are
/// overwritten, unrelated keys kept) and writes it back, sorted by name.
/// I/O errors are reported to stderr but never fail the bench run.
fn write_baselines(results: &[(String, u128)]) {
    let path = baselines_path();
    let mut merged: Vec<(String, u128)> = std::fs::read_to_string(&path)
        .map(|t| parse_baselines(&t))
        .unwrap_or_default();
    for (k, v) in results {
        match merged.iter_mut().find(|(mk, _)| mk == k) {
            Some(slot) => slot.1 = *v,
            None => merged.push((k.clone(), *v)),
        }
    }
    merged.sort_by(|a, b| a.0.cmp(&b.0));
    let mut json = String::from("{\n");
    for (i, (k, v)) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        json.push_str(&format!("  \"{k}\": {v}{comma}\n"));
    }
    json.push_str("}\n");
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("criterion shim: cannot persist baselines to {path:?}: {e}");
    }
}

/// How batched setup output is amortized (mirror of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure
/// (mirror of `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    last_ns: Vec<u128>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.last_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last_ns.push(t0.elapsed().as_nanos());
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.last_ns.clear();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.last_ns.push(t0.elapsed().as_nanos());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.last_ns.is_empty() {
            return 0;
        }
        self.last_ns.sort_unstable();
        self.last_ns[self.last_ns.len() / 2]
    }
}

/// Benchmark manager (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: Vec::new(),
        };
        f(&mut b);
        let median = b.median_ns();
        println!("bench {id:<48} {median:>12} ns/iter (median)");
        write_baselines(&[(id, median)]);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions
/// (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = ::std::concat!("Runs the `", ::std::stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Generate the bench `main` running each group
/// (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs() {
        smoke();
    }

    #[test]
    fn baseline_json_round_trips() {
        let entries = vec![
            ("pkfk/a/lmm/F".to_string(), 12345u128),
            ("kernels/gemm".to_string(), 9_876_543_210u128),
        ];
        let mut json = String::from("{\n");
        for (i, (k, v)) in entries.iter().enumerate() {
            let comma = if i + 1 == entries.len() { "" } else { "," };
            json.push_str(&format!("  \"{k}\": {v}{comma}\n"));
        }
        json.push_str("}\n");
        assert_eq!(parse_baselines(&json), entries);
        assert!(parse_baselines("").is_empty());
        assert!(parse_baselines("not json at all").is_empty());
    }
}
