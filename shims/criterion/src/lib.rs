//! Offline, API-compatible stand-in for the subset of `criterion` used by
//! the `morpheus-bench` benches: `criterion_group!`/`criterion_main!`,
//! `Criterion::{default, sample_size, bench_function, benchmark_group}`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and `black_box`.
//!
//! The build container cannot reach crates.io, so the real crate cannot be
//! fetched. The shim runs each routine `sample_size` times around a
//! monotonic clock and prints a `name ... median ns/iter` line — no
//! statistics, plots, or outlier analysis. Swapping the real criterion
//! back in is a one-line `Cargo.toml` change; the bench sources are
//! unchanged.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

pub use std::hint::black_box;

/// How batched setup output is amortized (mirror of `criterion::BatchSize`).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every single iteration.
    PerIteration,
}

/// Timing driver handed to each benchmark closure
/// (mirror of `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    last_ns: Vec<u128>,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.last_ns.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last_ns.push(t0.elapsed().as_nanos());
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.last_ns.clear();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.last_ns.push(t0.elapsed().as_nanos());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.last_ns.is_empty() {
            return 0;
        }
        self.last_ns.sort_unstable();
        self.last_ns[self.last_ns.len() / 2]
    }
}

/// Benchmark manager (mirror of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_ns: Vec::new(),
        };
        f(&mut b);
        println!("bench {id:<48} {:>12} ns/iter (median)", b.median_ns());
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (mirror of `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finish the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions
/// (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = ::std::concat!("Runs the `", ::std::stringify!($name), "` benchmark group.")]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = ::std::default::Default::default();
            targets = $($target),+
        }
    };
}

/// Generate the bench `main` running each group
/// (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs() {
        smoke();
    }
}
