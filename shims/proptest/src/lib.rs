//! Offline, API-compatible stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, range/tuple/`any` strategies,
//! `prop_map`, `ProptestConfig::with_cases`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! The build container cannot reach crates.io, so the real crate cannot be
//! fetched. The shim keeps the property-test *sources* unchanged and runs
//! each property over `cases` deterministically-seeded random inputs
//! (seeded from the test's module path, so runs are reproducible).
//!
//! Failing cases **shrink**: [`Strategy::shrink`] proposes smaller
//! candidate inputs (integers bisect toward their range start,
//! [`collection::vec`] drops elements and shrinks survivors, tuples
//! shrink one component at a time), and the runner greedily re-runs
//! candidates until none still fails, reporting the minimal counterexample
//! via `Debug`.
//!
//! Strategies built with [`Strategy::prop_map`] shrink too, without value
//! trees: [`Map`] remembers the *input* that produced each generated
//! output, shrinks that input, and re-maps the shrunk inputs through the
//! mapping closure. The runner tells the strategy which shrink candidate
//! it accepted ([`Strategy::picked`]) so the remembered input tracks the
//! walk; tuples and [`collection::vec`] route the notification to the
//! component that produced the accepted candidate. One documented
//! limitation remains: a `prop_map` used as the *element* of
//! `collection::vec` shares a single remembered input across all
//! elements, so element-wise shrinks of such vectors are approximate
//! (still valid values of the strategy, just not minimal) — mapped
//! strategies at test-argument position, the only shape this workspace
//! uses, shrink exactly.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::ops::Range;

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the string is the failure message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject,
}

/// Result type every `proptest!`-generated case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a generator from a test identifier and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        // splitmix64 finalizer.
        let mut z = h.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        TestRng {
            state: z ^ (z >> 31),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A generator of random values (mirror of `proptest::strategy::Strategy`).
///
/// Unlike real proptest there are no value trees; shrinking is a direct
/// `value -> smaller candidates` proposal instead.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" candidate values derived from a failing
    /// `value`, most aggressive first. The default is no candidates
    /// (unshrinkable).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Notification from the shrink runner that candidate `idx` of the
    /// most recent [`shrink`](Strategy::shrink)`(value)` call still fails
    /// and becomes the new current value. Stateless strategies ignore it;
    /// [`Map`] uses it to move its remembered pre-mapping input along the
    /// shrink walk, and composite strategies route it to the component
    /// whose candidate was accepted.
    fn picked(&self, _value: &Self::Value, _idx: usize) {}

    /// Map generated values through `f` (mirror of `Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            inner: self,
            f,
            state: RefCell::new(MapState {
                current: None,
                candidates: Vec::new(),
            }),
        }
    }
}

/// Remembered pre-mapping inputs of a [`Map`]: the input that produced
/// the current (possibly already-shrunk) output, and the inputs behind
/// the candidates proposed by the latest `shrink` call.
#[derive(Clone)]
struct MapState<V> {
    current: Option<V>,
    candidates: Vec<V>,
}

/// Strategy adapter produced by [`Strategy::prop_map`]. Shrinkable: the
/// generated *input* is remembered, shrunk through the inner strategy,
/// and re-mapped through the closure (see the module docs for the one
/// `collection::vec`-element caveat).
pub struct Map<S: Strategy, F> {
    inner: S,
    f: F,
    state: RefCell<MapState<S::Value>>,
}

impl<S, F> Clone for Map<S, F>
where
    S: Strategy + Clone,
    S::Value: Clone,
    F: Clone,
{
    fn clone(&self) -> Self {
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
            state: RefCell::new(self.state.borrow().clone()),
        }
    }
}

impl<S: Strategy, F> std::fmt::Debug for Map<S, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Map").finish_non_exhaustive()
    }
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let input = self.inner.generate(rng);
        self.state.borrow_mut().current = Some(input.clone());
        (self.f)(input)
    }

    fn shrink(&self, _value: &T) -> Vec<T> {
        // The output cannot be un-mapped; shrink the remembered input
        // instead and push the shrunk inputs back through the closure.
        let current = match self.state.borrow().current.clone() {
            Some(v) => v,
            None => return Vec::new(),
        };
        let inputs = self.inner.shrink(&current);
        let out = inputs.iter().cloned().map(|v| (self.f)(v)).collect();
        self.state.borrow_mut().candidates = inputs;
        out
    }

    fn picked(&self, _value: &T, idx: usize) {
        let mut st = self.state.borrow_mut();
        if let Some(input) = st.candidates.get(idx).cloned() {
            // Chained maps: the inner strategy proposed `candidates` from
            // its own remembered state in 1:1 index order, so the
            // notification forwards unchanged.
            let prev = st.current.clone();
            st.current = Some(input);
            drop(st);
            if let Some(prev) = prev {
                self.inner.picked(&prev, idx);
            }
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width and offset computed in the u64 domain so signed
                // ranges wider than the type's positive half don't overflow.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Bisect toward the range start (the "smallest" legal
                // value): start itself, the midpoint, the predecessor.
                // Offsets computed in the u64 domain, like generate.
                let mut out = Vec::new();
                if *value != self.start {
                    let dist = (*value as u64).wrapping_sub(self.start as u64);
                    out.push(self.start);
                    let mid = (self.start as u64).wrapping_add(dist / 2) as $t;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    let dec = (*value as u64).wrapping_sub(1) as $t;
                    if dec != self.start && dec != mid {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32);

/// Types with a canonical "anything" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value of this type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;

    /// Propose smaller candidates for a failing value (default: none).
    fn shrink_value(_value: &Self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink_value(value: &$t) -> Vec<$t> {
                // Toward zero: zero, the halfway point, the predecessor.
                let mut out = Vec::new();
                if *value != 0 {
                    out.push(0);
                    let half = *value / 2;
                    if half != 0 {
                        out.push(half);
                    }
                    let dec = *value - 1;
                    if dec != 0 && dec != half {
                        out.push(dec);
                    }
                }
                out
            }
        }
    )*};
}

impl_arbitrary_uint!(u64, u32, usize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink_value(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values; enough for numeric properties.
        // Not shrunk: float counterexamples rarely simplify meaningfully
        // by bisection and exact-equality loops are easy to hit.
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// Strategy for any value of `T` (mirror of `proptest::prelude::any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Build the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink_value(value)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: Clone,)+
        {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }

            fn picked(&self, value: &Self::Value, idx: usize) {
                // Route the notification to the component whose candidate
                // was accepted: recount each component's (deterministic)
                // candidate list in the same order `shrink` emitted them.
                let mut rem = idx;
                $(
                    let n = self.$idx.shrink(&value.$idx).len();
                    if rem < n {
                        self.$idx.picked(&value.$idx, rem);
                        return;
                    }
                    rem -= n;
                )+
                let _ = rem;
            }
        }
    };
}

impl_tuple_strategy!(A:0);
impl_tuple_strategy!(A:0, B:1);
impl_tuple_strategy!(A:0, B:1, C:2);
impl_tuple_strategy!(A:0, B:1, C:2, D:3);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6);
impl_tuple_strategy!(A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7);

/// Collection strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` of `len` values from `elem`, with `len` drawn from `range`
    /// (mirror of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(elem: S, range: Range<usize>) -> VecStrategy<S> {
        assert!(range.start < range.end, "cannot sample empty length range");
        VecStrategy { elem, range }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        range: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.range.end - self.range.start) as u64;
            let len = self.range.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.range.start;
            let mut out = Vec::new();
            // Shorter first: the minimum-length prefix, the halfway
            // prefix, then dropping a single trailing element.
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = min + (value.len() - min) / 2;
                if half != min && half != value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 != half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            // Then element-wise shrinks at the surviving length.
            for (i, v) in value.iter().enumerate() {
                for candidate in self.elem.shrink(v) {
                    let mut w = value.clone();
                    w[i] = candidate;
                    out.push(w);
                }
            }
            out
        }

        fn picked(&self, value: &Vec<S::Value>, idx: usize) {
            // Mirror `shrink`'s candidate order: the (up to three) prefix
            // drops first — which need no notification — then the
            // element-wise candidates, routed to the element strategy.
            let min = self.range.start;
            let mut prefix = 0;
            if value.len() > min {
                prefix += 1;
                let half = min + (value.len() - min) / 2;
                if half != min && half != value.len() {
                    prefix += 1;
                }
                if value.len() - 1 != half {
                    prefix += 1;
                }
            }
            if idx < prefix {
                return;
            }
            let mut rem = idx - prefix;
            for v in value.iter() {
                let n = self.elem.shrink(v).len();
                if rem < n {
                    self.elem.picked(v, rem);
                    return;
                }
                rem -= n;
            }
        }
    }
}

/// Pins a case-runner closure's argument type to `S::Value` so the
/// [`proptest!`] expansion type-checks (closure parameter inference does
/// not flow backwards into the body). Not part of the mirrored API.
#[doc(hidden)]
pub fn bind_runner<S, F>(_strategy: &S, f: F) -> F
where
    S: Strategy,
    F: FnMut(&S::Value) -> TestCaseResult,
{
    f
}

/// Greedily minimizes a failing input: repeatedly re-runs the property on
/// shrink candidates, walking to the first candidate that still fails,
/// until no candidate fails (or a step bound is hit). Returns the minimal
/// failing value, its failure message, and the number of successful
/// shrink steps. Used by the [`proptest!`] runner; public so tests can
/// exercise shrinking without a failing `#[test]`.
pub fn shrink_failure<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut message: String,
    run: &mut impl FnMut(&S::Value) -> TestCaseResult,
) -> (S::Value, String, usize) {
    const MAX_STEPS: usize = 512;
    let mut steps = 0;
    'outer: while steps < MAX_STEPS {
        for (idx, candidate) in strategy.shrink(&value).into_iter().enumerate() {
            if let Err(TestCaseError::Fail(msg)) = run(&candidate) {
                // Tell stateful strategies (prop_map) which candidate the
                // walk accepted, so their remembered inputs follow.
                strategy.picked(&value, idx);
                value = candidate;
                message = msg;
                steps += 1;
                continue 'outer;
            }
        }
        break; // no candidate still fails: local minimum
    }
    (value, message, steps)
}

/// Fail the current case unless `cond` holds (mirror of `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the operands are equal
/// (mirror of `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (mirror of `prop_assume!`).
/// Rejected cases are skipped, not counted as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declare property tests (mirror of the `proptest!` macro).
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item becomes a
/// regular `#[test]` that evaluates the body over `cases` generated
/// inputs; a failing case is shrunk (see [`shrink_failure`]) and the
/// minimal counterexample is reported. Generated values must therefore be
/// `Clone` (to re-run candidates) and `Debug` (to report the minimum).
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // All argument strategies combine into one tuple strategy,
                // so generation consumes the RNG in declaration order and
                // shrinking can vary one argument at a time.
                let strategy = ($($strat,)+);
                let mut run = $crate::bind_runner(&strategy, |value| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(value);
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                });
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::deterministic(
                        ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                        case,
                    );
                    let value = $crate::Strategy::generate(&strategy, &mut rng);
                    match run(&value) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            let (minimal, msg, steps) =
                                $crate::shrink_failure(&strategy, value, msg, &mut run);
                            ::std::panic!(
                                "property failed at case {case}: {msg}\n\
                                 minimal input (after {steps} shrink step(s)): {minimal:?}"
                            )
                        }
                    }
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@impl $cfg; $($rest)+);
    };
    // No tt catch-all here: the default-config arm re-states the full test
    // grammar so malformed input fails with "no rules expected" instead of
    // recursing to the macro expansion limit.
    ($(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(
            @impl $crate::ProptestConfig::default();
            $(#[test] fn $name($($arg in $strat),+) $body)+
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 0u64..4), c in any::<u64>()) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 4);
            let _ = c;
        }

        #[test]
        fn prop_map_applies(v in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!((2..10).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(
            (0usize..100).generate(&mut a),
            (0usize..100).generate(&mut b)
        );
    }

    #[test]
    fn integer_failure_shrinks_to_the_minimal_counterexample() {
        // Property "v < 50" over 0..1000: whatever the original failing
        // value, greedy bisection must land exactly on 50.
        let strategy = (0usize..1000,);
        let mut run = |v: &(usize,)| -> crate::TestCaseResult {
            if v.0 < 50 {
                Ok(())
            } else {
                Err(crate::TestCaseError::Fail(format!("{} >= 50", v.0)))
            }
        };
        let (minimal, msg, steps) =
            crate::shrink_failure(&strategy, (777,), "777 >= 50".into(), &mut run);
        assert_eq!(minimal, (50,), "expected the boundary counterexample");
        assert!(msg.contains("50 >= 50"));
        assert!(steps > 0, "shrinking must have made progress");
    }

    #[test]
    fn vec_failure_shrinks_length_and_elements() {
        // Property "sum < 100" over vectors of 0..100: shrinking drops
        // elements and shrinks survivors until a *local* minimum — a
        // still-failing vector none of whose candidates fails (greedy
        // shrinking, like real proptest's, does not promise the global
        // minimum).
        let strategy = crate::collection::vec(0u64..100, 1..20);
        let mut run = |v: &Vec<u64>| -> crate::TestCaseResult {
            if v.iter().sum::<u64>() < 100 {
                Ok(())
            } else {
                Err(crate::TestCaseError::Fail(format!("sum {:?} >= 100", v)))
            }
        };
        let start: Vec<u64> = vec![30, 40, 50, 60, 70];
        let (minimal, _, steps) = crate::shrink_failure(&strategy, start, "seed".into(), &mut run);
        assert!(steps > 0);
        assert!(
            minimal.iter().sum::<u64>() >= 100,
            "minimum must still fail"
        );
        assert!(
            minimal.len() < 5,
            "length should have shrunk from the original 5: {minimal:?}"
        );
        // Local minimum: no candidate of the minimal value still fails.
        for cand in Strategy::shrink(&strategy, &minimal) {
            assert!(run(&cand).is_ok(), "not minimal: {cand:?} still fails");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_strategy_respects_length_range(v in crate::collection::vec(0u64..7, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 7));
        }
    }

    /// Generate with the macro's per-case RNG until `run` fails, then
    /// shrink — the exact walk the `proptest!` runner performs.
    fn fail_then_shrink<S: crate::Strategy>(
        strategy: &S,
        run: &mut impl FnMut(&S::Value) -> crate::TestCaseResult,
    ) -> S::Value
    where
        S::Value: Clone,
    {
        for case in 0..10_000 {
            let mut rng = TestRng::deterministic("fail_then_shrink", case);
            let value = crate::Strategy::generate(strategy, &mut rng);
            if let Err(crate::TestCaseError::Fail(msg)) = run(&value) {
                let (minimal, _, _) = crate::shrink_failure(strategy, value, msg, run);
                return minimal;
            }
        }
        panic!("no failing case generated");
    }

    #[test]
    fn mapped_range_failure_shrinks_to_the_minimal_counterexample() {
        // Property "v < 100" over (1..1000).prop_map(|x| x * 2): shrinking
        // must bisect the pre-mapping *input* toward the boundary input 50
        // and re-map it, landing exactly on the minimal counterexample
        // 100. Before the picked-protocol, prop_map outputs were
        // unshrinkable and the original (possibly huge) value was
        // reported.
        let strategy = (1usize..1000).prop_map(|x| x * 2);
        let mut run = |v: &usize| -> crate::TestCaseResult {
            if *v < 100 {
                Ok(())
            } else {
                Err(crate::TestCaseError::Fail(format!("{v} >= 100")))
            }
        };
        let minimal = fail_then_shrink(&strategy, &mut run);
        assert_eq!(minimal, 100, "expected the mapped boundary");
    }

    #[test]
    fn chained_maps_shrink_through_both_closures() {
        // ((0..500) + 1) * 3 with property "v < 30": the minimal failing
        // input is 9, mapping to exactly 30.
        let strategy = (0usize..500).prop_map(|x| x + 1).prop_map(|x| x * 3);
        let mut run = |v: &usize| -> crate::TestCaseResult {
            if *v < 30 {
                Ok(())
            } else {
                Err(crate::TestCaseError::Fail(format!("{v} >= 30")))
            }
        };
        let minimal = fail_then_shrink(&strategy, &mut run);
        assert_eq!(minimal, 30);
    }

    #[test]
    fn mapped_component_inside_a_tuple_shrinks_with_routing() {
        // The proptest! macro always wraps arguments in a tuple; the
        // accepted-candidate notification must route through the tuple to
        // the mapped component — and the unmapped component must shrink to
        // its own minimum independently.
        let strategy = ((1usize..1000).prop_map(|x| x * 2), 0u64..8);
        let mut run = |v: &(usize, u64)| -> crate::TestCaseResult {
            if v.0 < 100 {
                Ok(())
            } else {
                Err(crate::TestCaseError::Fail(format!("{} >= 100", v.0)))
            }
        };
        let minimal = fail_then_shrink(&strategy, &mut run);
        assert_eq!(minimal, (100, 0));
    }

    #[test]
    fn mapped_shrink_without_a_generated_input_proposes_nothing() {
        // A Map that never generated has no remembered input to shrink.
        let strategy = (1usize..10).prop_map(|x| x * 2);
        assert!(crate::Strategy::shrink(&strategy, &8).is_empty());
    }

    #[test]
    fn range_shrink_proposes_smaller_values_only() {
        let s = 5usize..500;
        for cand in Strategy::shrink(&s, &300) {
            assert!((5..300).contains(&cand), "bad candidate {cand}");
        }
        assert!(
            Strategy::shrink(&s, &5).is_empty(),
            "range start is minimal"
        );
        assert!(Strategy::shrink(&any::<bool>(), &false).is_empty());
        assert_eq!(Strategy::shrink(&any::<bool>(), &true), vec![false]);
    }
}
