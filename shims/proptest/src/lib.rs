//! Offline, API-compatible stand-in for the subset of `proptest` this
//! workspace uses: the `proptest!` macro, range/tuple/`any` strategies,
//! `prop_map`, `ProptestConfig::with_cases`, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! The build container cannot reach crates.io, so the real crate cannot be
//! fetched. The shim keeps the property-test *sources* unchanged and runs
//! each property over `cases` deterministically-seeded random inputs
//! (seeded from the test's module path, so runs are reproducible). It does
//! **not** implement shrinking — a failing case reports its inputs' seed
//! index instead.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Re-exports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; the string is the failure message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject,
}

/// Result type every `proptest!`-generated case body evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derive a generator from a test identifier and case index.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        // splitmix64 finalizer.
        let mut z = h.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        TestRng {
            state: z ^ (z >> 31),
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A generator of random values (mirror of `proptest::strategy::Strategy`).
///
/// Unlike real proptest there is no value tree / shrinking; a strategy just
/// produces a value per case.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f` (mirror of `Strategy::prop_map`).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width and offset computed in the u64 domain so signed
                // ranges wider than the type's positive half don't overflow.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32);

/// Types with a canonical "anything" strategy (mirror of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value of this type.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary_value(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary_value(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary_value(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, roughly unit-scale values; enough for numeric properties.
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }
}

/// Strategy for any value of `T` (mirror of `proptest::prelude::any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Build the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Fail the current case unless `cond` holds (mirror of `prop_assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the operands are equal
/// (mirror of `prop_assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Reject the current case unless `cond` holds (mirror of `prop_assume!`).
/// Rejected cases are skipped, not counted as failures.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declare property tests (mirror of the `proptest!` macro).
///
/// Each `#[test] fn name(pat in strategy, ...) { body }` item becomes a
/// regular `#[test]` that evaluates the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@impl $cfg:expr; $(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::deterministic(
                        ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: $crate::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            ::std::panic!("property failed at case {case}: {msg}")
                        }
                    }
                }
            }
        )+
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::proptest!(@impl $cfg; $($rest)+);
    };
    // No tt catch-all here: the default-config arm re-states the full test
    // grammar so malformed input fails with "no rules expected" instead of
    // recursing to the macro expansion limit.
    ($(#[test] fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(
            @impl $crate::ProptestConfig::default();
            $(#[test] fn $name($($arg in $strat),+) $body)+
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (1usize..10, 0u64..4), c in any::<u64>()) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 4);
            let _ = c;
        }

        #[test]
        fn prop_map_applies(v in (1usize..5).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0);
            prop_assert!((2..10).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0usize..10) {
            if n > 100 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::deterministic("x", 3);
        let mut b = TestRng::deterministic("x", 3);
        assert_eq!(
            (0usize..100).generate(&mut a),
            (0usize..100).generate(&mut b)
        );
    }
}
