//! Offline, API-compatible stand-in for the small subset of the `rand`
//! crate this workspace uses (`StdRng`, `SeedableRng`, `Rng::gen_range`).
//!
//! The build container has no network access to crates.io, so the real
//! `rand` cannot be fetched. This shim keeps the public call sites
//! source-compatible; swapping the real crate back in is a one-line
//! `Cargo.toml` change. The generator is a fixed-increment PCG-XSH-RR
//! variant (splitmix64-seeded), which is deterministic per seed — exactly
//! the property the dataset generators and examples rely on.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation (mirror of `rand::Rng`).
pub trait Rng {
    /// Produce the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Ranges that can be sampled uniformly (mirror of `rand::distributions`).
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self` using `rng`.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width and offset computed in the u64 domain so signed
                // ranges wider than the type's positive half don't overflow.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is fair game.
                    return (lo as u64).wrapping_add(rng.next_u64()) as $t;
                }
                (lo as u64).wrapping_add(rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit PCG-style generator standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 warm-up so nearby seeds diverge immediately.
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            StdRng {
                state: z ^ (z >> 31),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64* — tiny, full-period, plenty for test data.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
            let v = rng.gen_range(0usize..=3);
            assert!(v <= 3);
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let w = rng.gen_range(1u64..5);
            assert!((1..5).contains(&w));
        }
    }

    #[test]
    fn extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        // Full-width inclusive range (span wraps to 0 in u64).
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        // Signed ranges wider than the type's positive half.
        let v = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
        let w = rng.gen_range(i32::MIN..=i32::MAX);
        let _ = w;
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
