//! Criterion benches for the M:N join rewrites (Figures 4, 11, 12):
//! factorized vs materialized LMM, RMM, and cross-product at two
//! uniqueness degrees.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_core::Matrix;
use morpheus_data::synth::MnJoinSpec;
use morpheus_dense::DenseMatrix;
use std::hint::black_box;

fn bench_degree(c: &mut Criterion, degree: f64) {
    let n_s = 400;
    let spec = MnJoinSpec {
        n_s,
        n_r: n_s,
        d_s: 20,
        d_r: 20,
        n_u: ((n_s as f64 * degree) as usize).max(1),
        seed: 7,
    };
    let ds = spec.generate();
    let tn = ds.tn;
    let tm = tn.materialize();
    let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| ((i + j) % 5) as f64 * 0.25);
    let z = DenseMatrix::from_fn(2, tn.rows(), |i, j| ((i * 3 + j) % 7) as f64 * 0.1);

    let mut g = c.benchmark_group(format!("mn/deg{degree}"));
    g.bench_function("lmm/F", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/M", |b| b.iter(|| black_box(tm.matmul_dense(&x))));
    g.bench_function("rmm/F", |b| b.iter(|| black_box(tn.rmm(&z))));
    g.bench_function("rmm/M", |b| b.iter(|| black_box(tm.dense_matmul(&z))));
    g.bench_function("crossprod/F", |b| {
        b.iter(|| black_box(morpheus_core::NormalizedMatrix::crossprod(&tn)))
    });
    g.bench_function("crossprod/M", |b| {
        b.iter(|| black_box(Matrix::crossprod(&tm)))
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_degree(c, 0.5);
    bench_degree(c, 0.05);
}

criterion_group! {
    name = mn;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(mn);
