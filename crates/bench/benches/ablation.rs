//! Criterion benches for the ablations: cross-product Algorithm 1 vs 2,
//! LMM multiplication orders, the chunked (ORE-analog) backend, and the
//! cost model's predicted factorized/materialized crossover against the
//! measured one — for **every priced operator**, not just the
//! cross-product.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_chunked::{ChunkedMatrix, ChunkedNormalizedMatrix};
use morpheus_core::cost::{estimate_dmm, estimate_op, OpKind};
use morpheus_core::{MachineProfile, Matrix, NormalizedMatrix};
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 21).generate();
    let labels = ds.labels();
    let tn = ds.tn;
    let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| ((i + j) % 5) as f64 * 0.25);

    let mut g = c.benchmark_group("ablation");
    g.bench_function("crossprod/efficient-alg2", |b| {
        b.iter(|| black_box(tn.crossprod()))
    });
    g.bench_function("crossprod/naive-alg1", |b| {
        b.iter(|| black_box(tn.crossprod_naive()))
    });
    g.bench_function("lmm/order-K(RX)", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/order-(KR)X", |b| {
        b.iter(|| black_box(tn.lmm_materialized_order(&x)))
    });

    // Chunked backend overhead: same logistic-regression step, in-memory vs
    // chunked, factorized vs materialized.
    let trainer = LogisticRegressionGd::new(1e-3, 1);
    let cf = ChunkedNormalizedMatrix::new(&tn, 512);
    let cm = ChunkedMatrix::new(&tn.materialize(), 512);
    g.bench_function("chunked/logreg-step/F", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cf.ncols(), 1);
            trainer.step(&cf, &labels, &mut w);
            black_box(w)
        })
    });
    g.bench_function("chunked/logreg-step/M", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cm.ncols(), 1);
            trainer.step(&cm, &labels, &mut w);
            black_box(w)
        })
    });
    g.finish();
}

use morpheus_core::LinearOperand;

/// One operator's crossover sweep configuration. Sizes differ per
/// operator so the F/M crossover (where one exists) lands inside the TR
/// grid while the whole sweep stays fast: `tcrossprod` produces an
/// `n x n` output, so it runs at a much smaller scale than the others.
struct Sweep {
    label: &'static str,
    op: OpKind,
    fr: f64,
    n_r: usize,
    d_s: usize,
    /// Timing repetitions per sweep point — higher for the cheap
    /// streaming operators, whose microsecond-scale kernels are the
    /// noisiest to measure.
    reps: usize,
}

const PARAM_WIDTH: usize = 4;
const TRS: [f64; 7] = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];

fn sweeps() -> Vec<Sweep> {
    let mm = |label, op| Sweep {
        label,
        op,
        fr: 0.5,
        n_r: 500,
        d_s: 20,
        reps: 7,
    };
    // The streaming operators run microsecond-scale kernels; a larger
    // attribute table and more repetitions keep their medians stable.
    let streaming = |label, op| Sweep {
        label,
        op,
        fr: 0.5,
        n_r: 1_250,
        d_s: 20,
        reps: 11,
    };
    vec![
        mm("lmm", OpKind::Lmm { m: PARAM_WIDTH }),
        mm("t_lmm", OpKind::TLmm { m: PARAM_WIDTH }),
        mm("rmm", OpKind::Rmm { m: PARAM_WIDTH }),
        Sweep {
            reps: 5,
            ..mm("crossprod", OpKind::Crossprod)
        },
        // n x n output: small scale, and a feature split that gives the
        // per-part Gram terms real TR-dependence (see gram_f).
        Sweep {
            label: "tcrossprod",
            op: OpKind::Tcrossprod,
            fr: 4.0,
            n_r: 60,
            d_s: 8,
            reps: 5,
        },
        Sweep {
            label: "dmm",
            op: OpKind::Dmm { m: 20 },
            fr: 0.5,
            n_r: 300,
            d_s: 20,
            reps: 5,
        },
        streaming("elementwise", OpKind::Elementwise),
        Sweep {
            fr: 1.0,
            ..streaming("row_min", OpKind::RowMin)
        },
        streaming("row_sums", OpKind::RowSums),
        streaming("col_sums", OpKind::ColSums),
        streaming("sum", OpKind::Sum),
    ]
}

/// A PK-FK right operand for the dmm sweep, conformable with `a`
/// (`rows == a.cols()`), of width `d_b`.
fn dmm_rhs(a: &NormalizedMatrix, d_b: usize) -> NormalizedMatrix {
    let n_b = a.cols();
    let n_rb = (n_b / 6).max(1);
    let d_sb = d_b / 2;
    let sb = DenseMatrix::from_fn(n_b, d_sb, |i, j| ((i * 3 + j) % 7) as f64 * 0.3 - 1.0);
    let rb = DenseMatrix::from_fn(n_rb, d_b - d_sb, |i, j| ((i + j * 2) % 5) as f64 * 0.4);
    let fk: Vec<usize> = (0..n_b).map(|i| i % n_rb).collect();
    NormalizedMatrix::pk_fk(sb.into(), &fk, rb.into())
}

/// Measured `(factorized, materialized)` wall-clock seconds for one
/// operator at one sweep point. The materialized side times the operator
/// alone on a prebuilt `T` — the same comparison the predicted ratio
/// makes (`materialized_op_ns`, join materialization excluded), matching
/// the planner's steady state where the memo is already paid.
fn measure(op: OpKind, tn: &NormalizedMatrix, tm: &Matrix, reps: usize) -> (f64, f64) {
    use morpheus_bench::timing::time_median as tm_med;
    match op {
        OpKind::Lmm { m } => {
            let x = DenseMatrix::from_fn(tn.cols(), m, |i, j| ((i + j) % 5) as f64 * 0.25);
            let f = tm_med(reps, || black_box(tn.lmm(&x))).0;
            let mt = tm_med(reps, || black_box(tm.matmul_dense(&x))).0;
            (f, mt)
        }
        OpKind::TLmm { m } => {
            let x = DenseMatrix::from_fn(tn.rows(), m, |i, j| ((i * 2 + j) % 7) as f64 * 0.2);
            let f = tm_med(reps, || black_box(tn.t_lmm(&x))).0;
            let mt = tm_med(reps, || black_box(tm.t_matmul_dense(&x))).0;
            (f, mt)
        }
        OpKind::Rmm { m } => {
            let x = DenseMatrix::from_fn(m, tn.rows(), |i, j| ((i + j * 3) % 6) as f64 * 0.15);
            let f = tm_med(reps, || black_box(tn.rmm(&x))).0;
            let mt = tm_med(reps, || black_box(tm.dense_matmul(&x))).0;
            (f, mt)
        }
        OpKind::Crossprod => {
            let f = tm_med(reps, || black_box(tn.crossprod())).0;
            let mt = tm_med(reps, || black_box(tm.crossprod())).0;
            (f, mt)
        }
        OpKind::Tcrossprod => {
            let f = tm_med(reps, || black_box(tn.tcrossprod())).0;
            let mt = tm_med(reps, || black_box(tm.tcrossprod())).0;
            (f, mt)
        }
        OpKind::Dmm { m } => {
            let b = dmm_rhs(tn, m);
            let bm = b.materialize();
            let f = tm_med(reps, || black_box(tn.dmm(&b))).0;
            let mt = tm_med(reps, || black_box(tm.matmul(&bm))).0;
            (f, mt)
        }
        OpKind::Elementwise => {
            let f = tm_med(reps, || black_box(tn.scalar_mul(1.0001))).0;
            let mt = tm_med(reps, || black_box(tm.scalar_mul(1.0001))).0;
            (f, mt)
        }
        OpKind::RowMin => {
            let f = tm_med(reps, || black_box(tn.row_min())).0;
            let mt = tm_med(reps, || black_box(tm.row_min())).0;
            (f, mt)
        }
        OpKind::RowSums => {
            let f = tm_med(reps, || black_box(tn.row_sums())).0;
            let mt = tm_med(reps, || black_box(tm.row_sums())).0;
            (f, mt)
        }
        OpKind::ColSums => {
            let f = tm_med(reps, || black_box(tn.col_sums())).0;
            let mt = tm_med(reps, || black_box(tm.col_sums())).0;
            (f, mt)
        }
        OpKind::Sum => {
            let f = tm_med(reps, || black_box(tn.sum())).0;
            let mt = tm_med(reps, || black_box(tm.sum())).0;
            (f, mt)
        }
        OpKind::Ginv | OpKind::ElementwiseFallback => {
            unreachable!("not part of the crossover sweep")
        }
    }
}

/// Predicted M/F time ratio at one sweep point (> 1 ⇒ factorized wins).
fn predicted_ratio(profile: &MachineProfile, tn: &NormalizedMatrix, op: OpKind) -> f64 {
    match op {
        OpKind::Dmm { m } => {
            let est = estimate_dmm(profile, tn, &dmm_rhs(tn, m));
            est.materialized_op_ns / est.factorized_ns
        }
        _ => {
            let est = estimate_op(profile, tn, op);
            est.materialized_op_ns / est.factorized_ns
        }
    }
}

/// Where a ratio series crosses 1.0 within the TR grid — or on which side
/// of the grid it stays.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Crossover {
    /// Interpolated TR of the first ratio=1 crossing.
    At(f64),
    /// Ratio > 1 across the grid: factorized wins everywhere, so the
    /// crossover (if any) sits below the smallest TR.
    BelowGrid,
    /// Ratio < 1 across the grid: materialized wins everywhere.
    AboveGrid,
}

fn crossover(points: &[(f64, f64)]) -> Crossover {
    let hit = points.windows(2).find_map(|w| {
        let ((tr0, r0), (tr1, r1)) = (w[0], w[1]);
        ((r0 - 1.0) * (r1 - 1.0) <= 0.0 && r0 != r1)
            .then(|| tr0 + (tr1 - tr0) * (1.0 - r0) / (r1 - r0))
    });
    match hit {
        Some(tr) => Crossover::At(tr),
        None if points.iter().all(|&(_, r)| r > 1.0) => Crossover::BelowGrid,
        None => Crossover::AboveGrid,
    }
}

/// Gate verdict for one operator: the factor by which predicted and
/// measured crossovers disagree (clamping unbracketed crossovers to the
/// nearest grid edge, which under-states the disparity — a conservative
/// bound), or a hard mismatch when the two series sit on opposite sides
/// of 1.0 across the whole grid.
fn disparity(measured: Crossover, predicted: Crossover) -> Result<Option<f64>, String> {
    use Crossover::*;
    let (lo, hi) = (TRS[0], TRS[TRS.len() - 1]);
    let clamp = |x: Crossover| match x {
        At(tr) => tr,
        BelowGrid => lo,
        AboveGrid => hi,
    };
    match (measured, predicted) {
        (BelowGrid, BelowGrid) | (AboveGrid, AboveGrid) => Ok(None),
        (BelowGrid, AboveGrid) | (AboveGrid, BelowGrid) => {
            Err("measured and predicted sit on opposite sides of the crossover everywhere".into())
        }
        (m, p) => {
            let (m, p) = (clamp(m), clamp(p));
            Ok(Some(if m > p { m / p } else { p / m }))
        }
    }
}

fn fmt_crossover(x: Crossover) -> String {
    match x {
        Crossover::At(tr) => format!("TR {tr:.2}"),
        Crossover::BelowGrid => format!("< TR {} (F all)", TRS[0]),
        Crossover::AboveGrid => format!("> TR {} (M all)", TRS[TRS.len() - 1]),
    }
}

/// Calibrated-model validation across **every priced operator**: sweep
/// the tuple ratio per operator, compare the measured M/F speed ratio at
/// each point against the calibrated model's prediction, locate both
/// crossovers, and enforce `MORPHEUS_CROSSOVER_BAR` (default 2x; set it
/// to `0`/`off`/`none` to report without failing — e.g. on heavily loaded
/// machines). An operator passes when either the crossover positions are
/// within the bar or the predicted ratio tracks the measured ratio within
/// the bar at every grid point — the positional test alone is
/// ill-conditioned for near-flat curves. The planner is only as good as
/// this agreement: the sweep turns the cost model from a tuned heuristic
/// into a tested contract.
fn planner_crossover(c: &mut Criterion) {
    let profile = *MachineProfile::global();
    let bar: Option<f64> = match std::env::var("MORPHEUS_CROSSOVER_BAR") {
        Err(_) => Some(2.0),
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            if v.is_empty() || v == "off" || v == "none" || v == "0" {
                None
            } else {
                Some(v.parse().expect("MORPHEUS_CROSSOVER_BAR must be a number"))
            }
        }
    };
    println!("\nablation/planner-crossover: predicted vs measured M/F ratio per operator");
    println!(
        "(ratio > 1 means the factorized rewrite wins; crossover is the TR where it reaches 1)"
    );

    let mut failures: Vec<String> = Vec::new();
    let mut summary: Vec<String> = Vec::new();
    for sweep in sweeps() {
        let mut measured: Vec<(f64, f64)> = Vec::new();
        let mut predicted: Vec<(f64, f64)> = Vec::new();
        println!(
            "\n  {} (FR = {}, n_R = {}, d_S = {}):",
            sweep.label, sweep.fr, sweep.n_r, sweep.d_s
        );
        println!(
            "  {:>5} {:>12} {:>12} {:>10} {:>10}",
            "TR", "meas F (s)", "meas M (s)", "meas M/F", "pred M/F"
        );
        for &tr in &TRS {
            let ds = PkFkSpec::from_ratios(tr, sweep.fr, sweep.n_r, sweep.d_s, 33).generate();
            let tn = ds.tn;
            let tm = tn.materialize();
            let (t_f, t_m) = measure(sweep.op, &tn, &tm, sweep.reps);
            let pred = predicted_ratio(&profile, &tn, sweep.op);
            measured.push((tr, t_m / t_f));
            predicted.push((tr, pred));
            println!(
                "  {:>5} {:>12.6} {:>12.6} {:>10.3} {:>10.3}",
                tr,
                t_f,
                t_m,
                t_m / t_f,
                pred
            );
        }
        let (xm, xp) = (crossover(&measured), crossover(&predicted));
        // Crossover position is ill-conditioned when both curves hover near
        // 1.0 (the interpolation point swings across the whole grid on
        // measurement noise), so the positional bar is backed by a pointwise
        // one: if the predicted M/F ratio tracks the measured ratio within
        // the bar at *every* grid point, the operator passes regardless of
        // where interpolation puts the crossing. This bounds planner regret
        // by the same factor the positional bar intends — a wrong F/M pick
        // at a point where the two straddle 1.0 within `bar` costs at most
        // `bar`.
        let pointwise = measured
            .iter()
            .zip(&predicted)
            .map(|(&(_, m), &(_, p))| (m / p).max(p / m))
            .fold(0.0_f64, f64::max);
        let pointwise_ok = bar.map(|b| pointwise <= b).unwrap_or(true);
        let verdict = match disparity(xm, xp) {
            Ok(None) => "agree (same side everywhere)".to_string(),
            Ok(Some(ratio)) => {
                let ok = bar.map(|b| ratio <= b).unwrap_or(true) || pointwise_ok;
                if !ok {
                    failures.push(format!(
                        "{}: crossovers {ratio:.2}x apart (measured {}, predicted {}), \
                         pointwise {pointwise:.2}x",
                        sweep.label,
                        fmt_crossover(xm),
                        fmt_crossover(xp)
                    ));
                }
                format!(
                    "{ratio:.2}x apart, pointwise {pointwise:.2}x{}",
                    if ok { "" } else { "  ** FAIL **" }
                )
            }
            Err(msg) => {
                if bar.is_some() && !pointwise_ok {
                    failures.push(format!(
                        "{}: {msg} (pointwise {pointwise:.2}x)",
                        sweep.label
                    ));
                    format!("sides differ, pointwise {pointwise:.2}x  ** FAIL ** ({msg})")
                } else {
                    format!("sides differ, pointwise {pointwise:.2}x")
                }
            }
        };
        summary.push(format!(
            "  {:<12} measured {:<20} predicted {:<20} {}",
            sweep.label,
            fmt_crossover(xm),
            fmt_crossover(xp),
            verdict
        ));
    }

    println!("\nper-operator crossover summary (bar: {bar:?}):");
    for line in &summary {
        println!("{line}");
    }
    assert!(
        failures.is_empty(),
        "planner-crossover: {} operator(s) exceed MORPHEUS_CROSSOVER_BAR={:?}:\n  {}",
        failures.len(),
        bar,
        failures.join("\n  ")
    );

    // Record the crossover-region endpoints so baselines track them.
    let ds = PkFkSpec::from_ratios(2.0, 0.5, 500, 20, 33).generate();
    let tn = ds.tn;
    let tm = tn.materialize();
    let mut g = c.benchmark_group("ablation/planner-crossover");
    g.bench_function("crossprod-tr2/F", |b| b.iter(|| black_box(tn.crossprod())));
    g.bench_function("crossprod-tr2/M", |b| {
        b.iter(|| black_box(morpheus_core::Matrix::crossprod(&tm)))
    });
    g.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = benches, planner_crossover
}
criterion_main!(ablation);
