//! Criterion benches for the ablations: cross-product Algorithm 1 vs 2,
//! LMM multiplication orders, the chunked (ORE-analog) backend, and the
//! cost model's predicted factorized/materialized crossover against the
//! measured one.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_chunked::{ChunkedMatrix, ChunkedNormalizedMatrix, Executor};
use morpheus_core::cost::{estimate_op, OpKind};
use morpheus_core::MachineProfile;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 21).generate();
    let labels = ds.labels();
    let tn = ds.tn;
    let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| ((i + j) % 5) as f64 * 0.25);

    let mut g = c.benchmark_group("ablation");
    g.bench_function("crossprod/efficient-alg2", |b| {
        b.iter(|| black_box(tn.crossprod()))
    });
    g.bench_function("crossprod/naive-alg1", |b| {
        b.iter(|| black_box(tn.crossprod_naive()))
    });
    g.bench_function("lmm/order-K(RX)", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/order-(KR)X", |b| {
        b.iter(|| black_box(tn.lmm_materialized_order(&x)))
    });

    // Chunked backend overhead: same logistic-regression step, in-memory vs
    // chunked, factorized vs materialized.
    let trainer = LogisticRegressionGd::new(1e-3, 1);
    let ex = Executor::new(1);
    let cf = ChunkedNormalizedMatrix::from_normalized(&tn, 512, ex);
    let cm = ChunkedMatrix::from_matrix(&tn.materialize(), 512, ex);
    g.bench_function("chunked/logreg-step/F", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cf.ncols(), 1);
            trainer.step(&cf, &labels, &mut w);
            black_box(w)
        })
    });
    g.bench_function("chunked/logreg-step/M", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cm.ncols(), 1);
            trainer.step(&cm, &labels, &mut w);
            black_box(w)
        })
    });
    g.finish();
}

use morpheus_core::LinearOperand;

/// Calibrated-model validation: sweep the tuple ratio at FR = 0.5 (where
/// the crossprod crossover falls inside the sweep), find the measured TR
/// at which the factorized cross-product starts beating the materialized
/// one, and compare with the TR the calibrated cost model predicts. The
/// planner is only as good as this agreement — the acceptance bar is a
/// predicted crossover within 2x of the measured one.
fn planner_crossover(c: &mut Criterion) {
    let profile = *MachineProfile::global();
    let trs = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0];
    let fr = 0.5;
    // (TR, M/F speed ratio): > 1 means factorized wins at that point.
    let mut measured: Vec<(f64, f64)> = Vec::new();
    let mut predicted: Vec<(f64, f64)> = Vec::new();
    println!("\nablation/planner-crossover: crossprod F-vs-M at FR = {fr} (calibrated model)");
    println!(
        "{:>5} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9}",
        "TR", "meas F (s)", "meas M (s)", "meas", "pred F (ns)", "pred M (ns)", "pred"
    );
    for &tr in &trs {
        let ds = PkFkSpec::from_ratios(tr, fr, 500, 20, 33).generate();
        let tn = ds.tn;
        let tm = tn.materialize();
        let (t_f, _) = morpheus_bench::timing::time_median(5, || black_box(tn.crossprod()));
        let (t_m, _) = morpheus_bench::timing::time_median(5, || {
            black_box(morpheus_core::Matrix::crossprod(&tm))
        });
        // Compare the operator alone (T already materialized on the M
        // side), matching what the timings measure.
        let est = estimate_op(&profile, &tn, OpKind::Crossprod);
        measured.push((tr, t_m / t_f));
        predicted.push((tr, est.materialized_op_ns / est.factorized_ns));
        println!(
            "{:>5} {:>12.6} {:>12.6} {:>9} {:>12.0} {:>12.0} {:>9}",
            tr,
            t_f,
            t_m,
            if t_f < t_m { "F" } else { "M" },
            est.factorized_ns,
            est.materialized_op_ns,
            if est.factorized_ns < est.materialized_op_ns {
                "F"
            } else {
                "M"
            },
        );
    }
    // The crossover is where the M/F ratio crosses 1.0; interpolate
    // linearly inside the bracketing segment instead of snapping to the
    // sweep grid.
    let crossover = |points: &[(f64, f64)]| -> Option<f64> {
        points.windows(2).find_map(|w| {
            let ((tr0, r0), (tr1, r1)) = (w[0], w[1]);
            ((r0 - 1.0) * (r1 - 1.0) <= 0.0 && r0 != r1)
                .then(|| tr0 + (tr1 - tr0) * (1.0 - r0) / (r1 - r0))
        })
    };
    // MORPHEUS_CROSSOVER_BAR (e.g. "2.0") turns the acceptance bar into a
    // hard failure — opt-in, because wall-clock agreement on shared/noisy
    // runners is not stable enough to gate every CI run on.
    let bar: Option<f64> = std::env::var("MORPHEUS_CROSSOVER_BAR")
        .ok()
        .and_then(|v| v.trim().parse().ok());
    match (crossover(&measured), crossover(&predicted)) {
        (Some(m), Some(p)) => {
            let ratio = if m > p { m / p } else { p / m };
            println!(
                "crossover: measured TR = {m:.2}, predicted TR = {p:.2} \
                 ({ratio:.2}x apart; bar is 2x)"
            );
            if let Some(bar) = bar {
                assert!(
                    ratio <= bar,
                    "planner-crossover: predicted/measured crossover {ratio:.2}x apart \
                     exceeds MORPHEUS_CROSSOVER_BAR={bar}"
                );
            }
        }
        other => {
            println!("crossover not bracketed by the sweep: {other:?}");
            assert!(
                bar.is_none(),
                "planner-crossover: MORPHEUS_CROSSOVER_BAR set but the sweep \
                 did not bracket a crossover: {other:?}"
            );
        }
    }

    // Record the crossover-region endpoints so baselines track them.
    let ds = PkFkSpec::from_ratios(2.0, fr, 500, 20, 33).generate();
    let tn = ds.tn;
    let tm = tn.materialize();
    let mut g = c.benchmark_group("ablation/planner-crossover");
    g.bench_function("crossprod-tr2/F", |b| b.iter(|| black_box(tn.crossprod())));
    g.bench_function("crossprod-tr2/M", |b| {
        b.iter(|| black_box(morpheus_core::Matrix::crossprod(&tm)))
    });
    g.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = benches, planner_crossover
}
criterion_main!(ablation);
