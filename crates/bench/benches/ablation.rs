//! Criterion benches for the ablations: cross-product Algorithm 1 vs 2,
//! LMM multiplication orders, and the chunked (ORE-analog) backend.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_chunked::{ChunkedMatrix, ChunkedNormalizedMatrix, Executor};
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 21).generate();
    let labels = ds.labels();
    let tn = ds.tn;
    let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| ((i + j) % 5) as f64 * 0.25);

    let mut g = c.benchmark_group("ablation");
    g.bench_function("crossprod/efficient-alg2", |b| {
        b.iter(|| black_box(tn.crossprod()))
    });
    g.bench_function("crossprod/naive-alg1", |b| {
        b.iter(|| black_box(tn.crossprod_naive()))
    });
    g.bench_function("lmm/order-K(RX)", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/order-(KR)X", |b| {
        b.iter(|| black_box(tn.lmm_materialized_order(&x)))
    });

    // Chunked backend overhead: same logistic-regression step, in-memory vs
    // chunked, factorized vs materialized.
    let trainer = LogisticRegressionGd::new(1e-3, 1);
    let ex = Executor::new(1);
    let cf = ChunkedNormalizedMatrix::from_normalized(&tn, 512, ex);
    let cm = ChunkedMatrix::from_matrix(&tn.materialize(), 512, ex);
    g.bench_function("chunked/logreg-step/F", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cf.ncols(), 1);
            trainer.step(&cf, &labels, &mut w);
            black_box(w)
        })
    });
    g.bench_function("chunked/logreg-step/M", |b| {
        b.iter(|| {
            let mut w = DenseMatrix::zeros(cm.ncols(), 1);
            trainer.step(&cm, &labels, &mut w);
            black_box(w)
        })
    });
    g.finish();
}

use morpheus_core::LinearOperand;

criterion_group! {
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ablation);
