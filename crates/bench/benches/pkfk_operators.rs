//! Criterion benches for the PK-FK operator rewrites (Figures 3, 6, 7):
//! factorized ("F") vs materialized ("M") at a representative
//! high-redundancy point (TR = 10, FR = 2) and a low-redundancy point
//! (TR = 2, FR = 0.5) where the decision rule would choose M.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_core::LinearOperand;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use std::hint::black_box;

fn bench_point(c: &mut Criterion, tag: &str, tr: f64, fr: f64) {
    let ds = PkFkSpec::from_ratios(tr, fr, 500, 20, 42).generate();
    let tn = ds.tn;
    let tm = tn.materialize();
    let d = tn.cols();
    let x = DenseMatrix::from_fn(d, 2, |i, j| ((i + j) % 5) as f64 * 0.25);

    let mut g = c.benchmark_group(format!("pkfk/{tag}"));
    g.bench_function("scalar-mul/F", |b| {
        b.iter(|| black_box(tn.scalar_mul(3.25)))
    });
    g.bench_function("scalar-mul/M", |b| {
        b.iter(|| black_box(tm.scalar_mul(3.25)))
    });
    g.bench_function("lmm/F", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/M", |b| b.iter(|| black_box(tm.matmul_dense(&x))));
    g.bench_function("rowsums/F", |b| b.iter(|| black_box(tn.row_sums())));
    g.bench_function("rowsums/M", |b| b.iter(|| black_box(tm.row_sums())));
    g.bench_function("colsums/F", |b| b.iter(|| black_box(tn.col_sums())));
    g.bench_function("colsums/M", |b| b.iter(|| black_box(tm.col_sums())));
    g.bench_function("crossprod/F", |b| {
        b.iter(|| black_box(morpheus_core::NormalizedMatrix::crossprod(&tn)))
    });
    g.bench_function("crossprod/M", |b| {
        b.iter(|| black_box(morpheus_core::Matrix::crossprod(&tm)))
    });
    g.bench_function("ginv/F", |b| b.iter(|| black_box(tn.ginv())));
    g.bench_function("ginv/M", |b| b.iter(|| black_box(LinearOperand::ginv(&tm))));
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_point(c, "tr10-fr2", 10.0, 2.0);
    bench_point(c, "tr2-fr0.5", 2.0, 0.5);
}

criterion_group! {
    name = pkfk;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(pkfk);
