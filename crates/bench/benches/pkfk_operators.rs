//! Criterion benches for the PK-FK operator rewrites (Figures 3, 6, 7):
//! factorized ("F") vs materialized ("M") at a representative
//! high-redundancy point (TR = 10, FR = 2) and a low-redundancy point
//! (TR = 2, FR = 0.5) where the decision rule would choose M.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_core::LinearOperand;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_runtime::Executor;
use std::hint::black_box;

/// Head-to-head of the single-threaded seed kernels vs the band-parallel
/// kernels on the full thread budget: GEMM and crossprod (the paper's
/// dominant kernel) over the materialized high-redundancy table. On a
/// machine with 4+ cores the `/par` rows should clearly beat `/1t`; both
/// are recorded in `target/bench-baselines.json` by the criterion shim.
fn bench_kernel_threads(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 42).generate();
    let t = ds.tn.materialize().to_dense();
    let x = DenseMatrix::from_fn(t.cols(), 16, |i, j| ((i * 3 + j) % 7) as f64 * 0.5 - 1.5);
    let serial = Executor::serial();
    let par = Executor::default(); // available_parallelism workers

    let mut g = c.benchmark_group("pkfk/kernel-threads");
    // Fixed ids (no thread count) so baseline keys are stable across
    // machines; the worker count is printed alongside instead.
    println!("pkfk/kernel-threads: par = {} worker(s)", par.threads());
    g.bench_function("gemm/1t", |b| {
        b.iter(|| black_box(t.matmul_with(&x, &serial)))
    });
    g.bench_function("gemm/par", |b| {
        b.iter(|| black_box(t.matmul_with(&x, &par)))
    });
    g.bench_function("crossprod/1t", |b| {
        b.iter(|| black_box(t.crossprod_with(&serial)))
    });
    g.bench_function("crossprod/par", |b| {
        b.iter(|| black_box(t.crossprod_with(&par)))
    });
    g.finish();
}

/// The scatter-written sparse kernels (two-pass symbolic/numeric parallel
/// scheme): transposed SpMM and dense×sparse as they appear in the
/// normalized gram path (`K G` then `(K G) Kᵀ`), and the SpGEMM behind
/// `KᵀK` in the naive cross-product and M:N rewrites. Indicator-shaped
/// operands, like the rewrites produce.
fn bench_scatter_kernels(c: &mut Criterion) {
    let n = 2_000;
    let base = 200;
    let k = morpheus_sparse::CsrMatrix::indicator(
        &(0..n).map(|i| (i * 7) % base).collect::<Vec<_>>(),
        base,
    );
    let y = DenseMatrix::from_fn(n, 16, |i, j| ((i * 5 + j * 3) % 11) as f64 * 0.25 - 1.0);
    let xd = DenseMatrix::from_fn(64, n, |i, j| ((i + j * 2) % 7) as f64 * 0.5 - 1.5);
    let kt = k.transpose();

    let mut g = c.benchmark_group("pkfk/scatter");
    g.bench_function("t_spmm", |b| b.iter(|| black_box(k.t_spmm_dense(&y))));
    g.bench_function("dense_spmm", |b| b.iter(|| black_box(k.dense_spmm(&xd))));
    g.bench_function("spgemm KtK", |b| b.iter(|| black_box(kt.spgemm(&k))));
    g.finish();
}

fn bench_point(c: &mut Criterion, tag: &str, tr: f64, fr: f64) {
    let ds = PkFkSpec::from_ratios(tr, fr, 500, 20, 42).generate();
    let tn = ds.tn;
    let tm = tn.materialize();
    let d = tn.cols();
    let x = DenseMatrix::from_fn(d, 2, |i, j| ((i + j) % 5) as f64 * 0.25);

    let mut g = c.benchmark_group(format!("pkfk/{tag}"));
    g.bench_function("scalar-mul/F", |b| {
        b.iter(|| black_box(tn.scalar_mul(3.25)))
    });
    g.bench_function("scalar-mul/M", |b| {
        b.iter(|| black_box(tm.scalar_mul(3.25)))
    });
    g.bench_function("lmm/F", |b| b.iter(|| black_box(tn.lmm(&x))));
    g.bench_function("lmm/M", |b| b.iter(|| black_box(tm.matmul_dense(&x))));
    g.bench_function("rowsums/F", |b| b.iter(|| black_box(tn.row_sums())));
    g.bench_function("rowsums/M", |b| b.iter(|| black_box(tm.row_sums())));
    g.bench_function("colsums/F", |b| b.iter(|| black_box(tn.col_sums())));
    g.bench_function("colsums/M", |b| b.iter(|| black_box(tm.col_sums())));
    g.bench_function("crossprod/F", |b| {
        b.iter(|| black_box(morpheus_core::NormalizedMatrix::crossprod(&tn)))
    });
    g.bench_function("crossprod/M", |b| {
        b.iter(|| black_box(morpheus_core::Matrix::crossprod(&tm)))
    });
    g.bench_function("ginv/F", |b| b.iter(|| black_box(tn.ginv())));
    g.bench_function("ginv/M", |b| b.iter(|| black_box(LinearOperand::ginv(&tm))));
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_point(c, "tr10-fr2", 10.0, 2.0);
    bench_point(c, "tr2-fr0.5", 2.0, 0.5);
    bench_kernel_threads(c);
    bench_scatter_kernels(c);
}

criterion_group! {
    name = pkfk;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(pkfk);
