//! Criterion benches for the serving hot path: building a factorized row
//! slice, scoring a coalesced batch through it, and the per-request
//! (batch-size-1) baseline the micro-batcher amortizes away.
//!
//! These keys are committed to `baselines.json`, so they deliberately
//! exercise the deterministic compute path (slice + kernel) rather than
//! the queue/thread machinery, whose timing is scheduler noise. The
//! end-to-end service roundtrip is measured in the `serve` experiment
//! (`repro serve`) instead.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::linreg;
use morpheus_serve::ScoringModel;
use std::hint::black_box;

fn bench_serve(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 42).generate();
    let tn = ds.tn;
    let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| (i as f64 * 0.17).sin());
    let model = ScoringModel::Linear(w.clone());
    let batch: Vec<usize> = (0..64).map(|k| (k * 37 + 11) % tn.rows()).collect();

    // Sanity before timing: slice scoring is bit-identical to full-table
    // scoring for the sliced rows.
    let full = linreg::predict(&tn, &w);
    let mut out = vec![0.0f64; batch.len()];
    linreg::predict_into(&tn.select_rows(&batch), &w, &mut out);
    for (j, &r) in batch.iter().enumerate() {
        assert_eq!(out[j].to_bits(), full.get(r, 0).to_bits());
    }

    let mut g = c.benchmark_group("serve");
    g.bench_function("slice/build-64", |b| {
        b.iter(|| black_box(tn.select_rows(black_box(&batch))))
    });
    let slice = tn.select_rows(&batch);
    g.bench_function("score/batch-64", |b| {
        b.iter(|| {
            let mut out = vec![0.0f64; batch.len()];
            model.score_into(&slice, &mut out);
            black_box(out)
        })
    });
    let one = tn.select_rows(&batch[..1]);
    g.bench_function("score/batch-1", |b| {
        b.iter(|| {
            let mut out = vec![0.0f64; 1];
            model.score_into(&one, &mut out);
            black_box(out)
        })
    });
    g.bench_function("score/64-unbatched", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &r in &batch {
                let mut out = [0.0f64];
                model.score_into(&tn.select_rows(&[r]), &mut out);
                acc += out[0];
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group! {
    name = serve;
    config = Criterion::default().sample_size(10);
    targets = bench_serve
}
criterion_main!(serve);
