//! Criterion micro-benches for the substrate kernels: dense GEMM /
//! cross-product, sparse products, transposition, and the numerical
//! routines (`ginv`). These calibrate the building blocks underneath every
//! paper experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use morpheus_core::cost::OpKind;
use morpheus_core::{MachineProfile, NormalizedMatrix, PlannedMatrix, Strategy};
use morpheus_dense::simd::{self, GemmIsa};
use morpheus_dense::DenseMatrix;
use morpheus_linalg::{eigen_sym, ginv_sym_psd, svd};
use morpheus_runtime::{Executor, Runtime};
use morpheus_sparse::CsrMatrix;
use std::hint::black_box;

fn dense(n: usize, d: usize, seed: u64) -> DenseMatrix {
    let mut state = seed;
    DenseMatrix::from_fn(n, d, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_dense_kernels(c: &mut Criterion) {
    let a = dense(400, 80, 1);
    let b = dense(80, 60, 2);
    c.bench_function("dense/gemm 400x80x60", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    c.bench_function("dense/crossprod 400x80", |bench| {
        bench.iter(|| black_box(a.crossprod()))
    });
    c.bench_function("dense/t_matmul 400x80x60", |bench| {
        let y = dense(400, 60, 3);
        bench.iter(|| black_box(a.t_matmul(&y)))
    });
    c.bench_function("dense/transpose 400x80", |bench| {
        bench.iter(|| black_box(a.transpose()))
    });
    c.bench_function("dense/row_sums 400x80", |bench| {
        bench.iter(|| black_box(a.row_sums()))
    });
}

fn bench_sparse_kernels(c: &mut Criterion) {
    // One-hot style sparse matrix: 5 nnz per row.
    let n = 2_000;
    let cols = 500;
    let trips: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|i| (0..5).map(move |k| (i, (i * 7 + k * 31) % cols, 1.0)))
        .collect();
    let sp = CsrMatrix::from_triplets(n, cols, &trips).unwrap();
    let x = dense(cols, 8, 4);
    c.bench_function("sparse/spmm 2000x500x8", |bench| {
        bench.iter(|| black_box(sp.spmm_dense(&x)))
    });
    let y = dense(n, 8, 5);
    c.bench_function("sparse/t_spmm 2000x500x8", |bench| {
        bench.iter(|| black_box(sp.t_spmm_dense(&y)))
    });
    c.bench_function("sparse/transpose 2000x500", |bench| {
        bench.iter(|| black_box(sp.transpose()))
    });
    let k = CsrMatrix::indicator(&(0..n).map(|i| i % 100).collect::<Vec<_>>(), 100);
    c.bench_function("sparse/spgemm KtK 2000x100", |bench| {
        let kt = k.transpose();
        bench.iter(|| black_box(kt.spgemm(&k)))
    });
    c.bench_function("sparse/crossprod 2000x500", |bench| {
        bench.iter(|| black_box(sp.crossprod_dense()))
    });
}

fn bench_linalg(c: &mut Criterion) {
    let a = dense(120, 40, 6);
    let gram = a.crossprod();
    c.bench_function("linalg/eigen_sym 40x40", |bench| {
        bench.iter_batched(
            || gram.clone(),
            |g| black_box(eigen_sym(&g).unwrap()),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("linalg/ginv_sym_psd 40x40", |bench| {
        bench.iter(|| black_box(ginv_sym_psd(&gram)))
    });
    c.bench_function("linalg/svd 120x40", |bench| {
        bench.iter(|| black_box(svd(&a).unwrap()))
    });
}

/// Dispatch-latency comparison for tiny parallel sections: the resident
/// pool (queue push + condvar wake) vs. the pre-pool cold path (scoped
/// thread spawn per call). This is the "spawn tax" the pool exists to
/// eliminate — the pool rows must come in well below the scoped rows, and
/// their latency bounds how low `MORPHEUS_PAR_THRESHOLD` can usefully go.
fn bench_spawn_overhead(c: &mut Criterion) {
    const WORKERS: usize = 4;
    const ITEMS: usize = 16;
    // Pin a real pool even on single-core CI boxes so dispatch actually
    // crosses threads; restored below.
    let configured = Runtime::threads();
    Runtime::set_threads(WORKERS);
    let ex = Executor::new(WORKERS);

    let mut g = c.benchmark_group("spawn_overhead");
    g.bench_function("pool/for_each-16", |b| {
        b.iter(|| {
            ex.for_each(ITEMS, |i| {
                black_box(i);
            })
        })
    });
    g.bench_function("pool/map-16", |b| {
        b.iter(|| black_box(ex.map(ITEMS, |i| i as f64 * 1.5)))
    });
    g.bench_function("scoped/for_each-16", |b| {
        // What the executor did before the resident pool: spawn scoped
        // threads on every call, same stride decomposition.
        b.iter(|| {
            std::thread::scope(|scope| {
                for tid in 0..WORKERS {
                    scope.spawn(move || {
                        let mut i = tid;
                        while i < ITEMS {
                            black_box(i);
                            i += WORKERS;
                        }
                    });
                }
            })
        })
    });
    g.bench_function("inline/for_each-16", |b| {
        // The serial floor both dispatch paths are measured against.
        b.iter(|| {
            for i in 0..ITEMS {
                black_box(i);
            }
        })
    });
    g.finish();
    Runtime::set_threads(configured);
}

/// Scalar-vs-SIMD rows for the kernels the packed-panel microkernel and
/// the fixed-lane reductions replaced, at three working-set tiers (square
/// GEMMs of ~100 KB / ~1.5 MB / ~6 MB total; reduction inputs of 256 KB /
/// 8 MB / 64 MB — roughly L2-, L3-, and DRAM-resident on common parts).
/// The `scalar` rows force [`GemmIsa::Portable`] / run a plain sequential
/// fold, so the pair directly prices the vectorization win per tier; the
/// `simd` rows use automatic dispatch, i.e. whatever the host actually
/// runs in production.
fn bench_simd_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("simd_kernels");
    for (tier, dim) in [("l2", 64usize), ("l3", 256), ("dram", 512)] {
        let a = dense(dim, dim, 10);
        let b = dense(dim, dim, 11);
        g.bench_function(format!("gemm/{tier}/simd"), |bench| {
            simd::force_isa(None);
            bench.iter(|| black_box(a.matmul(&b)))
        });
        g.bench_function(format!("gemm/{tier}/scalar"), |bench| {
            simd::force_isa(Some(GemmIsa::Portable));
            bench.iter(|| black_box(a.matmul(&b)));
            simd::force_isa(None);
        });
    }
    for (tier, len) in [("l2", 1usize << 15), ("l3", 1 << 20), ("dram", 1 << 23)] {
        let xs = dense(len, 1, 12).into_vec();
        let ys = dense(len, 1, 13).into_vec();
        g.bench_function(format!("sum/{tier}/lanes"), |bench| {
            bench.iter(|| black_box(simd::sum(&xs)))
        });
        g.bench_function(format!("sum/{tier}/serial"), |bench| {
            bench.iter(|| black_box(xs.iter().sum::<f64>()))
        });
        g.bench_function(format!("min/{tier}/lanes"), |bench| {
            bench.iter(|| black_box(simd::min(&xs)))
        });
        g.bench_function(format!("min/{tier}/serial"), |bench| {
            bench.iter(|| black_box(xs.iter().copied().fold(f64::INFINITY, f64::min)))
        });
        g.bench_function(format!("dot/{tier}/lanes"), |bench| {
            bench.iter(|| black_box(simd::dot(&xs, &ys)))
        });
        g.bench_function(format!("dot/{tier}/serial"), |bench| {
            bench.iter(|| black_box(xs.iter().zip(&ys).fold(0.0f64, |acc, (x, y)| acc + x * y)))
        });
    }
    g.finish();
}

/// Cost of one per-operator planning decision (estimate both routes,
/// compare) next to the *cheapest* kernel the parallelism gate lets onto
/// the pool (`MORPHEUS_PAR_THRESHOLD` = 2^14 flops by default, a 32x32x16
/// GEMM here). Planning runs on every LinearOperand call, so its rows
/// must come in far below the gated-kernel row — otherwise the planner
/// would tax the small per-part products it exists to route.
fn bench_planner_overhead(c: &mut Criterion) {
    // A star join (3 parts) makes the estimate loop do realistic work.
    let s = DenseMatrix::from_fn(4_000, 8, |i, j| ((i * 5 + j) % 9) as f64 * 0.3 - 1.1);
    let r1 = DenseMatrix::from_fn(200, 16, |i, j| ((i + j * 3) % 7) as f64 * 0.4 - 1.2);
    let r2 = DenseMatrix::from_fn(100, 8, |i, j| ((i * 2 + j) % 5) as f64 * 0.6 - 1.5);
    let fk1: Vec<usize> = (0..4_000).map(|i| (i * 7) % 200).collect();
    let fk2: Vec<usize> = (0..4_000).map(|i| (i * 3) % 100).collect();
    let tn = NormalizedMatrix::star(s.into(), vec![(fk1, r1.into()), (fk2, r2.into())]);
    let planned = PlannedMatrix::with_strategy(tn, Strategy::CostBased)
        .with_profile(MachineProfile::REFERENCE);

    let mut g = c.benchmark_group("planner_overhead");
    g.bench_function("plan/lmm", |b| {
        b.iter(|| black_box(planned.plan(OpKind::Lmm { m: 4 })))
    });
    g.bench_function("plan/crossprod", |b| {
        b.iter(|| black_box(planned.plan(OpKind::Crossprod)))
    });
    g.bench_function("plan/ginv", |b| {
        b.iter(|| black_box(planned.plan(OpKind::Ginv)))
    });
    // The comparison row: the smallest kernel that may dispatch to the
    // pool under the default threshold (2 * 32 * 32 * 16 = 2^15 flops,
    // right above DEFAULT_PAR_THRESHOLD).
    let a = dense(32, 32, 7);
    let b_small = dense(32, 16, 8);
    g.bench_function("gated-kernel/gemm 32x32x16", |b| {
        b.iter(|| black_box(a.matmul(&b_small)))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dense_kernels, bench_sparse_kernels, bench_linalg, bench_simd_kernels,
        bench_spawn_overhead, bench_planner_overhead
}
criterion_main!(benches);
