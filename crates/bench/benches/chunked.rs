//! Criterion benches for the out-of-core chunked backend: resident vs
//! spilled evaluation of the dominant operators, the spill round-trip
//! itself, and the planner-routed streaming step. Recorded by the
//! criterion shim into `target/bench-baselines.json` and gated in CI
//! against `crates/bench/baselines.json`.
//!
//! Bench ids are fixed (no thread counts or byte sizes in the names) so
//! the baseline keys stay machine-stable.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_chunked::{ChunkedMatrix, PlannedChunkedMatrix, SpillFile};
use morpheus_core::cost::ChunkedCostCtx;
use morpheus_core::{LinearOperand, Strategy};
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

const CHUNK: usize = 512;

fn ctx(budget: f64) -> ChunkedCostCtx {
    ChunkedCostCtx {
        chunk_rows: CHUNK,
        resident_budget_bytes: budget,
        spill_read_ns_per_byte: 0.5,
        spill_write_ns_per_byte: 1.0,
    }
}

fn benches(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 400, 16, 7).generate();
    let tm = ds.tn.materialize();
    let labels = ds.labels();
    let x = DenseMatrix::from_fn(tm.cols(), 8, |i, j| ((i * 3 + j) % 7) as f64 * 0.5 - 1.5);

    let mut g = c.benchmark_group("chunked");

    // Resident vs spilled: the same chunking, budgets MAX and 0, so the
    // delta is exactly the spill fault-in cost minus what the
    // double-buffered prefetch hides behind compute.
    let resident = ChunkedMatrix::with_budget(&tm, CHUNK, u64::MAX);
    let spilled = ChunkedMatrix::with_budget(&tm, CHUNK, 0);
    assert!(spilled.n_spilled() > 0, "bench fixture must spill");
    g.bench_function("lmm/resident", |b| b.iter(|| black_box(resident.lmm(&x))));
    g.bench_function("lmm/spilled", |b| b.iter(|| black_box(spilled.lmm(&x))));
    g.bench_function("crossprod/resident", |b| {
        b.iter(|| black_box(LinearOperand::crossprod(&resident)))
    });
    g.bench_function("crossprod/spilled", |b| {
        b.iter(|| black_box(LinearOperand::crossprod(&spilled)))
    });

    // The raw spill round-trip: write + mmap, then fault the chunk back.
    let chunk_mat = DenseMatrix::from_fn(CHUNK, tm.cols(), |i, j| (i * 31 + j) as f64 * 0.01);
    g.bench_function("spill/write", |b| {
        b.iter(|| black_box(SpillFile::write(&chunk_mat).expect("spill dir writable")))
    });
    let file = SpillFile::write(&chunk_mat).expect("spill dir writable");
    g.bench_function("spill/load", |b| b.iter(|| black_box(file.load())));

    // Planner-routed streaming step over spilled chunks, both arms: the
    // cost of routing + streaming on top of the bare chunked step.
    let trainer = LogisticRegressionGd::new(1e-3, 1);
    for (tag, strategy) in [
        ("F", Strategy::AlwaysFactorize),
        ("M", Strategy::AlwaysMaterialize),
    ] {
        let planned = PlannedChunkedMatrix::with_strategy(ds.tn.clone(), CHUNK, strategy)
            .with_cost_ctx(ctx(0.0));
        planned.materialize(); // fill the memo outside the timing loop
        g.bench_function(format!("planned-step/{tag}"), |b| {
            b.iter(|| {
                let mut w = DenseMatrix::zeros(planned.ncols(), 1);
                trainer.step(&planned, &labels, &mut w);
                black_box(w)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = chunked;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(chunked);
