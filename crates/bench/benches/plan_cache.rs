//! Criterion benches for the script-level planner: planning cost cold vs
//! warm (the keyed plan cache), and end-to-end script evaluation with the
//! greedy per-statement interpreter vs the planned evaluator (CSE +
//! fusion) on a workload with shared subexpressions.
//!
//! The headline contract: with a warm cache, serving a plan is a hash
//! lookup — a small fraction of even a cheap script's evaluation — and
//! the planned evaluator beats the interpreter on scripts that repeat
//! work, with bit-identical results (asserted here before timing).

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_core::{MachineProfile, NormalizedMatrix, Strategy};
use morpheus_data::synth::PkFkSpec;
use morpheus_lang::{
    eval_plan, eval_program, parse, plan_cache_reset, plan_cache_stats, plan_program, Env, Value,
};
use std::hint::black_box;

/// A script whose statements repeat factorized work: two textually
/// identical Gram pseudo-inverses plus a loop-invariant cross-product.
/// The interpreter runs `crossprod(T)` ten times and `ginv` twice; the
/// planned evaluator runs each once.
const SCRIPT: &str = "g = ginv(crossprod(T))\n\
                      h = ginv(crossprod(T))\n\
                      s = 0\n\
                      for (i in 1:8) { s = s + sum(crossprod(T)) }\n\
                      sum(g) + sum(h) + s";

fn dataset() -> NormalizedMatrix {
    PkFkSpec::from_ratios(10.0, 2.0, 500, 20, 42).generate().tn
}

fn env_for(tn: &NormalizedMatrix, strategy: Strategy) -> Env {
    let mut env = Env::new();
    env.bind(
        "T",
        Value::Normalized(
            morpheus_core::PlannedMatrix::with_strategy(tn.clone(), strategy)
                .with_profile(MachineProfile::REFERENCE),
        ),
    );
    env
}

fn scalar(v: &Value) -> f64 {
    v.as_scalar().expect("script ends in a scalar")
}

fn bench_planning(c: &mut Criterion) {
    let tn = dataset();
    let program = parse(SCRIPT).unwrap();
    // Cost-based binding: planning includes the whole-script verdict
    // simulation, the most expensive part of a cold plan.
    let env = env_for(&tn, Strategy::CostBased);

    let mut g = c.benchmark_group("plan_cache");
    g.bench_function("plan/cold", |b| {
        b.iter(|| {
            plan_cache_reset();
            black_box(plan_program(&program, &env))
        })
    });
    plan_cache_reset();
    plan_program(&program, &env); // prime
    g.bench_function("plan/warm", |b| {
        b.iter(|| black_box(plan_program(&program, &env)))
    });
    let stats = plan_cache_stats();
    println!(
        "plan_cache: {} hit(s), {} miss(es) after warm loop",
        stats.hits, stats.misses
    );
    g.finish();
}

fn bench_eval(c: &mut Criterion) {
    let tn = dataset();
    let program = parse(SCRIPT).unwrap();

    // Bit-identity sanity check before timing: AlwaysFactorize routing is
    // schedule-independent, so interpreter and planned evaluator must
    // agree to the last bit.
    let vi = eval_program(&program, &mut env_for(&tn, Strategy::AlwaysFactorize)).unwrap();
    let plan = plan_program(&program, &env_for(&tn, Strategy::AlwaysFactorize));
    let vp = eval_plan(&plan, &mut env_for(&tn, Strategy::AlwaysFactorize)).unwrap();
    assert_eq!(
        scalar(&vi).to_bits(),
        scalar(&vp).to_bits(),
        "planned evaluation must be bit-identical to the interpreter"
    );

    let mut g = c.benchmark_group("plan_cache");
    g.bench_function("eval/interpreter-greedy", |b| {
        b.iter(|| {
            let mut env = env_for(&tn, Strategy::AlwaysFactorize);
            black_box(eval_program(&program, &mut env).unwrap())
        })
    });
    g.bench_function("eval/planned-warm", |b| {
        b.iter(|| {
            let mut env = env_for(&tn, Strategy::AlwaysFactorize);
            black_box(eval_plan(&plan, &mut env).unwrap())
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_planning(c);
    bench_eval(c);
}

criterion_group! {
    name = plan_cache;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(plan_cache);
