//! Criterion benches for the four paper algorithms (Figures 5, 8, 9, 10):
//! factorized vs materialized training at TR = 10, FR = 2.

use criterion::{criterion_group, criterion_main, Criterion};
use morpheus_data::synth::PkFkSpec;
use morpheus_ml::gnmf::Gnmf;
use morpheus_ml::kmeans::KMeans;
use morpheus_ml::linreg::{LinearRegressionGd, LinearRegressionNe};
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let ds = PkFkSpec::from_ratios(10.0, 2.0, 400, 16, 9).generate();
    let y = ds.y.clone();
    let labels = ds.labels();
    let tn = ds.tn;
    let tm = tn.materialize();

    let mut g = c.benchmark_group("ml");
    let logreg = LogisticRegressionGd::new(1e-3, 5);
    g.bench_function("logreg/F", |b| {
        b.iter(|| black_box(logreg.fit(&tn, &labels)))
    });
    g.bench_function("logreg/M", |b| {
        b.iter(|| black_box(logreg.fit(&tm, &labels)))
    });

    let linreg = LinearRegressionNe::new();
    g.bench_function("linreg-ne/F", |b| b.iter(|| black_box(linreg.fit(&tn, &y))));
    g.bench_function("linreg-ne/M", |b| b.iter(|| black_box(linreg.fit(&tm, &y))));

    let lingd = LinearRegressionGd::new(1e-6, 5);
    g.bench_function("linreg-gd/F", |b| b.iter(|| black_box(lingd.fit(&tn, &y))));
    g.bench_function("linreg-gd/M", |b| b.iter(|| black_box(lingd.fit(&tm, &y))));

    let km = KMeans::new(5, 5);
    g.bench_function("kmeans/F", |b| b.iter(|| black_box(km.fit(&tn))));
    g.bench_function("kmeans/M", |b| b.iter(|| black_box(km.fit(&tm))));

    let gnmf = Gnmf::new(3, 5);
    g.bench_function("gnmf/F", |b| b.iter(|| black_box(gnmf.fit(&tn))));
    g.bench_function("gnmf/M", |b| b.iter(|| black_box(gnmf.fit(&tm))));
    g.finish();
}

criterion_group! {
    name = ml;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(ml);
