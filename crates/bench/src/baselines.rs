//! Persistent bench baselines: parsing the flat JSON the criterion shim
//! writes to `target/bench-baselines.json` and gating regressions against
//! a committed snapshot (`crates/bench/baselines.json`).
//!
//! The gate is deliberately simple — medians only, a single relative
//! threshold (default 25%, `MORPHEUS_BENCH_GATE_PCT` to override) — so it
//! catches order-of-magnitude slips (a kernel silently going serial, an
//! accidental quadratic path) rather than chasing machine noise.

/// One `name -> median ns/iter` measurement.
pub type Baseline = (String, u128);

/// Parses the shim's flat `{"name": nanos, ...}` JSON (string keys,
/// unsigned-integer values, no escapes). Malformed content yields an empty
/// list rather than an error — a missing baseline is reported by the gate
/// itself.
///
/// Deliberately independent of the criterion shim's own parser: the shim
/// is slated to be swapped for the real crates.io `criterion` (which has
/// no such helper), and the gate must keep reading the frozen on-disk
/// format of the *committed* snapshot either way. The format is pinned by
/// the round-trip tests below and `crates/bench/baselines.json` itself.
pub fn parse_baselines(text: &str) -> Vec<Baseline> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        let key = rest[..end].to_string();
        rest = &rest[end + 1..];
        let Some(colon) = rest.find(':') else { break };
        rest = &rest[colon + 1..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        if let Ok(v) = digits.parse::<u128>() {
            out.push((key, v));
        }
    }
    out
}

/// The outcome of comparing one measured median against its committed
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Within the threshold (or faster).
    Ok,
    /// Slower than baseline by more than the threshold.
    Regression {
        /// Committed median in ns.
        baseline_ns: u128,
        /// Measured median in ns.
        measured_ns: u128,
    },
    /// Present in the committed baseline but absent from the measured run.
    Missing,
}

/// Compares `measured` against `committed`: for every committed entry,
/// flag a [`Verdict::Regression`] when the measured median exceeds the
/// baseline by more than `threshold_pct` percent, and [`Verdict::Missing`]
/// when it was not measured at all. Names only the gate knows nothing
/// about (new benches) are ignored — they become baselines when the
/// snapshot is refreshed.
pub fn gate(
    committed: &[Baseline],
    measured: &[Baseline],
    threshold_pct: u32,
) -> Vec<(String, Verdict)> {
    committed
        .iter()
        .map(|(name, base)| {
            let verdict = match measured.iter().find(|(m, _)| m == name) {
                None => Verdict::Missing,
                Some((_, got)) => {
                    // got > base * (100 + pct) / 100, in integer math.
                    if *got * 100 > *base * (100 + threshold_pct as u128) {
                        Verdict::Regression {
                            baseline_ns: *base,
                            measured_ns: *got,
                        }
                    } else {
                        Verdict::Ok
                    }
                }
            };
            (name.clone(), verdict)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_shim_output() {
        let text = "{\n  \"pkfk/a/lmm/F\": 120,\n  \"kernels/gemm\": 98765\n}\n";
        assert_eq!(
            parse_baselines(text),
            vec![
                ("pkfk/a/lmm/F".to_string(), 120),
                ("kernels/gemm".to_string(), 98765)
            ]
        );
        assert!(parse_baselines("").is_empty());
        assert!(parse_baselines("{}").is_empty());
    }

    #[test]
    fn gate_flags_regressions_only_beyond_threshold() {
        let committed = vec![("a".to_string(), 1000u128), ("b".to_string(), 1000u128)];
        let measured = vec![
            ("a".to_string(), 1250u128), // exactly +25%: allowed
            ("b".to_string(), 1251u128), // beyond: regression
        ];
        let verdicts = gate(&committed, &measured, 25);
        assert_eq!(verdicts[0].1, Verdict::Ok);
        assert_eq!(
            verdicts[1].1,
            Verdict::Regression {
                baseline_ns: 1000,
                measured_ns: 1251
            }
        );
    }

    #[test]
    fn gate_reports_missing_and_ignores_new() {
        let committed = vec![("old".to_string(), 10u128)];
        let measured = vec![("brand-new".to_string(), 99u128)];
        let verdicts = gate(&committed, &measured, 25);
        assert_eq!(verdicts, vec![("old".to_string(), Verdict::Missing)]);
    }

    #[test]
    fn gate_allows_speedups() {
        let committed = vec![("fast".to_string(), 1000u128)];
        let measured = vec![("fast".to_string(), 10u128)];
        assert_eq!(gate(&committed, &measured, 25)[0].1, Verdict::Ok);
    }
}
