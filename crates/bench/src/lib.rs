//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5 + appendices).
//!
//! The harness has two faces:
//!
//! * the [`experiments`] module + the `repro` binary — paper-style text
//!   tables for **every** table and figure, sized down (ratios preserved)
//!   to run on a small CI machine. `cargo run --release -p morpheus-bench
//!   --bin repro -- all` regenerates everything; see `EXPERIMENTS.md` for
//!   the recorded output and the paper-vs-measured comparison.
//! * Criterion micro-benches (`benches/`) for statistically careful
//!   operator-level measurements.
//!
//! Absolute numbers differ from the paper's 20-core Xeon + R/BLAS setup by
//! construction; the reproduction targets are the *shapes*: who wins, how
//! speedups scale with the tuple ratio, feature ratio, and join-attribute
//! uniqueness degree, and where the slow-down region sits.

pub mod baselines;
pub mod experiments;
pub mod timing;
