//! Minimal wall-clock timing helpers for the reproduction harness.
//!
//! Criterion is used for the statistically careful micro-benches; the
//! `repro` binary sweeps dozens of configurations and needs something
//! cheaper — a warmup pass plus the median of a few repetitions.

use std::time::Instant;

/// Times one execution of `f`, returning `(seconds, result)`.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Median wall-clock seconds of `reps` executions after one warmup run.
/// The closure result is returned from the final run so callers can verify
/// outputs.
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(reps >= 1, "time_median: need at least one repetition");
    let _ = f(); // warmup
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (t, out) = time_once(&mut f);
        times.push(t);
        last = Some(out);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("NaN timing"));
    (times[times.len() / 2], last.expect("reps >= 1"))
}

/// Formats seconds compactly (`ms` below 1 s, `s` above).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:7.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:7.2}ms", s * 1e3)
    } else {
        format!("{s:8.3}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_measures_and_returns() {
        let (t, v) = time_once(|| {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        assert!(t >= 0.0);
        assert_eq!(v, (0..10_000u64).sum::<u64>());
    }

    #[test]
    fn time_median_runs_warmup_plus_reps() {
        let mut calls = 0;
        let (_, out) = time_median(3, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 4); // 1 warmup + 3 timed
        assert_eq!(out, 4);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(2.5e-5).contains("us"));
        assert!(fmt_secs(0.25).contains("ms"));
        assert!(fmt_secs(3.2).contains('s'));
    }
}
