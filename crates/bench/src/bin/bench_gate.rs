//! CI regression gate over the persistent bench baselines.
//!
//! Reads the medians the criterion shim persisted to
//! `target/bench-baselines.json` (override with `MORPHEUS_BENCH_BASELINES`)
//! and compares them against the committed snapshot
//! `crates/bench/baselines.json`. Exits non-zero if any committed bench
//! regressed by more than the threshold (default 25%,
//! `MORPHEUS_BENCH_GATE_PCT` to override) or was not measured at all.
//!
//! Refresh the snapshot after an intentional perf change with:
//! `rm -f target/bench-baselines.json && cargo bench --bench
//! pkfk_operators && cp target/bench-baselines.json
//! crates/bench/baselines.json`. The `rm` matters: the shim merges into
//! the existing file, so a stale one may hold keys from other bench
//! binaries that CI never re-measures — committing those would fail the
//! gate forever as MISSING.

use morpheus_bench::baselines::{gate, parse_baselines, Verdict};
use std::path::PathBuf;

fn measured_path() -> PathBuf {
    if let Ok(p) = std::env::var("MORPHEUS_BENCH_BASELINES") {
        return PathBuf::from(p);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench-baselines.json");
        }
        if !dir.pop() {
            return PathBuf::from("target/bench-baselines.json");
        }
    }
}

fn main() {
    let committed_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines.json");
    let measured_path = measured_path();
    let threshold: u32 = std::env::var("MORPHEUS_BENCH_GATE_PCT")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(25);

    let committed = match std::fs::read_to_string(&committed_path) {
        Ok(t) => parse_baselines(&t),
        Err(e) => {
            eprintln!("bench_gate: cannot read committed baseline {committed_path:?}: {e}");
            std::process::exit(2);
        }
    };
    let measured = match std::fs::read_to_string(&measured_path) {
        Ok(t) => parse_baselines(&t),
        Err(e) => {
            eprintln!(
                "bench_gate: cannot read measured baselines {measured_path:?}: {e}\n\
                 run `cargo bench` first so the criterion shim persists medians"
            );
            std::process::exit(2);
        }
    };

    let mut failures = 0usize;
    for (name, verdict) in gate(&committed, &measured, threshold) {
        match verdict {
            Verdict::Ok => {}
            Verdict::Missing => {
                failures += 1;
                println!("MISSING    {name} (committed but not measured)");
            }
            Verdict::Regression {
                baseline_ns,
                measured_ns,
            } => {
                failures += 1;
                let pct = (measured_ns as f64 / baseline_ns as f64 - 1.0) * 100.0;
                println!(
                    "REGRESSION {name}: {baseline_ns} ns -> {measured_ns} ns (+{pct:.1}%, \
                     threshold {threshold}%)"
                );
            }
        }
    }
    if failures > 0 {
        eprintln!(
            "bench_gate: {failures} failure(s) against {} committed baseline(s)",
            committed.len()
        );
        std::process::exit(1);
    }
    println!(
        "bench_gate: {} baseline(s) within {threshold}% of committed medians",
        committed.len()
    );
}
