//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--quick] <experiment>...
//! repro all              # everything
//! repro list             # show available experiment ids
//! ```
//!
//! Experiment ids follow the paper: `table3`, `fig3`, `fig4`, `fig5a`,
//! `fig5b`, `fig5c`, `fig5d`, `table6`, `table7`, `table8`, `table9`,
//! `table10`, `table12`, `fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `fig11`,
//! `fig12`, `ablation-crossprod`, `ablation-order`, `ablation-decision`,
//! plus the serving benchmark `serve` (not from the paper: micro-batched
//! vs per-request scoring throughput/latency).

use morpheus_bench::experiments::{ablation, algorithms, mn, operators, ore, serve, tables};
use std::time::Instant;

const ALL: &[&str] = &[
    "table3",
    "fig3",
    "fig6",
    "fig7",
    "fig4",
    "fig11",
    "fig12",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5d",
    "fig8",
    "fig9",
    "fig10",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "out-of-core",
    "table12",
    "ablation-crossprod",
    "ablation-order",
    "ablation-decision",
    "serve",
];

fn run(name: &str, quick: bool) -> bool {
    let start = Instant::now();
    let known = match name {
        "table3" => {
            tables::table3();
            true
        }
        "fig3" => {
            operators::fig3(quick);
            true
        }
        "fig6" => {
            operators::fig6(quick);
            true
        }
        "fig7" => {
            operators::fig7(quick);
            true
        }
        "fig4" => {
            mn::fig4(quick);
            true
        }
        "fig11" => {
            mn::fig11(quick);
            true
        }
        "fig12" => {
            mn::fig12(quick);
            true
        }
        "fig5a" => {
            algorithms::fig5a(quick);
            true
        }
        "fig5b" => {
            algorithms::fig5b(quick);
            true
        }
        "fig5c" => {
            algorithms::fig5c(quick);
            true
        }
        "fig5d" => {
            algorithms::fig5d(quick);
            true
        }
        "fig8" => {
            algorithms::fig8(quick);
            true
        }
        "fig9" => {
            algorithms::fig9(quick);
            true
        }
        "fig10" => {
            algorithms::fig10(quick);
            true
        }
        "table6" => {
            tables::table6(if quick { 0.002 } else { tables::REAL_SCALE });
            true
        }
        "table7" => {
            tables::table7(quick);
            true
        }
        "table8" => {
            tables::table8(quick);
            true
        }
        "table9" => {
            ore::table9(quick);
            true
        }
        "table10" => {
            ore::table10(quick);
            true
        }
        "out-of-core" => {
            ore::out_of_core(quick);
            true
        }
        // The whole chunked-backend suite under one name.
        "ore" => {
            ore::table9(quick);
            ore::table10(quick);
            ore::out_of_core(quick);
            true
        }
        "table12" => {
            tables::table12(quick);
            true
        }
        "ablation-crossprod" => {
            ablation::ablation_crossprod(quick);
            true
        }
        "ablation-order" => {
            ablation::ablation_order(quick);
            true
        }
        "ablation-decision" => {
            ablation::ablation_decision(quick);
            ablation::print_adaptive_demo();
            true
        }
        "serve" => {
            serve::throughput(quick);
            true
        }
        _ => false,
    };
    if known {
        println!("[{name} finished in {:.1}s]", start.elapsed().as_secs_f64());
    }
    known
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.as_str())
        .collect();

    if names.is_empty() || names.contains(&"list") {
        println!("usage: repro [--quick] <experiment>... | all | list");
        println!("experiments:");
        for n in ALL {
            println!("  {n}");
        }
        return;
    }

    let start = Instant::now();
    let to_run: Vec<&str> = if names.contains(&"all") {
        ALL.to_vec()
    } else {
        names
    };
    for name in to_run {
        if !run(name, quick) {
            eprintln!("unknown experiment '{name}' — run `repro list`");
            std::process::exit(2);
        }
    }
    println!(
        "\nAll requested experiments finished in {:.1}s",
        start.elapsed().as_secs_f64()
    );
}
