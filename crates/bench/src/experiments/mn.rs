//! M:N join operator experiments: Figures 4, 11, and 12.
//!
//! The M:N sweeps vary the number of tuples, the number of features, and
//! the join-attribute uniqueness degree `n_U / n_S`. As the degree shrinks,
//! each key value matches more pairs and the join output explodes
//! (`E[|T|] = n_S n_R / n_U`), which is where factorized execution wins by
//! orders of magnitude (the paper reports ~two orders at degree 0.01).

use super::{print_rows, Row};
use crate::timing::time_median;
use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_data::synth::MnJoinSpec;
use morpheus_dense::DenseMatrix;
use std::hint::black_box;

/// Operators measured in the M:N figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnOp {
    /// `T + x`.
    ScalarAdd,
    /// `T * x`.
    ScalarMul,
    /// `rowSums(T)`.
    RowSums,
    /// `colSums(T)`.
    ColSums,
    /// `sum(T)`.
    Sum,
    /// `T X`.
    Lmm,
    /// `X T`.
    Rmm,
    /// `crossprod(T)`.
    Crossprod,
}

impl MnOp {
    fn name(&self) -> &'static str {
        match self {
            MnOp::ScalarAdd => "scalar-add",
            MnOp::ScalarMul => "scalar-mul",
            MnOp::RowSums => "rowSums",
            MnOp::ColSums => "colSums",
            MnOp::Sum => "sum",
            MnOp::Lmm => "LMM",
            MnOp::Rmm => "RMM",
            MnOp::Crossprod => "crossprod",
        }
    }
}

fn time_pair(op: MnOp, tn: &NormalizedMatrix, tm: &Matrix, reps: usize) -> (f64, f64) {
    let d = tn.cols();
    let n = tn.rows();
    let lmm_x = DenseMatrix::from_fn(d, 2, |i, j| ((i + j) % 5) as f64 * 0.25);
    let rmm_x = DenseMatrix::from_fn(2, n, |i, j| ((i * 3 + j) % 7) as f64 * 0.125);
    let run_f = |op: MnOp| match op {
        MnOp::ScalarAdd => {
            black_box(tn.scalar_add(3.25));
        }
        MnOp::ScalarMul => {
            black_box(tn.scalar_mul(3.25));
        }
        MnOp::RowSums => {
            black_box(tn.row_sums());
        }
        MnOp::ColSums => {
            black_box(tn.col_sums());
        }
        MnOp::Sum => {
            black_box(tn.sum());
        }
        MnOp::Lmm => {
            black_box(tn.lmm(&lmm_x));
        }
        MnOp::Rmm => {
            black_box(tn.rmm(&rmm_x));
        }
        MnOp::Crossprod => {
            black_box(tn.crossprod());
        }
    };
    let run_m = |op: MnOp| match op {
        MnOp::ScalarAdd => {
            black_box(tm.scalar_add(3.25));
        }
        MnOp::ScalarMul => {
            black_box(tm.scalar_mul(3.25));
        }
        MnOp::RowSums => {
            black_box(Matrix::row_sums(tm));
        }
        MnOp::ColSums => {
            black_box(Matrix::col_sums(tm));
        }
        MnOp::Sum => {
            black_box(Matrix::sum(tm));
        }
        MnOp::Lmm => {
            black_box(tm.matmul_dense(&lmm_x));
        }
        MnOp::Rmm => {
            black_box(tm.dense_matmul(&rmm_x));
        }
        MnOp::Crossprod => {
            black_box(Matrix::crossprod(tm));
        }
    };
    let (t_f, _) = time_median(reps, || run_f(op));
    let (t_m, _) = time_median(reps, || run_m(op));
    (t_f, t_m)
}

fn spec(n_s: usize, d: usize, degree: f64, seed: u64) -> MnJoinSpec {
    MnJoinSpec {
        n_s,
        n_r: n_s,
        d_s: d,
        d_r: d,
        n_u: ((n_s as f64 * degree).round() as usize).max(1),
        seed,
    }
}

fn degree_sweep(ops: &[MnOp], quick: bool, title: &str) -> Vec<Row> {
    let (sizes, d, degrees, reps): (Vec<usize>, usize, Vec<f64>, usize) = if quick {
        (vec![200], 10, vec![0.1, 0.5], 1)
    } else {
        // Paper Table 5 at 1/100 of n_S = 10^5..2x10^5, d_S = d_R = 200 → 50.
        (
            vec![1_000, 2_000],
            50,
            vec![0.01, 0.02, 0.05, 0.1, 0.2, 0.5],
            2,
        )
    };
    let mut rows = Vec::new();
    for &n_s in &sizes {
        for &deg in &degrees {
            let ds = spec(n_s, d, deg, 7).generate();
            let tm = ds.tn.materialize();
            let mut values = vec![("|T|", ds.tn.rows() as f64)];
            for &op in ops {
                let (t_f, t_m) = time_pair(op, &ds.tn, &tm, reps);
                values.push((op.name(), t_f));
                values.push((m_name(op), t_m));
            }
            rows.push(Row::new(format!("nS={n_s} deg={deg}"), values));
        }
    }
    print_rows(title, &rows);
    rows
}

fn m_name(op: MnOp) -> &'static str {
    match op {
        MnOp::ScalarAdd => "M:scalar-add",
        MnOp::ScalarMul => "M:scalar-mul",
        MnOp::RowSums => "M:rowSums",
        MnOp::ColSums => "M:colSums",
        MnOp::Sum => "M:sum",
        MnOp::Lmm => "M:LMM",
        MnOp::Rmm => "M:RMM",
        MnOp::Crossprod => "M:crossprod",
    }
}

/// Figure 4: M:N LMM and cross-product runtimes vs uniqueness degree.
pub fn fig4(quick: bool) -> Vec<Row> {
    degree_sweep(
        &[MnOp::Lmm, MnOp::Crossprod],
        quick,
        "Figure 4: M:N join — LMM and crossprod runtimes vs uniqueness degree (seconds)",
    )
}

/// Figure 11: M:N element-wise and aggregation operators over the three
/// sweeps (tuples, features, degree).
pub fn fig11(quick: bool) -> Vec<Row> {
    let ops = [
        MnOp::ScalarAdd,
        MnOp::ScalarMul,
        MnOp::RowSums,
        MnOp::ColSums,
        MnOp::Sum,
    ];
    let mut rows = size_and_feature_sweeps(&ops, quick);
    rows.extend(degree_sweep(
        &ops,
        quick,
        "Figure 11(c): M:N element-wise/aggregation vs degree",
    ));
    rows
}

/// Figure 12: M:N multiplication operators over the three sweeps.
pub fn fig12(quick: bool) -> Vec<Row> {
    let ops = [MnOp::Lmm, MnOp::Rmm, MnOp::Crossprod];
    let mut rows = size_and_feature_sweeps(&ops, quick);
    rows.extend(degree_sweep(
        &ops,
        quick,
        "Figure 12(c): M:N multiplication vs degree",
    ));
    rows
}

fn size_and_feature_sweeps(ops: &[MnOp], quick: bool) -> Vec<Row> {
    let reps = if quick { 1 } else { 2 };
    let (sizes, feats, base_n, base_d): (Vec<usize>, Vec<usize>, usize, usize) = if quick {
        (vec![100, 200], vec![5, 10], 150, 8)
    } else {
        (vec![500, 1_000, 2_000], vec![25, 50, 100], 1_000, 50)
    };
    let mut rows = Vec::new();
    for &n_s in &sizes {
        let ds = spec(n_s, base_d, 0.1, 11).generate();
        let tm = ds.tn.materialize();
        let mut values = vec![("|T|", ds.tn.rows() as f64)];
        for &op in ops {
            let (t_f, t_m) = time_pair(op, &ds.tn, &tm, reps);
            values.push((op.name(), t_f));
            values.push((m_name(op), t_m));
        }
        rows.push(Row::new(format!("vary-tuples nS={n_s}"), values));
    }
    for &d in &feats {
        let ds = spec(base_n, d, 0.1, 13).generate();
        let tm = ds.tn.materialize();
        let mut values = vec![("|T|", ds.tn.rows() as f64)];
        for &op in ops {
            let (t_f, t_m) = time_pair(op, &ds.tn, &tm, reps);
            values.push((op.name(), t_f));
            values.push((m_name(op), t_m));
        }
        rows.push(Row::new(format!("vary-features d={d}"), values));
    }
    print_rows("M:N sweeps over #tuples and #features (seconds)", &rows);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_quick_runs() {
        let rows = fig4(true);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.get("LMM").unwrap() > 0.0);
            assert!(r.get("M:crossprod").unwrap() > 0.0);
        }
    }

    #[test]
    fn join_blowup_scales_inversely_with_degree() {
        let rows = fig4(true);
        let t_low = rows[0].get("|T|").unwrap(); // deg 0.1
        let t_high = rows[1].get("|T|").unwrap(); // deg 0.5
        assert!(t_low > t_high, "lower degree must blow up the join more");
    }

    #[test]
    fn fig11_and_fig12_quick_run() {
        assert!(!fig11(true).is_empty());
        assert!(!fig12(true).is_empty());
    }

    #[test]
    fn factorized_crossprod_wins_at_low_degree() {
        // At degree 0.02 the materialized crossprod must be slower.
        let ds = spec(400, 20, 0.02, 3).generate();
        let tm = ds.tn.materialize();
        let (t_f, t_m) = time_pair(MnOp::Crossprod, &ds.tn, &tm, 3);
        assert!(
            t_m > t_f,
            "expected F crossprod win at degree 0.02 ({t_m:.4} vs {t_f:.4})"
        );
    }
}
