//! Scalability experiments on the chunked (ORE-analog) backend:
//! Tables 9 and 10.
//!
//! The paper runs per-iteration logistic regression on Oracle R Enterprise
//! with larger-than-memory data: Table 9 sweeps the feature ratio of a
//! PK-FK join, Table 10 sweeps the join-attribute domain size of an M:N
//! join. Here the same experiment runs on `morpheus-chunked`: the
//! materialized side is a [`ChunkedMatrix`] (the `ore.frame` analog), the
//! factorized side a [`ChunkedNormalizedMatrix`] — both driven by the
//! *identical* `LogisticRegressionGd::step` code.
//!
//! [`out_of_core`] goes one step further than the paper's setup: the
//! table genuinely exceeds the resident budget, chunks spill to
//! mmap-backed files, and a [`PlannedChunkedMatrix`] routes every
//! operator factorized-or-materialized with spill-aware pricing — while
//! the spilled execution stays bit-identical to the fully resident one.

use super::{print_rows, Row};
use crate::timing::time_median;
use morpheus_chunked::{spill, ChunkedMatrix, ChunkedNormalizedMatrix, PlannedChunkedMatrix};
use morpheus_core::cost::ChunkedCostCtx;
use morpheus_core::LinearOperand;
use morpheus_data::synth::{MnJoinSpec, PkFkSpec};
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn per_iteration_times<M: LinearOperand, F: LinearOperand>(
    tm: &M,
    tf: &F,
    labels: &DenseMatrix,
    reps: usize,
) -> (f64, f64) {
    let trainer = LogisticRegressionGd::new(1e-4, 1);
    let d = tm.ncols();
    let (t_m, _) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(tm, labels, &mut w);
        w
    });
    let (t_f, _) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(tf, labels, &mut w);
        w
    });
    (t_m, t_f)
}

/// Table 9: per-iteration logistic regression on the chunked backend for a
/// PK-FK join, varying the feature ratio (paper dims `(1e8, 5e6, 60)`
/// scaled by 1/2000).
pub fn table9(quick: bool) -> Vec<Row> {
    let (n_s, n_r, d_s, chunk, reps) = if quick {
        (2_000usize, 100usize, 12usize, 512usize, 1usize)
    } else {
        (50_000, 2_500, 60, 8_192, 2)
    };
    let mut rows = Vec::new();
    for fr in [0.5, 1.0, 2.0, 4.0] {
        let d_r = ((fr * d_s as f64) as usize).max(1);
        let ds = PkFkSpec {
            n_s,
            d_s,
            n_r,
            d_r,
            seed: 3,
        }
        .generate();
        let labels = ds.labels();
        let tf = ChunkedNormalizedMatrix::new(&ds.tn, chunk);
        let tm = ChunkedMatrix::new(&ds.tn.materialize(), chunk);
        let (t_m, t_f) = per_iteration_times(&tm, &tf, &labels, reps);
        rows.push(Row::new(
            format!("FR={fr}"),
            vec![
                ("Materialized", t_m),
                ("Morpheus", t_f),
                ("speedup", t_m / t_f),
            ],
        ));
    }
    print_rows(
        "Table 9: per-iteration logistic regression on the chunked (ORE-analog) backend, PK-FK join (seconds)",
        &rows,
    );
    rows
}

/// Table 10: per-iteration logistic regression on the chunked backend for
/// an M:N join, varying the join-attribute domain size (paper dims
/// `(1e6, 1e6, 200, 200)` scaled by 1/500).
pub fn table10(quick: bool) -> Vec<Row> {
    let (n_s, d, chunk, reps, domains): (usize, usize, usize, usize, Vec<usize>) = if quick {
        (300, 8, 256, 1, vec![150, 30])
    } else {
        // Degrees 0.5, 0.1, 0.05, 0.01 as in the paper.
        (2_000, 40, 8_192, 1, vec![1_000, 200, 100, 20])
    };
    let mut rows = Vec::new();
    for n_u in domains {
        let ds = MnJoinSpec {
            n_s,
            n_r: n_s,
            d_s: d,
            d_r: d,
            n_u,
            seed: 9,
        }
        .generate();
        let labels = ds.labels();
        let tf = ChunkedNormalizedMatrix::new(&ds.tn, chunk);
        let tm = ChunkedMatrix::new(&ds.tn.materialize(), chunk);
        let (t_m, t_f) = per_iteration_times(&tm, &tf, &labels, reps);
        rows.push(Row::new(
            format!("nU={n_u} (deg={:.3})", n_u as f64 / n_s as f64),
            vec![
                ("|T|", ds.tn.rows() as f64),
                ("Materialized", t_m),
                ("Morpheus", t_f),
                ("speedup", t_m / t_f),
            ],
        ));
    }
    print_rows(
        "Table 10: per-iteration logistic regression on the chunked (ORE-analog) backend, M:N join (seconds)",
        &rows,
    );
    rows
}

/// Out-of-core streaming: a per-iteration logistic-regression step on a
/// PK-FK table at least 4× the resident chunk budget, with every operator
/// routed by the spill-aware chunked planner and the spilled chunks
/// backed by mmap files.
///
/// The budget is `MORPHEUS_CHUNK_BYTES` when set, else a quarter of the
/// materialized table. Three invariants are checked on every run (and
/// reflected in the returned row):
///
/// * the materialized chunked join genuinely spills (`spilled > 0`);
/// * spilled chunked execution is **bit-identical** to fully-resident
///   chunked execution (`bitwise = 1`);
/// * the planner-routed streamed model agrees with the in-memory
///   planner's model to reduction-regrouping tolerance.
pub fn out_of_core(quick: bool) -> Vec<Row> {
    let (n_s, d_s, n_r, d_r, chunk, reps) = if quick {
        (3_000usize, 12usize, 150usize, 12usize, 256usize, 1usize)
    } else {
        (60_000, 30, 3_000, 30, 4_096, 2)
    };
    let ds = PkFkSpec {
        n_s,
        d_s,
        n_r,
        d_r,
        seed: 5,
    }
    .generate();
    let labels = ds.labels();
    let table_bytes = (ds.tn.rows() * ds.tn.cols() * 8) as u64;
    let env_budget = spill::resident_budget_bytes();
    let budget = if env_budget < u64::MAX {
        env_budget
    } else {
        table_bytes / 4
    };
    let (read_rate, write_rate) = spill::io_rates();
    let ctx = ChunkedCostCtx {
        chunk_rows: chunk,
        resident_budget_bytes: budget as f64,
        spill_read_ns_per_byte: read_rate,
        spill_write_ns_per_byte: write_rate,
    };

    // The planner-routed streamed run, with every verdict counted.
    let fact_ops = Arc::new(AtomicU64::new(0));
    let mat_ops = Arc::new(AtomicU64::new(0));
    let (f, m) = (Arc::clone(&fact_ops), Arc::clone(&mat_ops));
    let planned = PlannedChunkedMatrix::new(ds.tn.clone(), chunk)
        .with_cost_ctx(ctx)
        .with_hook(move |d| {
            let counter = if d.factorized { &f } else { &m };
            counter.fetch_add(1, Ordering::Relaxed);
        });
    let trainer = LogisticRegressionGd::new(1e-4, 1);
    let d = planned.ncols();
    let (t_stream, w_stream) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(&planned, &labels, &mut w);
        w
    });
    let (t_inmem, w_inmem) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(&ds.tn, &labels, &mut w);
        w
    });

    // Bit-identity of spilled vs fully-resident chunked execution.
    let spilled = ChunkedMatrix::from_normalized_with_budget(&ds.tn, chunk, budget);
    let resident = ChunkedMatrix::from_normalized_with_budget(&ds.tn, chunk, u64::MAX);
    let x = DenseMatrix::from_fn(spilled.ncols(), 1, |i, _| (i % 5) as f64 * 0.25 - 0.5);
    let bitwise = spilled.lmm(&x).as_slice() == resident.lmm(&x).as_slice()
        && LinearOperand::sum(&spilled).to_bits() == LinearOperand::sum(&resident).to_bits()
        && LinearOperand::crossprod(&spilled).as_slice()
            == LinearOperand::crossprod(&resident).as_slice();

    let rows = vec![Row::new(
        format!(
            "{}x budget, chunk={chunk}",
            (table_bytes as f64 / budget.max(1) as f64).round()
        ),
        vec![
            ("table_MB", table_bytes as f64 / (1 << 20) as f64),
            ("budget_MB", budget as f64 / (1 << 20) as f64),
            ("chunks", spilled.n_chunks() as f64),
            ("spilled", spilled.n_spilled() as f64),
            ("factorized_ops", fact_ops.load(Ordering::Relaxed) as f64),
            ("materialized_ops", mat_ops.load(Ordering::Relaxed) as f64),
            ("stream_step", t_stream),
            ("in_memory_step", t_inmem),
            ("bitwise", f64::from(u8::from(bitwise))),
            (
                "model_delta",
                w_stream
                    .as_slice()
                    .iter()
                    .zip(w_inmem.as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max),
            ),
        ],
    )];
    print_rows(
        "Out-of-core streaming: planner-routed logistic-regression step over mmap-backed chunks (seconds)",
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_quick_runs() {
        let rows = table9(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.get("speedup").unwrap() > 0.0);
        }
    }

    #[test]
    fn table10_quick_runs_and_blowup_grows() {
        let rows = table10(true);
        assert_eq!(rows.len(), 2);
        // Smaller domain ⇒ bigger join output.
        assert!(rows[1].get("|T|").unwrap() > rows[0].get("|T|").unwrap());
    }

    #[test]
    fn chunked_backends_agree_on_the_model() {
        let ds = PkFkSpec {
            n_s: 500,
            d_s: 4,
            n_r: 50,
            d_r: 8,
            seed: 1,
        }
        .generate();
        let labels = ds.labels();
        let tf = ChunkedNormalizedMatrix::new(&ds.tn, 128);
        let tm = ChunkedMatrix::new(&ds.tn.materialize(), 128);
        let trainer = LogisticRegressionGd::new(1e-3, 4);
        let wf = trainer.fit(&tf, &labels);
        let wm = trainer.fit(&tm, &labels);
        assert!(wf.w.approx_eq(&wm.w, 1e-9));
    }

    #[test]
    fn out_of_core_streams_a_table_past_the_budget_bit_identically() {
        let rows = out_of_core(true);
        let r = &rows[0];
        // The table exceeds the budget at least 4x and genuinely spills.
        assert!(r.get("table_MB").unwrap() >= 4.0 * r.get("budget_MB").unwrap() * 0.999);
        assert!(r.get("spilled").unwrap() > 0.0);
        // Planner-routed decisions were actually made.
        let decisions = r.get("factorized_ops").unwrap() + r.get("materialized_ops").unwrap();
        assert!(decisions > 0.0);
        // Spilled == resident, bit for bit; streamed model == in-memory
        // model to reduction-regrouping tolerance.
        assert_eq!(r.get("bitwise").unwrap(), 1.0);
        assert!(r.get("model_delta").unwrap() < 1e-9);
    }
}
