//! Scalability experiments on the chunked (ORE-analog) backend:
//! Tables 9 and 10.
//!
//! The paper runs per-iteration logistic regression on Oracle R Enterprise
//! with larger-than-memory data: Table 9 sweeps the feature ratio of a
//! PK-FK join, Table 10 sweeps the join-attribute domain size of an M:N
//! join. Here the same experiment runs on `morpheus-chunked`: the
//! materialized side is a [`ChunkedMatrix`] (the `ore.frame` analog), the
//! factorized side a [`ChunkedNormalizedMatrix`] — both driven by the
//! *identical* `LogisticRegressionGd::step` code.

use super::{print_rows, Row};
use crate::timing::time_median;
use morpheus_chunked::{ChunkedMatrix, ChunkedNormalizedMatrix, Executor};
use morpheus_core::LinearOperand;
use morpheus_data::synth::{MnJoinSpec, PkFkSpec};
use morpheus_dense::DenseMatrix;
use morpheus_ml::logreg::LogisticRegressionGd;

fn per_iteration_times<M: LinearOperand, F: LinearOperand>(
    tm: &M,
    tf: &F,
    labels: &DenseMatrix,
    reps: usize,
) -> (f64, f64) {
    let trainer = LogisticRegressionGd::new(1e-4, 1);
    let d = tm.ncols();
    let (t_m, _) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(tm, labels, &mut w);
        w
    });
    let (t_f, _) = time_median(reps, || {
        let mut w = DenseMatrix::zeros(d, 1);
        trainer.step(tf, labels, &mut w);
        w
    });
    (t_m, t_f)
}

/// Table 9: per-iteration logistic regression on the chunked backend for a
/// PK-FK join, varying the feature ratio (paper dims `(1e8, 5e6, 60)`
/// scaled by 1/2000).
pub fn table9(quick: bool) -> Vec<Row> {
    let (n_s, n_r, d_s, chunk, reps) = if quick {
        (2_000usize, 100usize, 12usize, 512usize, 1usize)
    } else {
        (50_000, 2_500, 60, 8_192, 2)
    };
    let mut rows = Vec::new();
    for fr in [0.5, 1.0, 2.0, 4.0] {
        let d_r = ((fr * d_s as f64) as usize).max(1);
        let ds = PkFkSpec {
            n_s,
            d_s,
            n_r,
            d_r,
            seed: 3,
        }
        .generate();
        let labels = ds.labels();
        let ex = Executor::default();
        let tf = ChunkedNormalizedMatrix::from_normalized(&ds.tn, chunk, ex);
        let tm = ChunkedMatrix::from_matrix(&ds.tn.materialize(), chunk, ex);
        let (t_m, t_f) = per_iteration_times(&tm, &tf, &labels, reps);
        rows.push(Row::new(
            format!("FR={fr}"),
            vec![
                ("Materialized", t_m),
                ("Morpheus", t_f),
                ("speedup", t_m / t_f),
            ],
        ));
    }
    print_rows(
        "Table 9: per-iteration logistic regression on the chunked (ORE-analog) backend, PK-FK join (seconds)",
        &rows,
    );
    rows
}

/// Table 10: per-iteration logistic regression on the chunked backend for
/// an M:N join, varying the join-attribute domain size (paper dims
/// `(1e6, 1e6, 200, 200)` scaled by 1/500).
pub fn table10(quick: bool) -> Vec<Row> {
    let (n_s, d, chunk, reps, domains): (usize, usize, usize, usize, Vec<usize>) = if quick {
        (300, 8, 256, 1, vec![150, 30])
    } else {
        // Degrees 0.5, 0.1, 0.05, 0.01 as in the paper.
        (2_000, 40, 8_192, 1, vec![1_000, 200, 100, 20])
    };
    let mut rows = Vec::new();
    for n_u in domains {
        let ds = MnJoinSpec {
            n_s,
            n_r: n_s,
            d_s: d,
            d_r: d,
            n_u,
            seed: 9,
        }
        .generate();
        let labels = ds.labels();
        let ex = Executor::default();
        let tf = ChunkedNormalizedMatrix::from_normalized(&ds.tn, chunk, ex);
        let tm = ChunkedMatrix::from_matrix(&ds.tn.materialize(), chunk, ex);
        let (t_m, t_f) = per_iteration_times(&tm, &tf, &labels, reps);
        rows.push(Row::new(
            format!("nU={n_u} (deg={:.3})", n_u as f64 / n_s as f64),
            vec![
                ("|T|", ds.tn.rows() as f64),
                ("Materialized", t_m),
                ("Morpheus", t_f),
                ("speedup", t_m / t_f),
            ],
        ));
    }
    print_rows(
        "Table 10: per-iteration logistic regression on the chunked (ORE-analog) backend, M:N join (seconds)",
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_quick_runs() {
        let rows = table9(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.get("speedup").unwrap() > 0.0);
        }
    }

    #[test]
    fn table10_quick_runs_and_blowup_grows() {
        let rows = table10(true);
        assert_eq!(rows.len(), 2);
        // Smaller domain ⇒ bigger join output.
        assert!(rows[1].get("|T|").unwrap() > rows[0].get("|T|").unwrap());
    }

    #[test]
    fn chunked_backends_agree_on_the_model() {
        let ds = PkFkSpec {
            n_s: 500,
            d_s: 4,
            n_r: 50,
            d_r: 8,
            seed: 1,
        }
        .generate();
        let labels = ds.labels();
        let ex = Executor::new(2);
        let tf = ChunkedNormalizedMatrix::from_normalized(&ds.tn, 128, ex);
        let tm = ChunkedMatrix::from_matrix(&ds.tn.materialize(), 128, ex);
        let trainer = LogisticRegressionGd::new(1e-3, 4);
        let wf = trainer.fit(&tf, &labels);
        let wm = trainer.fit(&tm, &labels);
        assert!(wf.w.approx_eq(&wm.w, 1e-9));
    }
}
