//! Ablation studies for the design choices the paper calls out.
//!
//! * cross-product: naive (Algorithm 1) vs efficient (Algorithm 2) — the
//!   `diag(colSums(K))^½` trick and symmetry exploitation (§3.3.5).
//! * LMM multiplication order: `K (R X)` vs the materializing `(K R) X`
//!   (§3.3.3).
//! * the heuristic decision rule: how often τ=5/ρ=1 gets the F-vs-M choice
//!   right across the operator grid (§3.7, §5.1).

use super::{print_rows, Row};
use crate::timing::time_median;
use morpheus_core::DecisionRule;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use std::hint::black_box;

/// Cross-product: Algorithm 1 (naive) vs Algorithm 2 (efficient).
pub fn ablation_crossprod(quick: bool) -> Vec<Row> {
    let (n_r, d_s, reps) = if quick { (200, 10, 1) } else { (2_000, 20, 3) };
    let mut rows = Vec::new();
    for fr in [1.0, 2.0, 4.0] {
        for tr in [5.0, 20.0] {
            let ds = PkFkSpec::from_ratios(tr, fr, n_r, d_s, 3).generate();
            let (t_naive, _) = time_median(reps, || black_box(ds.tn.crossprod_naive()));
            let (t_eff, _) = time_median(reps, || black_box(ds.tn.crossprod()));
            // Sanity: both compute the same matrix.
            assert!(ds.tn.crossprod_naive().approx_eq(&ds.tn.crossprod(), 1e-9));
            rows.push(Row::new(
                format!("TR={tr} FR={fr}"),
                vec![
                    ("naive (Alg.1)", t_naive),
                    ("efficient (Alg.2)", t_eff),
                    ("gain", t_naive / t_eff),
                ],
            ));
        }
    }
    print_rows(
        "Ablation: cross-product naive (Alg. 1) vs efficient (Alg. 2) (seconds)",
        &rows,
    );
    rows
}

/// LMM multiplication order: `K (R X)` (factorized) vs `(K R) X`
/// (equivalent to materializing the join part).
pub fn ablation_order(quick: bool) -> Vec<Row> {
    let (n_r, d_s, reps) = if quick { (200, 10, 1) } else { (2_000, 20, 3) };
    let mut rows = Vec::new();
    for (tr, fr) in [(5.0, 2.0), (20.0, 2.0), (20.0, 4.0)] {
        let ds = PkFkSpec::from_ratios(tr, fr, n_r, d_s, 7).generate();
        let x = DenseMatrix::from_fn(ds.tn.cols(), 2, |i, j| ((i + j) % 5) as f64 * 0.2);
        let (t_good, _) = time_median(reps, || black_box(ds.tn.lmm(&x)));
        let (t_bad, _) = time_median(reps, || black_box(ds.tn.lmm_materialized_order(&x)));
        assert!(ds
            .tn
            .lmm(&x)
            .approx_eq(&ds.tn.lmm_materialized_order(&x), 1e-10));
        rows.push(Row::new(
            format!("TR={tr} FR={fr}"),
            vec![
                ("K(RX)", t_good),
                ("(KR)X", t_bad),
                ("gain", t_bad / t_good),
            ],
        ));
    }
    print_rows(
        "Ablation: LMM multiplication order K(RX) vs (KR)X (seconds)",
        &rows,
    );
    rows
}

/// Decision-rule evaluation: across the (TR, FR) grid, compare the rule's
/// prediction with the observed LMM speedup and report the confusion
/// counts. The paper tunes τ and ρ so that "factorize" predictions are
/// almost never wrong, accepting missed wins near the boundary.
pub fn ablation_decision(quick: bool) -> Vec<Row> {
    let (n_r, d_s, reps) = if quick { (200, 10, 1) } else { (2_000, 20, 3) };
    let (trs, frs): (Vec<f64>, Vec<f64>) = if quick {
        (vec![2.0, 10.0], vec![0.5, 2.0])
    } else {
        (
            vec![1.0, 2.0, 5.0, 10.0, 20.0],
            vec![0.25, 0.5, 1.0, 2.0, 4.0],
        )
    };
    let rule = DecisionRule::default();
    let mut rows = Vec::new();
    let mut correct = 0usize;
    let mut wrong_factorize = 0usize; // predicted F, but M was faster
    let mut missed_win = 0usize; // predicted M, but F was faster
    for &tr in &trs {
        for &fr in &frs {
            let ds = PkFkSpec::from_ratios(tr, fr, n_r, d_s, 11).generate();
            let tm = ds.tn.materialize();
            let x = DenseMatrix::from_fn(ds.tn.cols(), 2, |i, j| ((i + j) % 3) as f64);
            let (t_f, _) = time_median(reps, || black_box(ds.tn.lmm(&x)));
            let (t_m, _) = time_median(reps, || black_box(tm.matmul_dense(&x)));
            let speedup = t_m / t_f;
            let predicted_f = rule.should_factorize(&ds.tn);
            let actually_f = speedup > 1.0;
            match (predicted_f, actually_f) {
                (true, true) | (false, false) => correct += 1,
                (true, false) => wrong_factorize += 1,
                (false, true) => missed_win += 1,
            }
            rows.push(Row::new(
                format!("TR={tr} FR={fr}"),
                vec![
                    ("speedup", speedup),
                    ("predicted F", if predicted_f { 1.0 } else { 0.0 }),
                ],
            ));
        }
    }
    print_rows(
        "Ablation: decision rule (τ=5, ρ=1) predictions vs observed LMM speedups",
        &rows,
    );
    println!(
        "decision rule: {correct} correct, {wrong_factorize} wrong-factorize, {missed_win} missed-wins (conservative by design)"
    );
    rows
}

/// Adaptive execution sanity check exposed to the harness: with the
/// heuristic strategy the planner must route low-redundancy joins to
/// materialized execution (the old construction-time `AdaptiveMatrix`
/// behavior, now one strategy of `PlannedMatrix`).
pub fn adaptive_demo() -> (bool, bool) {
    use morpheus_core::cost::OpKind;
    use morpheus_core::{DecisionRule, PlannedMatrix, Strategy};
    let hot = PkFkSpec::from_ratios(20.0, 4.0, 200, 10, 1).generate();
    let cold = PkFkSpec::from_ratios(1.0, 0.25, 200, 12, 1).generate();
    let strategy = Strategy::Heuristic(DecisionRule::default());
    let a_hot = PlannedMatrix::with_strategy(hot.tn, strategy);
    let a_cold = PlannedMatrix::with_strategy(cold.tn, strategy);
    let routed = |t: &PlannedMatrix| t.plan(OpKind::Lmm { m: 1 }).expect("factorized repr");
    (routed(&a_hot).factorized, routed(&a_cold).factorized)
}

/// Entry point used by `repro ablation-decision` to also demo adaptive
/// execution.
pub fn print_adaptive_demo() {
    let (hot, cold) = adaptive_demo();
    println!("\nheuristic planner routing: TR=20/FR=4 -> factorized = {hot}; TR=1/FR=0.25 -> factorized = {cold}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossprod_ablation_quick() {
        let rows = ablation_crossprod(true);
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn order_ablation_quick_and_good_order_wins_at_high_ratio() {
        let rows = ablation_order(true);
        // Even quick mode should show the good order no slower at TR=20 FR=4.
        let last = rows.last().unwrap();
        assert!(last.get("gain").unwrap() > 0.5);
    }

    #[test]
    fn decision_ablation_quick() {
        let rows = ablation_decision(true);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn adaptive_routes_by_redundancy() {
        let (hot, cold) = adaptive_demo();
        assert!(hot);
        assert!(!cold);
    }
}
