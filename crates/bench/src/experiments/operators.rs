//! PK-FK operator-level experiments: Figures 3, 6, and 7.
//!
//! Figure 3 reports factorized-over-materialized speedups of scalar
//! multiplication, LMM, cross-product, and pseudo-inverse over a
//! (tuple ratio × feature ratio) grid; Figure 6 covers scalar addition,
//! RMM, and the three aggregations (runtimes + speedup buckets); Figure 7
//! shows the raw runtimes of the Figure 3 operators.

use super::{print_rows, speedup_bucket, Row};
use crate::timing::time_median;
use morpheus_core::{LinearOperand, Matrix, NormalizedMatrix};
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use std::hint::black_box;

/// The operators measured by the PK-FK figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `T * 3.25` (element-wise).
    ScalarMul,
    /// `T + 3.25` (element-wise).
    ScalarAdd,
    /// `T X` with a `d x 2` parameter.
    Lmm,
    /// `X T` with a `2 x n` parameter.
    Rmm,
    /// `rowSums(T)`.
    RowSums,
    /// `colSums(T)`.
    ColSums,
    /// `sum(T)`.
    Sum,
    /// `crossprod(T)`.
    Crossprod,
    /// `ginv(T)`.
    Ginv,
}

impl Op {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Op::ScalarMul => "scalar-mul",
            Op::ScalarAdd => "scalar-add",
            Op::Lmm => "LMM",
            Op::Rmm => "RMM",
            Op::RowSums => "rowSums",
            Op::ColSums => "colSums",
            Op::Sum => "sum",
            Op::Crossprod => "crossprod",
            Op::Ginv => "ginv",
        }
    }
}

/// Runs one operator on any [`LinearOperand`] and sinks the result.
pub fn run_op<M: LinearOperand>(op: Op, t: &M, lmm_x: &DenseMatrix, rmm_x: &DenseMatrix) {
    match op {
        Op::ScalarMul => {
            black_box(t.scale(3.25));
        }
        Op::ScalarAdd => {
            // Via the trait's materialize-free path where available: scalar
            // add is a closure op on both representations.
            black_box(t.scale(1.0).materialize().scalar_add(3.25));
        }
        Op::Lmm => {
            black_box(t.lmm(lmm_x));
        }
        Op::Rmm => {
            black_box(t.rmm(rmm_x));
        }
        Op::RowSums => {
            black_box(t.row_sums());
        }
        Op::ColSums => {
            black_box(t.col_sums());
        }
        Op::Sum => {
            black_box(t.sum());
        }
        Op::Crossprod => {
            black_box(t.crossprod());
        }
        Op::Ginv => {
            black_box(t.ginv());
        }
    }
}

/// Scalar-add needs special handling: it is a rewrite on the normalized
/// matrix but a plain map on the materialized one; route both through their
/// native implementations.
fn time_op_pair(op: Op, tn: &NormalizedMatrix, tm: &Matrix, reps: usize) -> (f64, f64) {
    let d = tn.cols();
    let n = tn.rows();
    let lmm_x = DenseMatrix::from_fn(d, 2, |i, j| ((i + j) % 5) as f64 * 0.25);
    let rmm_x = DenseMatrix::from_fn(2, n, |i, j| ((i * 3 + j) % 7) as f64 * 0.125);
    let (t_f, _) = time_median(reps, || match op {
        Op::ScalarAdd => {
            black_box(tn.scalar_add(3.25));
        }
        Op::ScalarMul => {
            black_box(tn.scalar_mul(3.25));
        }
        _ => run_op(op, tn, &lmm_x, &rmm_x),
    });
    let (t_m, _) = time_median(reps, || match op {
        Op::ScalarAdd => {
            black_box(tm.scalar_add(3.25));
        }
        Op::ScalarMul => {
            black_box(tm.scalar_mul(3.25));
        }
        _ => run_op(op, tm, &lmm_x, &rmm_x),
    });
    (t_f, t_m)
}

fn grid(quick: bool) -> (Vec<f64>, Vec<f64>, usize, usize) {
    if quick {
        (vec![2.0, 10.0], vec![0.5, 2.0], 200, 10)
    } else {
        // Paper Table 4 ratios at 1/500 of the paper's n_R = 10^6.
        (
            vec![1.0, 2.0, 5.0, 10.0, 20.0],
            vec![0.25, 0.5, 1.0, 2.0, 4.0],
            2_000,
            20,
        )
    }
}

fn sweep(ops: &[Op], quick: bool, title: &str) -> Vec<Row> {
    let (trs, frs, n_r, d_s) = grid(quick);
    let reps = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    for &tr in &trs {
        for &fr in &frs {
            let ds = PkFkSpec::from_ratios(tr, fr, n_r, d_s, 42).generate();
            let tm = ds.tn.materialize();
            let mut values = Vec::new();
            for &op in ops {
                let (t_f, t_m) = time_op_pair(op, &ds.tn, &tm, reps);
                values.push((op.name(), t_m / t_f));
            }
            rows.push(Row::new(format!("TR={tr} FR={fr}"), values));
        }
    }
    print_rows(title, &rows);
    // Paper-style bucket rendering per operator.
    for &op in ops {
        println!("\n{} speedup buckets (rows: TR, cols: FR):", op.name());
        print!("{:>8}", "TR\\FR");
        for &fr in &frs {
            print!("{fr:>8}");
        }
        println!();
        for &tr in &trs {
            print!("{tr:>8}");
            for &fr in &frs {
                let row = rows
                    .iter()
                    .find(|r| r.label == format!("TR={tr} FR={fr}"))
                    .expect("grid row");
                let sp = row.get(op.name()).expect("op column");
                print!("{:>8}", speedup_bucket(sp));
            }
            println!();
        }
    }
    rows
}

/// Figure 3: speedups of scalar multiplication, LMM, cross-product, and
/// pseudo-inverse over the (TR, FR) grid.
pub fn fig3(quick: bool) -> Vec<Row> {
    sweep(
        &[Op::ScalarMul, Op::Lmm, Op::Crossprod, Op::Ginv],
        quick,
        "Figure 3: PK-FK operator speedups (factorized over materialized)",
    )
}

/// Figure 6: speedups of scalar addition, RMM, and the aggregations.
pub fn fig6(quick: bool) -> Vec<Row> {
    sweep(
        &[Op::ScalarAdd, Op::Rmm, Op::RowSums, Op::ColSums, Op::Sum],
        quick,
        "Figure 6: PK-FK operator speedups (scalar add, RMM, aggregations)",
    )
}

/// Figure 7: raw runtimes of the Figure 3 operators, varying TR at fixed
/// FR and varying FR at fixed TR.
pub fn fig7(quick: bool) -> Vec<Row> {
    let (n_r, d_s, reps) = if quick { (200, 10, 1) } else { (2_000, 20, 3) };
    let ops = [Op::ScalarMul, Op::Lmm, Op::Crossprod, Op::Ginv];
    let mut rows = Vec::new();
    let trs: &[f64] = if quick {
        &[2.0, 10.0]
    } else {
        &[5.0, 10.0, 15.0, 20.0]
    };
    let frs: &[f64] = if quick {
        &[0.5, 2.0]
    } else {
        &[0.5, 1.0, 2.0, 4.0]
    };
    for (fixed_fr, sweep_tr) in [(2.0, true), (4.0, true)] {
        let _ = sweep_tr;
        for &tr in trs {
            let ds = PkFkSpec::from_ratios(tr, fixed_fr, n_r, d_s, 42).generate();
            let tm = ds.tn.materialize();
            let mut values = Vec::new();
            for &op in &ops {
                let (t_f, t_m) = time_op_pair(op, &ds.tn, &tm, reps);
                values.push((op.name(), t_f));
                values.push((mat_name(op), t_m));
            }
            rows.push(Row::new(format!("vary-TR: TR={tr} FR={fixed_fr}"), values));
        }
    }
    for fixed_tr in [10.0, 20.0] {
        for &fr in frs {
            let ds = PkFkSpec::from_ratios(fixed_tr, fr, n_r, d_s, 42).generate();
            let tm = ds.tn.materialize();
            let mut values = Vec::new();
            for &op in &ops {
                let (t_f, t_m) = time_op_pair(op, &ds.tn, &tm, reps);
                values.push((op.name(), t_f));
                values.push((mat_name(op), t_m));
            }
            rows.push(Row::new(format!("vary-FR: TR={fixed_tr} FR={fr}"), values));
        }
    }
    print_rows(
        "Figure 7: PK-FK operator runtimes (F columns = factorized, M columns = materialized; seconds)",
        &rows,
    );
    rows
}

fn mat_name(op: Op) -> &'static str {
    match op {
        Op::ScalarMul => "M:scalar-mul",
        Op::ScalarAdd => "M:scalar-add",
        Op::Lmm => "M:LMM",
        Op::Rmm => "M:RMM",
        Op::RowSums => "M:rowSums",
        Op::ColSums => "M:colSums",
        Op::Sum => "M:sum",
        Op::Crossprod => "M:crossprod",
        Op::Ginv => "M:ginv",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_produces_grid_and_speedups() {
        let rows = fig3(true);
        assert_eq!(rows.len(), 4); // 2 TR x 2 FR
        for r in &rows {
            for &(_, v) in &r.values {
                assert!(v.is_finite() && v > 0.0);
            }
        }
    }

    #[test]
    fn fig6_quick_covers_all_ops() {
        let rows = fig6(true);
        assert_eq!(rows[0].values.len(), 5);
    }

    #[test]
    fn fig7_quick_reports_both_sides() {
        let rows = fig7(true);
        assert!(rows[0].get("LMM").is_some());
        assert!(rows[0].get("M:LMM").is_some());
    }

    #[test]
    fn high_redundancy_point_shows_factorized_win() {
        // TR=20, FR=4 must favor factorized for LMM even at small scale.
        let ds = PkFkSpec::from_ratios(20.0, 4.0, 500, 20, 1).generate();
        let tm = ds.tn.materialize();
        let (t_f, t_m) = time_op_pair(Op::Lmm, &ds.tn, &tm, 3);
        assert!(
            t_m / t_f > 1.0,
            "expected factorized LMM win at TR=20 FR=4, got {:.3}",
            t_m / t_f
        );
    }
}
