//! One module per experiment family; every public function regenerates one
//! of the paper's tables or figures as a text table on stdout and returns
//! the measured rows for programmatic inspection.
//!
//! All dimension defaults are scaled-down versions of the paper's Tables 4
//! and 5 — the tuple ratios, feature ratios, and uniqueness degrees are
//! preserved exactly; only the absolute row counts shrink to fit a small
//! machine. `quick = true` shrinks further for smoke tests.

pub mod ablation;
pub mod algorithms;
pub mod mn;
pub mod operators;
pub mod ore;
pub mod serve;
pub mod tables;

/// A single measured configuration: a label plus named numeric columns.
#[derive(Debug, Clone)]
pub struct Row {
    /// Configuration label (e.g. `"TR=10 FR=2"`).
    pub label: String,
    /// `(column name, value)` pairs; times are in seconds.
    pub values: Vec<(&'static str, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<(&'static str, f64)>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }

    /// Looks up a column by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

/// Prints a titled table of rows.
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut header = format!("{:<28}", "config");
    for (name, _) in &rows[0].values {
        header.push_str(&format!("{name:>14}"));
    }
    println!("{header}");
    for row in rows {
        let mut line = format!("{:<28}", row.label);
        for (_, v) in &row.values {
            if v.abs() >= 1e4 || (*v != 0.0 && v.abs() < 1e-3) {
                line.push_str(&format!("{v:>14.3e}"));
            } else {
                line.push_str(&format!("{v:>14.4}"));
            }
        }
        println!("{line}");
    }
}

/// The paper's Figure 3 speedup-bucket rendering: `<1`, `1-2`, `2-3`, `>3`.
pub fn speedup_bucket(speedup: f64) -> &'static str {
    if speedup < 1.0 {
        "<1"
    } else if speedup < 2.0 {
        "1-2"
    } else if speedup < 3.0 {
        "2-3"
    } else {
        ">3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_lookup() {
        let r = Row::new("x", vec![("a", 1.0), ("b", 2.0)]);
        assert_eq!(r.get("b"), Some(2.0));
        assert_eq!(r.get("c"), None);
    }

    #[test]
    fn buckets_match_figure3_legend() {
        assert_eq!(speedup_bucket(0.5), "<1");
        assert_eq!(speedup_bucket(1.5), "1-2");
        assert_eq!(speedup_bucket(2.5), "2-3");
        assert_eq!(speedup_bucket(30.0), ">3");
    }
}
