//! ML algorithm-level experiments on synthetic PK-FK data: Figures 5, 8,
//! 9, and 10.
//!
//! Each figure compares the materialized ("M") and Morpheus-factorized
//! ("F") versions of an algorithm while sweeping the tuple ratio, feature
//! ratio, iteration count, or model size (centroids/topics). The algorithm
//! implementations are the *same code* for both sides — only the operand
//! type differs.

use super::{print_rows, Row};
use crate::timing::time_median;
use morpheus_core::{LinearOperand, Matrix};
use morpheus_data::synth::{PkFkSpec, SynthDataset};
use morpheus_dense::DenseMatrix;
use morpheus_ml::gnmf::Gnmf;
use morpheus_ml::kmeans::KMeans;
use morpheus_ml::linreg::{LinearRegressionGd, LinearRegressionNe};
use morpheus_ml::logreg::LogisticRegressionGd;
use std::hint::black_box;

/// The four paper algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Logistic regression (GD), 20 iterations.
    LogReg,
    /// Linear regression via normal equations.
    LinRegNe,
    /// Linear regression via gradient descent.
    LinRegGd,
    /// K-Means with `k` centroids.
    KMeans(usize),
    /// GNMF with rank `r`.
    Gnmf(usize),
}

fn run<M: LinearOperand>(algo: Algo, t: &M, y: &DenseMatrix, iters: usize) {
    match algo {
        Algo::LogReg => {
            black_box(LogisticRegressionGd::new(1e-3, iters).fit(t, y));
        }
        Algo::LinRegNe => {
            black_box(LinearRegressionNe::new().fit(t, y));
        }
        Algo::LinRegGd => {
            black_box(LinearRegressionGd::new(1e-6, iters).fit(t, y));
        }
        Algo::KMeans(k) => {
            black_box(KMeans::new(k, iters).fit(t));
        }
        Algo::Gnmf(r) => {
            black_box(Gnmf::new(r, iters).fit(t));
        }
    }
}

fn time_algo(algo: Algo, ds: &SynthDataset, tm: &Matrix, iters: usize, reps: usize) -> (f64, f64) {
    let y = match algo {
        Algo::LogReg => ds.labels(),
        _ => ds.y.clone(),
    };
    let (t_f, _) = time_median(reps, || run(algo, &ds.tn, &y, iters));
    let (t_m, _) = time_median(reps, || run(algo, tm, &y, iters));
    (t_f, t_m)
}

struct Dims {
    n_r: usize,
    d_s: usize,
    trs: Vec<f64>,
    frs: Vec<f64>,
    iters: usize,
    reps: usize,
}

fn dims(quick: bool) -> Dims {
    if quick {
        Dims {
            n_r: 100,
            d_s: 8,
            trs: vec![2.0, 10.0],
            frs: vec![0.5, 2.0],
            iters: 3,
            reps: 1,
        }
    } else {
        // Paper Table 4 ratios at 1/1000 of n_R = 10^6.
        Dims {
            n_r: 1_000,
            d_s: 20,
            trs: vec![5.0, 10.0, 15.0, 20.0],
            frs: vec![1.0, 2.0, 3.0, 4.0],
            iters: 20,
            reps: 1,
        }
    }
}

/// Generic TR/FR sweep for one algorithm.
fn tr_fr_sweep(algo: Algo, title: &str, quick: bool) -> Vec<Row> {
    let cfg = dims(quick);
    let mut rows = Vec::new();
    // Vary TR at FR in {2, 4} (paper row a1/b1/c1/d1 style).
    for &fr in &[2.0, 4.0] {
        for &tr in &cfg.trs {
            let ds = PkFkSpec::from_ratios(tr, fr, cfg.n_r, cfg.d_s, 17).generate();
            let tm = ds.tn.materialize();
            let (t_f, t_m) = time_algo(algo, &ds, &tm, cfg.iters, cfg.reps);
            rows.push(Row::new(
                format!("vary-TR: TR={tr} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    // Vary FR at TR in {10, 20}.
    for &tr in &[10.0, 20.0] {
        for &fr in &cfg.frs {
            let ds = PkFkSpec::from_ratios(tr, fr, cfg.n_r, cfg.d_s, 19).generate();
            let tm = ds.tn.materialize();
            let (t_f, t_m) = time_algo(algo, &ds, &tm, cfg.iters, cfg.reps);
            rows.push(Row::new(
                format!("vary-FR: TR={tr} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    print_rows(title, &rows);
    rows
}

/// Figure 5(a): logistic regression vs TR and FR (20 iterations).
pub fn fig5a(quick: bool) -> Vec<Row> {
    tr_fr_sweep(
        Algo::LogReg,
        "Figure 5(a): logistic regression runtimes (seconds)",
        quick,
    )
}

/// Figure 5(b): linear regression (normal equations) vs TR and FR.
pub fn fig5b(quick: bool) -> Vec<Row> {
    tr_fr_sweep(
        Algo::LinRegNe,
        "Figure 5(b): linear regression (normal equations) runtimes (seconds)",
        quick,
    )
}

/// Figure 5(c): K-Means vs iterations (k=10) and vs number of centroids.
pub fn fig5c(quick: bool) -> Vec<Row> {
    let cfg = dims(quick);
    let mut rows = Vec::new();
    let iter_sweep: &[usize] = if quick { &[2, 4] } else { &[5, 10, 15, 20] };
    let k_sweep: &[usize] = if quick { &[2, 4] } else { &[5, 10, 15, 20] };
    for &fr in &[2.0, 4.0] {
        let ds = PkFkSpec::from_ratios(20.0, fr, cfg.n_r, cfg.d_s, 23).generate();
        let tm = ds.tn.materialize();
        for &it in iter_sweep {
            let (t_f, t_m) = time_algo(Algo::KMeans(10.min(ds.tn.cols())), &ds, &tm, it, cfg.reps);
            rows.push(Row::new(
                format!("vary-iters: it={it} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
        for &k in k_sweep {
            let (t_f, t_m) = time_algo(Algo::KMeans(k), &ds, &tm, cfg.iters.min(10), cfg.reps);
            rows.push(Row::new(
                format!("vary-k: k={k} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    print_rows("Figure 5(c): K-Means runtimes (seconds)", &rows);
    rows
}

/// Figure 5(d): GNMF vs iterations (r=5) and vs number of topics.
pub fn fig5d(quick: bool) -> Vec<Row> {
    let cfg = dims(quick);
    let mut rows = Vec::new();
    let iter_sweep: &[usize] = if quick { &[2, 4] } else { &[5, 10, 15, 20] };
    let r_sweep: &[usize] = if quick { &[2, 3] } else { &[2, 4, 6, 8, 10] };
    for &fr in &[2.0, 4.0] {
        let ds = PkFkSpec::from_ratios(20.0, fr, cfg.n_r, cfg.d_s, 29).generate();
        let tm = ds.tn.materialize();
        for &it in iter_sweep {
            let (t_f, t_m) = time_algo(Algo::Gnmf(5), &ds, &tm, it, cfg.reps);
            rows.push(Row::new(
                format!("vary-iters: it={it} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
        for &r in r_sweep {
            let (t_f, t_m) = time_algo(Algo::Gnmf(r), &ds, &tm, cfg.iters.min(10), cfg.reps);
            rows.push(Row::new(
                format!("vary-topics: r={r} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    print_rows("Figure 5(d): GNMF runtimes (seconds)", &rows);
    rows
}

/// Figure 8: linear regression with gradient descent vs TR, FR, and
/// iteration count.
pub fn fig8(quick: bool) -> Vec<Row> {
    let mut rows = tr_fr_sweep(
        Algo::LinRegGd,
        "Figure 8(a,b): linear regression (GD) runtimes (seconds)",
        quick,
    );
    let cfg = dims(quick);
    let iter_sweep: &[usize] = if quick { &[2, 4] } else { &[5, 10, 15, 20] };
    let mut iter_rows = Vec::new();
    for &fr in &[2.0, 4.0] {
        let ds = PkFkSpec::from_ratios(20.0, fr, cfg.n_r, cfg.d_s, 31).generate();
        let tm = ds.tn.materialize();
        for &it in iter_sweep {
            let (t_f, t_m) = time_algo(Algo::LinRegGd, &ds, &tm, it, cfg.reps);
            iter_rows.push(Row::new(
                format!("vary-iters: it={it} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    print_rows(
        "Figure 8(c): linear regression (GD) vs iterations",
        &iter_rows,
    );
    rows.extend(iter_rows);
    rows
}

/// Figure 9: logistic regression vs iteration count.
pub fn fig9(quick: bool) -> Vec<Row> {
    let cfg = dims(quick);
    let iter_sweep: &[usize] = if quick { &[2, 4] } else { &[5, 10, 15, 20] };
    let mut rows = Vec::new();
    for &fr in &[2.0, 4.0] {
        let ds = PkFkSpec::from_ratios(20.0, fr, cfg.n_r, cfg.d_s, 37).generate();
        let tm = ds.tn.materialize();
        for &it in iter_sweep {
            let (t_f, t_m) = time_algo(Algo::LogReg, &ds, &tm, it, cfg.reps);
            rows.push(Row::new(
                format!("it={it} FR={fr}"),
                vec![("F", t_f), ("M", t_m), ("speedup", t_m / t_f)],
            ));
        }
    }
    print_rows(
        "Figure 9: logistic regression vs iterations (seconds)",
        &rows,
    );
    rows
}

/// Figure 10: K-Means and GNMF vs TR and FR.
pub fn fig10(quick: bool) -> Vec<Row> {
    let mut rows = tr_fr_sweep(
        Algo::KMeans(10),
        "Figure 10(1): K-Means vs TR and FR (seconds)",
        quick,
    );
    rows.extend(tr_fr_sweep(
        Algo::Gnmf(5),
        "Figure 10(2): GNMF vs TR and FR (seconds)",
        quick,
    ));
    rows
}

/// Checks that an M-vs-F run produced identical models (used by the smoke
/// tests; the performance harness assumes it).
pub fn verify_equivalence(quick: bool) -> bool {
    let cfg = dims(quick);
    let ds = PkFkSpec::from_ratios(10.0, 2.0, cfg.n_r.min(200), cfg.d_s.min(8), 3).generate();
    let tm = ds.tn.materialize();
    let y = ds.labels();
    let f = LogisticRegressionGd::new(1e-3, 5).fit(&ds.tn, &y);
    let m = LogisticRegressionGd::new(1e-3, 5).fit(&tm, &y);
    f.w.approx_eq(&m.w, 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalence_holds() {
        assert!(verify_equivalence(true));
    }

    #[test]
    fn fig5a_quick_runs() {
        let rows = fig5a(true);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.get("F").unwrap() > 0.0);
            assert!(r.get("M").unwrap() > 0.0);
        }
    }

    #[test]
    fn fig5c_and_5d_quick_run() {
        assert!(!fig5c(true).is_empty());
        assert!(!fig5d(true).is_empty());
    }

    #[test]
    fn fig8_fig9_fig10_quick_run() {
        assert!(!fig8(true).is_empty());
        assert!(!fig9(true).is_empty());
        assert!(!fig10(true).is_empty());
    }
}
