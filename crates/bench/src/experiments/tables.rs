//! Table reproductions: Table 3/11 (cost model), Table 6 (dataset
//! statistics), Table 7 (real-data runtimes), Table 8 (Orion comparison),
//! and Table 12 (data-preparation overhead).

use super::{print_rows, Row};
use crate::timing::{time_median, time_once};
use morpheus_core::cost::{self, Dims};
use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_data::realsim;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::gnmf::Gnmf;
use morpheus_ml::kmeans::KMeans;
use morpheus_ml::linreg::LinearRegressionNe;
use morpheus_ml::logreg::LogisticRegressionGd;
use morpheus_ml::orion::OrionLogisticRegression;
use std::hint::black_box;

/// Default scale for the simulated real datasets (1/50 of Table 6 — chosen
/// so the whole Table 7 suite runs in minutes on one core while preserving
/// every tuple/feature ratio).
pub const REAL_SCALE: f64 = 0.02;

/// Table 3 + Table 11: the arithmetic cost model and its asymptotics.
pub fn table3() -> Vec<Row> {
    let mut rows = Vec::new();
    for (tr, fr) in [(5.0, 1.0), (10.0, 2.0), (20.0, 4.0), (100.0, 4.0)] {
        let n_r = 1.0e6;
        let d_s = 20.0;
        let d = Dims {
            n_s: tr * n_r,
            d_s,
            n_r,
            d_r: fr * d_s,
        };
        rows.push(Row::new(
            format!("TR={tr} FR={fr}"),
            vec![
                ("scalar/agg", cost::scalar_op(&d).speedup()),
                ("LMM", cost::lmm(&d, 1.0).speedup()),
                ("RMM", cost::rmm(&d, 1.0).speedup()),
                ("crossprod", cost::crossprod(&d).speedup()),
                ("ginv", cost::pseudo_inverse(&d).speedup()),
                ("lim 1+FR", cost::linear_limit_tr(fr)),
                ("lim (1+FR)^2", cost::crossprod_limit_tr(fr)),
            ],
        ));
    }
    print_rows(
        "Table 3/11: predicted speedups from the arithmetic cost model",
        &rows,
    );
    rows
}

/// Table 6: the simulated real-dataset statistics, at full scale and at the
/// benchmark scale.
pub fn table6(scale: f64) -> Vec<Row> {
    let mut rows = Vec::new();
    for spec in realsim::catalog() {
        let mut values = vec![
            ("nS", spec.entity.rows as f64),
            ("dS", spec.entity.cols as f64),
            ("nnzS", spec.entity.nnz as f64),
            ("q", spec.attributes.len() as f64),
        ];
        let d_r: usize = spec.attributes.iter().map(|a| a.cols).sum();
        let n_r_max = spec.attributes.iter().map(|a| a.rows).max().unwrap_or(1);
        values.push(("sum dRi", d_r as f64));
        values.push(("TR(min)", spec.entity.rows as f64 / n_r_max as f64));
        rows.push(Row::new(spec.name, values));
    }
    print_rows("Table 6: dataset statistics (paper scale)", &rows);

    let mut scaled = Vec::new();
    for spec in realsim::catalog() {
        let ds = spec.generate(scale, 1);
        let stats = ds.tn.stats();
        scaled.push(Row::new(
            spec.name,
            vec![
                ("nS", stats.n_rows as f64),
                ("d", stats.d_total as f64),
                ("TR(min)", stats.tuple_ratio),
                (
                    "nnz",
                    ds.tn.parts().iter().map(|p| p.table().nnz()).sum::<usize>() as f64,
                ),
            ],
        ));
    }
    print_rows(
        &format!("Table 6 (continued): generated at scale {scale}"),
        &scaled,
    );
    rows.extend(scaled);
    rows
}

fn run_algo_pair(
    name: &'static str,
    tn: &NormalizedMatrix,
    tm: &Matrix,
    y: &DenseMatrix,
    labels: &DenseMatrix,
) -> Row {
    let iters = 20;
    let (t, sp) = match name {
        "lin-reg" => {
            let tr = LinearRegressionNe::with_ridge(1e-6);
            let (t_m, _) = time_once(|| black_box(tr.fit(tm, y)));
            let (t_f, _) = time_once(|| black_box(tr.fit(tn, y)));
            (t_m, t_m / t_f)
        }
        "log-reg" => {
            let tr = LogisticRegressionGd::new(1e-4, iters);
            let (t_m, _) = time_once(|| black_box(tr.fit(tm, labels)));
            let (t_f, _) = time_once(|| black_box(tr.fit(tn, labels)));
            (t_m, t_m / t_f)
        }
        "k-means" => {
            let tr = KMeans::new(10, iters);
            let (t_m, _) = time_once(|| black_box(tr.fit(tm)));
            let (t_f, _) = time_once(|| black_box(tr.fit(tn)));
            (t_m, t_m / t_f)
        }
        "gnmf" => {
            let tr = Gnmf::new(5, iters);
            let (t_m, _) = time_once(|| black_box(tr.fit(tm)));
            let (t_f, _) = time_once(|| black_box(tr.fit(tn)));
            (t_m, t_m / t_f)
        }
        other => unreachable!("unknown algorithm {other}"),
    };
    Row::new(name, vec![("M (s)", t), ("speedup", sp)])
}

/// Table 7: the four algorithms on the seven simulated real datasets —
/// materialized runtime and Morpheus speedup.
pub fn table7(quick: bool) -> Vec<Row> {
    let scale = if quick { 0.002 } else { REAL_SCALE };
    let mut all = Vec::new();
    for spec in realsim::catalog() {
        let ds = spec.generate(scale, 11);
        let tm = ds.tn.materialize();
        let y = ds.y.clone();
        let labels = ds.labels();
        let mut rows = Vec::new();
        for algo in ["lin-reg", "log-reg", "k-means", "gnmf"] {
            let mut row = run_algo_pair(algo, &ds.tn, &tm, &y, &labels);
            row.label = format!("{} / {}", spec.name, row.label);
            rows.push(row);
        }
        print_rows(
            &format!("Table 7 ({}): M runtime and Morpheus speedup", spec.name),
            &rows,
        );
        all.extend(rows);
    }
    all
}

/// Table 8: Morpheus vs the Orion-style algorithm-specific tool, varying
/// the feature ratio (paper: `(n_S, n_R, d_S, iters) = (2e6, 1e5, 20, 10)`,
/// here at 1/40 scale).
pub fn table8(quick: bool) -> Vec<Row> {
    let (n_s, n_r, d_s, iters, reps) = if quick {
        (2_000usize, 100usize, 8usize, 3usize, 1usize)
    } else {
        (50_000, 2_500, 20, 10, 2)
    };
    let mut rows = Vec::new();
    for fr in [1.0, 2.0, 3.0, 4.0] {
        let d_r = (fr * d_s as f64) as usize;
        let ds = PkFkSpec {
            n_s,
            d_s,
            n_r,
            d_r,
            seed: 5,
        }
        .generate();
        let tm = ds.tn.materialize();
        let y = ds.labels();
        let parts = ds.tn.parts();
        let s = parts[0].table().to_dense();
        let r = parts[1].table().to_dense();
        let fk = parts[1].indicator().assignment(parts[1].table().rows());

        let trainer = LogisticRegressionGd::new(1e-3, iters);
        let (t_m, _) = time_median(reps, || black_box(trainer.fit(&tm, &y)));
        let (t_f, _) = time_median(reps, || black_box(trainer.fit(&ds.tn, &y)));
        let orion = OrionLogisticRegression::new(1e-3, iters);
        let (t_o, _) = time_median(reps, || black_box(orion.fit(&s, &fk, &r, &y)));
        rows.push(Row::new(
            format!("FR={fr}"),
            vec![
                ("Orion speedup", t_m / t_o),
                ("Morpheus speedup", t_m / t_f),
                ("M (s)", t_m),
            ],
        ));
    }
    print_rows(
        "Table 8: factorized logistic-regression speedups over materialized — Orion vs Morpheus",
        &rows,
    );
    rows
}

/// Table 12: data-preparation time (normalized-matrix construction vs join
/// materialization) compared with 20-iteration logistic regression.
pub fn table12(quick: bool) -> Vec<Row> {
    let scale = if quick { 0.002 } else { REAL_SCALE };
    let mut rows = Vec::new();
    for spec in realsim::catalog() {
        let ds = spec.generate(scale, 13);
        let labels = ds.labels();
        // F prep: building the indicator matrices + validation from raw
        // assignment columns (what Morpheus does after read.csv).
        let raw: Vec<(Vec<usize>, Matrix)> = ds
            .tn
            .parts()
            .iter()
            .skip(1)
            .map(|p| {
                let fk = p.indicator().assignment(p.table().rows());
                (fk, p.table().clone())
            })
            .collect();
        let s_table = ds.tn.parts()[0].table().clone();
        let (prep_f, _) = time_once(|| {
            black_box(NormalizedMatrix::star(s_table.clone(), raw.clone()));
        });
        // M prep: materializing the join output.
        let (prep_m, tm) = time_once(|| ds.tn.materialize());
        // Logistic regression, 20 iterations, both sides.
        let trainer = LogisticRegressionGd::new(1e-4, 20);
        let (lr_m, _) = time_once(|| black_box(trainer.fit(&tm, &labels)));
        let (lr_f, _) = time_once(|| black_box(trainer.fit(&ds.tn, &labels)));
        rows.push(Row::new(
            spec.name,
            vec![
                ("prep M", prep_m),
                ("prep F", prep_f),
                ("logreg M", lr_m),
                ("logreg F", lr_f),
                ("ratio M", prep_m / lr_m.max(1e-12)),
                ("ratio F", prep_f / lr_f.max(1e-12)),
            ],
        ));
    }
    print_rows(
        "Table 12: data-preparation time vs 20-iteration logistic regression (seconds)",
        &rows,
    );
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_asymptotics_ordering() {
        let rows = table3();
        // crossprod speedups must exceed the linear-op speedups everywhere.
        for r in &rows {
            assert!(r.get("crossprod").unwrap() >= r.get("LMM").unwrap());
        }
        // At TR=100, FR=4 the linear ops are close to 1 + FR = 5.
        let last = rows.last().unwrap();
        assert!((last.get("scalar/agg").unwrap() - 5.0).abs() < 0.25);
    }

    #[test]
    fn table6_lists_all_seven() {
        let rows = table6(0.002);
        assert_eq!(rows.len(), 14); // 7 paper-scale + 7 generated
    }

    #[test]
    fn table8_quick_runs_and_orders() {
        let rows = table8(true);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.get("Orion speedup").unwrap() > 0.0);
            assert!(r.get("Morpheus speedup").unwrap() > 0.0);
        }
    }

    #[test]
    fn table12_quick_runs() {
        let rows = table12(true);
        assert_eq!(rows.len(), 7);
        for r in &rows {
            assert!(r.get("prep F").unwrap() >= 0.0);
        }
    }
}
