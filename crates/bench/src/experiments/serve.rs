//! Serving experiment: micro-batched throughput and latency over the
//! factorized representation.
//!
//! Two phases per configuration (micro-batched vs. the batch-size-1
//! ablation, equal scorer count):
//!
//! 1. **Saturation throughput** — pipelined clients, each keeping a
//!    burst of requests in flight ([`ScoringService::submit`] the burst,
//!    then drain the tickets), so the queue stays deep and the
//!    micro-batcher can coalesce; reports requests/sec and the batching
//!    speedup. The batched service runs with a zero coalescing window:
//!    under sustained load batches form from queue depth alone, and the
//!    window would only add latency headroom at low load. A secondary
//!    closed-loop run (16 callers, one blocking request in flight each)
//!    reports the per-request serving pattern. Every response is
//!    verified bit-identical to one full-table scoring pass before any
//!    number is reported.
//! 2. **Open-loop latency** — requests arrive on a fixed schedule
//!    (paced below what the *unbatched* service can sustain, so both
//!    configurations face the same offered load) and latency is
//!    measured from the *scheduled* arrival, which charges queueing
//!    delay honestly even when a client submits late
//!    (coordinated-omission correction). Reports p50/p95/p99.
//!
//! Shed requests and the coalesce ratio come straight from the service's
//! [`ServeStats`] snapshot.

use super::{print_rows, Row};
use morpheus_core::Strategy;
use morpheus_data::synth::PkFkSpec;
use morpheus_dense::DenseMatrix;
use morpheus_ml::linreg;
use morpheus_serve::{ScoringModel, ScoringService, ServeConfig, ServeStats};
use std::time::{Duration, Instant};

/// One serving configuration under test.
struct Config {
    label: &'static str,
    batch_max: usize,
    window: Duration,
}

/// Deterministic per-client request stream: small row sets, like entity
/// lookups in online scoring.
fn request(n_rows: usize, client: usize, k: usize) -> Vec<usize> {
    let mix = |x: usize| (x.wrapping_mul(2654435761)) % n_rows;
    let len = 1 + (client + k) % 3;
    (0..len).map(|j| mix(client * 7919 + k * 31 + j)).collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn service(tn: &morpheus_core::NormalizedMatrix, w: &DenseMatrix, cfg: &Config) -> ScoringService {
    let mut config = ServeConfig::default()
        .with_strategy(Strategy::AlwaysFactorize)
        .with_scorers(2)
        .with_batch_max(cfg.batch_max)
        .with_batch_window(cfg.window);
    // Admission control is not under test here: the queue must hold every
    // in-flight request of the pipelined drivers without shedding.
    config.queue_cap = 4096;
    ScoringService::new(tn.clone(), ScoringModel::Linear(w.clone()), config)
}

/// Pipelined saturation: `clients` threads, each running `rounds`
/// cycles of "submit a burst of `burst` requests, then drain the
/// tickets" — the pattern of a high-throughput caller funneling many
/// downstream requests through one connection. Request row sets are
/// built before the clock starts so the measurement is the service, not
/// the driver's allocator. Verifies every response bitwise against
/// `expected` and returns requests/sec.
fn saturate(
    svc: &ScoringService,
    expected: &DenseMatrix,
    clients: usize,
    rounds: usize,
    burst: usize,
) -> (f64, ServeStats) {
    /// One client's precomputed request stream: the first copy is moved
    /// into `submit()`, the twin stays behind for bitwise verification.
    type ClientRequests = (Vec<Vec<usize>>, Vec<Vec<usize>>);
    let n_rows = svc.n_rows();
    let prebuilt: Vec<ClientRequests> = (0..clients)
        .map(|c| {
            let reqs: Vec<Vec<usize>> =
                (0..rounds * burst).map(|k| request(n_rows, c, k)).collect();
            (reqs.clone(), reqs)
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (c, (to_submit, to_verify)) in prebuilt.into_iter().enumerate() {
            scope.spawn(move || {
                let mut to_submit = to_submit;
                for round in 0..rounds {
                    let base = round * burst;
                    let tickets: Vec<_> = (0..burst)
                        .map(|i| {
                            svc.submit(std::mem::take(&mut to_submit[base + i]))
                                .expect("saturation submit failed")
                        })
                        .collect();
                    for (i, ticket) in tickets.into_iter().enumerate() {
                        let got = ticket.wait().expect("saturation request failed");
                        for (j, &r) in to_verify[base + i].iter().enumerate() {
                            assert_eq!(
                                got[j].to_bits(),
                                expected.get(r, 0).to_bits(),
                                "batched response differs from full-table scoring \
                                 (client {c})"
                            );
                        }
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    ((clients * rounds * burst) as f64 / secs, svc.stats())
}

/// Closed-loop saturation: `clients` independent callers, each keeping
/// exactly one request in flight ([`ScoringService::score`] in a loop) —
/// the per-request serving pattern the micro-batcher exists to amortize.
fn saturate_closed(
    svc: &ScoringService,
    expected: &DenseMatrix,
    clients: usize,
    per_client: usize,
) -> (f64, ServeStats) {
    let n_rows = svc.n_rows();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                for k in 0..per_client {
                    let rows = request(n_rows, c, k);
                    let got = svc.score(rows.clone()).expect("closed-loop request failed");
                    for (j, &r) in rows.iter().enumerate() {
                        assert_eq!(
                            got[j].to_bits(),
                            expected.get(r, 0).to_bits(),
                            "batched response differs from full-table scoring"
                        );
                    }
                }
            });
        }
    });
    let secs = start.elapsed().as_secs_f64();
    ((clients * per_client) as f64 / secs, svc.stats())
}

/// Open-loop driver at `rate` requests/sec spread over `clients`
/// threads; returns latencies (ms, measured from scheduled arrival) and
/// the shed count.
fn open_loop(svc: &ScoringService, clients: usize, total: usize, rate: f64) -> (Vec<f64>, u64) {
    let n_rows = svc.n_rows();
    let gap = Duration::from_secs_f64(1.0 / rate);
    let epoch = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    let mut k = c;
                    while k < total {
                        let scheduled = epoch + gap * k as u32;
                        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        // A shed request under overload is counted by the
                        // service, not here.
                        if svc.score(request(n_rows, c, k)).is_ok() {
                            lat.push(scheduled.elapsed().as_secs_f64() * 1e3);
                        }
                        k += clients;
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("open-loop client panicked"))
            .collect()
    });
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latency NaN"));
    (latencies, svc.stats().shed)
}

/// Runs the serving experiment: micro-batched vs batch-size-1 at equal
/// scorer count on the PK-FK fixture. Returns one row per configuration
/// plus a speedup row.
pub fn throughput(quick: bool) -> Vec<Row> {
    let (tr, fr, n_r, d_s, clients, rounds, burst, open_total) = if quick {
        (20.0, 50.0, 100, 4, 3, 4, 1024, 1500)
    } else {
        (20.0, 50.0, 100, 4, 3, 8, 1024, 4000)
    };
    let ds = PkFkSpec::from_ratios(tr, fr, n_r, d_s, 42).generate();
    let w = DenseMatrix::from_fn(ds.tn.cols(), 1, |i, _| (i as f64 * 0.17).sin());
    let expected = linreg::predict(&ds.tn, &w);

    let configs = [
        Config {
            label: "batched",
            batch_max: 2048,
            window: Duration::ZERO,
        },
        Config {
            label: "batch=1",
            batch_max: 1,
            window: Duration::ZERO,
        },
    ];

    // Phase 1: saturation throughput. Repetitions are interleaved —
    // batched then batch-1 within each rep, fresh services every time —
    // so machine-state noise (which hits both configurations of a rep
    // alike) cancels in the per-rep ratio. The headline speedup is the
    // median of the per-rep ratios; the reported rates are per-config
    // medians.
    let reps = if quick { 5 } else { 7 };
    let mut sat_rps: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut sat_stats = Vec::new();
    for rep in 0..reps {
        for (i, cfg) in configs.iter().enumerate() {
            let svc = service(&ds.tn, &w, cfg);
            let (rps, stats) = saturate(&svc, &expected, clients, rounds, burst);
            sat_rps[i].push(rps);
            if rep == 0 {
                sat_stats.push(stats);
            }
        }
    }
    let mut ratios: Vec<f64> = (0..reps).map(|r| sat_rps[0][r] / sat_rps[1][r]).collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).expect("ratio NaN"));
    let sat_speedup = ratios[reps / 2];
    let reqs_per_sec: Vec<f64> = sat_rps
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.sort_by(|a, b| a.partial_cmp(b).expect("rate NaN"));
            r[r.len() / 2]
        })
        .collect();
    let mut closed_rps = Vec::new();
    for cfg in &configs {
        let mut best = 0.0f64;
        for _ in 0..3 {
            let svc = service(&ds.tn, &w, cfg);
            let (rps, _) = saturate_closed(&svc, &expected, 16, rounds * burst / 4);
            best = best.max(rps);
        }
        closed_rps.push(best);
    }

    // Phase 2: open-loop latency at an offered load both configurations
    // can sustain: half the *unbatched* saturation rate, capped so the
    // inter-arrival gap stays well above the OS sleep granularity.
    let rate = (reqs_per_sec[1] * 0.5).clamp(50.0, 20_000.0);
    let mut rows = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        let svc = service(&ds.tn, &w, cfg);
        let (lat, shed) = open_loop(&svc, clients, open_total, rate);
        rows.push(Row::new(
            cfg.label,
            vec![
                ("req/s", reqs_per_sec[i]),
                ("closed req/s", closed_rps[i]),
                ("p50 ms", percentile(&lat, 0.50)),
                ("p95 ms", percentile(&lat, 0.95)),
                ("p99 ms", percentile(&lat, 0.99)),
                ("coalesce", sat_stats[i].coalesce_ratio),
                ("shed", (sat_stats[i].shed + shed) as f64),
            ],
        ));
    }
    rows.push(Row::new(
        "speedup (batched / batch=1)",
        vec![
            ("req/s", sat_speedup),
            ("closed req/s", closed_rps[0] / closed_rps[1]),
        ],
    ));
    print_rows(
        "Serving: micro-batched vs per-request scoring (PK-FK fixture)",
        &rows,
    );
    rows
}
