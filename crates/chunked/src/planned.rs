//! [`PlannedChunkedMatrix`] — the per-operator planner routed through the
//! out-of-core chunked backend.
//!
//! The in-memory [`morpheus_core::PlannedMatrix`] compares calibrated
//! time estimates of the factorized and materialized routes. Out of core
//! the same comparison holds, but the prices change: both routes flatten
//! to the profile's DRAM tier (chunked working sets never fit a cache
//! tier across chunks), both pay a per-chunk dispatch overhead, and the
//! materialized route additionally pays spill I/O — writing the
//! materialized join's chunks past the resident budget once, and reading
//! them back on every pass — while the factorized route keeps only the
//! base tables resident and pays no spill traffic at all. That asymmetry
//! is the ORE argument of the paper in cost-model form, priced by
//! [`estimate_op_chunked`] with rates calibrated against the actual
//! spill directory ([`spill::io_rates`]).
//!
//! Routing reuses the exact decision core of the in-memory planner
//! ([`plan_with`]): the strategies, the tie-break, the memoized-join
//! discount, and the [`DecisionHook`] observer all behave identically —
//! only the estimates differ. Whichever route is chosen, execution is
//! delegated verbatim to [`ChunkedNormalizedMatrix`] or
//! [`ChunkedMatrix`], so planning affects scheduling, never numerics.

use crate::{spill, ChunkedMatrix, ChunkedNormalizedMatrix};
use morpheus_core::cost::{estimate_op_chunked, ChunkedCostCtx, OpKind};
use morpheus_core::{
    plan_with, Decision, DecisionHook, LinearOperand, MachineProfile, Matrix, NormalizedMatrix,
    Strategy,
};
use morpheus_dense::DenseMatrix;
use std::sync::{Arc, OnceLock};

/// Which concrete chunked representation the planned matrix carries.
#[derive(Debug, Clone)]
enum Repr {
    /// The chunked normalized form plus its source (kept for costing and
    /// the heuristic rule); operators may still go either way.
    Factorized(Box<NormalizedMatrix>, ChunkedNormalizedMatrix),
    /// Output of a closure operator routed materialized: the
    /// factorization opportunity is spent.
    Materialized(ChunkedMatrix),
}

/// Where the planned matrix gets its kernel rates from.
#[derive(Clone)]
enum ProfileSource {
    Global,
    Fixed(Arc<MachineProfile>),
}

impl ProfileSource {
    fn get(&self) -> &MachineProfile {
        match self {
            ProfileSource::Global => MachineProfile::global(),
            ProfileSource::Fixed(p) => p,
        }
    }
}

/// A chunked data matrix that plans factorized-vs-materialized execution
/// per operator call, pricing the materialized route's spill traffic.
///
/// Implements [`LinearOperand`], so ML algorithms are oblivious both to
/// the routing *and* to chunks spilling to disk. Cloning is cheap and
/// clones share the materialization memo.
#[derive(Clone)]
pub struct PlannedChunkedMatrix {
    repr: Repr,
    chunk_rows: usize,
    strategy: Strategy,
    profile: ProfileSource,
    /// Overrides the environment-derived cost context (tests, benches).
    ctx: Option<ChunkedCostCtx>,
    memo: Arc<OnceLock<ChunkedMatrix>>,
    hook: Option<DecisionHook>,
}

impl std::fmt::Debug for PlannedChunkedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedChunkedMatrix")
            .field("repr", &self.repr)
            .field("chunk_rows", &self.chunk_rows)
            .field("strategy", &self.strategy)
            .field("memoized", &self.is_memoized())
            .finish_non_exhaustive()
    }
}

impl PlannedChunkedMatrix {
    /// Plans `t` chunked into at-most-`chunk_rows` row partitions, with
    /// the process-wide strategy ([`Strategy::from_env`]) and the global
    /// machine profile.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0` or `t` is a transposed view.
    pub fn new(t: NormalizedMatrix, chunk_rows: usize) -> Self {
        Self::with_strategy(t, chunk_rows, Strategy::from_env())
    }

    /// [`PlannedChunkedMatrix::new`] with an explicit strategy.
    pub fn with_strategy(t: NormalizedMatrix, chunk_rows: usize, strategy: Strategy) -> Self {
        let fact = ChunkedNormalizedMatrix::new(&t, chunk_rows);
        PlannedChunkedMatrix {
            repr: Repr::Factorized(Box::new(t), fact),
            chunk_rows,
            strategy,
            profile: ProfileSource::Global,
            ctx: None,
            memo: Arc::new(OnceLock::new()),
            hook: None,
        }
    }

    /// Replaces the kernel-rate profile (tests, ablations).
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = ProfileSource::Fixed(Arc::new(profile));
        self
    }

    /// Replaces the environment-derived chunked cost context — budget and
    /// spill I/O rates — for tests and benches. The memoized materialized
    /// join is admitted under the same `resident_budget_bytes`, so pricing
    /// and execution stay consistent.
    pub fn with_cost_ctx(mut self, ctx: ChunkedCostCtx) -> Self {
        self.ctx = Some(ctx);
        self
    }

    /// Installs a decision-log hook, called synchronously with every
    /// routing verdict this matrix (and its closure derivations) makes.
    pub fn with_hook(mut self, hook: impl Fn(&Decision) + Send + Sync + 'static) -> Self {
        self.hook = Some(Arc::new(hook));
        self
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The chunk height, in logical rows.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// `true` when the materialized chunked join is resident (memoized or
    /// the representation itself is spent).
    pub fn is_memoized(&self) -> bool {
        matches!(self.repr, Repr::Materialized(_)) || self.memo.get().is_some()
    }

    /// Chunks of the materialized join currently spilled to disk
    /// (`0` while nothing has been materialized).
    pub fn n_spilled(&self) -> usize {
        match &self.repr {
            Repr::Materialized(m) => m.n_spilled(),
            Repr::Factorized(..) => self.memo.get().map_or(0, ChunkedMatrix::n_spilled),
        }
    }

    /// The verdict this matrix would reach for `op` right now, without
    /// executing anything or filling the memo. `None` when the
    /// representation is already materialized.
    pub fn plan(&self, op: OpKind) -> Option<Decision> {
        match &self.repr {
            Repr::Factorized(t, _) => Some(self.plan_for(t, op)),
            Repr::Materialized(_) => None,
        }
    }

    /// The cost context in effect: the explicit override, or the
    /// process-wide budget and calibrated spill I/O rates.
    fn cost_ctx(&self) -> ChunkedCostCtx {
        self.ctx.unwrap_or_else(|| {
            let (read, write) = spill::io_rates();
            ChunkedCostCtx {
                chunk_rows: self.chunk_rows,
                resident_budget_bytes: spill::resident_budget_bytes() as f64,
                spill_read_ns_per_byte: read,
                spill_write_ns_per_byte: write,
            }
        })
    }

    fn plan_for(&self, t: &NormalizedMatrix, op: OpKind) -> Decision {
        plan_with(self.strategy, t, op, self.memo.get().is_some(), || {
            estimate_op_chunked(self.profile.get(), t, op, &self.cost_ctx())
        })
    }

    fn decide(&self, t: &NormalizedMatrix, op: OpKind) -> bool {
        let decision = self.plan_for(t, op);
        if let Some(hook) = &self.hook {
            hook(&decision);
        }
        decision.factorized
    }

    /// The memoized materialized chunked join, built on first use by
    /// *streaming* row bands of the source — the whole join is never
    /// resident at once; chunks past the budget spill as they are built.
    /// Same failure model as the in-memory planner memo: a panic
    /// (injectable via `planner.memo`) leaves the cell empty, never
    /// poisoned.
    fn memo_ref(&self, t: &NormalizedMatrix) -> &ChunkedMatrix {
        self.memo.get_or_init(|| {
            morpheus_runtime::faults::maybe_panic("planner.memo");
            let budget = self.ctx.map_or_else(spill::resident_budget_bytes, |c| {
                c.resident_budget_bytes as u64
            });
            ChunkedMatrix::from_normalized_with_budget(t, self.chunk_rows, budget)
        })
    }

    /// Routes a read-only operator.
    fn run<R>(
        &self,
        op: OpKind,
        fact: impl FnOnce(&ChunkedNormalizedMatrix) -> R,
        mat: impl FnOnce(&ChunkedMatrix) -> R,
    ) -> R {
        match &self.repr {
            Repr::Materialized(m) => mat(m),
            Repr::Factorized(t, f) => {
                if self.decide(t, op) {
                    fact(f)
                } else {
                    mat(self.memo_ref(t))
                }
            }
        }
    }

    /// Routes a closure operator. A factorized verdict keeps the chunked
    /// normalized form alive (fresh memo); a materialized verdict spends
    /// the factorization opportunity.
    fn run_closure(
        &self,
        op: OpKind,
        fact_src: impl FnOnce(&NormalizedMatrix) -> NormalizedMatrix,
        fact: impl FnOnce(&ChunkedNormalizedMatrix) -> ChunkedNormalizedMatrix,
        mat: impl FnOnce(&ChunkedMatrix) -> ChunkedMatrix,
    ) -> PlannedChunkedMatrix {
        match &self.repr {
            Repr::Materialized(m) => self.derive(Repr::Materialized(mat(m))),
            Repr::Factorized(t, f) => {
                if self.decide(t, op) {
                    self.derive(Repr::Factorized(Box::new(fact_src(t)), fact(f)))
                } else {
                    self.derive(Repr::Materialized(mat(self.memo_ref(t))))
                }
            }
        }
    }

    fn derive(&self, repr: Repr) -> PlannedChunkedMatrix {
        PlannedChunkedMatrix {
            repr,
            chunk_rows: self.chunk_rows,
            strategy: self.strategy,
            profile: self.profile.clone(),
            ctx: self.ctx,
            memo: Arc::new(OnceLock::new()),
            hook: self.hook.clone(),
        }
    }
}

impl LinearOperand for PlannedChunkedMatrix {
    fn nrows(&self) -> usize {
        match &self.repr {
            Repr::Factorized(t, _) => t.rows(),
            Repr::Materialized(m) => m.nrows(),
        }
    }

    fn ncols(&self) -> usize {
        match &self.repr {
            Repr::Factorized(t, _) => t.cols(),
            Repr::Materialized(m) => m.ncols(),
        }
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(OpKind::Lmm { m: x.cols() }, |f| f.lmm(x), |m| m.lmm(x))
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(OpKind::TLmm { m: x.cols() }, |f| f.t_lmm(x), |m| m.t_lmm(x))
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(OpKind::Rmm { m: x.rows() }, |f| f.rmm(x), |m| m.rmm(x))
    }

    fn crossprod(&self) -> DenseMatrix {
        self.run(OpKind::Crossprod, |f| f.crossprod(), |m| m.crossprod())
    }

    fn row_sums(&self) -> DenseMatrix {
        self.run(OpKind::RowSums, |f| f.row_sums(), |m| m.row_sums())
    }

    fn col_sums(&self) -> DenseMatrix {
        self.run(OpKind::ColSums, |f| f.col_sums(), |m| m.col_sums())
    }

    fn sum(&self) -> f64 {
        self.run(OpKind::Sum, |f| f.sum(), |m| m.sum())
    }

    fn scale(&self, x: f64) -> Self {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_mul(x),
            |f| f.scale(x),
            |m| m.scale(x),
        )
    }

    fn squared(&self) -> Self {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_pow(2.0),
            |f| f.squared(),
            |m| m.squared(),
        )
    }

    fn ginv(&self) -> DenseMatrix {
        self.run(OpKind::Ginv, |f| f.ginv(), |m| m.ginv())
    }

    fn materialize(&self) -> Matrix {
        match &self.repr {
            Repr::Materialized(m) => m.materialize(),
            Repr::Factorized(t, _) => self.memo_ref(t).materialize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_core::PlannedMatrix;
    use std::sync::Mutex;

    fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(n_s, d_s, |i, j| ((i * 3 + j) % 7) as f64 - 2.5);
        let r = DenseMatrix::from_fn(n_r, d_r, |i, j| ((i * d_r + j) % 5) as f64 * 0.5 + 0.1);
        let fk: Vec<usize> = (0..n_s).map(|i| (i * 7 + 1) % n_r).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    fn resident_ctx(chunk_rows: usize) -> ChunkedCostCtx {
        ChunkedCostCtx {
            chunk_rows,
            resident_budget_bytes: f64::INFINITY,
            spill_read_ns_per_byte: 0.5,
            spill_write_ns_per_byte: 1.0,
        }
    }

    fn logged(
        t: NormalizedMatrix,
        chunk_rows: usize,
        strategy: Strategy,
    ) -> (PlannedChunkedMatrix, Arc<Mutex<Vec<Decision>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let planned = PlannedChunkedMatrix::with_strategy(t, chunk_rows, strategy)
            .with_profile(MachineProfile::REFERENCE)
            .with_cost_ctx(resident_ctx(chunk_rows))
            .with_hook(move |d| sink.lock().unwrap().push(*d));
        (planned, log)
    }

    #[test]
    fn always_arms_agree_and_route_unconditionally() {
        let tn = pkfk(60, 3, 8, 4);
        let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + 2 * j) as f64 * 0.3);
        let (f, f_log) = logged(tn.clone(), 16, Strategy::AlwaysFactorize);
        let (m, m_log) = logged(tn.clone(), 16, Strategy::AlwaysMaterialize);
        assert!(f.lmm(&x).approx_eq(&tn.lmm(&x), 1e-11));
        assert!(m
            .lmm(&x)
            .approx_eq(&tn.materialize().matmul_dense(&x), 1e-11));
        assert!(f_log.lock().unwrap().iter().all(|d| d.factorized));
        assert!(m_log.lock().unwrap().iter().all(|d| !d.factorized));
        assert!(!f.is_memoized());
        assert!(m.is_memoized());
        assert!(LinearOperand::crossprod(&f).approx_eq(&LinearOperand::crossprod(&m), 1e-9));
    }

    #[test]
    fn routed_results_match_the_in_memory_planner() {
        let tn = pkfk(120, 3, 10, 5);
        for strategy in [
            Strategy::CostBased,
            Strategy::AlwaysFactorize,
            Strategy::AlwaysMaterialize,
        ] {
            let chunked = PlannedChunkedMatrix::with_strategy(tn.clone(), 32, strategy)
                .with_profile(MachineProfile::REFERENCE)
                .with_cost_ctx(resident_ctx(32));
            let planned = PlannedMatrix::with_strategy(tn.clone(), strategy)
                .with_profile(MachineProfile::REFERENCE);
            let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + j) as f64 * 0.2);
            assert!(chunked.lmm(&x).approx_eq(&planned.lmm(&x), 1e-10));
            assert!(LinearOperand::row_sums(&chunked)
                .approx_eq(&LinearOperand::row_sums(&planned), 1e-10));
            assert!(LinearOperand::crossprod(&chunked)
                .approx_eq(&LinearOperand::crossprod(&planned), 1e-9));
            assert!(
                (LinearOperand::sum(&chunked) - LinearOperand::sum(&planned)).abs() < 1e-8,
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn decisions_match_brute_force_chunked_estimates() {
        let tn = pkfk(300, 3, 20, 6);
        let profile = MachineProfile::REFERENCE;
        let ctx = ChunkedCostCtx {
            chunk_rows: 64,
            resident_budget_bytes: 0.0,
            spill_read_ns_per_byte: 0.5,
            spill_write_ns_per_byte: 1.0,
        };
        let planned = PlannedChunkedMatrix::with_strategy(tn.clone(), 64, Strategy::CostBased)
            .with_profile(profile)
            .with_cost_ctx(ctx);
        for op in OpKind::ALL {
            let d = planned.plan(op).unwrap();
            let est = estimate_op_chunked(&profile, &tn, op, &ctx);
            assert_eq!(
                d.factorized,
                est.factorized_ns < est.materialized_total_ns(false),
                "chunked planner disagrees with brute force on {op:?}"
            );
        }
    }

    #[test]
    fn spilled_memo_keeps_results_identical() {
        let tn = pkfk(90, 4, 9, 3);
        let ctx = ChunkedCostCtx {
            chunk_rows: 16,
            resident_budget_bytes: 0.0, // every materialized chunk spills
            spill_read_ns_per_byte: 0.5,
            spill_write_ns_per_byte: 1.0,
        };
        let planned =
            PlannedChunkedMatrix::with_strategy(tn.clone(), 16, Strategy::AlwaysMaterialize)
                .with_cost_ctx(ctx);
        let x = DenseMatrix::from_fn(tn.cols(), 1, |i, _| i as f64 * 0.5);
        let via_spill = planned.lmm(&x);
        assert!(planned.n_spilled() > 0, "budget 0 must spill the memo");
        // The spilled materialized route is bit-identical to the fully
        // resident one.
        let resident =
            PlannedChunkedMatrix::with_strategy(tn.clone(), 16, Strategy::AlwaysMaterialize)
                .with_cost_ctx(resident_ctx(16));
        assert_eq!(via_spill.as_slice(), resident.lmm(&x).as_slice());
        assert_eq!(resident.n_spilled(), 0);
    }

    #[test]
    fn closure_ops_preserve_or_spend_the_representation() {
        let tn = pkfk(48, 2, 6, 3);
        let f = PlannedChunkedMatrix::with_strategy(tn.clone(), 12, Strategy::AlwaysFactorize);
        let f2 = f.scale(2.0);
        assert!(matches!(f2.repr, Repr::Factorized(..)));
        assert!((LinearOperand::sum(&f2) - tn.scalar_mul(2.0).sum()).abs() < 1e-9);
        let m = PlannedChunkedMatrix::with_strategy(tn.clone(), 12, Strategy::AlwaysMaterialize);
        let m2 = m.squared();
        assert!(matches!(m2.repr, Repr::Materialized(_)));
        assert!((LinearOperand::sum(&m2) - tn.materialize().scalar_pow(2.0).sum()).abs() < 1e-9);
    }

    #[test]
    fn ml_training_is_oblivious_to_the_planned_chunked_backend() {
        let tn = pkfk(80, 3, 8, 4);
        let y = DenseMatrix::from_fn(tn.rows(), 1, |i, _| if i % 3 == 0 { 1.0 } else { -1.0 });
        let trainer = morpheus_ml::logreg::LogisticRegressionGd::new(1e-2, 5);
        let w_plain = trainer.fit(&tn, &y);
        for strategy in [Strategy::AlwaysFactorize, Strategy::AlwaysMaterialize] {
            let planned = PlannedChunkedMatrix::with_strategy(tn.clone(), 16, strategy)
                .with_cost_ctx(resident_ctx(16));
            let w = trainer.fit(&planned, &y);
            assert!(w.w.approx_eq(&w_plain.w, 1e-9), "{strategy:?}");
        }
    }
}
