//! Memory-mapped spill files for out-of-core chunks.
//!
//! A [`SpillFile`] holds one dense chunk's values on disk and maps them
//! read-only into the address space; [`SpillFile::load`] copies the
//! mapped bytes back into a [`DenseMatrix`] — the copy *is* the fault-in,
//! so a load costs one streaming pass and the chunk's pages can be
//! reclaimed by the OS between operators. Spill files are written with
//! the same crash-safety idiom as profile persistence (same-dir temp
//! file + atomic rename): a crash mid-write can never leave a torn spill
//! file behind a valid name.
//!
//! Two process-wide knobs, each read once at first use:
//!
//! * `MORPHEUS_CHUNK_BYTES` — resident budget in bytes for chunked
//!   matrices; chunks beyond it spill. Unset means "never spill".
//! * `MORPHEUS_SPILL_DIR` — directory for spill files (default: the
//!   system temp dir).
//!
//! Failure model: spilling is an *optimization* with a degradation rung,
//! never a correctness hazard. Any I/O failure while establishing a
//! spill file — injectable via the `spill.write` and `spill.map`
//! failpoints — keeps the chunk resident in memory, notes
//! [`Degradation::SpillFallback`], and leaves no file behind. Once a
//! file is successfully mapped, loads are plain memory copies and cannot
//! fail. On non-Unix targets spilling degrades to resident chunks the
//! same way.

// Spilling is raw-byte I/O plus a C-ABI `mmap`: the unsafe blocks are
// (a) viewing an `&[f64]` as `&[u8]` and back (always-valid transmutes of
// plain-old-data), and (b) the mmap/munmap calls themselves, checked
// against the file length before the pointer is ever dereferenced.
#![allow(unsafe_code)]

use morpheus_dense::DenseMatrix;
use morpheus_runtime::faults::{self, Degradation};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable bounding the resident bytes of a chunked matrix.
pub const CHUNK_BYTES_ENV: &str = "MORPHEUS_CHUNK_BYTES";

/// Environment variable selecting the spill-file directory.
pub const SPILL_DIR_ENV: &str = "MORPHEUS_SPILL_DIR";

/// The resident budget in bytes (`MORPHEUS_CHUNK_BYTES`), read once.
/// Unset or unparseable means `u64::MAX`: chunks never spill and the
/// chunked backend behaves exactly as before this knob existed.
pub fn resident_budget_bytes() -> u64 {
    static BUDGET: OnceLock<u64> = OnceLock::new();
    *BUDGET.get_or_init(|| match std::env::var(CHUNK_BYTES_ENV) {
        Ok(v) => v.trim().parse().unwrap_or_else(|_| {
            eprintln!("morpheus: unparseable {CHUNK_BYTES_ENV}={v:?}, spilling disabled");
            u64::MAX
        }),
        Err(_) => u64::MAX,
    })
}

/// The spill directory (`MORPHEUS_SPILL_DIR`, default the system temp
/// dir), read once.
pub fn spill_dir() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| match std::env::var_os(SPILL_DIR_ENV) {
        Some(d) if !d.is_empty() => PathBuf::from(d),
        _ => std::env::temp_dir(),
    })
}

/// One dense chunk spilled to a memory-mapped file.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    map: Map,
    rows: usize,
    cols: usize,
}

impl SpillFile {
    /// Writes `d`'s values to a fresh spill file (temp + atomic rename)
    /// and maps it read-only. Fails — leaving no file behind — on any
    /// I/O error, on empty matrices (nothing to map), and on non-Unix
    /// targets.
    pub fn write(d: &DenseMatrix) -> io::Result<SpillFile> {
        let (rows, cols) = (d.rows(), d.cols());
        if rows * cols == 0 {
            return Err(io::Error::other("spill: empty chunk"));
        }
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = spill_dir().join(format!(
            "morpheus-spill-{}-{}.bin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let values = d.as_slice();
        // Same-process round-trip: native-endian raw bytes of the f64
        // buffer, so load() restores bit-identical values.
        let bytes: &[u8] = unsafe {
            std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
        };
        let tmp = PathBuf::from(format!("{}.tmp.{}", path.display(), std::process::id()));
        std::fs::write(&tmp, bytes).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        if faults::fire("spill.write").is_some() {
            let _ = std::fs::remove_file(&tmp);
            return Err(io::Error::other("injected spill write failure"));
        }
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        if faults::fire("spill.map").is_some() {
            let _ = std::fs::remove_file(&path);
            return Err(io::Error::other("injected spill map failure"));
        }
        let map = Map::of_file(&path, bytes.len()).inspect_err(|_| {
            let _ = std::fs::remove_file(&path);
        })?;
        Ok(SpillFile {
            path,
            map,
            rows,
            cols,
        })
    }

    /// Chunk rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Chunk columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bytes on disk.
    pub fn len_bytes(&self) -> usize {
        self.map.len
    }

    /// Faults the chunk back in: one streaming copy of the mapped bytes
    /// into a fresh [`DenseMatrix`]. Infallible once the map exists.
    pub fn load(&self) -> DenseMatrix {
        let n = self.rows * self.cols;
        let mut values = vec![0.0f64; n];
        unsafe {
            std::ptr::copy_nonoverlapping(self.map.ptr.cast::<f64>(), values.as_mut_ptr(), n);
        }
        DenseMatrix::from_vec(self.rows, self.cols, values)
            .expect("spill: rows * cols matches the written buffer")
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Unlinking before Map::drop unmaps is fine: the mapping keeps
        // the inode alive until munmap.
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A read-only `mmap` of a whole file. Declared against the C ABI
/// directly — this workspace builds without crates.io, and `libc` links
/// implicitly on the supported Unix targets.
#[derive(Debug)]
struct Map {
    ptr: *const u8,
    len: usize,
}

// The mapping is read-only and never remapped after construction.
unsafe impl Send for Map {}
unsafe impl Sync for Map {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    pub const PROT_READ: i32 = 0x1;
    pub const MAP_SHARED: i32 = 0x01;
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

impl Map {
    #[cfg(unix)]
    fn of_file(path: &std::path::Path, len: usize) -> io::Result<Map> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::File::open(path)?;
        let actual = file.metadata()?.len();
        if (actual as usize) < len {
            return Err(io::Error::other(format!(
                "spill: file shrank to {actual} bytes, expected {len}"
            )));
        }
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as usize == usize::MAX {
            return Err(io::Error::last_os_error());
        }
        Ok(Map {
            ptr: ptr.cast_const().cast::<u8>(),
            len,
        })
    }

    #[cfg(not(unix))]
    fn of_file(_path: &std::path::Path, _len: usize) -> io::Result<Map> {
        Err(io::Error::other("spill: mmap unsupported on this target"))
    }
}

impl Drop for Map {
    fn drop(&mut self) {
        #[cfg(unix)]
        unsafe {
            sys::munmap(self.ptr.cast_mut().cast(), self.len);
        }
    }
}

/// Attempts to spill a dense chunk, degrading to `None` (chunk stays
/// resident) on any failure, with the fallback counted in
/// [`faults::stats`].
pub(crate) fn try_spill(d: &DenseMatrix) -> Option<SpillFile> {
    match SpillFile::write(d) {
        Ok(f) => Some(f),
        Err(_) => {
            faults::note(Degradation::SpillFallback);
            None
        }
    }
}

/// Calibrated spill I/O rates `(read_ns_per_byte, write_ns_per_byte)`,
/// measured once per process by round-tripping a ~1 MiB chunk through
/// the configured spill directory. Falls back to conservative built-in
/// rates (disk-like, so planning stays sane) when the directory is
/// unusable or spilling is faulted off.
pub fn io_rates() -> (f64, f64) {
    static RATES: OnceLock<(f64, f64)> = OnceLock::new();
    *RATES.get_or_init(|| {
        const FALLBACK: (f64, f64) = (0.5, 1.0);
        let probe = DenseMatrix::from_fn(1024, 128, |i, j| (i * 131 + j * 17) as f64);
        let bytes = (probe.rows() * probe.cols() * 8) as f64;
        let t0 = std::time::Instant::now();
        let Ok(f) = SpillFile::write(&probe) else {
            return FALLBACK;
        };
        let write_ns = t0.elapsed().as_nanos() as f64;
        let t1 = std::time::Instant::now();
        let back = f.load();
        let read_ns = t1.elapsed().as_nanos() as f64;
        // Paranoia over rates only — a corrupt round-trip must never make
        // it into planning silently.
        debug_assert_eq!(back.as_slice(), probe.as_slice());
        (read_ns / bytes, write_ns / bytes)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_bit_identical() {
        let d = DenseMatrix::from_fn(37, 5, |i, j| (i as f64 * 0.7 - j as f64) / 3.0);
        let f = SpillFile::write(&d).expect("spill to temp dir");
        assert_eq!(f.rows(), 37);
        assert_eq!(f.cols(), 5);
        assert_eq!(f.len_bytes(), 37 * 5 * 8);
        let back = f.load();
        assert_eq!(back.as_slice(), d.as_slice());
        // Load again: the map stays valid for the file's lifetime.
        assert_eq!(f.load().as_slice(), d.as_slice());
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let d = DenseMatrix::from_fn(8, 8, |i, j| (i + j) as f64);
        let f = SpillFile::write(&d).unwrap();
        let path = f.path.clone();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn empty_chunks_refuse_to_spill() {
        let d = DenseMatrix::zeros(0, 4);
        assert!(SpillFile::write(&d).is_err());
    }

    #[test]
    fn injected_write_failure_degrades_and_leaves_no_file() {
        let _g = faults::exclusive();
        faults::configure("spill.write=io_error").unwrap();
        let before = faults::stats().spill_fallbacks;
        let d = DenseMatrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        assert!(try_spill(&d).is_none());
        assert_eq!(faults::stats().spill_fallbacks, before + 1);
        faults::clear();
        // With the failpoint cleared the same chunk spills fine.
        assert!(try_spill(&d).is_some());
    }

    #[test]
    fn io_rates_are_positive_and_finite() {
        let (r, w) = io_rates();
        assert!(r.is_finite() && r > 0.0);
        assert!(w.is_finite() && w > 0.0);
    }
}
