//! A row-chunked, thread-parallel linear-algebra backend — the workspace's
//! stand-in for Oracle R Enterprise (§5.2.4 of the paper).
//!
//! ORE executes LA over larger-than-memory `ore.frame`s by partitioning
//! tables into row chunks and pushing a function over each chunk
//! (`ore.rowapply`). The paper's point in Tables 9 and 10 is architectural:
//! because Morpheus rewrites close over plain LA operators, the factorized
//! versions run on such a backend *without modifying it*. This crate
//! reproduces that architecture:
//!
//! * [`ChunkedMatrix`] — a regular matrix stored as row chunks; every
//!   [`LinearOperand`] operator is evaluated chunk-at-a-time, in parallel
//!   across worker threads (the shared `morpheus-runtime` scoped-thread
//!   executor — the `ore.rowapply` analog).
//! * [`ChunkedNormalizedMatrix`] — a normalized matrix whose *logical rows*
//!   are chunked while the attribute tables stay shared, exactly how
//!   Morpheus-on-ORE partitions the entity table but keeps the (small)
//!   attribute tables resident. The factorized rewrites are expressed with
//!   the same chunk-at-a-time primitive.
//!
//! * [`PlannedChunkedMatrix`] — the per-operator cost-based planner routed
//!   through the chunked backend: factorized-vs-materialized decisions
//!   priced with DRAM-tier kernel rates, per-chunk dispatch overhead, and
//!   calibrated spill I/O ([`morpheus_core::cost::estimate_op_chunked`]).
//!
//! All three types implement [`LinearOperand`], so the `morpheus-ml`
//! algorithms run on them unchanged — the closure property, demonstrated
//! end-to-end.
//!
//! Chunks are genuinely out-of-core: past a resident budget
//! (`MORPHEUS_CHUNK_BYTES`) dense chunks spill to memory-mapped files in
//! `MORPHEUS_SPILL_DIR` ([`spill`]), and operators stream over them with
//! double-buffered prefetch — while chunk *i* computes, chunk *i + 1*
//! faults in on a worker claimed from the same shared budget. Spill
//! failures degrade to resident chunks (never wrong results), reported
//! through the fault registry's degradation ladder.
//!
//! The executor itself lives in `morpheus-runtime` (re-exported here for
//! compatibility): chunk-level parallelism claims workers from the shared
//! budget, so the parallel dense/sparse kernels running *inside* each
//! chunk see only the remaining threads and the two levels compose
//! without oversubscription.

mod chunked_matrix;
mod chunked_normalized;
mod planned;
pub mod spill;

pub use chunked_matrix::ChunkedMatrix;
pub use chunked_normalized::ChunkedNormalizedMatrix;
pub use morpheus_runtime::Executor;
pub use planned::PlannedChunkedMatrix;
pub use spill::{SpillFile, CHUNK_BYTES_ENV, SPILL_DIR_ENV};

pub(crate) use morpheus_core::LinearOperand;
