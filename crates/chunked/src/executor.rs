//! The chunk-at-a-time parallel executor (`ore.rowapply` analog).

use std::sync::mpsc;

/// A thread-pool-free parallel executor over chunk indices.
///
/// Work is distributed round-robin over `threads` scoped threads;
/// results are collected in chunk order. With `threads == 1` everything
/// runs on the caller thread (deterministic, no spawn overhead), which is
/// also the fallback when only one chunk exists.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl Executor {
    /// Creates an executor with an explicit worker count (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every index in `0..n`, returning results in index
    /// order. `f` runs concurrently on up to `threads` workers.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for tid in 0..workers {
                let tx = tx.clone();
                let f = &f;
                scope.spawn(move || {
                    let mut i = tid;
                    while i < n {
                        // A send only fails if the receiver hung up, which
                        // cannot happen while this scope is alive.
                        let _ = tx.send((i, f(i)));
                        i += workers;
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (i, v) in rx {
                slots[i] = Some(v);
            }
            // If a worker panicked, its chunks never arrived and this
            // expect fires; the scope then joins the remaining workers
            // before the panic propagates.
            slots
                .into_iter()
                .map(|s| s.expect("executor: missing chunk result"))
                .collect()
        })
    }

    /// Applies `f` to every index and reduces the results with `combine`,
    /// starting from `init`.
    pub fn map_reduce<T, F, R>(&self, n: usize, f: F, init: T, combine: R) -> T
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        self.map(n, f).into_iter().fold(init, combine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let ex = Executor::new(4);
        let out = ex.map(17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_single_threaded_path() {
        let ex = Executor::new(1);
        assert_eq!(ex.map(3, |i| i + 1), vec![1, 2, 3]);
        assert_eq!(ex.map(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn map_reduce_sums() {
        let ex = Executor::new(3);
        let total = ex.map_reduce(100, |i| i as u64, 0u64, |a, b| a + b);
        assert_eq!(total, 4950);
    }

    #[test]
    fn default_has_at_least_one_thread() {
        assert!(Executor::default().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "executor:")]
    fn worker_panics_propagate() {
        Executor::new(2).map(4, |i| {
            if i == 3 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn parallel_and_serial_agree() {
        let serial = Executor::new(1).map(25, |i| (i * 31) % 7);
        let parallel = Executor::new(8).map(25, |i| (i * 31) % 7);
        assert_eq!(serial, parallel);
    }
}
