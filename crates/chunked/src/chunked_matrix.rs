//! [`ChunkedMatrix`]: a regular matrix stored as row chunks, with every
//! operator evaluated chunk-at-a-time — in parallel across resident
//! chunks, or streamed with double-buffered prefetch once chunks spill
//! to memory-mapped files.
//!
//! Chunks are resident until the process-wide budget
//! (`MORPHEUS_CHUNK_BYTES`, see [`crate::spill`]) is exhausted; dense
//! chunks beyond it spill to mmap-backed files and fault in on access.
//! Spilling and prefetch are pure execution details: every operator
//! result is bit-identical to the fully-resident (in-memory) evaluation
//! at any worker count, because chunk results are always combined in
//! chunk-index order and the underlying kernels are themselves
//! worker-count-invariant.

use crate::spill::{self, SpillFile};
use crate::{Executor, LinearOperand};
use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use morpheus_linalg::ginv_sym_psd;
use morpheus_runtime::Runtime;
use std::borrow::Cow;
use std::sync::Arc;

/// One row chunk: resident in memory, or spilled to an mmap-backed file.
#[derive(Debug, Clone)]
enum ChunkStore {
    Resident(Matrix),
    Spilled(Arc<SpillFile>),
}

impl ChunkStore {
    fn rows(&self) -> usize {
        match self {
            ChunkStore::Resident(m) => m.rows(),
            ChunkStore::Spilled(f) => f.rows(),
        }
    }

    /// The chunk's values; for spilled chunks the copy out of the map is
    /// the fault-in.
    fn load(&self) -> Cow<'_, Matrix> {
        match self {
            ChunkStore::Resident(m) => Cow::Borrowed(m),
            ChunkStore::Spilled(f) => Cow::Owned(Matrix::Dense(f.load())),
        }
    }

    /// Approximate resident bytes if this chunk were kept in memory.
    fn bytes(m: &Matrix) -> u64 {
        if m.is_sparse() {
            // CSR: value + column index per entry, plus row pointers.
            (m.nnz() * 16 + (m.rows() + 1) * 8) as u64
        } else {
            (m.rows() * m.cols() * 8) as u64
        }
    }
}

/// A regular (materialized) matrix partitioned into row chunks — the "M"
/// side of the ORE experiments, and the memoized join representation of
/// the chunked planner route.
#[derive(Debug, Clone)]
pub struct ChunkedMatrix {
    chunks: Vec<ChunkStore>,
    rows: usize,
    cols: usize,
    /// Resident-byte budget chunks were admitted under; propagated to
    /// derived matrices (`scale`, `squared`).
    budget: u64,
    /// `None` resolves [`Runtime::executor`] at each operator call, so
    /// chunk-level parallelism always sees the *remaining* thread budget
    /// of enclosing parallel sections.
    executor: Option<Executor>,
}

impl ChunkedMatrix {
    /// Partitions `m` into row chunks of at most `chunk_rows` rows,
    /// spilling beyond the `MORPHEUS_CHUNK_BYTES` resident budget, with
    /// chunk-level parallelism drawn from the shared [`Runtime`] thread
    /// budget.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0`.
    pub fn new(m: &Matrix, chunk_rows: usize) -> Self {
        Self::with_budget(m, chunk_rows, spill::resident_budget_bytes())
    }

    /// [`ChunkedMatrix::new`] with an explicit resident budget in bytes
    /// instead of the environment default. `u64::MAX` never spills.
    pub fn with_budget(m: &Matrix, chunk_rows: usize, resident_budget_bytes: u64) -> Self {
        Self::build(m, chunk_rows, resident_budget_bytes, None)
    }

    /// Builds the chunked join of a normalized matrix **without ever
    /// materializing the whole table**: each row band is materialized on
    /// its own and spilled (budget permitting) before the next band is
    /// built, so peak memory stays near one chunk once the resident
    /// budget is exhausted. Values are identical to
    /// `ChunkedMatrix::new(&t.materialize(), chunk_rows)`.
    pub fn from_normalized(t: &NormalizedMatrix, chunk_rows: usize) -> Self {
        Self::from_normalized_with_budget(t, chunk_rows, spill::resident_budget_bytes())
    }

    /// [`ChunkedMatrix::from_normalized`] with an explicit resident
    /// budget in bytes.
    pub fn from_normalized_with_budget(
        t: &NormalizedMatrix,
        chunk_rows: usize,
        resident_budget_bytes: u64,
    ) -> Self {
        assert!(chunk_rows > 0, "ChunkedMatrix: chunk_rows must be positive");
        let rows = t.rows();
        let cols = t.cols();
        let mut admit = Admission::new(resident_budget_bytes);
        let mut chunks = Vec::with_capacity(rows.div_ceil(chunk_rows).max(1));
        let mut start = 0;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            let band: Vec<usize> = (start..end).collect();
            chunks.push(admit.store(t.select_rows(&band).materialize()));
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(ChunkStore::Resident(t.materialize().slice_rows(0..0)));
        }
        Self {
            chunks,
            rows,
            cols,
            budget: resident_budget_bytes,
            executor: None,
        }
    }

    /// Partitions `m` into row chunks evaluated on a caller-built
    /// executor.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0`.
    #[deprecated(note = "use ChunkedMatrix::new: a raw executor bypasses the Runtime \
                thread-budget claims, so chunk- and kernel-level parallelism \
                can oversubscribe the pool")]
    pub fn from_matrix(m: &Matrix, chunk_rows: usize, executor: Executor) -> Self {
        Self::build(
            m,
            chunk_rows,
            spill::resident_budget_bytes(),
            Some(executor),
        )
    }

    fn build(m: &Matrix, chunk_rows: usize, budget: u64, executor: Option<Executor>) -> Self {
        assert!(chunk_rows > 0, "ChunkedMatrix: chunk_rows must be positive");
        let rows = m.rows();
        let cols = m.cols();
        let mut admit = Admission::new(budget);
        let mut chunks = Vec::with_capacity(rows.div_ceil(chunk_rows).max(1));
        let mut start = 0;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            chunks.push(admit.store(m.slice_rows(start..end)));
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(ChunkStore::Resident(m.slice_rows(0..0)));
        }
        Self {
            chunks,
            rows,
            cols,
            budget,
            executor,
        }
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Number of chunks currently backed by spill files.
    pub fn n_spilled(&self) -> usize {
        self.chunks
            .iter()
            .filter(|c| matches!(c, ChunkStore::Spilled(_)))
            .count()
    }

    /// The executor used for chunk-parallel evaluation — the shared
    /// [`Runtime`] budget unless a raw executor was pinned at
    /// construction.
    pub fn executor(&self) -> Executor {
        self.executor.unwrap_or_else(Runtime::executor)
    }

    fn chunk_row_offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.chunks.len() + 1);
        let mut acc = 0;
        offs.push(0);
        for c in &self.chunks {
            acc += c.rows();
            offs.push(acc);
        }
        offs
    }

    /// Applies `f` to every chunk and returns the results **in chunk
    /// order** — the one combination order both evaluation modes share.
    /// All-resident matrices fan the chunks out across the executor;
    /// once any chunk is spilled the walk turns into a stream with
    /// double-buffered prefetch: while chunk `i` computes on one
    /// [`Executor::par_join`] stride, chunk `i+1` faults in on the
    /// other, so at most two chunks are resident and the spill I/O
    /// overlaps the compute. Inner kernels see the remaining thread
    /// budget either way — the two parallelism levels compose without
    /// oversubscription.
    fn map_chunks<R: Send>(&self, f: impl Fn(&Matrix, usize) -> R + Sync + Send) -> Vec<R> {
        let n = self.chunks.len();
        let ex = self.executor();
        if self.n_spilled() == 0 {
            return ex.map(n, |i| match &self.chunks[i] {
                ChunkStore::Resident(m) => f(m, i),
                ChunkStore::Spilled(s) => f(&Matrix::Dense(s.load()), i),
            });
        }
        let mut out = Vec::with_capacity(n);
        let mut cur = self.chunks[0].load();
        for i in 0..n {
            let (r, next) = ex.par_join(
                || f(&cur, i),
                || (i + 1 < n).then(|| self.chunks[i + 1].load()),
            );
            out.push(r);
            if let Some(nx) = next {
                cur = nx;
            }
        }
        out
    }

    /// Rebuilds a derived matrix from per-chunk results, re-admitting
    /// them under the same resident budget.
    fn derive(&self, chunks: Vec<Matrix>) -> Self {
        let mut admit = Admission::new(self.budget);
        Self {
            chunks: chunks.into_iter().map(|c| admit.store(c)).collect(),
            rows: self.rows,
            cols: self.cols,
            budget: self.budget,
            executor: self.executor,
        }
    }
}

/// Budgeted chunk admission: chunks are resident while the running
/// resident-byte total fits, and spill once it would not. Sparse chunks
/// and chunks that fail to spill (I/O error, injected fault, non-Unix
/// target) stay resident — counted as a [`spill::try_spill`] degradation
/// where an actual failure occurred, never a correctness hazard.
struct Admission {
    budget: u64,
    resident: u64,
}

impl Admission {
    fn new(budget: u64) -> Self {
        Admission {
            budget,
            resident: 0,
        }
    }

    fn store(&mut self, m: Matrix) -> ChunkStore {
        let bytes = ChunkStore::bytes(&m);
        let fits = self.resident.saturating_add(bytes) <= self.budget;
        if !fits && m.rows() * m.cols() > 0 {
            if let Some(f) = m.as_dense().and_then(spill::try_spill) {
                return ChunkStore::Spilled(Arc::new(f));
            }
        }
        self.resident += bytes;
        ChunkStore::Resident(m)
    }
}

impl LinearOperand for ChunkedMatrix {
    fn nrows(&self) -> usize {
        self.rows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // Each chunk contributes its own output rows: rowapply + stack.
        let parts = self.map_chunks(|c, _| c.matmul_dense(x));
        let refs: Vec<&DenseMatrix> = parts.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // Tᵀ X = Σ chunks Cᵢᵀ Xᵢ: rowapply + chunk-ordered reduce.
        let offsets = self.chunk_row_offsets();
        let parts = self.map_chunks(|c, i| {
            let xi = x.slice_rows(offsets[i]..offsets[i + 1]);
            c.t_matmul_dense(&xi)
        });
        let mut acc = DenseMatrix::zeros(self.cols, x.cols());
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // X T = Σᵢ X[:, rowsᵢ] Cᵢ: X splits by columns aligned with T's
        // row chunks.
        let offsets = self.chunk_row_offsets();
        let parts = self.map_chunks(|c, i| {
            let xi = x.slice_cols(offsets[i]..offsets[i + 1]);
            c.dense_matmul(&xi)
        });
        let mut acc = DenseMatrix::zeros(x.rows(), self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn crossprod(&self) -> DenseMatrix {
        // TᵀT = Σ chunks CᵢᵀCᵢ.
        let parts = self.map_chunks(|c, _| c.crossprod());
        let mut acc = DenseMatrix::zeros(self.cols, self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn row_sums(&self) -> DenseMatrix {
        let parts = self.map_chunks(|c, _| c.row_sums());
        let refs: Vec<&DenseMatrix> = parts.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn col_sums(&self) -> DenseMatrix {
        let parts = self.map_chunks(|c, _| c.col_sums());
        let mut acc = DenseMatrix::zeros(1, self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn sum(&self) -> f64 {
        // Chunk partials folded sequentially in chunk order — the same
        // grouping at every worker count, unlike a worker-shaped
        // reduction tree.
        self.map_chunks(|c, _| c.sum()).into_iter().sum()
    }

    fn scale(&self, x: f64) -> Self {
        self.derive(self.map_chunks(|c, _| c.scalar_mul(x)))
    }

    fn squared(&self) -> Self {
        self.derive(self.map_chunks(|c, _| c.scalar_pow(2.0)))
    }

    fn ginv(&self) -> DenseMatrix {
        // Same §3.3.6 identity as everywhere else; both the cross-product
        // and the closing LMM stream chunk-at-a-time.
        let (n, d) = (self.rows, self.cols);
        if d < n {
            let g = ginv_sym_psd(&self.crossprod());
            self.lmm(&g).transpose()
        } else {
            let t = self.materialize().to_dense();
            morpheus_linalg::ginv(&t)
        }
    }

    fn materialize(&self) -> Matrix {
        let denses = self.map_chunks(|c, _| c.to_dense());
        let refs: Vec<&DenseMatrix> = denses.iter().collect();
        Matrix::Dense(DenseMatrix::vstack_all(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Matrix, ChunkedMatrix) {
        let m = Matrix::Dense(DenseMatrix::from_fn(23, 4, |i, j| {
            ((i * 5 + j * 3) % 11) as f64 - 4.0
        }));
        let c = ChunkedMatrix::new(&m, 5);
        (m, c)
    }

    #[test]
    fn chunking_covers_all_rows() {
        let (m, c) = sample();
        assert_eq!(c.n_chunks(), 5); // 23 rows / 5 = 5 chunks
        assert_eq!(c.nrows(), 23);
        assert!(c.materialize().approx_eq(&m, 0.0));
    }

    #[test]
    fn operators_match_in_memory() {
        let (m, c) = sample();
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 * 0.5);
        assert!(c.lmm(&x).approx_eq(&m.matmul_dense(&x), 1e-12));
        let y = DenseMatrix::from_fn(23, 2, |i, j| ((i * 2 + j) % 5) as f64);
        assert!(c.t_lmm(&y).approx_eq(&m.t_matmul_dense(&y), 1e-12));
        let z = DenseMatrix::from_fn(3, 23, |i, j| ((i + j) % 4) as f64 - 1.0);
        assert!(c.rmm(&z).approx_eq(&m.dense_matmul(&z), 1e-12));
        assert!(LinearOperand::crossprod(&c).approx_eq(&m.crossprod(), 1e-12));
        assert_eq!(LinearOperand::row_sums(&c), m.row_sums());
        assert_eq!(LinearOperand::col_sums(&c), m.col_sums());
        assert!((LinearOperand::sum(&c) - m.sum()).abs() < 1e-9);
    }

    #[test]
    fn deprecated_raw_executor_path_still_works() {
        let (m, _) = sample();
        #[allow(deprecated)]
        let c = ChunkedMatrix::from_matrix(&m, 5, Executor::new(3));
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 * 0.5);
        assert!(c.lmm(&x).approx_eq(&m.matmul_dense(&x), 1e-12));
    }

    #[test]
    fn scalar_closure_ops() {
        let (m, c) = sample();
        assert!(c
            .scale(2.5)
            .materialize()
            .approx_eq(&m.scalar_mul(2.5), 1e-12));
        assert!(c
            .squared()
            .materialize()
            .approx_eq(&m.scalar_pow(2.0), 1e-12));
    }

    #[test]
    fn ginv_moore_penrose() {
        let (m, c) = sample();
        let p = LinearOperand::ginv(&c);
        let t = m.to_dense();
        assert!(t.matmul(&p).matmul(&t).approx_eq(&t, 1e-7));
    }

    #[test]
    fn single_chunk_degenerate_case() {
        let m = Matrix::Dense(DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64));
        let c = ChunkedMatrix::new(&m, 100);
        assert_eq!(c.n_chunks(), 1);
        let x = DenseMatrix::from_fn(2, 1, |i, _| i as f64 + 1.0);
        assert!(c.lmm(&x).approx_eq(&m.matmul_dense(&x), 1e-12));
    }

    #[test]
    fn zero_row_matrix_has_one_empty_chunk() {
        let m = Matrix::Dense(DenseMatrix::zeros(0, 3));
        let c = ChunkedMatrix::new(&m, 4);
        assert_eq!(c.n_chunks(), 1);
        assert_eq!(c.nrows(), 0);
        assert_eq!(c.n_spilled(), 0);
        let x = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64);
        assert_eq!(c.lmm(&x).rows(), 0);
        assert_eq!(LinearOperand::sum(&c), 0.0);
        assert!(LinearOperand::crossprod(&c).approx_eq(&DenseMatrix::zeros(3, 3), 0.0));
        assert!(c.materialize().approx_eq(&m, 0.0));
    }

    #[test]
    fn chunk_rows_larger_than_matrix() {
        let m = Matrix::Dense(DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64));
        let c = ChunkedMatrix::new(&m, 1_000_000);
        assert_eq!(c.n_chunks(), 1);
        assert!((LinearOperand::sum(&c) - m.sum()).abs() < 1e-12);
    }

    #[test]
    fn spilled_execution_is_bit_identical_to_resident() {
        let m = Matrix::Dense(DenseMatrix::from_fn(57, 6, |i, j| {
            ((i * 7 + j * 5) % 13) as f64 * 0.37 - 2.0
        }));
        let resident = ChunkedMatrix::with_budget(&m, 8, u64::MAX);
        let spilled = ChunkedMatrix::with_budget(&m, 8, 0);
        assert_eq!(resident.n_spilled(), 0);
        assert_eq!(spilled.n_spilled(), spilled.n_chunks());

        let x = DenseMatrix::from_fn(6, 3, |i, j| ((i + 2 * j) % 5) as f64 * 0.4);
        assert_eq!(spilled.lmm(&x).as_slice(), resident.lmm(&x).as_slice());
        let y = DenseMatrix::from_fn(57, 2, |i, j| ((i * 3 + j) % 7) as f64);
        assert_eq!(spilled.t_lmm(&y).as_slice(), resident.t_lmm(&y).as_slice());
        assert_eq!(
            LinearOperand::crossprod(&spilled).as_slice(),
            LinearOperand::crossprod(&resident).as_slice()
        );
        assert_eq!(
            LinearOperand::row_sums(&spilled).as_slice(),
            LinearOperand::row_sums(&resident).as_slice()
        );
        assert_eq!(
            LinearOperand::col_sums(&spilled).as_slice(),
            LinearOperand::col_sums(&resident).as_slice()
        );
        assert_eq!(
            LinearOperand::sum(&spilled).to_bits(),
            LinearOperand::sum(&resident).to_bits()
        );
        assert!(spilled.materialize().approx_eq(&m, 0.0));
        // Derived matrices keep streaming under the same budget.
        let s = spilled.scale(1.5);
        assert!(s.n_spilled() > 0);
        assert!(s
            .materialize()
            .approx_eq(&resident.scale(1.5).materialize(), 0.0));
    }

    #[test]
    fn partial_budget_spills_only_the_tail() {
        let m = Matrix::Dense(DenseMatrix::from_fn(40, 4, |i, j| (i * 4 + j) as f64));
        // Budget fits exactly two 10x4 chunks (10 * 4 * 8 = 320 bytes).
        let c = ChunkedMatrix::with_budget(&m, 10, 640);
        assert_eq!(c.n_chunks(), 4);
        assert_eq!(c.n_spilled(), 2);
        assert!(c.materialize().approx_eq(&m, 0.0));
    }

    #[test]
    fn streaming_build_from_normalized_matches_materialized_build() {
        let s = DenseMatrix::from_fn(31, 2, |i, j| ((i * 3 + j) % 7) as f64 - 2.0);
        let r = DenseMatrix::from_fn(5, 3, |i, j| ((i * 2 + j) % 5) as f64 * 0.5);
        let fk: Vec<usize> = (0..31).map(|i| (i * 3 + 1) % 5).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let streamed = ChunkedMatrix::from_normalized_with_budget(&tn, 7, 0);
        let bulk = ChunkedMatrix::with_budget(&tn.materialize(), 7, u64::MAX);
        assert!(streamed.n_spilled() > 0);
        assert!(streamed.materialize().approx_eq(&bulk.materialize(), 0.0));
        let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + j) as f64 * 0.3);
        assert_eq!(streamed.lmm(&x).as_slice(), bulk.lmm(&x).as_slice());
    }

    #[test]
    fn ml_algorithm_runs_unchanged_on_chunked_backend() {
        // The closure demo: logistic regression from morpheus-ml, untouched.
        let (m, c) = sample();
        let y = DenseMatrix::from_fn(23, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let trainer = morpheus_ml::logreg::LogisticRegressionGd::new(1e-2, 5);
        let w_chunked = trainer.fit(&c, &y);
        let w_memory = trainer.fit(&m, &y);
        assert!(w_chunked.w.approx_eq(&w_memory.w, 1e-10));
    }
}
