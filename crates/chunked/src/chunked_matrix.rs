//! [`ChunkedMatrix`]: a regular matrix stored as row chunks, with every
//! operator evaluated chunk-at-a-time in parallel.

use crate::{Executor, LinearOperand};
use morpheus_core::Matrix;
use morpheus_dense::DenseMatrix;
use morpheus_linalg::ginv_sym_psd;

/// A regular (materialized) matrix partitioned into row chunks — the "M"
/// side of the ORE experiments.
#[derive(Debug, Clone)]
pub struct ChunkedMatrix {
    chunks: Vec<Matrix>,
    rows: usize,
    cols: usize,
    executor: Executor,
}

impl ChunkedMatrix {
    /// Partitions `m` into row chunks of at most `chunk_rows` rows.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0`.
    pub fn from_matrix(m: &Matrix, chunk_rows: usize, executor: Executor) -> Self {
        assert!(chunk_rows > 0, "ChunkedMatrix: chunk_rows must be positive");
        let rows = m.rows();
        let cols = m.cols();
        let mut chunks = Vec::with_capacity(rows.div_ceil(chunk_rows).max(1));
        let mut start = 0;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            chunks.push(m.slice_rows(start..end));
            start = end;
        }
        if chunks.is_empty() {
            chunks.push(m.slice_rows(0..0));
        }
        Self {
            chunks,
            rows,
            cols,
            executor,
        }
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The executor used for chunk-parallel evaluation.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    fn chunk_row_offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.chunks.len() + 1);
        let mut acc = 0;
        offs.push(0);
        for c in &self.chunks {
            acc += c.rows();
            offs.push(acc);
        }
        offs
    }
}

impl LinearOperand for ChunkedMatrix {
    fn nrows(&self) -> usize {
        self.rows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // Each chunk contributes its own output rows: rowapply + stack.
        let parts = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].matmul_dense(x));
        let refs: Vec<&DenseMatrix> = parts.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // Tᵀ X = Σ chunks Cᵢᵀ Xᵢ: rowapply + reduce.
        let offsets = self.chunk_row_offsets();
        let parts = self.executor.map(self.chunks.len(), |i| {
            let xi = x.slice_rows(offsets[i]..offsets[i + 1]);
            self.chunks[i].t_matmul_dense(&xi)
        });
        let mut acc = DenseMatrix::zeros(self.cols, x.cols());
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // X T = Σ over chunks of X[:, chunk] Cᵢ columns? No — X T splits X
        // by columns aligned with T's row chunks: X T = Σᵢ X[:, rowsᵢ] Cᵢ.
        let offsets = self.chunk_row_offsets();
        let parts = self.executor.map(self.chunks.len(), |i| {
            let xi = x.slice_cols(offsets[i]..offsets[i + 1]);
            self.chunks[i].dense_matmul(&xi)
        });
        let mut acc = DenseMatrix::zeros(x.rows(), self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn crossprod(&self) -> DenseMatrix {
        // TᵀT = Σ chunks CᵢᵀCᵢ.
        let parts = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].crossprod());
        let mut acc = DenseMatrix::zeros(self.cols, self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn row_sums(&self) -> DenseMatrix {
        let parts = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].row_sums());
        let refs: Vec<&DenseMatrix> = parts.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn col_sums(&self) -> DenseMatrix {
        let parts = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].col_sums());
        let mut acc = DenseMatrix::zeros(1, self.cols);
        for p in parts {
            acc.add_assign(&p);
        }
        acc
    }

    fn sum(&self) -> f64 {
        self.executor.map_reduce(
            self.chunks.len(),
            |i| self.chunks[i].sum(),
            0.0,
            |a, b| a + b,
        )
    }

    fn scale(&self, x: f64) -> Self {
        let chunks = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].scalar_mul(x));
        Self {
            chunks,
            rows: self.rows,
            cols: self.cols,
            executor: self.executor,
        }
    }

    fn squared(&self) -> Self {
        let chunks = self
            .executor
            .map(self.chunks.len(), |i| self.chunks[i].scalar_pow(2.0));
        Self {
            chunks,
            rows: self.rows,
            cols: self.cols,
            executor: self.executor,
        }
    }

    fn ginv(&self) -> DenseMatrix {
        // Same §3.3.6 identity as everywhere else; both the cross-product
        // and the closing LMM run chunk-parallel.
        let (n, d) = (self.rows, self.cols);
        if d < n {
            let g = ginv_sym_psd(&self.crossprod());
            self.lmm(&g).transpose()
        } else {
            let t = self.materialize().to_dense();
            morpheus_linalg::ginv(&t)
        }
    }

    fn materialize(&self) -> Matrix {
        let denses: Vec<DenseMatrix> = self.chunks.iter().map(|c| c.to_dense()).collect();
        let refs: Vec<&DenseMatrix> = denses.iter().collect();
        Matrix::Dense(DenseMatrix::vstack_all(&refs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Matrix, ChunkedMatrix) {
        let m = Matrix::Dense(DenseMatrix::from_fn(23, 4, |i, j| {
            ((i * 5 + j * 3) % 11) as f64 - 4.0
        }));
        let c = ChunkedMatrix::from_matrix(&m, 5, Executor::new(3));
        (m, c)
    }

    #[test]
    fn chunking_covers_all_rows() {
        let (m, c) = sample();
        assert_eq!(c.n_chunks(), 5); // 23 rows / 5 = 5 chunks
        assert_eq!(c.nrows(), 23);
        assert!(c.materialize().approx_eq(&m, 0.0));
    }

    #[test]
    fn operators_match_in_memory() {
        let (m, c) = sample();
        let x = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 * 0.5);
        assert!(c.lmm(&x).approx_eq(&m.matmul_dense(&x), 1e-12));
        let y = DenseMatrix::from_fn(23, 2, |i, j| ((i * 2 + j) % 5) as f64);
        assert!(c.t_lmm(&y).approx_eq(&m.t_matmul_dense(&y), 1e-12));
        let z = DenseMatrix::from_fn(3, 23, |i, j| ((i + j) % 4) as f64 - 1.0);
        assert!(c.rmm(&z).approx_eq(&m.dense_matmul(&z), 1e-12));
        assert!(LinearOperand::crossprod(&c).approx_eq(&m.crossprod(), 1e-12));
        assert_eq!(LinearOperand::row_sums(&c), m.row_sums());
        assert_eq!(LinearOperand::col_sums(&c), m.col_sums());
        assert!((LinearOperand::sum(&c) - m.sum()).abs() < 1e-9);
    }

    #[test]
    fn scalar_closure_ops() {
        let (m, c) = sample();
        assert!(c
            .scale(2.5)
            .materialize()
            .approx_eq(&m.scalar_mul(2.5), 1e-12));
        assert!(c
            .squared()
            .materialize()
            .approx_eq(&m.scalar_pow(2.0), 1e-12));
    }

    #[test]
    fn ginv_moore_penrose() {
        let (m, c) = sample();
        let p = LinearOperand::ginv(&c);
        let t = m.to_dense();
        assert!(t.matmul(&p).matmul(&t).approx_eq(&t, 1e-7));
    }

    #[test]
    fn single_chunk_degenerate_case() {
        let m = Matrix::Dense(DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64));
        let c = ChunkedMatrix::from_matrix(&m, 100, Executor::new(2));
        assert_eq!(c.n_chunks(), 1);
        let x = DenseMatrix::from_fn(2, 1, |i, _| i as f64 + 1.0);
        assert!(c.lmm(&x).approx_eq(&m.matmul_dense(&x), 1e-12));
    }

    #[test]
    fn ml_algorithm_runs_unchanged_on_chunked_backend() {
        // The closure demo: logistic regression from morpheus-ml, untouched.
        let (m, c) = sample();
        let y = DenseMatrix::from_fn(23, 1, |i, _| if i % 2 == 0 { 1.0 } else { -1.0 });
        let trainer = morpheus_ml::logreg::LogisticRegressionGd::new(1e-2, 5);
        let w_chunked = trainer.fit(&c, &y);
        let w_memory = trainer.fit(&m, &y);
        assert!(w_chunked.w.approx_eq(&w_memory.w, 1e-10));
    }
}
