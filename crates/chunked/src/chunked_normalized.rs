//! [`ChunkedNormalizedMatrix`]: the normalized matrix over the chunked
//! backend — Morpheus-on-ORE.
//!
//! The logical rows of `T` are partitioned into chunks; the (small)
//! attribute tables stay resident and shared across chunks, exactly as the
//! paper's ORE prototype keeps the attribute tables whole while
//! `ore.rowapply` streams the entity table. Internally each part is a
//! shared base table plus per-chunk row assignments (the indicator matrix
//! restricted to the chunk's rows).
//!
//! Every operator follows the factorized rewrite with the chunk dimension
//! added:
//!
//! * LMM: the partial products `Bᵢ Xᵢ` are computed **once** globally, then
//!   each chunk gathers its rows — redundancy is avoided across the whole
//!   table, not merely within a chunk.
//! * Transposed LMM: each chunk scatter-accumulates `Iᵢᵀ X` group sums; the
//!   per-table products `Bᵢᵀ (…)` happen once at the end.
//! * Cross-product: reference counts and co-occurrence matrices are
//!   accumulated from the assignments, then the §3.3.5 efficient rewrite
//!   runs on the shared tables.

use crate::{Executor, LinearOperand};
use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use morpheus_linalg::ginv_sym_psd;
use morpheus_runtime::Runtime;

/// A normalized matrix with chunked logical rows and shared base tables —
/// the "F" side of the ORE experiments.
#[derive(Debug, Clone)]
pub struct ChunkedNormalizedMatrix {
    /// Shared base tables `Bᵢ` (entity table first if one exists).
    tables: Vec<Matrix>,
    /// `assigns[p][i]` = base-table row of part `p` feeding logical row `i`.
    ///
    /// Invariant (relied on by [`LinearOperand::crossprod`] and every
    /// gather below): `assigns[p][i] < tables[p].rows()` — guaranteed by
    /// [`morpheus_core::Indicator::assignment`], whose values are either
    /// the identity over the table rows or one-hot column positions of an
    /// `n x table_rows` indicator.
    assigns: Vec<Vec<usize>>,
    /// Chunk boundaries over the logical rows: `[0, c₁, …, n]`.
    chunk_offsets: Vec<usize>,
    n_rows: usize,
    /// `None` resolves [`Runtime::executor`] at each operator call, so
    /// chunk-level parallelism always sees the *remaining* thread budget
    /// of enclosing parallel sections.
    executor: Option<Executor>,
}

impl ChunkedNormalizedMatrix {
    /// Chunks a [`NormalizedMatrix`] into logical-row partitions of at
    /// most `chunk_rows` rows, with chunk-level parallelism drawn from
    /// the shared [`Runtime`] thread budget. Works for every join shape
    /// (PK-FK, star, M:N) — identity indicators become the trivial
    /// assignment.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0` or `t` is a transposed view.
    pub fn new(t: &NormalizedMatrix, chunk_rows: usize) -> Self {
        Self::build(t, chunk_rows, None)
    }

    /// [`ChunkedNormalizedMatrix::new`] on a caller-built executor.
    ///
    /// # Panics
    /// Panics if `chunk_rows == 0` or `t` is a transposed view.
    #[deprecated(
        note = "use ChunkedNormalizedMatrix::new: a raw executor bypasses the \
                Runtime thread-budget claims, so chunk- and kernel-level \
                parallelism can oversubscribe the pool"
    )]
    pub fn from_normalized(t: &NormalizedMatrix, chunk_rows: usize, executor: Executor) -> Self {
        Self::build(t, chunk_rows, Some(executor))
    }

    fn build(t: &NormalizedMatrix, chunk_rows: usize, executor: Option<Executor>) -> Self {
        assert!(
            chunk_rows > 0,
            "ChunkedNormalizedMatrix: chunk_rows must be positive"
        );
        assert!(
            !t.is_transposed(),
            "ChunkedNormalizedMatrix: chunk the untransposed matrix"
        );
        let n_rows = t.logical_rows();
        let mut tables = Vec::with_capacity(t.parts().len());
        let mut assigns = Vec::with_capacity(t.parts().len());
        for part in t.parts() {
            tables.push(part.table().clone());
            assigns.push(part.indicator().assignment(n_rows));
        }
        let mut chunk_offsets = vec![0usize];
        let mut start = 0;
        while start < n_rows {
            start = (start + chunk_rows).min(n_rows);
            chunk_offsets.push(start);
        }
        if chunk_offsets.len() == 1 {
            chunk_offsets.push(0);
        }
        Self {
            tables,
            assigns,
            chunk_offsets,
            n_rows,
            executor,
        }
    }

    /// Number of logical-row chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunk_offsets.len() - 1
    }

    /// The executor used for chunk-parallel evaluation — the shared
    /// [`Runtime`] budget unless a raw executor was pinned at
    /// construction.
    pub fn executor(&self) -> Executor {
        self.executor.unwrap_or_else(Runtime::executor)
    }

    /// Column offsets of the parts within `T`.
    fn col_offsets(&self) -> Vec<usize> {
        let mut offs = vec![0usize];
        let mut acc = 0;
        for t in &self.tables {
            acc += t.cols();
            offs.push(acc);
        }
        offs
    }
}

impl LinearOperand for ChunkedNormalizedMatrix {
    fn nrows(&self) -> usize {
        self.n_rows
    }

    fn ncols(&self) -> usize {
        self.tables.iter().map(|t| t.cols()).sum()
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        let offs = self.col_offsets();
        // Global partials Pᵢ = Bᵢ X[dᵢ₋₁..dᵢ, ] — computed once.
        let partials: Vec<DenseMatrix> = self
            .tables
            .iter()
            .zip(offs.windows(2))
            .map(|(t, w)| t.matmul_dense(&x.slice_rows(w[0]..w[1])))
            .collect();
        let m = x.cols();
        // Chunk-parallel gather-sum.
        let chunks = self.executor().map(self.n_chunks(), |ci| {
            let lo = self.chunk_offsets[ci];
            let hi = self.chunk_offsets[ci + 1];
            let mut out = DenseMatrix::zeros(hi - lo, m);
            for (p, assign) in self.assigns.iter().enumerate() {
                let part = &partials[p];
                for (local, &src) in assign[lo..hi].iter().enumerate() {
                    let dst = out.row_mut(local);
                    for (d, &v) in dst.iter_mut().zip(part.row(src)) {
                        *d += v;
                    }
                }
            }
            out
        });
        let refs: Vec<&DenseMatrix> = chunks.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        let m = x.cols();
        // Per part: group = Iᵀ X accumulated chunk-parallel, then Bᵀ group.
        let blocks: Vec<DenseMatrix> = self
            .tables
            .iter()
            .enumerate()
            .map(|(p, table)| {
                let n_b = table.rows();
                let partial_groups = self.executor().map(self.n_chunks(), |ci| {
                    let lo = self.chunk_offsets[ci];
                    let hi = self.chunk_offsets[ci + 1];
                    let mut group = DenseMatrix::zeros(n_b, m);
                    for (local, &dst) in self.assigns[p][lo..hi].iter().enumerate() {
                        let src = x.row(lo + local);
                        let g = group.row_mut(dst);
                        for (gv, &xv) in g.iter_mut().zip(src) {
                            *gv += xv;
                        }
                    }
                    group
                });
                let mut group = DenseMatrix::zeros(n_b, m);
                for g in partial_groups {
                    group.add_assign(&g);
                }
                table.t_matmul_dense(&group)
            })
            .collect();
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        // X T = [(X Iᵢ) Bᵢ]ᵢ: (X Iᵢ)[r, b] = Σ_{logical i: assign=b} X[r, i],
        // i.e. the same group accumulation as t_lmm applied to Xᵀ.
        let blocks: Vec<DenseMatrix> = self
            .tables
            .iter()
            .enumerate()
            .map(|(p, table)| {
                let n_b = table.rows();
                let rows = x.rows();
                let partial = self.executor().map(self.n_chunks(), |ci| {
                    let lo = self.chunk_offsets[ci];
                    let hi = self.chunk_offsets[ci + 1];
                    let mut xg = DenseMatrix::zeros(rows, n_b);
                    for r in 0..rows {
                        let src = x.row(r);
                        let dst = xg.row_mut(r);
                        for (local, &b) in self.assigns[p][lo..hi].iter().enumerate() {
                            dst[b] += src[lo + local];
                        }
                    }
                    xg
                });
                let mut xg = DenseMatrix::zeros(rows, n_b);
                for g in partial {
                    xg.add_assign(&g);
                }
                table.dense_matmul(&xg)
            })
            .collect();
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::hstack_all(&refs)
    }

    fn crossprod(&self) -> DenseMatrix {
        let offs = self.col_offsets();
        let d = self.ncols();
        let mut out = DenseMatrix::zeros(d, d);
        let q = self.tables.len();
        for i in 0..q {
            // Diagonal block via the diag(colSums)^½ trick.
            let mut counts = vec![0.0f64; self.tables[i].rows()];
            for &a in &self.assigns[i] {
                counts[a] += 1.0;
            }
            let weights: Vec<f64> = counts.iter().map(|&c| c.sqrt()).collect();
            let diag = self.tables[i].scale_rows(&weights).crossprod();
            out.set_block(offs[i], offs[i], &diag);
            // Off-diagonal blocks BᵢᵀM Bⱼ via the co-occurrence matrix
            // M = IᵢᵀIⱼ. M·Bⱼ is accumulated directly from the sorted
            // pair multiset — each distinct `(a, b)` pair collapses to
            // one scaled row-add, the same work and accumulation order
            // as a CSR sparse product but with no fallible construction:
            // `a < tables[i].rows()` and `b < tables[j].rows()` hold by
            // the `assigns` invariant (see the field doc).
            for j in (i + 1)..q {
                let mut pairs: Vec<(usize, usize)> = self.assigns[i]
                    .iter()
                    .zip(&self.assigns[j])
                    .map(|(&a, &b)| (a, b))
                    .collect();
                pairs.sort_unstable();
                let mut mbj = DenseMatrix::zeros(self.tables[i].rows(), self.tables[j].cols());
                let mut k = 0;
                while k < pairs.len() {
                    let (a, b) = pairs[k];
                    let start = k;
                    while k < pairs.len() && pairs[k] == (a, b) {
                        k += 1;
                    }
                    add_scaled_row(&mut mbj, a, &self.tables[j], b, (k - start) as f64);
                }
                let block = t_cross(&self.tables[i], &Matrix::Dense(mbj));
                out.set_block(offs[j], offs[i], &block.transpose());
                out.set_block(offs[i], offs[j], &block);
            }
        }
        out
    }

    fn row_sums(&self) -> DenseMatrix {
        let partials: Vec<DenseMatrix> = self.tables.iter().map(|t| t.row_sums()).collect();
        let chunks = self.executor().map(self.n_chunks(), |ci| {
            let lo = self.chunk_offsets[ci];
            let hi = self.chunk_offsets[ci + 1];
            let mut out = DenseMatrix::zeros(hi - lo, 1);
            for (p, assign) in self.assigns.iter().enumerate() {
                for (local, &src) in assign[lo..hi].iter().enumerate() {
                    let v = out.get(local, 0) + partials[p].get(src, 0);
                    out.set(local, 0, v);
                }
            }
            out
        });
        let refs: Vec<&DenseMatrix> = chunks.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    fn col_sums(&self) -> DenseMatrix {
        let blocks: Vec<DenseMatrix> = self
            .tables
            .iter()
            .enumerate()
            .map(|(p, table)| {
                let mut counts = vec![0.0f64; table.rows()];
                for &a in &self.assigns[p] {
                    counts[a] += 1.0;
                }
                table.dense_matmul(&DenseMatrix::row_vector(&counts))
            })
            .collect();
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::hstack_all(&refs)
    }

    fn sum(&self) -> f64 {
        // Chunk-parallel gather-sum over the per-table row sums, folded
        // in chunk order — the grouping is fixed by the chunk layout, so
        // the result is invariant to the worker count.
        let partials: Vec<DenseMatrix> = self.tables.iter().map(|t| t.row_sums()).collect();
        self.executor()
            .map(self.n_chunks(), |ci| {
                let lo = self.chunk_offsets[ci];
                let hi = self.chunk_offsets[ci + 1];
                let mut acc = 0.0;
                for (p, assign) in self.assigns.iter().enumerate() {
                    for &src in &assign[lo..hi] {
                        acc += partials[p].get(src, 0);
                    }
                }
                acc
            })
            .into_iter()
            .sum()
    }

    fn scale(&self, x: f64) -> Self {
        let tables = self.tables.iter().map(|t| t.scalar_mul(x)).collect();
        Self {
            tables,
            assigns: self.assigns.clone(),
            chunk_offsets: self.chunk_offsets.clone(),
            n_rows: self.n_rows,
            executor: self.executor,
        }
    }

    fn squared(&self) -> Self {
        let tables = self.tables.iter().map(|t| t.scalar_pow(2.0)).collect();
        Self {
            tables,
            assigns: self.assigns.clone(),
            chunk_offsets: self.chunk_offsets.clone(),
            n_rows: self.n_rows,
            executor: self.executor,
        }
    }

    fn ginv(&self) -> DenseMatrix {
        let (n, d) = (self.nrows(), self.ncols());
        if d < n {
            let g = ginv_sym_psd(&self.crossprod());
            self.lmm(&g).transpose()
        } else {
            let t = self.materialize().to_dense();
            morpheus_linalg::ginv(&t)
        }
    }

    fn materialize(&self) -> Matrix {
        let blocks: Vec<Matrix> = self
            .tables
            .iter()
            .enumerate()
            .map(|(p, table)| table.gather_rows(&self.assigns[p]))
            .collect();
        let refs: Vec<&Matrix> = blocks.iter().collect();
        Matrix::hstack_all(&refs)
    }
}

/// `out[dst, :] += w * src[b, :]` across representations — the row-add
/// primitive of the crossprod co-occurrence accumulation.
fn add_scaled_row(out: &mut DenseMatrix, dst: usize, src: &Matrix, b: usize, w: f64) {
    match src {
        Matrix::Dense(d) => {
            for (o, &v) in out.row_mut(dst).iter_mut().zip(d.row(b)) {
                *o += w * v;
            }
        }
        Matrix::Sparse(s) => {
            let (cols, vals) = s.row(b);
            let row = out.row_mut(dst);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c] += w * v;
            }
        }
    }
}

/// `aᵀ b` across representations, returned dense. The sparse arms are the
/// two-pass scatter kernels; run under a chunk-level claim they see the
/// remaining thread budget, so chunk- and kernel-level parallelism nest.
fn t_cross(a: &Matrix, b: &Matrix) -> DenseMatrix {
    match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => x.t_matmul(y),
        (Matrix::Sparse(x), Matrix::Dense(y)) => x.t_spmm_dense(y),
        (Matrix::Dense(x), Matrix::Sparse(y)) => y.t_spmm_dense(x).transpose(),
        (Matrix::Sparse(x), Matrix::Sparse(y)) => x.t_spgemm_dense(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixtures() -> Vec<(NormalizedMatrix, ChunkedNormalizedMatrix)> {
        let mut out = Vec::new();
        // PK-FK.
        let s = DenseMatrix::from_fn(23, 2, |i, j| ((i * 3 + j) % 7) as f64 - 2.0);
        let r = DenseMatrix::from_fn(4, 3, |i, j| ((i * 2 + j) % 5) as f64 * 0.5);
        let fk: Vec<usize> = (0..23).map(|i| (i * 5 + 1) % 4).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let c = ChunkedNormalizedMatrix::new(&tn, 5);
        out.push((tn, c));
        // M:N.
        let s2 = DenseMatrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let r2 = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 - 1.5);
        let is: Vec<usize> = vec![0, 0, 1, 2, 3, 4, 5, 5, 2];
        let ir: Vec<usize> = vec![0, 1, 2, 0, 1, 2, 0, 1, 2];
        let tn2 = NormalizedMatrix::mn_join(s2.into(), &is, r2.into(), &ir);
        let c2 = ChunkedNormalizedMatrix::new(&tn2, 4);
        out.push((tn2, c2));
        // Star schema with two attribute tables of different widths.
        let s3 = DenseMatrix::from_fn(11, 1, |i, _| i as f64 * 0.5);
        let r3a = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let r3b = DenseMatrix::from_fn(2, 3, |i, j| (i + j) as f64 - 1.0);
        let fk_a: Vec<usize> = (0..11).map(|i| i % 3).collect();
        let fk_b: Vec<usize> = (0..11).map(|i| (i * 5 + 1) % 2).collect();
        let tn3 = NormalizedMatrix::star(s3.into(), vec![(fk_a, r3a.into()), (fk_b, r3b.into())]);
        let c3 = ChunkedNormalizedMatrix::new(&tn3, 3);
        out.push((tn3, c3));
        out
    }

    #[test]
    fn materialize_matches_normalized() {
        for (tn, c) in fixtures() {
            assert!(c.materialize().approx_eq(&tn.materialize(), 1e-12));
        }
    }

    #[test]
    fn lmm_matches() {
        for (tn, c) in fixtures() {
            let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + 2 * j) as f64 * 0.3);
            assert!(c.lmm(&x).approx_eq(&tn.lmm(&x), 1e-11));
        }
    }

    #[test]
    fn t_lmm_matches() {
        for (tn, c) in fixtures() {
            let x = DenseMatrix::from_fn(tn.rows(), 2, |i, j| ((i * 3 + j) % 4) as f64);
            assert!(c.t_lmm(&x).approx_eq(&tn.t_lmm(&x), 1e-11));
        }
    }

    #[test]
    fn rmm_matches() {
        for (tn, c) in fixtures() {
            let x = DenseMatrix::from_fn(3, tn.rows(), |i, j| ((i + j) % 5) as f64 - 2.0);
            assert!(c.rmm(&x).approx_eq(&tn.rmm(&x), 1e-11));
        }
    }

    #[test]
    fn crossprod_matches() {
        for (tn, c) in fixtures() {
            assert!(LinearOperand::crossprod(&c).approx_eq(&tn.crossprod(), 1e-10));
        }
    }

    #[test]
    fn aggregations_match() {
        for (tn, c) in fixtures() {
            assert!(LinearOperand::row_sums(&c).approx_eq(&tn.row_sums(), 1e-11));
            assert!(LinearOperand::col_sums(&c).approx_eq(&tn.col_sums(), 1e-11));
            assert!((LinearOperand::sum(&c) - tn.sum()).abs() < 1e-9);
        }
    }

    #[test]
    fn scalar_closure_and_ginv() {
        for (tn, c) in fixtures() {
            assert!(c
                .scale(3.0)
                .materialize()
                .approx_eq(&tn.scalar_mul(3.0).materialize(), 1e-12));
            assert!(c
                .squared()
                .materialize()
                .approx_eq(&tn.scalar_pow(2.0).materialize(), 1e-12));
            let p = LinearOperand::ginv(&c);
            let t = tn.materialize().to_dense();
            assert!(t.matmul(&p).matmul(&t).approx_eq(&t, 1e-7));
        }
    }

    #[test]
    fn deprecated_raw_executor_path_still_works() {
        let s = DenseMatrix::from_fn(9, 2, |i, j| (i + j) as f64);
        let fk: Vec<usize> = (0..9).map(|i| i % 3).collect();
        let r = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        #[allow(deprecated)]
        let c = ChunkedNormalizedMatrix::from_normalized(&tn, 4, Executor::new(2));
        assert!(c.materialize().approx_eq(&tn.materialize(), 1e-12));
        assert_eq!(c.executor().threads(), 2);
    }

    #[test]
    fn zero_row_matrix_has_one_empty_chunk() {
        let s = DenseMatrix::zeros(0, 2);
        let r = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let fk: Vec<usize> = Vec::new();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let c = ChunkedNormalizedMatrix::new(&tn, 5);
        assert_eq!(c.n_chunks(), 1);
        let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + j) as f64);
        assert_eq!(c.lmm(&x).rows(), 0);
        assert_eq!(LinearOperand::row_sums(&c).rows(), 0);
        assert_eq!(LinearOperand::sum(&c), 0.0);
        let cp = LinearOperand::crossprod(&c);
        assert!(cp.approx_eq(&DenseMatrix::zeros(tn.cols(), tn.cols()), 0.0));
        assert_eq!(c.materialize().rows(), 0);
    }

    #[test]
    fn chunk_rows_larger_than_matrix_degenerates_to_one_chunk() {
        let (tn, _) = fixtures().remove(0);
        let c = ChunkedNormalizedMatrix::new(&tn, 10_000);
        assert_eq!(c.n_chunks(), 1);
        let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (2 * i + j) as f64 * 0.25);
        assert!(c.lmm(&x).approx_eq(&tn.lmm(&x), 1e-11));
        assert!((LinearOperand::sum(&c) - tn.sum()).abs() < 1e-9);
    }

    #[test]
    fn sum_is_invariant_to_worker_count() {
        for (_, c) in fixtures() {
            let serial = {
                let mut one = c.clone();
                one.executor = Some(Executor::new(1));
                LinearOperand::sum(&one)
            };
            let mut wide = c.clone();
            wide.executor = Some(Executor::new(8));
            assert_eq!(serial.to_bits(), LinearOperand::sum(&wide).to_bits());
        }
    }

    #[test]
    fn logistic_regression_identical_across_backends() {
        let (tn, c) = fixtures().remove(0);
        let y = DenseMatrix::from_fn(tn.rows(), 1, |i, _| if i % 3 == 0 { 1.0 } else { -1.0 });
        let trainer = morpheus_ml::logreg::LogisticRegressionGd::new(1e-2, 6);
        let w_norm = trainer.fit(&tn, &y);
        let w_chunk = trainer.fit(&c, &y);
        assert!(w_norm.w.approx_eq(&w_chunk.w, 1e-10));
    }
}
