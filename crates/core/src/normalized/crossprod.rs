//! Cross-product rewrites (§3.3.5, §3.5, App. A/D/E) — the heart of
//! factorized linear regression, covariance, and PCA.
//!
//! `crossprod(T) = Tᵀ T` is assembled block-wise over the parts of
//! `T = [I₀B₀, …, I_qB_q]`; block `(i, j)` is `Bᵢᵀ (Iᵢᵀ Iⱼ) Bⱼ`, and only
//! the upper triangle is computed (the result is symmetric).
//!
//! Two variants mirror the paper:
//!
//! * **Efficient** (Algorithm 2 / 10): diagonal blocks use the identity
//!   `Bᵀ(KᵀK)B = crossprod(diag(colSums(K))^½ B)` — valid because every
//!   indicator has exactly one `1.0` per row, making `KᵀK` diagonal with
//!   the reference counts on the diagonal. This avoids the sparse
//!   transpose-product entirely and exploits the symmetric kernel.
//! * **Naive** (Algorithm 1 / 9): diagonal blocks compute `Bᵀ((KᵀK)B)` with
//!   an explicit SpGEMM, and the entity diagonal uses a plain `SᵀS` product
//!   instead of the symmetric kernel. Kept for the ablation benchmark.
//!
//! The Gram matrix `crossprod(Tᵀ) = T Tᵀ` (appendix A) is
//! `Σᵢ Iᵢ (BᵢBᵢᵀ) Iᵢᵀ` **plus** cross-part terms when more than one part has
//! a non-identity indicator (M:N joins); the PK-FK special cases in the
//! appendix drop those terms because `I₀ = I`.

use super::{Indicator, NormalizedMatrix};
use crate::Matrix;
use morpheus_dense::DenseMatrix;
use morpheus_runtime::Runtime;

/// `aᵀ b` across all four representation pairings, returned dense. Every
/// arm is transpose-free and band-parallel, including the scatter-written
/// sparse ones (`t_spmm_dense` / `t_spgemm_dense` run a two-pass
/// symbolic/numeric scheme above the work threshold).
fn t_cross(a: &Matrix, b: &Matrix) -> DenseMatrix {
    match (a, b) {
        (Matrix::Dense(x), Matrix::Dense(y)) => x.t_matmul(y),
        (Matrix::Sparse(x), Matrix::Dense(y)) => x.t_spmm_dense(y),
        (Matrix::Dense(x), Matrix::Sparse(y)) => y.t_spmm_dense(x).transpose(),
        (Matrix::Sparse(x), Matrix::Sparse(y)) => x.t_spgemm_dense(y),
    }
}

impl NormalizedMatrix {
    /// `crossprod(T) = Tᵀ T`, using the efficient rewrite. Respects the
    /// transpose flag (`crossprod(Tᵀ)` is the Gram matrix `T Tᵀ`).
    pub fn crossprod(&self) -> DenseMatrix {
        if self.transposed {
            self.gram_raw()
        } else {
            self.crossprod_raw(false)
        }
    }

    /// `crossprod` via the naive method (Algorithm 1 / 9) — ablation only.
    pub fn crossprod_naive(&self) -> DenseMatrix {
        if self.transposed {
            self.gram_raw()
        } else {
            self.crossprod_raw(true)
        }
    }

    /// The Gram matrix `tcrossprod(T) = T Tᵀ`. Respects the transpose flag.
    pub fn tcrossprod(&self) -> DenseMatrix {
        if self.transposed {
            self.crossprod_raw(false)
        } else {
            self.gram_raw()
        }
    }

    fn crossprod_raw(&self, naive: bool) -> DenseMatrix {
        let d = self.d_total();
        let offsets = self.col_offsets();
        // Every block of the upper triangle — diagonal blocks
        // cp(Iᵢ Bᵢ) and off-diagonal blocks Bᵢᵀ (Iᵢᵀ Iⱼ) Bⱼ, j > i — is an
        // independent product; compute them in parallel on the shared
        // runtime (the kernels inside see the remaining thread budget) and
        // assemble in deterministic block order afterwards.
        let q = self.parts.len();
        let jobs: Vec<(usize, usize)> = (0..q).flat_map(|i| (i..q).map(move |j| (i, j))).collect();
        let blocks = Runtime::executor().map(jobs.len(), |idx| {
            let (i, j) = jobs[idx];
            if i == j {
                self.diag_block(&self.parts[i], naive)
            } else {
                self.cross_block(&self.parts[i], &self.parts[j])
            }
        });
        let mut out = DenseMatrix::zeros(d, d);
        for ((i, j), block) in jobs.into_iter().zip(blocks) {
            if i == j {
                out.set_block(offsets[i], offsets[i], &block);
            } else {
                out.set_block(offsets[j], offsets[i], &block.transpose());
                out.set_block(offsets[i], offsets[j], &block);
            }
        }
        out
    }

    fn diag_block(&self, part: &super::AttributePart, naive: bool) -> DenseMatrix {
        match (&part.indicator, naive) {
            (Indicator::Identity, false) => part.table.crossprod(),
            (Indicator::Identity, true) => t_cross(&part.table, &part.table),
            (Indicator::Rows(k), false) => {
                // crossprod(diag(colSums(K))^½ B): KᵀK is diagonal because
                // each indicator row is a single 1.0.
                let weights: Vec<f64> = k.col_sums().as_slice().iter().map(|&c| c.sqrt()).collect();
                part.table.scale_rows(&weights).crossprod()
            }
            (Indicator::Rows(k), true) => {
                // Bᵀ((KᵀK)B) with an explicit sparse transpose product.
                let ktk = k.transpose().spgemm(k);
                let inner = Matrix::Sparse(ktk).matmul(&part.table);
                t_cross(&part.table, &inner)
            }
        }
    }

    fn cross_block(&self, pi: &super::AttributePart, pj: &super::AttributePart) -> DenseMatrix {
        match (&pi.indicator, &pj.indicator) {
            // SᵀS' — two identity parts (degenerate but legal).
            (Indicator::Identity, Indicator::Identity) => t_cross(&pi.table, &pj.table),
            // Sᵀ(Kⱼ Bⱼ) without materializing: (KⱼᵀS)ᵀ Bⱼ.
            (Indicator::Identity, Indicator::Rows(_)) => {
                let u = pj.indicator.apply_t_m(&pi.table); // Kⱼᵀ S
                t_cross(&u, &pj.table)
            }
            // (Kᵢ Bᵢ)ᵀ S = Bᵢᵀ (Kᵢᵀ S).
            (Indicator::Rows(_), Indicator::Identity) => {
                let u = pi.indicator.apply_t_m(&pj.table); // Kᵢᵀ S
                t_cross(&pi.table, &u)
            }
            // Bᵢᵀ (Kᵢᵀ Kⱼ) Bⱼ — compute the small sparse P = KᵢᵀKⱼ first
            // (§3.5: "Ri (Kᵢᵀ Kⱼ) Rⱼ is used").
            (Indicator::Rows(ki), Indicator::Rows(_)) => {
                let p = Matrix::Sparse(
                    ki.transpose()
                        .spgemm(pj.indicator.as_rows().expect("Rows indicator")),
                );
                let q = p.matmul(&pj.table); // P Bⱼ
                t_cross(&pi.table, &q)
            }
        }
    }

    fn gram_raw(&self) -> DenseMatrix {
        // T Tᵀ for T = [I₀B₀, …, I_qB_q] is a pure per-part sum
        // Σᵢ Iᵢ (BᵢBᵢᵀ) Iᵢᵀ — horizontal blocks contribute independently
        // (appendix A/D: crossprod(Tᵀ) → Σᵢ Iᵢ crossprod(Bᵢᵀ) Iᵢᵀ).
        let n = self.n_rows;
        // Contributions are n x n each, so they stream one at a time into
        // the accumulator (bounded memory: two n x n matrices, like the
        // serial rewrite) rather than materializing all parts at once.
        // Parallelism comes from the band-parallel kernels inside
        // tcrossprod / spmm_dense — and, since the scatter kernels went
        // two-pass, dense_spmm for the `(K G) Kᵀ` step — all of which see
        // the full runtime budget here.
        let mut out = DenseMatrix::zeros(n, n);
        for pi in &self.parts {
            let g = pi.table.tcrossprod();
            let contrib = match &pi.indicator {
                Indicator::Identity => g,
                Indicator::Rows(k) => {
                    let kg = k.spmm_dense(&g); // K G : n x n_i
                    let kt = k.transpose();
                    kt.dense_spmm(&kg) // (K G) Kᵀ
                }
            };
            out.add_assign(&contrib);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;

    #[test]
    fn crossprod_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.crossprod();
            let m = tn.materialize().crossprod();
            assert!(f.approx_eq(&m, 1e-10), "crossprod mismatch");
        }
    }

    #[test]
    fn naive_crossprod_matches_efficient() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            assert!(tn.crossprod_naive().approx_eq(&tn.crossprod(), 1e-10));
        }
    }

    #[test]
    fn gram_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.tcrossprod();
            let m = tn.materialize().tcrossprod();
            assert!(f.approx_eq(&m, 1e-10), "gram mismatch");
        }
    }

    #[test]
    fn transposed_crossprod_is_gram() {
        for tn in [figure2(), star2(), mn()] {
            let tt = tn.transpose();
            // crossprod(Tᵀ) = T Tᵀ.
            assert!(tt.crossprod().approx_eq(&tn.tcrossprod(), 1e-10));
            // tcrossprod(Tᵀ) = Tᵀ T.
            assert!(tt.tcrossprod().approx_eq(&tn.crossprod(), 1e-10));
        }
    }

    #[test]
    fn crossprod_is_symmetric_psd() {
        let cp = star2().crossprod();
        assert!(cp.transpose().approx_eq(&cp, 1e-12));
        let e = morpheus_linalg::eigen_sym(&cp).unwrap();
        for &l in &e.values {
            assert!(l > -1e-8, "negative eigenvalue {l} in crossprod");
        }
    }

    #[test]
    fn crossprod_composes_with_scalar_ops() {
        // crossprod(2T) = 4 crossprod(T): scalar ops return normalized
        // matrices, so this chains without materialization.
        let tn = figure2();
        let lhs = tn.scalar_mul(2.0).crossprod();
        let rhs = tn.crossprod().scalar_mul(4.0);
        assert!(lhs.approx_eq(&rhs, 1e-10));
    }
}
