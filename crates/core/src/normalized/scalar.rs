//! Element-wise scalar operators and scalar functions (§3.3.1, §3.5, App. A/D/E).
//!
//! Rewrite rules (PK-FK form; the star-schema and M:N forms apply the same
//! map to every base table):
//!
//! ```text
//! T ⊘ x → (S ⊘ x, K, R ⊘ x)        x ⊘ T → (x ⊘ S, K, x ⊘ R)
//! f(T)  → (f(S), K, f(R))
//! ```
//!
//! These are valid because every indicator row holds a single `1.0`, so
//! `K f(R) = f(K R)` entry-wise — the constructor validates that property.
//! The output is again a normalized matrix, which lets downstream operators
//! keep exploiting the factorized form (the paper's closure property).
//! Transposed inputs use appendix A: `Tᵀ ⊘ x → (T ⊘ x)ᵀ`, i.e. the flag is
//! simply carried through.

use super::NormalizedMatrix;
use crate::Matrix;

impl NormalizedMatrix {
    fn map_tables(&self, f: impl Fn(&Matrix) -> Matrix) -> NormalizedMatrix {
        let parts = self
            .parts
            .iter()
            .map(|p| super::AttributePart {
                indicator: p.indicator.clone(),
                table: f(&p.table),
            })
            .collect();
        NormalizedMatrix {
            parts,
            n_rows: self.n_rows,
            transposed: self.transposed,
        }
    }

    /// `T + x` (or `(T + x)ᵀ` under the transpose flag).
    pub fn scalar_add(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_add(x))
    }

    /// `T - x`.
    pub fn scalar_sub(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_sub(x))
    }

    /// `x - T`.
    pub fn scalar_rsub(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_rsub(x))
    }

    /// `T * x`.
    pub fn scalar_mul(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_mul(x))
    }

    /// `T / x`.
    pub fn scalar_div(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_div(x))
    }

    /// `x / T`.
    pub fn scalar_rdiv(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_rdiv(x))
    }

    /// `T ^ x` element-wise.
    pub fn scalar_pow(&self, x: f64) -> NormalizedMatrix {
        self.map_tables(|t| t.scalar_pow(x))
    }

    /// `f(T)` for an arbitrary scalar function.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Copy) -> NormalizedMatrix {
        self.map_tables(|t| t.map(f))
    }

    /// `exp(T)`.
    pub fn exp(&self) -> NormalizedMatrix {
        self.map(f64::exp)
    }

    /// `log(T)`.
    pub fn ln(&self) -> NormalizedMatrix {
        self.map(f64::ln)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;

    /// Each factorized scalar op must equal the materialized op applied to T.
    macro_rules! check_scalar_op {
        ($name:ident, $call:expr, $mat_call:expr) => {
            #[test]
            fn $name() {
                for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
                    let f = $call(&tn).materialize().to_dense();
                    let m = $mat_call(&tn.materialize()).to_dense();
                    assert!(
                        f.approx_eq(&m, 1e-12),
                        "factorized/materialized mismatch in {}",
                        stringify!($name)
                    );
                }
            }
        };
    }

    check_scalar_op!(
        add_matches,
        |t: &crate::NormalizedMatrix| t.scalar_add(2.5),
        |m: &crate::Matrix| m.scalar_add(2.5)
    );
    check_scalar_op!(
        sub_matches,
        |t: &crate::NormalizedMatrix| t.scalar_sub(1.5),
        |m: &crate::Matrix| m.scalar_sub(1.5)
    );
    check_scalar_op!(
        rsub_matches,
        |t: &crate::NormalizedMatrix| t.scalar_rsub(3.0),
        |m: &crate::Matrix| m.scalar_rsub(3.0)
    );
    check_scalar_op!(
        mul_matches,
        |t: &crate::NormalizedMatrix| t.scalar_mul(3.0),
        |m: &crate::Matrix| m.scalar_mul(3.0)
    );
    check_scalar_op!(
        div_matches,
        |t: &crate::NormalizedMatrix| t.scalar_div(4.0),
        |m: &crate::Matrix| m.scalar_div(4.0)
    );
    check_scalar_op!(
        pow_matches,
        |t: &crate::NormalizedMatrix| t.scalar_pow(2.0),
        |m: &crate::Matrix| m.scalar_pow(2.0)
    );
    check_scalar_op!(
        exp_matches,
        |t: &crate::NormalizedMatrix| t.exp(),
        |m: &crate::Matrix| m.exp()
    );

    #[test]
    fn rdiv_matches_on_nonzero_data() {
        // x / T produces infinities on zero entries; use the all-nonzero fixture.
        let tn = figure2();
        let f = tn.scalar_rdiv(2.0).materialize().to_dense();
        let m = tn.materialize().scalar_rdiv(2.0).to_dense();
        assert!(f.approx_eq(&m, 1e-12));
    }

    #[test]
    fn output_is_still_normalized() {
        let tn = figure2();
        let out = tn.scalar_mul(2.0);
        assert_eq!(out.parts().len(), 2);
        assert_eq!(out.shape(), tn.shape());
    }

    #[test]
    fn transposed_scalar_op_carries_flag() {
        let tn = figure2().transpose();
        let out = tn.scalar_add(1.0);
        assert!(out.is_transposed());
        let expected = tn.materialize().scalar_add(1.0).to_dense();
        assert!(out.materialize().to_dense().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn map_with_custom_function() {
        let tn = figure2();
        let f = tn.map(|v| v.sin()).materialize().to_dense();
        let m = tn.materialize().map(|v| v.sin()).to_dense();
        assert!(f.approx_eq(&m, 1e-12));
    }

    #[test]
    fn chained_scalar_ops_stay_factorized() {
        // (2T + 1)^2 entirely in normalized land.
        let tn = figure2();
        let chained = tn.scalar_mul(2.0).scalar_add(1.0).scalar_pow(2.0);
        let expected = tn
            .materialize()
            .scalar_mul(2.0)
            .scalar_add(1.0)
            .scalar_pow(2.0);
        assert!(chained
            .materialize()
            .to_dense()
            .approx_eq(&expected.to_dense(), 1e-12));
    }
}
