//! Double matrix multiplication (DMM, appendix C): multiplying two
//! normalized matrices.
//!
//! DMM does not arise in the four headline ML algorithms, but it appears
//! over multi-table joins and completes the closure of the operator set.
//! For two PK-FK normalized matrices `A = (S_A, K_A, R_A)` and
//! `B = (S_B, K_B, R_B)` with `d_A = n_B`:
//!
//! ```text
//! A B → [ S_A S_B1 + K_A(R_A S_B2),
//!         (S_A K_B1)R_B + K_A((R_A K_B2)R_B) ]
//! ```
//!
//! where `S_B1/S_B2` (`K_B1/K_B2`) split `S_B` (`K_B`) at row `d_{S_A}`.
//! The transposed variants (`AᵀBᵀ`, `ABᵀ`, `AᵀB`) follow appendix C,
//! including the `nnz(KᵀAK_B)` bounds of theorems C.1/C.2 which justify
//! computing the sparse product `P = KᵀA K_B` eagerly.

use super::{Indicator, NormalizedMatrix};
use crate::Matrix;
use morpheus_runtime::Runtime;
use morpheus_sparse::CsrMatrix;

/// Splits a two-part PK-FK normalized matrix into `(S, K, R)` views.
fn as_pkfk(m: &NormalizedMatrix) -> Option<(&Matrix, &CsrMatrix, &Matrix)> {
    if m.parts.len() != 2 {
        return None;
    }
    let (p0, p1) = (&m.parts[0], &m.parts[1]);
    match (&p0.indicator, &p1.indicator) {
        (Indicator::Identity, Indicator::Rows(k)) => Some((&p0.table, k, &p1.table)),
        _ => None,
    }
}

impl NormalizedMatrix {
    /// Multiplies two normalized matrices (`self * other`), honoring both
    /// transpose flags. Both operands must be two-part PK-FK normalized
    /// matrices (the shape appendix C covers); other shapes fall back to
    /// materializing the *smaller* operand.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn dmm(&self, other: &NormalizedMatrix) -> Matrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "dmm: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        match (self.transposed, other.transposed) {
            (false, false) => self.dmm_plain(other),
            (true, true) => {
                // AᵀBᵀ → (B A)ᵀ.
                other
                    .untransposed()
                    .dmm_plain(&self.untransposed())
                    .transpose()
            }
            (false, true) => self.dmm_abt(&other.untransposed()),
            (true, false) => self.untransposed().dmm_atb(other),
        }
    }

    /// A copy with the transpose flag cleared (parts are shared clones).
    fn untransposed(&self) -> NormalizedMatrix {
        NormalizedMatrix {
            parts: self.parts.clone(),
            n_rows: self.n_rows,
            transposed: false,
        }
    }

    /// `A B`, both untransposed.
    fn dmm_plain(&self, other: &NormalizedMatrix) -> Matrix {
        let (Some((sa, ka, ra)), Some((sb, kb, rb))) = (as_pkfk(self), as_pkfk(other)) else {
            return self.dmm_fallback(other);
        };
        let dsa = sa.cols();
        let ka_ind = Indicator::Rows(std::sync::Arc::new(ka.clone()));
        // Row splits of B's members at d_{S_A}.
        let sb1 = sb.slice_rows(0..dsa);
        let sb2 = sb.slice_rows(dsa..sb.rows());
        let kb1 = kb.slice_rows(0..dsa);
        let kb2 = kb.slice_rows(dsa..kb.rows());

        // The left and right blocks are independent; compute them
        // concurrently on the shared runtime.
        let (left, right) = Runtime::executor().par_join(
            // Left block: S_A S_B1 + K_A (R_A S_B2).
            || sa.matmul(&sb1).add(&ka_ind.apply_m(&ra.matmul(&sb2))),
            // Right block: (S_A K_B1) R_B + K_A ((R_A K_B2) R_B).
            || {
                let right_a = sa.matmul(&Matrix::Sparse(kb1)).matmul(rb);
                let right_b = ka_ind.apply_m(&ra.matmul(&Matrix::Sparse(kb2)).matmul(rb));
                right_a.add(&right_b)
            },
        );
        Matrix::hstack_all(&[&left, &right])
    }

    /// `A Bᵀ` (appendix C, three cases on `d_{S_A}` vs `d_{S_B}`);
    /// `other` is passed untransposed.
    fn dmm_abt(&self, other: &NormalizedMatrix) -> Matrix {
        let (Some((sa, ka, ra)), Some((sb, kb, rb))) = (as_pkfk(self), as_pkfk(other)) else {
            return self.dmm_fallback(&other.transpose());
        };
        let (dsa, dsb) = (sa.cols(), sb.cols());
        let ka_ind = Indicator::Rows(std::sync::Arc::new(ka.clone()));
        let kb_t = Matrix::Sparse(kb.transpose());
        match dsa.cmp(&dsb) {
            std::cmp::Ordering::Equal => {
                // S_A S_Bᵀ + K_A (R_A R_Bᵀ) K_Bᵀ.
                let first = sa.matmul(&sb.transpose());
                let second = ka_ind.apply_m(&ra.matmul(&rb.transpose())).matmul(&kb_t);
                first.add(&second)
            }
            std::cmp::Ordering::Less => {
                // Column splits: S_B1 = S_B[:, :dsa], S_B2 = rest;
                // R_A1 = R_A[:, :dsb-dsa], R_A2 = rest.
                let sb1 = sb.slice_cols(0..dsa);
                let sb2 = sb.slice_cols(dsa..dsb);
                let ra1 = ra.slice_cols(0..dsb - dsa);
                let ra2 = ra.slice_cols(dsb - dsa..ra.cols());
                let t1 = sa.matmul(&sb1.transpose());
                let t2 = ka_ind.apply_m(&ra1.matmul(&sb2.transpose()));
                let t3 = ka_ind.apply_m(&ra2.matmul(&rb.transpose())).matmul(&kb_t);
                t1.add(&t2).add(&t3)
            }
            std::cmp::Ordering::Greater => {
                // (B Aᵀ)ᵀ.
                other.dmm_abt(self).transpose()
            }
        }
    }

    /// `Aᵀ B` (appendix C, 2x2 block form with the sparse `P = K_AᵀK_B`);
    /// `self` is passed untransposed.
    fn dmm_atb(&self, other: &NormalizedMatrix) -> Matrix {
        let (Some((sa, ka, ra)), Some((sb, kb, rb))) = (as_pkfk(self), as_pkfk(other)) else {
            return self.transpose().dmm_fallback(other);
        };
        let ka_t = ka.transpose();
        // P = K_Aᵀ K_B: theorems C.1/C.2 bound max{n_RA, n_RB} ≤ nnz(P) ≤ n_S,
        // so materializing P eagerly is safe. The SpGEMM itself is the
        // two-pass parallel kernel when the indicators are large enough.
        let p = Matrix::Sparse(ka_t.spgemm(kb));
        let kb_m = Matrix::Sparse(kb.clone());
        let ka_tm = Matrix::Sparse(ka_t);

        // The four blocks are independent: nested par_join claims the
        // workers pairwise, and the kernels inside see the remainder.
        let ((tl, tr), (bl, br)) = Runtime::executor().par_join(
            || {
                Runtime::executor().par_join(
                    || sa.transpose().matmul(sb),               // S_Aᵀ S_B
                    || sa.transpose().matmul(&kb_m).matmul(rb), // (S_Aᵀ K_B) R_B
                )
            },
            || {
                Runtime::executor().par_join(
                    || ra.transpose().matmul(&ka_tm.matmul(sb)), // R_Aᵀ (K_Aᵀ S_B)
                    || ra.transpose().matmul(&p.matmul(rb)),     // R_Aᵀ P R_B
                )
            },
        );
        let top = Matrix::hstack_all(&[&tl, &tr]);
        let bottom = Matrix::hstack_all(&[&bl, &br]);
        match (top, bottom) {
            (Matrix::Dense(t), Matrix::Dense(b)) => Matrix::Dense(t.vstack(&b)),
            (t, b) => Matrix::Dense(t.to_dense().vstack(&b.to_dense())),
        }
    }

    /// Fallback for shapes outside appendix C: materialize the smaller
    /// operand and use the single-normalized rewrites.
    fn dmm_fallback(&self, other: &NormalizedMatrix) -> Matrix {
        let self_size = self.rows() * self.cols();
        let other_size = other.rows() * other.cols();
        if self_size <= other_size {
            let left = self.materialize().to_dense();
            Matrix::Dense(other.rmm(&left))
        } else {
            let right = other.materialize().to_dense();
            Matrix::Dense(self.lmm(&right))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::NormalizedMatrix;
    use morpheus_dense::DenseMatrix;

    /// A: n_A x d_A normalized; B: n_B x d_B normalized with n_B = d_A.
    fn pair() -> (NormalizedMatrix, NormalizedMatrix) {
        // A: S_A 6x2, R_A 2x2 → d_A = 4.
        let sa = DenseMatrix::from_fn(6, 2, |i, j| ((i * 3 + j) % 5) as f64 + 0.5);
        let ra = DenseMatrix::from_fn(2, 2, |i, j| (i + 2 * j) as f64 - 1.0);
        let a = NormalizedMatrix::pk_fk(sa.into(), &[0, 1, 1, 0, 1, 0], ra.into());
        // B: S_B 4x2, R_B 3x3 → n_B = 4 = d_A, d_B = 5.
        let sb = DenseMatrix::from_fn(4, 2, |i, j| ((i + j * 2) % 4) as f64 * 0.75);
        let rb = DenseMatrix::from_fn(3, 3, |i, j| ((i * 2 + j) % 6) as f64 - 2.0);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[2, 0, 1, 2], rb.into());
        (a, b)
    }

    #[test]
    fn dmm_plain_matches_materialized() {
        let (a, b) = pair();
        let f = a.dmm(&b).to_dense();
        let m = a
            .materialize()
            .to_dense()
            .matmul(&b.materialize().to_dense());
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn dmm_transposed_both() {
        let (a, b) = pair();
        // Aᵀ has shape d_A x n_A; Bᵀ n_B = d_A… need BᵀAᵀ conformable:
        // (B A)ᵀ requires d_B? Use b.T * a.T with b: 4x5 → bᵀ: 5x4, aᵀ: 4x6.
        let f = b.transpose().dmm(&a.transpose()).to_dense();
        let m = b
            .materialize()
            .to_dense()
            .transpose()
            .matmul(&a.materialize().to_dense().transpose());
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn dmm_abt_equal_ds() {
        // A Bᵀ with d_{S_A} = d_{S_B} and equal total widths.
        let sa = DenseMatrix::from_fn(5, 2, |i, j| (i + j) as f64);
        let ra = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let a = NormalizedMatrix::pk_fk(sa.into(), &[0, 1, 0, 1, 1], ra.into());
        let sb = DenseMatrix::from_fn(4, 2, |i, j| (2 * i + j) as f64 - 3.0);
        let rb = DenseMatrix::from_fn(2, 3, |i, j| (i + j * 2) as f64 + 0.25);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[1, 0, 1, 0], rb.into());
        let f = a.dmm(&b.transpose()).to_dense();
        let m = a
            .materialize()
            .to_dense()
            .matmul(&b.materialize().to_dense().transpose());
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn dmm_abt_unequal_ds_both_directions() {
        // d_{S_A} = 1 < d_{S_B} = 3, same total width 4.
        let sa = DenseMatrix::from_fn(5, 1, |i, _| i as f64 + 1.0);
        let ra = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 * 0.3);
        let a = NormalizedMatrix::pk_fk(sa.into(), &[0, 1, 0, 1, 1], ra.into());
        let sb = DenseMatrix::from_fn(4, 3, |i, j| ((i + j) % 3) as f64 - 1.0);
        let rb = DenseMatrix::from_fn(3, 1, |i, _| (i as f64) * 2.0 + 0.5);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[2, 1, 0, 2], rb.into());

        let f = a.dmm(&b.transpose()).to_dense();
        let m = a
            .materialize()
            .to_dense()
            .matmul(&b.materialize().to_dense().transpose());
        assert!(f.approx_eq(&m, 1e-10), "case dSA < dSB failed");

        // And the symmetric case via (B Aᵀ)ᵀ.
        let f2 = b.dmm(&a.transpose()).to_dense();
        let m2 = m.transpose();
        assert!(f2.approx_eq(&m2, 1e-10), "case dSA > dSB failed");
    }

    #[test]
    fn dmm_atb_matches_materialized() {
        // Aᵀ B with n_A = n_B.
        let sa = DenseMatrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64 * 0.5);
        let ra = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let a = NormalizedMatrix::pk_fk(sa.into(), &[0, 1, 2, 0, 1, 2], ra.into());
        let sb = DenseMatrix::from_fn(6, 1, |i, _| (i % 4) as f64 - 1.5);
        let rb = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[1, 0, 0, 1, 1, 0], rb.into());
        let f = a.transpose().dmm(&b).to_dense();
        let m = a
            .materialize()
            .to_dense()
            .t_matmul(&b.materialize().to_dense());
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn dmm_fallback_for_non_pkfk_shapes() {
        // M:N-shaped A falls back to materializing the smaller operand.
        let s = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let r = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 * 0.5);
        let a = NormalizedMatrix::mn_join(s.into(), &[0, 1, 2, 0], r.into(), &[0, 1, 1, 0]);
        // A is 4x4, so B needs 4 rows.
        let sb = DenseMatrix::from_fn(4, 1, |i, _| i as f64);
        let rb = DenseMatrix::from_fn(1, 3, |_, j| 2.0 + j as f64);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[0, 0, 0, 0], rb.into());
        let f = a.dmm(&b).to_dense();
        let m = a
            .materialize()
            .to_dense()
            .matmul(&b.materialize().to_dense());
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn nnz_bounds_theorems_c1_c2() {
        use morpheus_sparse::CsrMatrix;
        // P = K_Aᵀ K_B: max{n_RA, n_RB} ≤ nnz(P) ≤ n_S.
        let ka = CsrMatrix::indicator(&[0, 1, 2, 0, 1, 2, 0, 2], 3);
        let kb = CsrMatrix::indicator(&[1, 1, 0, 0, 1, 3, 2, 0], 4);
        let p = ka.transpose().spgemm(&kb);
        assert!(p.nnz() >= 4); // max{n_RA, n_RB} = max{3, 4}
        assert!(p.nnz() <= 8);
        // sum(P) = n_S exactly (proof of theorem C.2).
        assert_eq!(p.sum(), 8.0);
    }
}
