//! The normalized matrix: the paper's logical data type for join outputs.
//!
//! # Representation
//!
//! The paper presents three shapes of normalized matrix:
//!
//! * single PK-FK join (§3.1): `(S, K, R)` with `T = [S, K R]`,
//! * star-schema multi-table PK-FK (§3.5): `(S, K₁…K_q, R₁…R_q)` with
//!   `T = [S, K₁R₁, …, K_qR_q]`,
//! * M:N join (§3.6): `(S, I_S, I_R, R)` with `T = [I_S S, I_R R]`, and the
//!   multi-table M:N generalization of appendix E.
//!
//! All are instances of one scheme: `T = [I₀B₀, I₁B₁, …, I_qB_q]`, where
//! each *part* pairs a base-table matrix `Bᵢ` with an *indicator*
//! `Iᵢ` — either the identity (the untransformed entity table of a PK-FK
//! join) or an explicit row-selection matrix with exactly one `1.0` per row.
//! Every rewrite rule in this module tree is written once against this
//! unified form; the paper's per-schema rules fall out as special cases
//! (observed in appendix D: "if the join is PK-FK, `I_S = I` and the rules
//! implicitly become equivalent to their §3.3 counterparts").
//!
//! # Transpose flag
//!
//! Following §3.2, `Tᵀ` does not build a new structure: a `transposed` flag
//! is flipped and every operator dispatches through the appendix-A rules
//! (e.g. `colSums(Tᵀ) → rowSums(T)ᵀ`), so repeated transposes are free and
//! rewrite opportunities survive transposition.

mod agg;
mod crossprod;
mod dmm;
mod elementwise;
mod ginv;
mod mult;
mod scalar;

use crate::{CoreError, CoreResult, Matrix};
use morpheus_dense::DenseMatrix;
use morpheus_sparse::CsrMatrix;
use std::sync::Arc;

/// How a part's base table maps into the logical join output.
#[derive(Debug, Clone)]
pub enum Indicator {
    /// The part contributes its base table unchanged (PK-FK entity table).
    Identity,
    /// The part contributes `K * B` for an explicit indicator matrix `K`
    /// (`n_rows x table_rows`, exactly one `1.0` per row). Shared via `Arc`
    /// because indicators are immutable across rewrites — scalar operators
    /// produce new base tables but reuse the indicators.
    Rows(Arc<CsrMatrix>),
}

impl Indicator {
    /// Logical output rows this indicator produces from `table_rows` input
    /// rows.
    pub fn n_out(&self, table_rows: usize) -> usize {
        match self {
            Indicator::Identity => table_rows,
            Indicator::Rows(k) => k.rows(),
        }
    }

    /// `true` for the identity indicator.
    pub fn is_identity(&self) -> bool {
        matches!(self, Indicator::Identity)
    }

    /// The indicator as an explicit sparse matrix, if present.
    pub fn as_rows(&self) -> Option<&CsrMatrix> {
        match self {
            Indicator::Identity => None,
            Indicator::Rows(k) => Some(k),
        }
    }

    /// `out += K * x` for dense `x`, without allocating the intermediate
    /// `K x`. This is the hot inner step of the LMM rewrite; for one-hot
    /// indicators it reduces to a gather-add. `out` is a row-major
    /// `out_rows x x.cols()` slice — a plain buffer, so callers can reuse
    /// one allocation across batches.
    ///
    /// # Panics
    /// Panics (debug) if shapes disagree.
    pub(crate) fn apply_add_into(&self, x: &DenseMatrix, out: &mut [f64], out_rows: usize) {
        let m = x.cols();
        debug_assert_eq!(out.len(), out_rows * m);
        match self {
            Indicator::Identity => {
                debug_assert_eq!(x.rows(), out_rows);
                for (o, &v) in out.iter_mut().zip(x.as_slice()) {
                    *o += v;
                }
            }
            Indicator::Rows(k) => {
                debug_assert_eq!(k.rows(), out_rows);
                if m == 1 {
                    // Vector fast path: one fused gather-add per logical row.
                    let xs = x.as_slice();
                    for (i, o) in out.iter_mut().enumerate() {
                        let (cols, vals) = k.row(i);
                        for (&c, &v) in cols.iter().zip(vals) {
                            *o += v * xs[c];
                        }
                    }
                    return;
                }
                for i in 0..k.rows() {
                    let (cols, vals) = k.row(i);
                    let orow = &mut out[i * m..(i + 1) * m];
                    for (&c, &v) in cols.iter().zip(vals) {
                        let xrow = x.row(c);
                        for (o, &xv) in orow.iter_mut().zip(xrow) {
                            *o += v * xv;
                        }
                    }
                }
            }
        }
    }

    /// `Kᵀ * x` for dense `x` (identity is free).
    pub(crate) fn apply_t(&self, x: &DenseMatrix) -> DenseMatrix {
        match self {
            Indicator::Identity => x.clone(),
            Indicator::Rows(k) => k.t_spmm_dense(x),
        }
    }

    /// `x * K` for dense `x` (identity is free).
    pub(crate) fn right_apply(&self, x: &DenseMatrix) -> DenseMatrix {
        match self {
            Indicator::Identity => x.clone(),
            Indicator::Rows(k) => k.dense_spmm(x),
        }
    }

    /// `colSums(K)` — how many logical rows reference each base-table row.
    /// For the identity this is all ones.
    pub(crate) fn reference_counts(&self, table_rows: usize) -> Vec<f64> {
        match self {
            Indicator::Identity => vec![1.0; table_rows],
            Indicator::Rows(k) => k.col_sums().into_vec(),
        }
    }

    /// The row assignment `a` with `K[i, a[i]] = 1` (identity ⇒ `a[i] = i`)
    /// — the centralized way to recover a foreign-key column from a
    /// one-hot indicator instead of walking CSR rows by hand.
    pub fn assignment(&self, table_rows: usize) -> Vec<usize> {
        match self {
            Indicator::Identity => (0..table_rows).collect(),
            Indicator::Rows(k) => (0..k.rows()).map(|i| k.row(i).0[0]).collect(),
        }
    }

    /// `K * m` for either representation of `m`. One-hot indicators reduce
    /// this to a row gather.
    pub(crate) fn apply_m(&self, m: &Matrix) -> Matrix {
        match self {
            Indicator::Identity => m.clone(),
            Indicator::Rows(k) => {
                let assign: Vec<usize> = (0..k.rows()).map(|i| k.row(i).0[0]).collect();
                m.gather_rows(&assign)
            }
        }
    }

    /// `Kᵀ * m` for either representation of `m`.
    pub(crate) fn apply_t_m(&self, m: &Matrix) -> Matrix {
        match self {
            Indicator::Identity => m.clone(),
            Indicator::Rows(k) => match m {
                Matrix::Dense(d) => Matrix::Dense(k.t_spmm_dense(d)),
                Matrix::Sparse(s) => Matrix::Sparse(k.transpose().spgemm(s)),
            },
        }
    }
}

/// One component of a normalized matrix: an indicator plus its base table.
#[derive(Debug, Clone)]
pub struct AttributePart {
    pub(crate) indicator: Indicator,
    pub(crate) table: Matrix,
}

impl AttributePart {
    /// Creates a part from an indicator and a base table.
    pub fn new(indicator: Indicator, table: Matrix) -> Self {
        Self { indicator, table }
    }

    /// The part's indicator.
    pub fn indicator(&self) -> &Indicator {
        &self.indicator
    }

    /// The part's base-table matrix.
    pub fn table(&self) -> &Matrix {
        &self.table
    }

    /// Materializes this part's contribution `K * B` to the join output.
    pub fn materialize(&self) -> Matrix {
        match &self.indicator {
            Indicator::Identity => self.table.clone(),
            Indicator::Rows(_) => {
                let assign = self.indicator.assignment(self.table.rows());
                self.table.gather_rows(&assign)
            }
        }
    }
}

/// Descriptive statistics of a normalized matrix, feeding the heuristic
/// decision rule (§3.7) and the cost model (Table 3).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinStats {
    /// Logical rows of `T` (`n_S`).
    pub n_rows: usize,
    /// Total features `d = Σ dᵢ`.
    pub d_total: usize,
    /// Feature count of the entity part (`d_S`); 0 when there is none.
    pub d_entity: usize,
    /// `(n_i, d_i)` of every attribute part with an explicit indicator.
    pub attr_dims: Vec<(usize, usize)>,
    /// Tuple ratio `n_S / n_R` (paper §3.4); for multiple attribute tables
    /// the *minimum* over parts — the most pessimistic redundancy estimate.
    pub tuple_ratio: f64,
    /// Feature ratio `d_R / d_S` (paper §3.4); for multiple attribute
    /// tables the *sum* of attribute features over `d_S`.
    pub feature_ratio: f64,
}

/// The normalized matrix `T = [I₀B₀, …, I_qB_q]` with a transpose flag.
#[derive(Debug, Clone)]
pub struct NormalizedMatrix {
    pub(crate) parts: Vec<AttributePart>,
    pub(crate) n_rows: usize,
    pub(crate) transposed: bool,
}

impl NormalizedMatrix {
    // ---------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------

    /// Builds a normalized matrix from validated parts.
    ///
    /// Validation enforces the paper's structural invariants: at least one
    /// part, consistent logical row counts, indicator/table shape agreement,
    /// and the one-`1.0`-per-row indicator property.
    pub fn try_from_parts(parts: Vec<AttributePart>) -> CoreResult<Self> {
        if parts.is_empty() {
            return Err(CoreError::Empty);
        }
        let n_rows = parts[0].indicator.n_out(parts[0].table.rows());
        for (idx, part) in parts.iter().enumerate() {
            let n = part.indicator.n_out(part.table.rows());
            if n != n_rows {
                return Err(CoreError::RowCountMismatch {
                    expected: n_rows,
                    part: idx,
                    found: n,
                });
            }
            if let Indicator::Rows(k) = &part.indicator {
                if k.cols() != part.table.rows() {
                    return Err(CoreError::IndicatorTableMismatch {
                        part: idx,
                        indicator_cols: k.cols(),
                        table_rows: part.table.rows(),
                    });
                }
                for i in 0..k.rows() {
                    let (cols, vals) = k.row(i);
                    if cols.len() != 1 || vals[0] != 1.0 {
                        return Err(CoreError::NotIndicator { part: idx, row: i });
                    }
                }
            }
        }
        Ok(Self {
            parts,
            n_rows,
            transposed: false,
        })
    }

    /// Single PK-FK join (§3.1): entity table `s`, foreign key `fk`
    /// (row numbers into `r`), attribute table `r`. `T = [S, K R]`.
    ///
    /// # Panics
    /// Panics if `fk.len() != s.rows()` or any key is out of range; use
    /// [`NormalizedMatrix::try_from_parts`] for fallible assembly.
    pub fn pk_fk(s: Matrix, fk: &[usize], r: Matrix) -> Self {
        assert_eq!(
            fk.len(),
            s.rows(),
            "pk_fk: foreign-key column has {} entries for {} entity rows",
            fk.len(),
            s.rows()
        );
        let k = CsrMatrix::indicator(fk, r.rows());
        Self::try_from_parts(vec![
            AttributePart::new(Indicator::Identity, s),
            AttributePart::new(Indicator::Rows(Arc::new(k)), r),
        ])
        .expect("pk_fk: invalid construction")
    }

    /// Star-schema multi-table PK-FK join (§3.5): one entity table and `q`
    /// attribute tables, each with its own foreign-key column.
    /// `T = [S, K₁R₁, …, K_qR_q]`.
    ///
    /// # Panics
    /// Panics on shape inconsistencies.
    pub fn star(s: Matrix, links: Vec<(Vec<usize>, Matrix)>) -> Self {
        let n_s = s.rows();
        let mut parts = vec![AttributePart::new(Indicator::Identity, s)];
        for (i, (fk, r)) in links.into_iter().enumerate() {
            assert_eq!(
                fk.len(),
                n_s,
                "star: foreign key {i} has {} entries for {} entity rows",
                fk.len(),
                n_s
            );
            let k = CsrMatrix::indicator(&fk, r.rows());
            parts.push(AttributePart::new(Indicator::Rows(Arc::new(k)), r));
        }
        Self::try_from_parts(parts).expect("star: invalid construction")
    }

    /// Two-table M:N join (§3.6) from precomputed provenance: row `i` of the
    /// join output `T` combines `s` row `is_assign[i]` with `r` row
    /// `ir_assign[i]`. `T = [I_S S, I_R R]`.
    ///
    /// # Panics
    /// Panics if the assignment vectors have different lengths or reference
    /// rows out of range.
    pub fn mn_join(s: Matrix, is_assign: &[usize], r: Matrix, ir_assign: &[usize]) -> Self {
        assert_eq!(
            is_assign.len(),
            ir_assign.len(),
            "mn_join: provenance vectors differ in length"
        );
        let i_s = CsrMatrix::indicator(is_assign, s.rows());
        let i_r = CsrMatrix::indicator(ir_assign, r.rows());
        Self::try_from_parts(vec![
            AttributePart::new(Indicator::Rows(Arc::new(i_s)), s),
            AttributePart::new(Indicator::Rows(Arc::new(i_r)), r),
        ])
        .expect("mn_join: invalid construction")
    }

    /// Two-table M:N join from raw join-attribute columns: computes
    /// `T' = π(S) ⋈_{J_S = J_R} π(R)` (the paper's non-deduplicating
    /// projection join) and derives `I_S`/`I_R` from it.
    pub fn mn_join_on_keys(s: Matrix, js: &[u64], r: Matrix, jr: &[u64]) -> Self {
        assert_eq!(js.len(), s.rows(), "mn_join_on_keys: J_S length mismatch");
        assert_eq!(jr.len(), r.rows(), "mn_join_on_keys: J_R length mismatch");
        // Bucket R rows by join-key value.
        let mut buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &v) in jr.iter().enumerate() {
            buckets.entry(v).or_default().push(i);
        }
        let mut is_assign = Vec::new();
        let mut ir_assign = Vec::new();
        for (i, &v) in js.iter().enumerate() {
            if let Some(rs) = buckets.get(&v) {
                for &j in rs {
                    is_assign.push(i);
                    ir_assign.push(j);
                }
            }
        }
        Self::mn_join(s, &is_assign, r, &ir_assign)
    }

    /// Multi-table M:N join (appendix E): every part carries an explicit
    /// indicator; there is no identity entity part.
    /// `T = [I_{R1}R₁, …, I_{Rq}R_q]`.
    pub fn multi_mn(parts: Vec<(Vec<usize>, Matrix)>) -> CoreResult<Self> {
        let built: Vec<AttributePart> = parts
            .into_iter()
            .map(|(assign, table)| {
                let k = CsrMatrix::indicator(&assign, table.rows());
                AttributePart::new(Indicator::Rows(Arc::new(k)), table)
            })
            .collect();
        Self::try_from_parts(built)
    }

    // ---------------------------------------------------------------
    // Accessors (transpose-aware)
    // ---------------------------------------------------------------

    /// Number of rows, respecting the transpose flag.
    pub fn rows(&self) -> usize {
        if self.transposed {
            self.d_total()
        } else {
            self.n_rows
        }
    }

    /// Number of columns, respecting the transpose flag.
    pub fn cols(&self) -> usize {
        if self.transposed {
            self.n_rows
        } else {
            self.d_total()
        }
    }

    /// `(rows, cols)`, respecting the transpose flag.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// `true` if the transpose flag is set.
    pub fn is_transposed(&self) -> bool {
        self.transposed
    }

    /// The parts `(Iᵢ, Bᵢ)` in order.
    pub fn parts(&self) -> &[AttributePart] {
        &self.parts
    }

    /// Logical (untransposed) row count `n`.
    pub fn logical_rows(&self) -> usize {
        self.n_rows
    }

    /// Total feature count `d = Σ dᵢ` (untransposed columns).
    pub fn d_total(&self) -> usize {
        self.parts.iter().map(|p| p.table.cols()).sum()
    }

    /// Column offset of each part within `T`, plus the final total:
    /// `[0, d₀, d₀+d₁, …, d]` — the paper's `d'ᵢ` values (§3.5).
    pub fn col_offsets(&self) -> Vec<usize> {
        let mut offs = Vec::with_capacity(self.parts.len() + 1);
        let mut acc = 0usize;
        offs.push(0);
        for p in &self.parts {
            acc += p.table.cols();
            offs.push(acc);
        }
        offs
    }

    /// Transpose: flips the flag; no data moves (§3.2).
    pub fn transpose(&self) -> NormalizedMatrix {
        NormalizedMatrix {
            parts: self.parts.clone(),
            n_rows: self.n_rows,
            transposed: !self.transposed,
        }
    }

    /// Summary statistics (tuple ratio, feature ratio, …).
    pub fn stats(&self) -> JoinStats {
        let d_entity: usize = self
            .parts
            .iter()
            .filter(|p| p.indicator.is_identity())
            .map(|p| p.table.cols())
            .sum();
        let attr_dims: Vec<(usize, usize)> = self
            .parts
            .iter()
            .filter(|p| !p.indicator.is_identity())
            .map(|p| (p.table.rows(), p.table.cols()))
            .collect();
        let d_attr: usize = attr_dims.iter().map(|&(_, d)| d).sum();
        let tuple_ratio = attr_dims
            .iter()
            .map(|&(n, _)| self.n_rows as f64 / n.max(1) as f64)
            .fold(f64::INFINITY, f64::min);
        let feature_ratio = if d_entity == 0 {
            f64::INFINITY
        } else {
            d_attr as f64 / d_entity as f64
        };
        JoinStats {
            n_rows: self.n_rows,
            d_total: self.d_total(),
            d_entity,
            attr_dims,
            tuple_ratio,
            feature_ratio,
        }
    }

    /// The redundancy ratio `size(T) / Σ size(base tables)` — how much
    /// larger the materialized join is than the normalized representation.
    pub fn redundancy_ratio(&self) -> f64 {
        let t_size = (self.n_rows * self.d_total()) as f64;
        let base: usize = self
            .parts
            .iter()
            .map(|p| p.table.rows() * p.table.cols())
            .sum();
        t_size / (base.max(1)) as f64
    }

    // ---------------------------------------------------------------
    // Materialization & pruning
    // ---------------------------------------------------------------

    /// Materializes the join output `T = [I₀B₀, …, I_qB_q]` (respecting the
    /// transpose flag). This is the "M" side of every experiment.
    pub fn materialize(&self) -> Matrix {
        let blocks: Vec<Matrix> = self.parts.iter().map(|p| p.materialize()).collect();
        let refs: Vec<&Matrix> = blocks.iter().collect();
        let t = Matrix::hstack_all(&refs);
        if self.transposed {
            t.transpose()
        } else {
            t
        }
    }

    /// Appends new logical rows — the incremental-maintenance extension the
    /// paper points to via LINVIEW (§6, "to handle evolving data").
    ///
    /// `s_new` holds the new entity-feature rows (required iff the matrix
    /// has an identity part) and `fk_new[i]` holds the new foreign-key /
    /// provenance column for the `i`-th explicit-indicator part, in part
    /// order. Attribute tables are shared untouched; indicators grow by the
    /// new rows. Works for PK-FK, star, and M:N shapes.
    ///
    /// # Errors
    /// Returns [`CoreError`] variants when the additions are inconsistent
    /// (wrong column count, wrong number of key vectors, out-of-range keys).
    pub fn append_rows(
        &self,
        s_new: Option<&Matrix>,
        fk_new: &[Vec<usize>],
    ) -> CoreResult<NormalizedMatrix> {
        if self.transposed {
            // Appending rows to Tᵀ would be appending columns; unsupported.
            return Err(CoreError::Empty);
        }
        let n_added = match (s_new, fk_new.first()) {
            (Some(m), _) => m.rows(),
            (None, Some(fk)) => fk.len(),
            (None, None) => 0,
        };
        let n_indicator_parts = self
            .parts
            .iter()
            .filter(|p| !p.indicator.is_identity())
            .count();
        if fk_new.len() != n_indicator_parts {
            return Err(CoreError::RowCountMismatch {
                expected: n_indicator_parts,
                part: fk_new.len(),
                found: fk_new.len(),
            });
        }
        let mut fk_iter = fk_new.iter();
        let mut parts = Vec::with_capacity(self.parts.len());
        for (idx, part) in self.parts.iter().enumerate() {
            match &part.indicator {
                Indicator::Identity => {
                    let add = s_new.ok_or(CoreError::NoSuchPart(idx))?;
                    if add.cols() != part.table.cols() || add.rows() != n_added {
                        return Err(CoreError::IndicatorTableMismatch {
                            part: idx,
                            indicator_cols: add.cols(),
                            table_rows: part.table.cols(),
                        });
                    }
                    parts.push(AttributePart::new(
                        Indicator::Identity,
                        part.table.vstack(add),
                    ));
                }
                Indicator::Rows(k) => {
                    let fk = fk_iter.next().expect("counted above");
                    if fk.len() != n_added {
                        return Err(CoreError::RowCountMismatch {
                            expected: n_added,
                            part: idx,
                            found: fk.len(),
                        });
                    }
                    for (row, &key) in fk.iter().enumerate() {
                        if key >= part.table.rows() {
                            return Err(CoreError::NotIndicator { part: idx, row });
                        }
                    }
                    let k_add = CsrMatrix::indicator(fk, part.table.rows());
                    parts.push(AttributePart::new(
                        Indicator::Rows(Arc::new(k.vstack(&k_add))),
                        part.table.clone(),
                    ));
                }
            }
        }
        NormalizedMatrix::try_from_parts(parts)
    }

    /// Drops base-table rows that no logical row references (§3.1/§3.7:
    /// "we can remove from R all the tuples that are never referred to in
    /// S"), remapping the indicators. Identity parts are untouched.
    pub fn prune(&self) -> NormalizedMatrix {
        let parts = self
            .parts
            .iter()
            .map(|p| match &p.indicator {
                Indicator::Identity => p.clone(),
                Indicator::Rows(k) => {
                    let counts = k.col_sums();
                    let keep: Vec<usize> = counts
                        .as_slice()
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0.0)
                        .map(|(j, _)| j)
                        .collect();
                    if keep.len() == k.cols() {
                        return p.clone();
                    }
                    let mut remap = vec![usize::MAX; k.cols()];
                    for (new, &old) in keep.iter().enumerate() {
                        remap[old] = new;
                    }
                    let assign: Vec<usize> = (0..k.rows()).map(|i| remap[k.row(i).0[0]]).collect();
                    let new_k = CsrMatrix::indicator(&assign, keep.len());
                    AttributePart::new(Indicator::Rows(Arc::new(new_k)), p.table.gather_rows(&keep))
                }
            })
            .collect();
        NormalizedMatrix {
            parts,
            n_rows: self.n_rows,
            transposed: self.transposed,
        }
    }

    /// Selects logical rows (with repetition, in the given order) directly
    /// on the factorized representation — the row-slice a batched scoring
    /// request evaluates, built **without** materializing the join.
    ///
    /// Per part: the indicator assignment is composed with `rows`, the
    /// base table keeps only the referenced attribute rows (in first-use
    /// order, so the result is deterministic), and a fresh one-hot
    /// indicator maps slice rows onto them. Requests that share an
    /// attribute row therefore still share one stored copy and one flop
    /// in every downstream rewrite — the paper's redundancy avoidance,
    /// carried into the slice. Identity parts gather their entity rows
    /// (each logical row owns exactly one).
    ///
    /// # Panics
    /// Panics if any index is `>= self.rows()` or if the matrix is
    /// transposed (a transposed selection would be a column slice).
    pub fn select_rows(&self, rows: &[usize]) -> NormalizedMatrix {
        assert!(
            !self.transposed,
            "select_rows: selecting columns of a transposed view is unsupported"
        );
        let n = self.n_rows;
        if let Some(&bad) = rows.iter().find(|&&r| r >= n) {
            panic!("select_rows: row {bad} out of range for {n} logical rows");
        }
        let parts = self
            .parts
            .iter()
            .map(|p| match &p.indicator {
                Indicator::Identity => {
                    AttributePart::new(Indicator::Identity, p.table.gather_rows(rows))
                }
                Indicator::Rows(k) => {
                    let table_rows = p.table.rows();
                    // Compose the assignment and compress to the
                    // referenced base rows in first-use order. The dense
                    // remap is O(table_rows) to zero, so small slices of
                    // big tables use a map keyed by base row instead.
                    let mut keep: Vec<usize> = Vec::new();
                    let assign: Vec<usize> = if rows.len() * 8 >= table_rows {
                        let mut remap = vec![usize::MAX; table_rows];
                        rows.iter()
                            .map(|&r| {
                                let old = k.row(r).0[0];
                                if remap[old] == usize::MAX {
                                    remap[old] = keep.len();
                                    keep.push(old);
                                }
                                remap[old]
                            })
                            .collect()
                    } else {
                        let mut remap = std::collections::HashMap::with_capacity(rows.len());
                        rows.iter()
                            .map(|&r| {
                                let old = k.row(r).0[0];
                                *remap.entry(old).or_insert_with(|| {
                                    keep.push(old);
                                    keep.len() - 1
                                })
                            })
                            .collect()
                    };
                    let new_k = CsrMatrix::indicator(&assign, keep.len());
                    AttributePart::new(Indicator::Rows(Arc::new(new_k)), p.table.gather_rows(&keep))
                }
            })
            .collect();
        NormalizedMatrix {
            parts,
            n_rows: rows.len(),
            transposed: false,
        }
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    //! Shared fixtures used by the rewrite-rule test modules.
    use super::*;

    /// The paper's Figure 2 example: S is 5x2, R is 2x2, K from fk [0,1,1,0,1].
    pub fn figure2() -> NormalizedMatrix {
        let s = DenseMatrix::from_rows(&[
            &[1.0, 2.0],
            &[4.0, 3.0],
            &[5.0, 6.0],
            &[8.0, 7.0],
            &[9.0, 1.0],
        ]);
        let r = DenseMatrix::from_rows(&[&[1.1, 2.2], &[3.3, 4.4]]);
        NormalizedMatrix::pk_fk(s.into(), &[0, 1, 1, 0, 1], r.into())
    }

    /// A star-schema join with two attribute tables of different widths.
    pub fn star2() -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64 + 0.5);
        let r1 = DenseMatrix::from_fn(3, 2, |i, j| (10 + i * 2 + j) as f64);
        let r2 = DenseMatrix::from_fn(2, 3, |i, j| -((i * 3 + j) as f64) - 1.0);
        NormalizedMatrix::star(
            s.into(),
            vec![
                (vec![0, 1, 2, 0, 1, 2], r1.into()),
                (vec![1, 0, 0, 1, 1, 0], r2.into()),
            ],
        )
    }

    /// A two-table M:N join built from raw key columns.
    pub fn mn() -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64 + 1.0);
        let r = DenseMatrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.5 + 0.1);
        // keys: S = [7, 8, 7, 9], R = [7, 7, 8] → |T'| = 2*2 + 1*1 = 5
        NormalizedMatrix::mn_join_on_keys(s.into(), &[7, 8, 7, 9], r.into(), &[7, 7, 8])
    }

    /// A sparse-table PK-FK join (both S and R sparse one-hot).
    pub fn sparse_pkfk() -> NormalizedMatrix {
        let s = CsrMatrix::from_triplets(
            5,
            3,
            &[
                (0, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (3, 0, 1.0),
                (4, 2, 1.0),
            ],
        )
        .unwrap();
        let r = CsrMatrix::from_triplets(2, 4, &[(0, 1, 1.0), (0, 3, 2.0), (1, 0, 1.0)]).unwrap();
        NormalizedMatrix::pk_fk(s.into(), &[1, 0, 0, 1, 0], r.into())
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::*;
    use super::*;

    #[test]
    fn pk_fk_materializes_join() {
        let tn = figure2();
        assert_eq!(tn.shape(), (5, 4));
        let t = tn.materialize().to_dense();
        // Row 0 joins S row 0 with R row 0, row 1 with R row 1, etc.
        assert_eq!(t.row(0), &[1.0, 2.0, 1.1, 2.2]);
        assert_eq!(t.row(1), &[4.0, 3.0, 3.3, 4.4]);
        assert_eq!(t.row(3), &[8.0, 7.0, 1.1, 2.2]);
    }

    #[test]
    fn star_materializes_all_parts() {
        let tn = star2();
        assert_eq!(tn.shape(), (6, 7));
        assert_eq!(tn.col_offsets(), vec![0, 2, 4, 7]);
        let t = tn.materialize().to_dense();
        assert_eq!(t.get(0, 2), 10.0); // r1 row 0 col 0
        assert_eq!(t.get(0, 4), -4.0); // r2 row 1 col 0
    }

    #[test]
    fn mn_join_on_keys_builds_cross_pairs() {
        let tn = mn();
        // S keys [7,8,7,9]; R keys [7,7,8] → matches: s0×{r0,r1}, s1×{r2}, s2×{r0,r1} = 5 rows
        assert_eq!(tn.logical_rows(), 5);
        let t = tn.materialize().to_dense();
        assert_eq!(t.rows(), 5);
        // Every output row must be [s_row, r_row] for a matching key pair.
        assert_eq!(t.row(0)[0..2], [1.0, 2.0]); // s row 0
    }

    #[test]
    fn transpose_flips_shape_only() {
        let tn = figure2();
        let tt = tn.transpose();
        assert_eq!(tt.shape(), (4, 5));
        assert!(tt.is_transposed());
        assert!(!tt.transpose().is_transposed());
        let mt = tt.materialize().to_dense();
        assert_eq!(mt, tn.materialize().to_dense().transpose());
    }

    #[test]
    fn stats_match_paper_definitions() {
        let tn = figure2();
        let st = tn.stats();
        assert_eq!(st.n_rows, 5);
        assert_eq!(st.d_total, 4);
        assert_eq!(st.d_entity, 2);
        assert_eq!(st.attr_dims, vec![(2, 2)]);
        assert!((st.tuple_ratio - 2.5).abs() < 1e-12);
        assert!((st.feature_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn redundancy_ratio_reflects_join_blowup() {
        let tn = figure2();
        // T is 5x4 = 20; bases are 5x2 + 2x2 = 14.
        assert!((tn.redundancy_ratio() - 20.0 / 14.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_structures() {
        let s = DenseMatrix::zeros(3, 2);
        let r = DenseMatrix::zeros(2, 2);
        // Row-count mismatch between parts.
        let k_bad = CsrMatrix::indicator(&[0, 1], 2); // only 2 logical rows
        let err = NormalizedMatrix::try_from_parts(vec![
            AttributePart::new(Indicator::Identity, Matrix::Dense(s.clone())),
            AttributePart::new(Indicator::Rows(Arc::new(k_bad)), Matrix::Dense(r.clone())),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::RowCountMismatch { .. }));

        // Indicator with a non-1.0 value.
        let k_val =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 2.0), (1, 1, 1.0), (2, 0, 1.0)]).unwrap();
        let err = NormalizedMatrix::try_from_parts(vec![
            AttributePart::new(Indicator::Identity, Matrix::Dense(s.clone())),
            AttributePart::new(Indicator::Rows(Arc::new(k_val)), Matrix::Dense(r.clone())),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::NotIndicator { part: 1, row: 0 }));

        // Indicator/table mismatch.
        let k_wide = CsrMatrix::indicator(&[0, 1, 2], 3);
        let err = NormalizedMatrix::try_from_parts(vec![
            AttributePart::new(Indicator::Identity, Matrix::Dense(s)),
            AttributePart::new(Indicator::Rows(Arc::new(k_wide)), Matrix::Dense(r)),
        ])
        .unwrap_err();
        assert!(matches!(err, CoreError::IndicatorTableMismatch { .. }));

        assert!(matches!(
            NormalizedMatrix::try_from_parts(vec![]),
            Err(CoreError::Empty)
        ));
    }

    #[test]
    fn prune_drops_unreferenced_rows() {
        let s = DenseMatrix::from_fn(3, 1, |i, _| i as f64);
        let r = DenseMatrix::from_fn(4, 2, |i, j| (i * 2 + j) as f64);
        // Only R rows 0 and 2 are referenced.
        let tn = NormalizedMatrix::pk_fk(s.into(), &[2, 0, 2], r.into());
        let before = tn.materialize();
        let pruned = tn.prune();
        assert_eq!(pruned.parts()[1].table().rows(), 2);
        assert!(pruned.materialize().approx_eq(&before, 1e-12));
    }

    #[test]
    fn prune_noop_when_all_referenced() {
        let tn = figure2();
        let pruned = tn.prune();
        assert_eq!(pruned.parts()[1].table().rows(), 2);
        assert!(pruned.materialize().approx_eq(&tn.materialize(), 1e-12));
    }

    #[test]
    fn sparse_parts_materialize_sparse() {
        let tn = sparse_pkfk();
        let t = tn.materialize();
        assert!(t.is_sparse());
        assert_eq!(t.shape(), (5, 7));
    }

    #[test]
    fn append_rows_matches_rebuilt_join() {
        let tn = figure2();
        // Two new customers referencing R rows 1 and 0.
        let s_new = Matrix::Dense(DenseMatrix::from_rows(&[&[10.0, 11.0], &[12.0, 13.0]]));
        let grown = tn.append_rows(Some(&s_new), &[vec![1, 0]]).unwrap();
        assert_eq!(grown.logical_rows(), 7);
        let t = grown.materialize().to_dense();
        assert_eq!(t.row(5), &[10.0, 11.0, 3.3, 4.4]);
        assert_eq!(t.row(6), &[12.0, 13.0, 1.1, 2.2]);
        // Old rows untouched.
        assert_eq!(t.row(0), &[1.0, 2.0, 1.1, 2.2]);
        // Operators keep working on the grown matrix.
        let x = DenseMatrix::from_fn(4, 1, |i, _| i as f64 + 1.0);
        assert!(grown
            .lmm(&x)
            .approx_eq(&grown.materialize().matmul_dense(&x), 1e-12));
    }

    #[test]
    fn append_rows_mn_join() {
        let tn = mn();
        let before = tn.logical_rows();
        // One new logical pair: S row 0 with R row 2.
        let grown = tn.append_rows(None, &[vec![0], vec![2]]).unwrap();
        assert_eq!(grown.logical_rows(), before + 1);
        assert!(grown
            .materialize()
            .to_dense()
            .slice_rows(0..before)
            .approx_eq(&tn.materialize().to_dense(), 1e-12));
    }

    #[test]
    fn append_rows_validates() {
        let tn = figure2();
        let s_new = Matrix::Dense(DenseMatrix::from_rows(&[&[1.0, 2.0]]));
        // Wrong number of key vectors.
        assert!(tn.append_rows(Some(&s_new), &[]).is_err());
        // Key out of range.
        assert!(tn.append_rows(Some(&s_new), &[vec![9]]).is_err());
        // Mismatched counts between S rows and keys.
        assert!(tn.append_rows(Some(&s_new), &[vec![0, 1]]).is_err());
        // Missing entity rows when an identity part exists.
        assert!(tn.append_rows(None, &[vec![0]]).is_err());
        // Transposed matrices cannot be appended to.
        assert!(tn
            .transpose()
            .append_rows(Some(&s_new), &[vec![0]])
            .is_err());
    }

    #[test]
    fn multi_mn_has_no_identity_part() {
        let r1 = DenseMatrix::from_fn(2, 1, |i, _| i as f64 + 1.0);
        let r2 = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let tn = NormalizedMatrix::multi_mn(vec![
            (vec![0, 1, 1, 0], Matrix::Dense(r1)),
            (vec![2, 0, 1, 1], Matrix::Dense(r2)),
        ])
        .unwrap();
        assert_eq!(tn.shape(), (4, 3));
        assert!(tn.parts().iter().all(|p| !p.indicator().is_identity()));
        let t = tn.materialize().to_dense();
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]); // r1 row 0, r2 row 2
    }

    #[test]
    fn select_rows_matches_materialized_gather() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let n = tn.rows();
            // Repeats, out-of-order, and a singleton — the shapes batching
            // produces.
            for rows in [
                vec![0],
                vec![n - 1, 0, n - 1],
                (0..n).rev().collect::<Vec<_>>(),
                vec![1 % n, 1 % n, 0, n - 1],
            ] {
                let slice = tn.select_rows(&rows);
                assert_eq!(slice.shape(), (rows.len(), tn.cols()));
                let got = slice.materialize().to_dense();
                let want = tn.materialize().gather_rows(&rows).to_dense();
                assert!(got.approx_eq(&want, 0.0), "slice diverged for {rows:?}");
            }
        }
    }

    #[test]
    fn select_rows_stays_factorized_and_compressed() {
        // 6 logical rows over a 4-row attribute table, slice touching
        // only base rows {1, 0}: the slice keeps an explicit indicator
        // over a 2-row table — no join materialization, no dead rows.
        let s = DenseMatrix::from_fn(6, 2, |i, j| (i * 2 + j) as f64);
        let r = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let fk = [1usize, 0, 1, 3, 2, 1];
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let slice = tn.select_rows(&[0, 1, 2, 5]);
        let attr = &slice.parts()[1];
        assert!(!attr.indicator().is_identity());
        assert_eq!(attr.table().rows(), 2, "only referenced base rows kept");
        // Shared base rows are stored once: rows 0, 2, 5 all map to base 1.
        let k = attr.indicator().as_rows().unwrap();
        assert_eq!(k.row(0).0[0], k.row(2).0[0]);
        assert_eq!(k.row(0).0[0], k.row(3).0[0]);
    }

    #[test]
    fn select_rows_bitwise_stable_across_batch_composition() {
        // The value scored for a logical row must not depend on which
        // other rows share its batch — the micro-batching correctness
        // contract.
        let tn = sparse_pkfk();
        let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| (i as f64 * 0.7) - 1.0);
        let solo: Vec<f64> = (0..tn.rows())
            .map(|i| tn.select_rows(&[i]).lmm(&w).get(0, 0))
            .collect();
        let batch = tn.select_rows(&(0..tn.rows()).collect::<Vec<_>>()).lmm(&w);
        for (i, &s) in solo.iter().enumerate() {
            assert_eq!(
                s.to_bits(),
                batch.get(i, 0).to_bits(),
                "row {i} changed bits between batch sizes"
            );
        }
    }

    #[test]
    fn lmm_into_is_bit_identical_to_lmm() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            for m in [1usize, 3] {
                let x = DenseMatrix::from_fn(tn.cols(), m, |i, j| (i + 2 * j) as f64 * 0.25 - 1.0);
                let alloc = tn.lmm(&x);
                let mut buf = vec![f64::NAN; tn.rows() * m];
                tn.lmm_into(&x, &mut buf);
                for (a, b) in alloc.as_slice().iter().zip(&buf) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                // Transposed views fall back to the allocating dispatch.
                let tt = tn.transpose();
                let xt = DenseMatrix::from_fn(tt.cols(), m, |i, j| (i * 3 + j) as f64 * 0.5);
                let alloc_t = tt.lmm(&xt);
                let mut buf_t = vec![0.0; tt.rows() * m];
                tt.lmm_into(&xt, &mut buf_t);
                assert_eq!(alloc_t.as_slice(), &buf_t[..]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "select_rows: row 7 out of range")]
    fn select_rows_rejects_out_of_range() {
        figure2().select_rows(&[0, 7]);
    }

    #[test]
    #[should_panic(expected = "transposed")]
    fn select_rows_rejects_transposed() {
        figure2().transpose().select_rows(&[0]);
    }
}
