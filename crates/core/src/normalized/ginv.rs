//! Pseudo-inverse rewrites (§3.3.6, appendix A/B).
//!
//! The join output `T` is rarely square, and appendix B shows that even a
//! square `T` is overwhelmingly likely to be singular (invertibility forces
//! `TR ≤ 1/FR + 1`). The paper therefore targets the Moore–Penrose
//! pseudo-inverse with the identities
//!
//! ```text
//! ginv(T) → ginv(crossprod(T)) Tᵀ        if d < n
//! ginv(T) → Tᵀ ginv(crossprod(Tᵀ))       otherwise
//! ```
//!
//! Both sides reduce to factorized operators: the cross-product rewrite for
//! the inner term and (transposed) LMM for the outer product. The inner
//! pseudo-inverse runs on a small `d x d` (or `n x n`) symmetric PSD matrix
//! via the Jacobi eigendecomposition.

use super::NormalizedMatrix;
use morpheus_dense::DenseMatrix;
use morpheus_linalg::ginv_sym_psd;

impl NormalizedMatrix {
    /// Moore–Penrose pseudo-inverse `ginv(T)`, returned as a regular dense
    /// matrix of shape `cols() x rows()`.
    pub fn ginv(&self) -> DenseMatrix {
        let (n, d) = (self.rows(), self.cols());
        if d < n {
            // ginv(crossprod(T)) Tᵀ = (T G)ᵀ since G is symmetric.
            let g = ginv_sym_psd(&self.crossprod());
            self.lmm(&g).transpose()
        } else {
            // Tᵀ ginv(crossprod(Tᵀ)).
            let g = ginv_sym_psd(&self.tcrossprod());
            self.t_lmm(&g)
        }
    }

    /// Theorem B.1's invertibility bound: for a PK-FK normalized matrix, if
    /// the materialized `T` is invertible then `TR ≤ 1/FR + 1`. Returns
    /// `true` when the bound *rules out* invertibility (so `ginv` is the
    /// only option). Returns `false` when the bound is inconclusive.
    pub fn invertibility_ruled_out(&self) -> bool {
        let stats = self.stats();
        if self.rows() != self.cols() {
            return true; // non-square is never invertible
        }
        let tr = stats.tuple_ratio;
        let fr = stats.feature_ratio;
        if !tr.is_finite() || !fr.is_finite() || fr == 0.0 {
            return false;
        }
        tr > 1.0 / fr + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;
    use crate::{Matrix, NormalizedMatrix};
    use morpheus_dense::DenseMatrix;
    use morpheus_linalg::ginv;

    fn check_moore_penrose(a: &DenseMatrix, p: &DenseMatrix, tol: f64) {
        assert!(a.matmul(p).matmul(a).approx_eq(a, tol), "APA != A");
        assert!(p.matmul(a).matmul(p).approx_eq(p, tol), "PAP != P");
        let ap = a.matmul(p);
        assert!(ap.transpose().approx_eq(&ap, tol), "AP not symmetric");
        let pa = p.matmul(a);
        assert!(pa.transpose().approx_eq(&pa, tol), "PA not symmetric");
    }

    #[test]
    fn ginv_matches_materialized_tall() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.ginv();
            let t = tn.materialize().to_dense();
            assert_eq!(f.shape(), (t.cols(), t.rows()));
            check_moore_penrose(&t, &f, 1e-7);
            let direct = ginv(&t);
            assert!(f.approx_eq(&direct, 1e-6), "ginv mismatch vs direct SVD");
        }
    }

    #[test]
    fn ginv_wide_branch_via_transpose() {
        // Transposing makes d > n, exercising the second rewrite branch.
        let tn = figure2().transpose();
        let f = tn.ginv();
        let t = tn.materialize().to_dense();
        check_moore_penrose(&t, &f, 1e-7);
    }

    #[test]
    fn invertibility_bound_theorem_b1() {
        // figure2: 5x4, not square → ruled out trivially.
        assert!(figure2().invertibility_ruled_out());
        // Build a square T: nS = dS + dR = 4, with TR = nS/nR = 4/2 = 2 and
        // FR = dR/dS = 1. Bound: TR ≤ 1/FR + 1 = 2 → inconclusive (allowed).
        let s = DenseMatrix::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.5], &[7., 8.]]);
        let r = DenseMatrix::from_rows(&[&[1., 0.5], &[0.25, 1.]]);
        let tn = NormalizedMatrix::pk_fk(Matrix::Dense(s), &[0, 1, 0, 1], Matrix::Dense(r));
        assert_eq!(tn.rows(), tn.cols());
        assert!(!tn.invertibility_ruled_out());
        // Square but TR too large: nS = 6 = dS + dR with dS = 4, dR = 2,
        // nR = 1 → TR = 6 > 1/0.5 + 1 = 3 → invertibility ruled out.
        let s2 = DenseMatrix::from_fn(6, 4, |i, j| ((i * 31 + j * 17) % 7) as f64);
        let r2 = DenseMatrix::from_fn(1, 2, |_, j| j as f64 + 1.0);
        let tn2 = NormalizedMatrix::pk_fk(Matrix::Dense(s2), &[0; 6], Matrix::Dense(r2));
        assert_eq!(tn2.rows(), tn2.cols());
        assert!(tn2.invertibility_ruled_out());
        // And indeed the materialized T is singular (duplicate R columns).
        let t = tn2.materialize().to_dense();
        assert_eq!(morpheus_linalg::det(&t).unwrap(), 0.0);
    }
}
