//! Non-factorizable element-wise matrix operators (§3.3.7).
//!
//! `T ⊙ X` for a regular matrix `X` of the same shape has no join-induced
//! redundancy to exploit — the paper's counter-example fills `X` with unique
//! entries so that every output entry is distinct. These operators therefore
//! *materialize* the normalized matrix first; they exist so that the
//! operator set stays total (any LA script keeps running), which is part of
//! the closure story even though no speedup is possible.

use super::{Indicator, NormalizedMatrix};
use crate::Matrix;

impl NormalizedMatrix {
    /// `true` when `self` and `other` share the exact same join structure:
    /// equal transpose flags, equal part counts, and *identical* indicator
    /// matrices (checked by `Arc` pointer first, then structurally).
    ///
    /// Two normalized matrices derived from the same joins — e.g. `T` and
    /// `f(T)` for scalar `f`, or two feature transformations of one schema
    /// — always share structure.
    pub fn same_structure(&self, other: &NormalizedMatrix) -> bool {
        if self.transposed != other.transposed
            || self.n_rows != other.n_rows
            || self.parts.len() != other.parts.len()
        {
            return false;
        }
        self.parts.iter().zip(&other.parts).all(|(a, b)| {
            a.table.shape() == b.table.shape()
                && match (&a.indicator, &b.indicator) {
                    (Indicator::Identity, Indicator::Identity) => true,
                    (Indicator::Rows(ka), Indicator::Rows(kb)) => {
                        std::sync::Arc::ptr_eq(ka, kb) || ka.as_ref() == kb.as_ref()
                    }
                    _ => false,
                }
        })
    }

    /// Element-wise combination of two **structure-sharing** normalized
    /// matrices that stays factorized — an extension beyond §3.3.7.
    ///
    /// The paper marks `T ⊙ X` non-factorizable for *arbitrary* `X`, but
    /// when `X` is itself normalized over the same indicators, linearity
    /// gives `[S_A, K R_A] + [S_B, K R_B] = [S_A + S_B, K (R_A + R_B)]`
    /// (and similarly for `-`, and for `*`/`/` because one-hot indicators
    /// replicate rows verbatim). Returns `None` when the structures differ
    /// — callers then fall back to the materializing operators.
    pub fn try_elementwise(
        &self,
        other: &NormalizedMatrix,
        op: impl Fn(&Matrix, &Matrix) -> Matrix,
    ) -> Option<NormalizedMatrix> {
        if !self.same_structure(other) {
            return None;
        }
        let parts = self
            .parts
            .iter()
            .zip(&other.parts)
            .map(|(a, b)| super::AttributePart {
                indicator: a.indicator.clone(),
                table: op(&a.table, &b.table),
            })
            .collect();
        Some(NormalizedMatrix {
            parts,
            n_rows: self.n_rows,
            transposed: self.transposed,
        })
    }

    /// Factorized `T + U` for structure-sharing normalized `U`.
    pub fn try_add_normalized(&self, other: &NormalizedMatrix) -> Option<NormalizedMatrix> {
        self.try_elementwise(other, |a, b| a.add(b))
    }

    /// Factorized `T - U` for structure-sharing normalized `U`.
    pub fn try_sub_normalized(&self, other: &NormalizedMatrix) -> Option<NormalizedMatrix> {
        self.try_elementwise(other, |a, b| a.sub(b))
    }

    /// Factorized Hadamard `T * U` for structure-sharing normalized `U`.
    pub fn try_mul_normalized(&self, other: &NormalizedMatrix) -> Option<NormalizedMatrix> {
        self.try_elementwise(other, |a, b| a.mul_elem(b))
    }
    /// `T + X` — non-factorizable; materializes (§3.3.7).
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_matrix(&self, x: &Matrix) -> Matrix {
        self.materialize().add(x)
    }

    /// `T - X` — non-factorizable; materializes.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn sub_matrix(&self, x: &Matrix) -> Matrix {
        self.materialize().sub(x)
    }

    /// `T * X` element-wise — non-factorizable; materializes.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn mul_elem_matrix(&self, x: &Matrix) -> Matrix {
        self.materialize().mul_elem(x)
    }

    /// `T / X` element-wise — non-factorizable; materializes.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn div_elem_matrix(&self, x: &Matrix) -> Matrix {
        self.materialize().div_elem(x)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;
    use crate::Matrix;
    use morpheus_dense::DenseMatrix;

    #[test]
    fn elementwise_ops_match_materialized() {
        let tn = figure2();
        let (n, d) = tn.shape();
        // X with all-unique entries: the paper's no-redundancy witness.
        let x = Matrix::Dense(DenseMatrix::from_fn(n, d, |i, j| {
            ((i * d + j) * (n * d)) as f64
        }));
        let t = tn.materialize();
        assert!(tn.add_matrix(&x).approx_eq(&t.add(&x), 1e-12));
        assert!(tn.sub_matrix(&x).approx_eq(&t.sub(&x), 1e-12));
        assert!(tn.mul_elem_matrix(&x).approx_eq(&t.mul_elem(&x), 1e-12));
        let ones = Matrix::Dense(DenseMatrix::ones(n, d));
        assert!(tn.div_elem_matrix(&ones).approx_eq(&t, 1e-12));
    }

    #[test]
    fn transposed_elementwise_ops() {
        let tn = figure2().transpose();
        let (n, d) = tn.shape();
        let x = Matrix::Dense(DenseMatrix::from_fn(n, d, |i, j| (i + j) as f64));
        let t = tn.materialize();
        assert!(tn.add_matrix(&x).approx_eq(&t.add(&x), 1e-12));
    }

    #[test]
    fn structure_sharing_detection() {
        let tn = figure2();
        // Scalar ops preserve structure (indicators are shared Arcs).
        let scaled = tn.scalar_mul(2.0);
        assert!(tn.same_structure(&scaled));
        // A different join does not share structure.
        let other = mn();
        assert!(!tn.same_structure(&other));
        // Nor does the transpose.
        assert!(!tn.same_structure(&tn.transpose()));
    }

    #[test]
    fn factorized_elementwise_between_shared_structures() {
        let tn = figure2();
        let doubled = tn.scalar_mul(2.0);
        // T + 2T = 3T, computed without materializing.
        let sum = tn.try_add_normalized(&doubled).expect("same structure");
        assert!(sum
            .materialize()
            .approx_eq(&tn.materialize().scalar_mul(3.0), 1e-12));
        // 2T - T = T.
        let diff = doubled.try_sub_normalized(&tn).expect("same structure");
        assert!(diff.materialize().approx_eq(&tn.materialize(), 1e-12));
        // T * 2T = 2T² element-wise (one-hot indicators replicate rows).
        let prod = tn.try_mul_normalized(&doubled).expect("same structure");
        let expected = tn.materialize().scalar_pow(2.0).scalar_mul(2.0);
        assert!(prod.materialize().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn mismatched_structures_return_none() {
        let tn = figure2();
        assert!(tn.try_add_normalized(&mn()).is_none());
        assert!(tn.try_add_normalized(&tn.transpose()).is_none());
    }

    #[test]
    fn structural_equality_survives_reconstruction() {
        // Same fk column built twice: different Arcs, equal structure.
        let a = figure2();
        let b = figure2();
        assert!(a.same_structure(&b));
        assert!(a.try_add_normalized(&b).is_some());
    }
}
