//! Aggregation operators: `rowSums`, `colSums`, `sum` (§3.3.2, §3.5, App. A/D/E).
//!
//! Rewrite rules over the unified representation `T = [I₀B₀, …, I_qB_q]`:
//!
//! ```text
//! rowSums(T) → Σᵢ Iᵢ rowSums(Bᵢ)
//! colSums(T) → [colSums(I₀)B₀, …, colSums(I_q)B_q]
//! sum(T)     → Σᵢ colSums(Iᵢ) rowSums(Bᵢ)
//! ```
//!
//! where `Iᵢ = Identity` collapses `colSums(Iᵢ)Bᵢ` to `colSums(Bᵢ)` —
//! recovering the §3.3.2 PK-FK rules verbatim. These are the LA analog of
//! SQL aggregate push-down ([12, 37] in the paper).

use super::NormalizedMatrix;
use morpheus_dense::DenseMatrix;

impl NormalizedMatrix {
    /// `rowSums(T)` as an `n x 1` column vector; under the transpose flag,
    /// `rowSums(Tᵀ) → colSums(T)ᵀ` (appendix A).
    pub fn row_sums(&self) -> DenseMatrix {
        if self.transposed {
            self.col_sums_raw().transpose()
        } else {
            self.row_sums_raw()
        }
    }

    /// `colSums(T)` as a `1 x d` row vector; under the transpose flag,
    /// `colSums(Tᵀ) → rowSums(T)ᵀ`.
    pub fn col_sums(&self) -> DenseMatrix {
        if self.transposed {
            self.row_sums_raw().transpose()
        } else {
            self.col_sums_raw()
        }
    }

    /// `sum(T)`; transpose-invariant (`sum(Tᵀ) → sum(T)`).
    pub fn sum(&self) -> f64 {
        self.parts
            .iter()
            .map(|p| {
                // colSums(Iᵢ) rowSums(Bᵢ) = Σⱼ refcount(j) · rowSum(Bᵢ)[j]
                let rs = p.table.row_sums();
                let counts = p.indicator.reference_counts(p.table.rows());
                morpheus_dense::dot(&counts, rs.as_slice())
            })
            .sum()
    }

    /// `rowMin(T)` as an `n x 1` column vector — an extension beyond the
    /// paper's Table 1: the row minimum distributes over the horizontal
    /// block structure, `rowMin(T)[j] = minᵢ rowMin(Bᵢ)[a_{i,j}]`, so only
    /// the per-part row minima (of base-table size) are computed and then
    /// gathered. Transposed inputs materialize (a column minimum has no
    /// such push-down through the indicator).
    pub fn row_min(&self) -> DenseMatrix {
        if self.transposed {
            return self.materialize().row_min();
        }
        let mut acc = DenseMatrix::filled(self.n_rows, 1, f64::INFINITY);
        for p in &self.parts {
            let part_min = p.table.row_min();
            let assign = p.indicator.assignment(p.table.rows());
            for (i, &src) in assign.iter().enumerate() {
                let v = acc.get(i, 0).min(part_min.get(src, 0));
                acc.set(i, 0, v);
            }
        }
        acc
    }

    fn row_sums_raw(&self) -> DenseMatrix {
        let mut acc = DenseMatrix::zeros(self.n_rows, 1);
        let n = self.n_rows;
        for p in &self.parts {
            p.indicator
                .apply_add_into(&p.table.row_sums(), acc.as_mut_slice(), n);
        }
        acc
    }

    fn col_sums_raw(&self) -> DenseMatrix {
        let blocks: Vec<DenseMatrix> = self
            .parts
            .iter()
            .map(|p| match &p.indicator {
                super::Indicator::Identity => p.table.col_sums(),
                super::Indicator::Rows(k) => {
                    // colSums(K) * B — a 1 x n_B vector times the base table.
                    p.table.dense_matmul(&k.col_sums())
                }
            })
            .collect();
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::hstack_all(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;

    #[test]
    fn row_sums_match_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.row_sums();
            let m = tn.materialize().row_sums();
            assert!(f.approx_eq(&m, 1e-12));
        }
    }

    #[test]
    fn col_sums_match_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.col_sums();
            let m = tn.materialize().col_sums();
            assert!(f.approx_eq(&m, 1e-12));
        }
    }

    #[test]
    fn sum_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.sum();
            let m = tn.materialize().sum();
            assert!((f - m).abs() <= 1e-9 * m.abs().max(1.0));
        }
    }

    #[test]
    fn transposed_aggregations_follow_appendix_a() {
        for tn in [figure2(), star2(), mn()] {
            let tt = tn.transpose();
            let mt = tt.materialize();
            assert!(tt.row_sums().approx_eq(&mt.row_sums(), 1e-12));
            assert!(tt.col_sums().approx_eq(&mt.col_sums(), 1e-12));
            assert!((tt.sum() - tn.sum()).abs() < 1e-9);
        }
    }

    #[test]
    fn row_min_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let f = tn.row_min();
            let m = tn.materialize().row_min();
            assert!(f.approx_eq(&m, 1e-12), "rowMin mismatch");
        }
        // Transposed fallback.
        let tt = figure2().transpose();
        assert!(tt.row_min().approx_eq(&tt.materialize().row_min(), 1e-12));
    }

    #[test]
    fn aggregation_composes_with_scalar_ops() {
        // rowSums(T^2): the K-Means pre-computation (Algorithm 7, step 1).
        let tn = figure2();
        let f = tn.scalar_pow(2.0).row_sums();
        let m = tn.materialize().scalar_pow(2.0).row_sums();
        assert!(f.approx_eq(&m, 1e-12));
    }
}
