//! Left and right matrix multiplication (LMM §3.3.3, RMM §3.3.4, §3.5,
//! App. A/D/E) — the workhorse rewrites of factorized ML.
//!
//! Over `T = [I₀B₀, …, I_qB_q]` with column offsets `d'ᵢ`:
//!
//! ```text
//! LMM  T X → Σᵢ Iᵢ (Bᵢ X[d'ᵢ₋₁ : d'ᵢ, ])
//! RMM  X T → [(X I₀)B₀, …, (X I_q)B_q]
//! ```
//!
//! The multiplication *order* is the crux (§3.3.3): `Iᵢ(BᵢXᵢ)` costs
//! `O(nᵢ dᵢ m + n m)` while `(IᵢBᵢ)Xᵢ` is equivalent to materializing the
//! join and costs `O(n dᵢ m)`. [`NormalizedMatrix::lmm_materialized_order`]
//! keeps the bad order around for the ablation benchmark.
//!
//! Transposed forms (appendix A): `Tᵀ X → (Xᵀ T)ᵀ` and `X Tᵀ → (T Xᵀ)ᵀ`,
//! which dispatch back onto the untransposed rewrites.
//!
//! Parallelism is two-level: the per-part products run concurrently on the
//! shared [`Runtime`] executor (each part's `Bᵢ Xᵢ` is independent), while
//! the dense/sparse kernels inside each product see the *remaining* thread
//! budget — the executor's claim bookkeeping prevents oversubscription.
//! Partials are always combined in part order, so results are identical to
//! the sequential rewrite.

use super::NormalizedMatrix;
use morpheus_dense::DenseMatrix;
use morpheus_runtime::Runtime;

impl NormalizedMatrix {
    /// Left matrix multiplication `T X` (`X` is `cols() x m` dense).
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()`.
    pub fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.rows(),
            self.cols(),
            "lmm: X has {} rows for a {}x{} normalized matrix",
            x.rows(),
            self.rows(),
            self.cols()
        );
        if self.transposed {
            self.t_lmm_raw(x)
        } else {
            self.lmm_raw(x)
        }
    }

    /// Transposed LMM `Tᵀ X` without materializing the transpose
    /// (`X` is `rows() x m`).
    ///
    /// # Panics
    /// Panics if `x.rows() != self.rows()`.
    pub fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.rows(),
            self.rows(),
            "t_lmm: X has {} rows for a {}x{} normalized matrix",
            x.rows(),
            self.rows(),
            self.cols()
        );
        if self.transposed {
            self.lmm_raw(x)
        } else {
            self.t_lmm_raw(x)
        }
    }

    /// Right matrix multiplication `X T` (`X` is `m x rows()` dense).
    ///
    /// # Panics
    /// Panics if `x.cols() != self.rows()`.
    pub fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.cols(),
            self.rows(),
            "rmm: X has {} cols for a {}x{} normalized matrix",
            x.cols(),
            self.rows(),
            self.cols()
        );
        if self.transposed {
            // X Tᵀ → (T Xᵀ)ᵀ
            self.lmm_raw(&x.transpose()).transpose()
        } else {
            self.rmm_raw(x)
        }
    }

    /// `T X` in the *materializing* multiplication order `(Iᵢ Bᵢ) Xᵢ` —
    /// logically equal to [`NormalizedMatrix::lmm`] but with the redundancy
    /// the paper warns about. Exposed for the ablation study only.
    pub fn lmm_materialized_order(&self, x: &DenseMatrix) -> DenseMatrix {
        assert!(
            !self.transposed,
            "ablation helper expects untransposed input"
        );
        let offsets = self.col_offsets();
        let mut acc = DenseMatrix::zeros(self.n_rows, x.cols());
        for (p, w) in self.parts.iter().zip(offsets.windows(2)) {
            let xi = x.slice_rows(w[0]..w[1]);
            let materialized_part = p.materialize(); // Iᵢ Bᵢ — the bad order
            acc.add_assign(&materialized_part.matmul_dense(&xi));
        }
        acc
    }

    /// `T X` written into a caller-provided buffer (row-major,
    /// `rows() * x.cols()` slots) instead of allocating the output — the
    /// batch-scoring hot path, where the same buffer is reused across
    /// micro-batches. Bit-identical to [`NormalizedMatrix::lmm`] by
    /// construction: both run [`NormalizedMatrix::lmm_accumulate`].
    ///
    /// Transposed views take the allocating dispatch and copy (their
    /// result is assembled by vertical stacking, not accumulation).
    ///
    /// # Panics
    /// Panics if `x.rows() != self.cols()` or if `out.len()` is not
    /// `self.rows() * x.cols()`.
    pub fn lmm_into(&self, x: &DenseMatrix, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.rows() * x.cols(),
            "lmm_into: out has {} slots for a {} x {} result",
            out.len(),
            self.rows(),
            x.cols()
        );
        if self.transposed {
            out.copy_from_slice(self.lmm(x).as_slice());
            return;
        }
        assert_eq!(
            x.rows(),
            self.cols(),
            "lmm: X has {} rows for a {}x{} normalized matrix",
            x.rows(),
            self.rows(),
            self.cols()
        );
        self.lmm_accumulate(x, out);
    }

    pub(crate) fn lmm_raw(&self, x: &DenseMatrix) -> DenseMatrix {
        let mut acc = DenseMatrix::zeros(self.n_rows, x.cols());
        self.lmm_accumulate(x, acc.as_mut_slice());
        acc
    }

    /// The LMM rewrite into a zeroed-by-us output slice. The good order:
    /// Bᵢ Xᵢ first (small), then the indicator as a fused gather-add — no
    /// intermediate n x m matrix. The per-part products are independent
    /// and run in parallel; the gather-adds stay in part order so the
    /// accumulation is deterministic.
    fn lmm_accumulate(&self, x: &DenseMatrix, out: &mut [f64]) {
        let offsets = self.col_offsets();
        let partials = Runtime::executor().map(self.parts.len(), |i| {
            let w = &offsets[i..=i + 1];
            let xi = x.slice_rows(w[0]..w[1]);
            self.parts[i].table.matmul_dense(&xi)
        });
        out.fill(0.0);
        for (p, partial) in self.parts.iter().zip(&partials) {
            p.indicator.apply_add_into(partial, out, self.n_rows);
        }
    }

    pub(crate) fn t_lmm_raw(&self, x: &DenseMatrix) -> DenseMatrix {
        // Tᵀ X = [B₀ᵀ(I₀ᵀX); …; B_qᵀ(I_qᵀX)] stacked vertically; each
        // block is independent.
        let blocks = Runtime::executor().map(self.parts.len(), |i| {
            let p = &self.parts[i];
            let pulled = p.indicator.apply_t(x);
            p.table.t_matmul_dense(&pulled)
        });
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::vstack_all(&refs)
    }

    pub(crate) fn rmm_raw(&self, x: &DenseMatrix) -> DenseMatrix {
        // X T = [(X I₀)B₀, …, (X I_q)B_q] stacked horizontally; each block
        // is independent.
        let blocks = Runtime::executor().map(self.parts.len(), |i| {
            let p = &self.parts[i];
            let pushed = p.indicator.right_apply(x);
            p.table.dense_matmul(&pushed)
        });
        let refs: Vec<&DenseMatrix> = blocks.iter().collect();
        DenseMatrix::hstack_all(&refs)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_fixtures::*;
    use morpheus_dense::DenseMatrix;

    fn param(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3) % 5) as f64 - 2.0)
    }

    #[test]
    fn lmm_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let x = param(tn.cols(), 3);
            let f = tn.lmm(&x);
            let m = tn.materialize().matmul_dense(&x);
            assert!(f.approx_eq(&m, 1e-12));
        }
    }

    #[test]
    fn lmm_vector_case() {
        // dX = 1: the GLM inner-product case factorized in Kumar et al. [26].
        let tn = figure2();
        let w = param(4, 1);
        let f = tn.lmm(&w);
        let m = tn.materialize().matmul_dense(&w);
        assert!(f.approx_eq(&m, 1e-12));
    }

    #[test]
    fn figure2_worked_example() {
        // Figure 2 of the paper: X = [1; 2; 3; 4], T X = [17.1; 37.5; 44.5; 34.1; 38.5].
        let tn = figure2();
        let x = DenseMatrix::col_vector(&[1.0, 2.0, 3.0, 4.0]);
        let out = tn.lmm(&x);
        let expected = DenseMatrix::col_vector(&[17.1, 37.5, 44.5, 34.1, 38.5]);
        assert!(out.approx_eq(&expected, 1e-9));
    }

    #[test]
    fn t_lmm_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let x = param(tn.rows(), 2);
            let f = tn.t_lmm(&x);
            let m = tn.materialize().t_matmul_dense(&x);
            assert!(f.approx_eq(&m, 1e-12));
        }
    }

    #[test]
    fn rmm_matches_materialized() {
        for tn in [figure2(), star2(), mn(), sparse_pkfk()] {
            let x = param(3, tn.rows());
            let f = tn.rmm(&x);
            let m = tn.materialize().dense_matmul(&x);
            assert!(f.approx_eq(&m, 1e-12));
        }
    }

    #[test]
    fn transposed_operators_dispatch_correctly() {
        for tn in [figure2(), star2(), mn()] {
            let tt = tn.transpose();
            let mt = tt.materialize(); // d x n regular matrix

            let x = param(tt.cols(), 2); // Tᵀ X
            assert!(tt.lmm(&x).approx_eq(&mt.matmul_dense(&x), 1e-12));

            let y = param(tt.rows(), 2); // (Tᵀ)ᵀ Y = T Y
            assert!(tt.t_lmm(&y).approx_eq(&mt.t_matmul_dense(&y), 1e-12));

            let z = param(2, tt.rows()); // Z Tᵀ
            assert!(tt.rmm(&z).approx_eq(&mt.dense_matmul(&z), 1e-12));
        }
    }

    #[test]
    fn double_transpose_is_identity() {
        let tn = figure2();
        let x = param(tn.cols(), 2);
        let back = tn.transpose().transpose();
        assert!(back.lmm(&x).approx_eq(&tn.lmm(&x), 1e-12));
    }

    #[test]
    fn materialized_order_ablation_is_equivalent() {
        for tn in [figure2(), star2(), mn()] {
            let x = param(tn.cols(), 2);
            assert!(tn.lmm_materialized_order(&x).approx_eq(&tn.lmm(&x), 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "lmm: X has")]
    fn lmm_shape_mismatch_panics() {
        figure2().lmm(&DenseMatrix::zeros(3, 1));
    }
}
