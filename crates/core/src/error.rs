//! Error type for normalized-matrix construction.

use std::fmt;

/// Errors produced when assembling a [`crate::NormalizedMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The normalized matrix has no attribute parts.
    Empty,
    /// Two parts disagree on the logical row count of `T`.
    RowCountMismatch {
        /// Expected logical row count.
        expected: usize,
        /// Index of the offending part.
        part: usize,
        /// Row count contributed by that part.
        found: usize,
    },
    /// An indicator's column count differs from its base table's row count.
    IndicatorTableMismatch {
        /// Index of the offending part.
        part: usize,
        /// Indicator column count.
        indicator_cols: usize,
        /// Base-table row count.
        table_rows: usize,
    },
    /// An indicator row is not a single `1.0` entry.
    ///
    /// The paper's indicator matrices (PK-FK `K`, M:N `I_S`/`I_R`) all have
    /// exactly one non-zero of value one per row; several rewrites
    /// (element-wise scalar ops, the `diag(colSums)` cross-product trick)
    /// rely on it.
    NotIndicator {
        /// Index of the offending part.
        part: usize,
        /// Offending row within the indicator.
        row: usize,
    },
    /// A base table referenced by position does not exist.
    NoSuchPart(usize),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Empty => write!(f, "normalized matrix must have at least one part"),
            CoreError::RowCountMismatch {
                expected,
                part,
                found,
            } => write!(
                f,
                "part {part} implies {found} logical rows, expected {expected}"
            ),
            CoreError::IndicatorTableMismatch {
                part,
                indicator_cols,
                table_rows,
            } => write!(
                f,
                "part {part}: indicator has {indicator_cols} columns but table has {table_rows} rows"
            ),
            CoreError::NotIndicator { part, row } => write!(
                f,
                "part {part}: indicator row {row} is not a single 1.0 entry"
            ),
            CoreError::NoSuchPart(i) => write!(f, "no attribute part at index {i}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results with [`CoreError`].
pub type CoreResult<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Empty.to_string().contains("at least one"));
        assert!(CoreError::RowCountMismatch {
            expected: 5,
            part: 1,
            found: 4
        }
        .to_string()
        .contains("part 1"));
        assert!(CoreError::NotIndicator { part: 0, row: 2 }
            .to_string()
            .contains("row 2"));
    }
}
