//! Error types: the crate-local [`CoreError`] and the workspace-wide
//! unified [`MorpheusError`].
//!
//! Every substrate crate keeps its own precise error enum
//! ([`morpheus_dense::DenseError`], [`morpheus_sparse::SparseError`],
//! [`morpheus_linalg::LinalgError`], [`CoreError`]); `MorpheusError`
//! wraps them all so cross-layer code can use one [`Result`] alias and
//! plain `?` instead of hand-rolled conversions. Crates *above* core in
//! the dependency DAG (`morpheus-lang`, `morpheus-data`) cannot be named
//! here without a cycle; their errors are carried through the [`Lang`]
//! and [`Data`] variants as rendered messages, with the `From` impls
//! living in those crates.
//!
//! [`Lang`]: MorpheusError::Lang
//! [`Data`]: MorpheusError::Data

use morpheus_dense::DenseError;
use morpheus_linalg::LinalgError;
use morpheus_sparse::SparseError;
use std::fmt;

/// Errors produced when assembling a [`crate::NormalizedMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The normalized matrix has no attribute parts.
    Empty,
    /// Two parts disagree on the logical row count of `T`.
    RowCountMismatch {
        /// Expected logical row count.
        expected: usize,
        /// Index of the offending part.
        part: usize,
        /// Row count contributed by that part.
        found: usize,
    },
    /// An indicator's column count differs from its base table's row count.
    IndicatorTableMismatch {
        /// Index of the offending part.
        part: usize,
        /// Indicator column count.
        indicator_cols: usize,
        /// Base-table row count.
        table_rows: usize,
    },
    /// An indicator row is not a single `1.0` entry.
    ///
    /// The paper's indicator matrices (PK-FK `K`, M:N `I_S`/`I_R`) all have
    /// exactly one non-zero of value one per row; several rewrites
    /// (element-wise scalar ops, the `diag(colSums)` cross-product trick)
    /// rely on it.
    NotIndicator {
        /// Index of the offending part.
        part: usize,
        /// Offending row within the indicator.
        row: usize,
    },
    /// A base table referenced by position does not exist.
    NoSuchPart(usize),
    /// A persisted machine profile could not be parsed (or contained
    /// non-positive rates). Carries a rendered description because profile
    /// files are free-form text edited by humans and CI caches.
    Profile(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Empty => write!(f, "normalized matrix must have at least one part"),
            CoreError::RowCountMismatch {
                expected,
                part,
                found,
            } => write!(
                f,
                "part {part} implies {found} logical rows, expected {expected}"
            ),
            CoreError::IndicatorTableMismatch {
                part,
                indicator_cols,
                table_rows,
            } => write!(
                f,
                "part {part}: indicator has {indicator_cols} columns but table has {table_rows} rows"
            ),
            CoreError::NotIndicator { part, row } => write!(
                f,
                "part {part}: indicator row {row} is not a single 1.0 entry"
            ),
            CoreError::NoSuchPart(i) => write!(f, "no attribute part at index {i}"),
            CoreError::Profile(msg) => write!(f, "machine profile: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias for results with [`CoreError`].
pub type CoreResult<T> = std::result::Result<T, CoreError>;

/// The unified error type of the whole Morpheus workspace.
///
/// Each layer's error converts into it with `?`, so code that crosses
/// layers — script evaluation over normalized matrices backed by dense,
/// sparse, and numerical kernels — threads a single [`Result`] alias:
///
/// ```
/// use morpheus_core::{MorpheusError, Result};
/// use morpheus_dense::DenseMatrix;
///
/// fn build(rows: usize, cols: usize, data: Vec<f64>) -> Result<DenseMatrix> {
///     // `?` converts DenseError into MorpheusError automatically.
///     Ok(DenseMatrix::from_vec(rows, cols, data)?)
/// }
///
/// let err = build(2, 2, vec![1.0; 3]).unwrap_err();
/// assert!(matches!(err, MorpheusError::Dense(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum MorpheusError {
    /// Normalized-matrix construction failed.
    Core(CoreError),
    /// A dense-matrix constructor rejected its input.
    Dense(DenseError),
    /// A sparse-matrix constructor rejected its input.
    Sparse(SparseError),
    /// A factorization or solver failed.
    Linalg(LinalgError),
    /// A scripting-layer failure (parse/type/shape), rendered to text.
    ///
    /// `morpheus-lang` sits above this crate in the dependency DAG, so its
    /// error type cannot appear here structurally; the `From<LangError>`
    /// impl lives in `morpheus-lang`.
    Lang(String),
    /// A data-ingestion failure (CSV/IO), rendered to text.
    ///
    /// As with [`MorpheusError::Lang`], the `From<CsvError>` impl lives in
    /// `morpheus-data`.
    Data(String),
}

impl fmt::Display for MorpheusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorpheusError::Core(e) => write!(f, "core: {e}"),
            MorpheusError::Dense(e) => write!(f, "dense: {e}"),
            MorpheusError::Sparse(e) => write!(f, "sparse: {e}"),
            MorpheusError::Linalg(e) => write!(f, "linalg: {e}"),
            MorpheusError::Lang(msg) => write!(f, "lang: {msg}"),
            MorpheusError::Data(msg) => write!(f, "data: {msg}"),
        }
    }
}

impl std::error::Error for MorpheusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MorpheusError::Core(e) => Some(e),
            MorpheusError::Dense(e) => Some(e),
            MorpheusError::Sparse(e) => Some(e),
            MorpheusError::Linalg(e) => Some(e),
            MorpheusError::Lang(_) | MorpheusError::Data(_) => None,
        }
    }
}

impl From<CoreError> for MorpheusError {
    fn from(e: CoreError) -> Self {
        MorpheusError::Core(e)
    }
}

impl From<DenseError> for MorpheusError {
    fn from(e: DenseError) -> Self {
        MorpheusError::Dense(e)
    }
}

impl From<SparseError> for MorpheusError {
    fn from(e: SparseError) -> Self {
        MorpheusError::Sparse(e)
    }
}

impl From<LinalgError> for MorpheusError {
    fn from(e: LinalgError) -> Self {
        MorpheusError::Linalg(e)
    }
}

/// Workspace-wide result alias carrying [`MorpheusError`].
pub type Result<T> = std::result::Result<T, MorpheusError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Empty.to_string().contains("at least one"));
        assert!(CoreError::RowCountMismatch {
            expected: 5,
            part: 1,
            found: 4
        }
        .to_string()
        .contains("part 1"));
        assert!(CoreError::NotIndicator { part: 0, row: 2 }
            .to_string()
            .contains("row 2"));
    }

    #[test]
    fn unified_error_wraps_every_layer() {
        let core: MorpheusError = CoreError::Empty.into();
        assert!(matches!(core, MorpheusError::Core(_)));
        assert!(core.to_string().starts_with("core: "));

        let dense: MorpheusError = DenseError::BufferLen {
            rows: 2,
            cols: 2,
            len: 3,
        }
        .into();
        assert!(matches!(dense, MorpheusError::Dense(_)));
        assert!(dense.to_string().contains("2x2"));

        let sparse: MorpheusError = SparseError::MalformedCsr("bad".into()).into();
        assert!(matches!(sparse, MorpheusError::Sparse(_)));

        let linalg: MorpheusError = LinalgError::Singular { pivot: 1 }.into();
        assert!(matches!(linalg, MorpheusError::Linalg(_)));
    }

    #[test]
    fn unified_error_exposes_structured_sources() {
        use std::error::Error as _;
        let e: MorpheusError = CoreError::NoSuchPart(3).into();
        assert!(e.source().is_some());
        assert!(MorpheusError::Lang("oops".into()).source().is_none());
        assert!(MorpheusError::Data("oops".into()).source().is_none());
    }

    #[test]
    fn question_mark_threads_through_result_alias() {
        fn inner() -> Result<()> {
            Err(LinalgError::NotPositiveDefinite { index: 0 })?;
            Ok(())
        }
        assert!(matches!(inner(), Err(MorpheusError::Linalg(_))));
    }
}
