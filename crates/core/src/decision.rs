//! The heuristic decision rule (§3.7, §5.1).
//!
//! Factorized execution can *lose* when the join introduces little
//! redundancy: the extra operator overhead then dominates the redundancy
//! saved. Empirically (Figure 3) the slow-down region is "L-shaped" in the
//! (tuple ratio, feature ratio) plane, which motivates the paper's
//! disjunctive threshold rule with conservatively tuned `τ = 5`, `ρ = 1`:
//! *do not factorize if `TR < τ` **or** `FR < ρ`*.
//!
//! The rule is one of the [`crate::Strategy`] variants of the per-operator
//! planner ([`crate::PlannedMatrix`]); select it with
//! `MORPHEUS_STRATEGY=heuristic` to reproduce the paper's construction-time
//! routing against the cost-based default.

use crate::NormalizedMatrix;

/// The paper's heuristic decision rule with thresholds `τ` (tuple ratio)
/// and `ρ` (feature ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRule {
    /// Tuple-ratio threshold `τ` (default 5).
    pub tau: f64,
    /// Feature-ratio threshold `ρ` (default 1).
    pub rho: f64,
}

impl Default for DecisionRule {
    fn default() -> Self {
        // §5.1: "we set τ = 5 and ρ = 1", tuned conservatively on the
        // synthetic operator-level sweeps.
        Self { tau: 5.0, rho: 1.0 }
    }
}

impl DecisionRule {
    /// Creates a rule with explicit thresholds.
    pub fn new(tau: f64, rho: f64) -> Self {
        Self { tau, rho }
    }

    /// Predicts whether factorized execution will beat materialized
    /// execution for this normalized matrix.
    ///
    /// Implements the disjunctive predicate on the paper's tuple and
    /// feature ratios. For M:N joins (no identity entity part) the feature
    /// ratio is infinite and the tuple ratio measures output blow-up, so
    /// the same predicate applies.
    pub fn should_factorize(&self, t: &NormalizedMatrix) -> bool {
        let stats = t.stats();
        !(stats.tuple_ratio < self.tau || stats.feature_ratio < self.rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_dense::DenseMatrix;

    fn with_ratios(tr: usize, dr: usize, ds: usize) -> NormalizedMatrix {
        let nr = 4usize;
        let ns = nr * tr;
        let s = DenseMatrix::from_fn(ns, ds, |i, j| ((i + j) % 7) as f64);
        let r = DenseMatrix::from_fn(nr, dr, |i, j| ((i * dr + j) % 5) as f64 + 0.5);
        let fk: Vec<usize> = (0..ns).map(|i| i % nr).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    #[test]
    fn default_thresholds_match_paper() {
        let rule = DecisionRule::default();
        assert_eq!(rule.tau, 5.0);
        assert_eq!(rule.rho, 1.0);
    }

    #[test]
    fn rule_accepts_high_redundancy() {
        // TR = 10, FR = 2 → factorize.
        let t = with_ratios(10, 4, 2);
        assert!(DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn rule_rejects_low_tuple_ratio() {
        // TR = 2 < 5 → don't factorize, even with FR = 2.
        let t = with_ratios(2, 4, 2);
        assert!(!DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn rule_rejects_low_feature_ratio() {
        // FR = 0.5 < 1 → don't factorize, even with TR = 10.
        let t = with_ratios(10, 2, 4);
        assert!(!DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn mn_join_feature_ratio_is_infinite() {
        // M:N normalized matrices have no identity part → FR = ∞, so only
        // the tuple ratio gates factorization.
        let s = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let r = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        // 8 logical rows over 4 S-rows and 2 R-rows.
        let t = NormalizedMatrix::mn_join(
            s.into(),
            &[0, 0, 1, 1, 2, 2, 3, 3],
            r.into(),
            &[0, 1, 0, 1, 0, 1, 0, 1],
        );
        let stats = t.stats();
        assert!(stats.feature_ratio.is_infinite());
        assert!((stats.tuple_ratio - 2.0).abs() < 1e-12);
    }
}
