//! The heuristic decision rule (§3.7, §5.1) and adaptive execution.
//!
//! Factorized execution can *lose* when the join introduces little
//! redundancy: the extra operator overhead then dominates the redundancy
//! saved. Empirically (Figure 3) the slow-down region is "L-shaped" in the
//! (tuple ratio, feature ratio) plane, which motivates the paper's
//! disjunctive threshold rule with conservatively tuned `τ = 5`, `ρ = 1`:
//! *do not factorize if `TR < τ` **or** `FR < ρ`*.

use crate::{LinearOperand, Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;

/// The paper's heuristic decision rule with thresholds `τ` (tuple ratio)
/// and `ρ` (feature ratio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionRule {
    /// Tuple-ratio threshold `τ` (default 5).
    pub tau: f64,
    /// Feature-ratio threshold `ρ` (default 1).
    pub rho: f64,
}

impl Default for DecisionRule {
    fn default() -> Self {
        // §5.1: "we set τ = 5 and ρ = 1", tuned conservatively on the
        // synthetic operator-level sweeps.
        Self { tau: 5.0, rho: 1.0 }
    }
}

impl DecisionRule {
    /// Creates a rule with explicit thresholds.
    pub fn new(tau: f64, rho: f64) -> Self {
        Self { tau, rho }
    }

    /// Predicts whether factorized execution will beat materialized
    /// execution for this normalized matrix.
    ///
    /// Implements the disjunctive predicate on the paper's tuple and
    /// feature ratios. For M:N joins (no identity entity part) the feature
    /// ratio is infinite and the tuple ratio measures output blow-up, so
    /// the same predicate applies.
    pub fn should_factorize(&self, t: &NormalizedMatrix) -> bool {
        let stats = t.stats();
        !(stats.tuple_ratio < self.tau || stats.feature_ratio < self.rho)
    }
}

/// A data matrix that applies the [`DecisionRule`] at construction:
/// factorized when predicted profitable, materialized otherwise.
///
/// Implements [`LinearOperand`], so ML algorithms are oblivious to which
/// path was chosen. Both paths draw their workers from the shared
/// `morpheus_runtime::Runtime` thread budget — the factorized rewrites
/// parallelize across parts and inside the dense/sparse kernels, the
/// materialized path inside the kernels directly — so the §3.7 crossover
/// the rule models is measured against an equally parallel baseline.
#[derive(Debug, Clone)]
pub enum AdaptiveMatrix {
    /// The rule predicted a factorization win; operate on the normalized
    /// form.
    Factorized(NormalizedMatrix),
    /// The rule predicted a slow-down; the join was materialized up front.
    Materialized(Matrix),
}

impl AdaptiveMatrix {
    /// Applies `rule` to decide the execution strategy for `t`.
    pub fn with_rule(t: NormalizedMatrix, rule: &DecisionRule) -> Self {
        if rule.should_factorize(&t) {
            AdaptiveMatrix::Factorized(t)
        } else {
            AdaptiveMatrix::Materialized(t.materialize())
        }
    }

    /// Applies the paper's default thresholds (`τ = 5`, `ρ = 1`).
    pub fn new(t: NormalizedMatrix) -> Self {
        Self::with_rule(t, &DecisionRule::default())
    }

    /// `true` when the factorized path was chosen.
    pub fn is_factorized(&self) -> bool {
        matches!(self, AdaptiveMatrix::Factorized(_))
    }
}

macro_rules! delegate {
    ($self:ident, $method:ident $(, $arg:expr)*) => {
        match $self {
            AdaptiveMatrix::Factorized(t) => t.$method($($arg),*),
            AdaptiveMatrix::Materialized(t) => t.$method($($arg),*),
        }
    };
}

impl LinearOperand for AdaptiveMatrix {
    fn nrows(&self) -> usize {
        delegate!(self, nrows)
    }

    fn ncols(&self) -> usize {
        delegate!(self, ncols)
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        delegate!(self, lmm, x)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        delegate!(self, t_lmm, x)
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        delegate!(self, rmm, x)
    }

    fn crossprod(&self) -> DenseMatrix {
        delegate!(self, crossprod)
    }

    fn row_sums(&self) -> DenseMatrix {
        delegate!(self, row_sums)
    }

    fn col_sums(&self) -> DenseMatrix {
        delegate!(self, col_sums)
    }

    fn sum(&self) -> f64 {
        delegate!(self, sum)
    }

    fn scale(&self, x: f64) -> Self {
        match self {
            AdaptiveMatrix::Factorized(t) => AdaptiveMatrix::Factorized(t.scale(x)),
            AdaptiveMatrix::Materialized(t) => AdaptiveMatrix::Materialized(t.scale(x)),
        }
    }

    fn squared(&self) -> Self {
        match self {
            AdaptiveMatrix::Factorized(t) => AdaptiveMatrix::Factorized(t.squared()),
            AdaptiveMatrix::Materialized(t) => AdaptiveMatrix::Materialized(t.squared()),
        }
    }

    fn ginv(&self) -> DenseMatrix {
        delegate!(self, ginv)
    }

    fn materialize(&self) -> Matrix {
        delegate!(self, materialize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_ratios(tr: usize, dr: usize, ds: usize) -> NormalizedMatrix {
        let nr = 4usize;
        let ns = nr * tr;
        let s = DenseMatrix::from_fn(ns, ds, |i, j| ((i + j) % 7) as f64);
        let r = DenseMatrix::from_fn(nr, dr, |i, j| ((i * dr + j) % 5) as f64 + 0.5);
        let fk: Vec<usize> = (0..ns).map(|i| i % nr).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    #[test]
    fn default_thresholds_match_paper() {
        let rule = DecisionRule::default();
        assert_eq!(rule.tau, 5.0);
        assert_eq!(rule.rho, 1.0);
    }

    #[test]
    fn rule_accepts_high_redundancy() {
        // TR = 10, FR = 2 → factorize.
        let t = with_ratios(10, 4, 2);
        assert!(DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn rule_rejects_low_tuple_ratio() {
        // TR = 2 < 5 → don't factorize, even with FR = 2.
        let t = with_ratios(2, 4, 2);
        assert!(!DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn rule_rejects_low_feature_ratio() {
        // FR = 0.5 < 1 → don't factorize, even with TR = 10.
        let t = with_ratios(10, 2, 4);
        assert!(!DecisionRule::default().should_factorize(&t));
    }

    #[test]
    fn adaptive_matrix_picks_path_and_stays_correct() {
        let hot = with_ratios(10, 4, 2);
        let cold = with_ratios(2, 2, 4);
        let expect_hot = hot.materialize();
        let expect_cold = cold.materialize();

        let a_hot = AdaptiveMatrix::new(hot);
        let a_cold = AdaptiveMatrix::new(cold);
        assert!(a_hot.is_factorized());
        assert!(!a_cold.is_factorized());

        let x_hot = DenseMatrix::from_fn(a_hot.ncols(), 1, |i, _| i as f64);
        assert!(a_hot
            .lmm(&x_hot)
            .approx_eq(&expect_hot.matmul_dense(&x_hot), 1e-10));
        let x_cold = DenseMatrix::from_fn(a_cold.ncols(), 1, |i, _| i as f64);
        assert!(a_cold
            .lmm(&x_cold)
            .approx_eq(&expect_cold.matmul_dense(&x_cold), 1e-10));
        // scale/squared preserve the chosen path.
        assert!(a_hot.scale(2.0).is_factorized());
        assert!(!a_cold.squared().is_factorized());
    }

    #[test]
    fn mn_join_feature_ratio_is_infinite() {
        // M:N normalized matrices have no identity part → FR = ∞, so only
        // the tuple ratio gates factorization.
        let s = DenseMatrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let r = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64);
        // 8 logical rows over 4 S-rows and 2 R-rows.
        let t = NormalizedMatrix::mn_join(
            s.into(),
            &[0, 0, 1, 1, 2, 2, 3, 3],
            r.into(),
            &[0, 1, 0, 1, 0, 1, 0, 1],
        );
        let stats = t.stats();
        assert!(stats.feature_ratio.is_infinite());
        assert!((stats.tuple_ratio - 2.0).abs() < 1e-12);
    }
}
