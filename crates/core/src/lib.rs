//! The normalized matrix and the factorized linear-algebra rewrite rules —
//! the primary contribution of *"Towards Linear Algebra over Normalized
//! Data"* (Chen, Kumar, Naughton, Patel — VLDB 2017).
//!
//! # What this crate provides
//!
//! * [`Matrix`] — a *regular* matrix that is either dense or sparse, the
//!   paper's assumption that "any of R, S, and T can be dense or sparse".
//! * [`NormalizedMatrix`] — the paper's new **logical data type**: a
//!   multi-matrix representation of the join output `T` that never
//!   materializes the join. One unified representation covers
//!   single PK-FK joins (§3.1), star-schema multi-table PK-FK joins (§3.5),
//!   two-table M:N joins (§3.6), and multi-table M:N joins (appendix E).
//! * The **rewrite rules** of Table 1: element-wise scalar operators,
//!   aggregations, left/right matrix multiplication, cross-products,
//!   pseudo-inversion, transposition (appendix A), and double matrix
//!   multiplication (appendix C) — each implemented as an operator on
//!   [`NormalizedMatrix`] that only produces other LA operations
//!   (the paper's *closure* property).
//! * [`LinearOperand`] — the trait that realizes the closure property in
//!   Rust: ML algorithms written against it run unchanged on materialized
//!   matrices, normalized matrices, or any other backend.
//! * [`PlannedMatrix`] — the per-operator cost-based planner: every
//!   [`LinearOperand`] call is routed factorized or materialized by
//!   comparing calibrated time estimates, with the materialized join
//!   memoized so one "materialize" verdict amortizes across later
//!   operators. [`Strategy`] selects the routing policy
//!   (`MORPHEUS_STRATEGY`): cost-based, the paper's τ/ρ
//!   [`DecisionRule`] heuristic (§3.7, §5.1), or the two always-arms.
//! * [`MachineProfile`] — per-kernel ns/op rates: a size-tiered
//!   blocked-dense curve (L2/L3/DRAM working sets), streaming, sparse-
//!   product, and gather rates — calibrated lazily by microbenchmarks on
//!   the resident runtime pool and persistable (versioned) via
//!   `MORPHEUS_PROFILE_PATH`.
//! * [`cost`] — the arithmetic-computation cost model of Table 3 /
//!   Table 11, extended with per-operator time estimates
//!   ([`cost::estimate_op`]) over the unified multi-part representation.
//! * [`MorpheusError`] / [`Result`] — the workspace-wide unified error
//!   layer: every crate's error converts in with `?`; crates above core
//!   in the DAG (`lang`, `data`) convert via message-carrying variants.
//!
//! # Example: factorized vs. materialized are numerically identical
//!
//! ```
//! use morpheus_core::{LinearOperand, NormalizedMatrix};
//! use morpheus_dense::DenseMatrix;
//!
//! let s = DenseMatrix::from_rows(&[&[1., 2.], &[4., 3.], &[5., 6.], &[8., 7.], &[9., 1.]]);
//! let r = DenseMatrix::from_rows(&[&[1.1, 2.2], &[3.3, 4.4]]);
//! let fk = [0usize, 1, 1, 0, 1]; // S.K -> R row numbers
//! let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
//!
//! let x = DenseMatrix::from_rows(&[&[1.], &[2.], &[3.], &[4.]]);
//! let factorized = tn.lmm(&x);                       // rewrite rule
//! let materialized = tn.materialize().lmm(&x);       // join first
//! assert!(factorized.approx_eq(&materialized, 1e-12));
//! ```

pub mod cost;
mod decision;
mod error;
mod matrix;
mod normalized;
mod ops_trait;
mod planner;
mod profile;

pub use decision::DecisionRule;
pub use error::{CoreError, CoreResult, MorpheusError, Result};
pub use matrix::Matrix;
pub use normalized::{AttributePart, Indicator, JoinStats, NormalizedMatrix};
pub use ops_trait::LinearOperand;
pub use planner::{
    plan_with, Decision, DecisionHook, PlannedMatrix, ScriptDecision, Strategy, STRATEGY_ENV,
};
pub use profile::{
    CalibrationResult, DenseTier, MachineProfile, CALIBRATION_TIMEOUT_ENV,
    DEFAULT_CALIBRATION_TIMEOUT_MS, PROFILE_FORMAT_VERSION, PROFILE_PATH_ENV,
};
