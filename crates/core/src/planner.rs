//! The per-operator cost-based planner: [`Strategy`], [`Decision`], and
//! [`PlannedMatrix`].
//!
//! The paper's §3.7 heuristic makes one factorize-or-materialize choice per
//! *matrix*, at construction time. But the §3.4 cost model is per
//! *operator*: at the same (TR, FR) point the cross-product can sit deep in
//! the factorized win region (its savings are quadratic in the feature
//! split) while an LMM at low FR is already inside the L-shaped slow-down
//! area. [`PlannedMatrix`] therefore re-decides on every operator call,
//! comparing calibrated time estimates ([`crate::cost::estimate_op`]) of
//! the two routes, and memoizes the materialized join in a shared
//! [`OnceLock`] so one "materialize" verdict is paid once and amortizes
//! across every later operator.
//!
//! Whichever route is chosen, the operator is delegated verbatim to the
//! pure implementation ([`NormalizedMatrix`] or [`Matrix`]), so planned
//! results are bit-for-bit identical to the corresponding pure path —
//! planning affects scheduling, never numerics.
//!
//! The paper's rule survives as [`Strategy::Heuristic`]; `MORPHEUS_STRATEGY`
//! selects the strategy process-wide, and a [`DecisionHook`] exposes every
//! verdict for tests, logging, and the ablation benches.

use crate::cost::{estimate_op, estimate_script, OpKind, PlanEstimate, ScriptEstimate};
use crate::{DecisionRule, JoinStats, LinearOperand, MachineProfile, Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use std::sync::{Arc, OnceLock};

/// Environment variable selecting the process-wide default [`Strategy`].
pub const STRATEGY_ENV: &str = "MORPHEUS_STRATEGY";

/// How a [`PlannedMatrix`] routes each operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Compare calibrated time estimates per operator (the default).
    CostBased,
    /// The paper's construction-level τ/ρ threshold rule (§3.7, §5.1),
    /// applied uniformly to every operator.
    Heuristic(DecisionRule),
    /// Always run the factorized rewrite (the paper's "F" arm).
    AlwaysFactorize,
    /// Always run on the materialized join (the paper's "M" arm).
    AlwaysMaterialize,
}

impl Strategy {
    /// Parses a `MORPHEUS_STRATEGY` value. Accepts `cost-based` (also
    /// `cost_based`, `costbased`, `cost`), `heuristic`, `factorize`
    /// (also `always-factorize`), and `materialize` (also
    /// `always-materialize`); case-insensitive.
    pub fn parse(s: &str) -> Option<Strategy> {
        match s.trim().to_ascii_lowercase().as_str() {
            "cost-based" | "cost_based" | "costbased" | "cost" => Some(Strategy::CostBased),
            "heuristic" => Some(Strategy::Heuristic(DecisionRule::default())),
            "factorize" | "always-factorize" | "always_factorize" => {
                Some(Strategy::AlwaysFactorize)
            }
            "materialize" | "always-materialize" | "always_materialize" => {
                Some(Strategy::AlwaysMaterialize)
            }
            _ => None,
        }
    }

    /// The process-wide strategy: `MORPHEUS_STRATEGY` if set to a value
    /// [`Strategy::parse`] accepts (unparseable values are reported once
    /// and ignored), else [`Strategy::CostBased`]. Read once, at first
    /// use, like the other `MORPHEUS_*` knobs.
    pub fn from_env() -> Strategy {
        static FROM_ENV: OnceLock<Strategy> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var(STRATEGY_ENV) {
            Ok(v) => Strategy::parse(&v).unwrap_or_else(|| {
                eprintln!("morpheus: unknown {STRATEGY_ENV}={v:?}, using cost-based");
                Strategy::CostBased
            }),
            Err(_) => Strategy::CostBased,
        })
    }
}

/// One routing verdict, as delivered to a [`DecisionHook`].
///
/// For [`Strategy::CostBased`] the two estimates are filled in
/// (`materialized_ns` already includes the join-materialization cost
/// unless a memoized `T` existed at decision time); the other strategies
/// decide without estimating and report `NaN`.
#[derive(Debug, Clone, Copy)]
pub struct Decision {
    /// The operator that was planned.
    pub op: OpKind,
    /// Estimated ns of the factorized route (`NaN` unless cost-based).
    pub factorized_ns: f64,
    /// Estimated total ns of the materialized route (`NaN` unless
    /// cost-based).
    pub materialized_ns: f64,
    /// `true` when the factorized rewrite was chosen.
    pub factorized: bool,
}

/// Observer invoked with every [`Decision`] a [`PlannedMatrix`] makes.
pub type DecisionHook = Arc<dyn Fn(&Decision) + Send + Sync>;

/// Resolves one routing [`Decision`] from a strategy, the operand, and a
/// lazily-computed cost estimate — the decision core of
/// [`PlannedMatrix`], shared with planner routes that price execution
/// differently but route by the same rules (the chunked backend estimates
/// through [`crate::cost::estimate_op_chunked`] and resolves here).
///
/// `estimate` is only invoked for [`Strategy::CostBased`]; `memoized`
/// states whether a materialized `T` already exists, so the materialized
/// route's one-off join cost is charged exactly when it would be paid.
/// Ties go to the materialized route: its cost is dominated by the
/// one-off materialization, which the memo amortizes across every later
/// operator.
pub fn plan_with(
    strategy: Strategy,
    t: &NormalizedMatrix,
    op: OpKind,
    memoized: bool,
    estimate: impl FnOnce() -> PlanEstimate,
) -> Decision {
    match strategy {
        Strategy::AlwaysFactorize => Decision {
            op,
            factorized_ns: f64::NAN,
            materialized_ns: f64::NAN,
            factorized: true,
        },
        Strategy::AlwaysMaterialize => Decision {
            op,
            factorized_ns: f64::NAN,
            materialized_ns: f64::NAN,
            factorized: false,
        },
        Strategy::Heuristic(rule) => Decision {
            op,
            factorized_ns: f64::NAN,
            materialized_ns: f64::NAN,
            factorized: rule.should_factorize(t),
        },
        Strategy::CostBased => {
            let est = estimate();
            let materialized_ns = est.materialized_total_ns(memoized);
            Decision {
                op,
                factorized_ns: est.factorized_ns,
                materialized_ns,
                factorized: est.factorized_ns < materialized_ns,
            }
        }
    }
}

/// A whole-script routing verdict from [`PlannedMatrix::plan_script`]:
/// whether materializing the join up front beats letting the greedy
/// per-call planner schedule the given sequence of uses.
#[derive(Debug, Clone, Copy)]
pub struct ScriptDecision {
    /// Simulated total ns of the greedy per-call schedule.
    pub greedy_ns: f64,
    /// Total ns with the join materialized up front.
    pub lookahead_ns: f64,
    /// `true` when the caller should [`PlannedMatrix::prematerialize`]
    /// before evaluating the script.
    pub materialize_upfront: bool,
}

/// Which concrete representation a planned matrix carries.
#[derive(Debug, Clone)]
enum Repr {
    /// The normalized form; operators may still go either way.
    Factorized(NormalizedMatrix),
    /// Output of a closure operator that was routed materialized: the
    /// factorization opportunity is spent, every later operator runs
    /// materialized.
    Materialized(Matrix),
}

/// Where a planned matrix gets its kernel rates from.
#[derive(Clone)]
enum ProfileSource {
    /// [`MachineProfile::global`], resolved lazily on the first
    /// cost-based decision (so heuristic runs never pay calibration).
    Global,
    /// An explicit profile, for tests and ablations.
    Fixed(Arc<MachineProfile>),
}

impl ProfileSource {
    fn get(&self) -> &MachineProfile {
        match self {
            ProfileSource::Global => MachineProfile::global(),
            ProfileSource::Fixed(p) => p,
        }
    }
}

/// A data matrix that plans factorized-vs-materialized execution *per
/// operator call* — the replacement for the construction-time
/// `AdaptiveMatrix` of earlier revisions.
///
/// Implements [`LinearOperand`], so ML algorithms are oblivious to the
/// routing. Cloning is cheap and clones share the materialization memo.
#[derive(Clone)]
pub struct PlannedMatrix {
    repr: Repr,
    strategy: Strategy,
    profile: ProfileSource,
    memo: Arc<OnceLock<Matrix>>,
    hook: Option<DecisionHook>,
}

impl std::fmt::Debug for PlannedMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannedMatrix")
            .field("repr", &self.repr)
            .field("strategy", &self.strategy)
            .field("memoized", &self.is_memoized())
            .finish_non_exhaustive()
    }
}

impl From<NormalizedMatrix> for PlannedMatrix {
    fn from(t: NormalizedMatrix) -> Self {
        PlannedMatrix::new(t)
    }
}

impl PlannedMatrix {
    /// Plans `t` with the process-wide strategy ([`Strategy::from_env`])
    /// and the global machine profile.
    pub fn new(t: NormalizedMatrix) -> Self {
        Self::with_strategy(t, Strategy::from_env())
    }

    /// Plans `t` with an explicit strategy.
    pub fn with_strategy(t: NormalizedMatrix, strategy: Strategy) -> Self {
        PlannedMatrix {
            repr: Repr::Factorized(t),
            strategy,
            profile: ProfileSource::Global,
            memo: Arc::new(OnceLock::new()),
            hook: None,
        }
    }

    /// Wraps an already-materialized matrix; every operator runs
    /// materialized.
    pub fn from_materialized(m: Matrix) -> Self {
        PlannedMatrix {
            repr: Repr::Materialized(m),
            strategy: Strategy::from_env(),
            profile: ProfileSource::Global,
            memo: Arc::new(OnceLock::new()),
            hook: None,
        }
    }

    /// Replaces the kernel-rate profile (tests, ablations). Cost-based
    /// decisions use these rates instead of the calibrated global ones.
    pub fn with_profile(mut self, profile: MachineProfile) -> Self {
        self.profile = ProfileSource::Fixed(Arc::new(profile));
        self
    }

    /// Installs a decision-log hook, called synchronously with every
    /// routing verdict this matrix (and matrices derived from it via
    /// closure operators) makes.
    pub fn with_hook(mut self, hook: impl Fn(&Decision) + Send + Sync + 'static) -> Self {
        self.hook = Some(Arc::new(hook));
        self
    }

    /// The strategy in effect.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The normalized form, when the factorization opportunity is still
    /// alive (`None` after a closure operator was routed materialized).
    pub fn normalized(&self) -> Option<&NormalizedMatrix> {
        match &self.repr {
            Repr::Factorized(t) => Some(t),
            Repr::Materialized(_) => None,
        }
    }

    /// `true` when a materialized `T` is resident — either memoized by an
    /// earlier decision or because the representation itself is
    /// materialized.
    pub fn is_memoized(&self) -> bool {
        matches!(self.repr, Repr::Materialized(_)) || self.memo.get().is_some()
    }

    /// Join statistics of the normalized form, if it is still alive.
    pub fn stats(&self) -> Option<JoinStats> {
        self.normalized().map(NormalizedMatrix::stats)
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        match &self.repr {
            Repr::Factorized(t) => t.shape(),
            Repr::Materialized(m) => m.shape(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape().0
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape().1
    }

    /// The verdict this matrix would reach for `op` right now, without
    /// executing anything or filling the memo. `None` when the
    /// representation is already materialized (there is nothing to plan).
    pub fn plan(&self, op: OpKind) -> Option<Decision> {
        match &self.repr {
            Repr::Factorized(t) => Some(self.plan_for(t, op)),
            Repr::Materialized(_) => None,
        }
    }

    /// Whole-script look-ahead: given every operator the script will
    /// apply to this matrix (in order, loop bodies repeated per trip),
    /// decides whether to materialize the join **up front** — comparing
    /// the one-time join cost against the *total* factorized-vs-
    /// materialized delta across all uses, which the greedy per-call
    /// planner cannot see ([`crate::cost::estimate_script`]).
    ///
    /// Only [`Strategy::CostBased`] plans scripts: the always-arms and
    /// the paper's heuristic are routing policies the look-ahead must not
    /// override (`AlwaysFactorize` in particular must never pay a join).
    /// Returns `None` for them, for spent representations, and when the
    /// join is already memoized (the decision is moot — pre-materializing
    /// would be a no-op).
    ///
    /// Uses of transposed or element-wise-derived *views* of this matrix
    /// should be attributed back to it by the caller, mapped through
    /// [`OpKind::dual`] per transpose.
    pub fn plan_script(&self, uses: &[OpKind]) -> Option<ScriptDecision> {
        if !matches!(self.strategy, Strategy::CostBased) || self.is_memoized() {
            return None;
        }
        let t = self.normalized()?;
        let est: ScriptEstimate = estimate_script(self.profile.get(), t, uses);
        Some(ScriptDecision {
            greedy_ns: est.greedy_ns,
            lookahead_ns: est.lookahead_ns,
            materialize_upfront: est.prefer_upfront_materialize(),
        })
    }

    /// Fills the materialization memo now, so every later per-call
    /// decision sees the join as sunk cost ([`PlanEstimate::materialized_total_ns`]
    /// with `memoized = true`) and routes by bare operator cost. Idempotent;
    /// a no-op on spent representations. Numerics are unaffected — the
    /// memoized join is exactly what any later materialized route would
    /// have built.
    ///
    /// [`PlanEstimate::materialized_total_ns`]: crate::cost::PlanEstimate::materialized_total_ns
    pub fn prematerialize(&self) {
        if let Repr::Factorized(t) = &self.repr {
            let _ = self.memo_ref(t);
        }
    }

    // ------------------------------------------------------------------
    // Decision machinery
    // ------------------------------------------------------------------

    fn plan_for(&self, t: &NormalizedMatrix, op: OpKind) -> Decision {
        plan_with(self.strategy, t, op, self.memo.get().is_some(), || {
            estimate_op(self.profile.get(), t, op)
        })
    }

    fn decide(&self, t: &NormalizedMatrix, op: OpKind) -> bool {
        let decision = self.plan_for(t, op);
        if let Some(hook) = &self.hook {
            hook(&decision);
        }
        decision.factorized
    }

    /// The memoized materialized `T`, computing it on first use.
    ///
    /// Failure model: if the materialization panics (injectable via the
    /// `planner.memo` failpoint), `OnceLock::get_or_init` leaves the cell
    /// *empty* — never poisoned — so the panic propagates to this caller
    /// while the next call simply recomputes. A crash mid-join can never
    /// wedge the shared memo for the clones that hold it.
    fn memo_ref(&self, t: &NormalizedMatrix) -> &Matrix {
        self.memo.get_or_init(|| {
            morpheus_runtime::faults::maybe_panic("planner.memo");
            t.materialize()
        })
    }

    /// Routes a read-only operator.
    fn run<R>(
        &self,
        op: OpKind,
        fact: impl FnOnce(&NormalizedMatrix) -> R,
        mat: impl FnOnce(&Matrix) -> R,
    ) -> R {
        match &self.repr {
            Repr::Materialized(m) => mat(m),
            Repr::Factorized(t) => {
                if self.decide(t, op) {
                    fact(t)
                } else {
                    mat(self.memo_ref(t))
                }
            }
        }
    }

    /// Routes a closure operator (one whose result stays a data matrix).
    /// A factorized verdict keeps the normalized form alive (with a fresh
    /// memo — the old `T` no longer matches); a materialized verdict
    /// spends the factorization opportunity.
    fn run_closure(
        &self,
        op: OpKind,
        fact: impl FnOnce(&NormalizedMatrix) -> NormalizedMatrix,
        mat: impl FnOnce(&Matrix) -> Matrix,
    ) -> PlannedMatrix {
        match &self.repr {
            Repr::Materialized(m) => self.derive(Repr::Materialized(mat(m))),
            Repr::Factorized(t) => {
                if self.decide(t, op) {
                    self.derive(Repr::Factorized(fact(t)))
                } else {
                    self.derive(Repr::Materialized(mat(self.memo_ref(t))))
                }
            }
        }
    }

    fn derive(&self, repr: Repr) -> PlannedMatrix {
        PlannedMatrix {
            repr,
            strategy: self.strategy,
            profile: self.profile.clone(),
            memo: Arc::new(OnceLock::new()),
            hook: self.hook.clone(),
        }
    }

    // ------------------------------------------------------------------
    // The extended operator surface (beyond LinearOperand) used by the
    // scripting layer
    // ------------------------------------------------------------------

    /// `T + x` element-wise (closure operator).
    pub fn scalar_add(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_add(x),
            |m| m.scalar_add(x),
        )
    }

    /// `T - x` element-wise.
    pub fn scalar_sub(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_sub(x),
            |m| m.scalar_sub(x),
        )
    }

    /// `x - T` element-wise.
    pub fn scalar_rsub(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_rsub(x),
            |m| m.scalar_rsub(x),
        )
    }

    /// `T * x` element-wise.
    pub fn scalar_mul(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_mul(x),
            |m| m.scalar_mul(x),
        )
    }

    /// `T / x` element-wise.
    pub fn scalar_div(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_div(x),
            |m| m.scalar_div(x),
        )
    }

    /// `x / T` element-wise.
    pub fn scalar_rdiv(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_rdiv(x),
            |m| m.scalar_rdiv(x),
        )
    }

    /// `T ^ x` element-wise.
    pub fn scalar_pow(&self, x: f64) -> PlannedMatrix {
        self.run_closure(
            OpKind::Elementwise,
            |t| t.scalar_pow(x),
            |m| m.scalar_pow(x),
        )
    }

    /// Element-wise map.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Copy) -> PlannedMatrix {
        self.run_closure(OpKind::Elementwise, |t| t.map(f), |m| m.map(f))
    }

    /// `exp(T)` element-wise.
    pub fn exp(&self) -> PlannedMatrix {
        self.run_closure(OpKind::Elementwise, NormalizedMatrix::exp, Matrix::exp)
    }

    /// `ln(T)` element-wise.
    pub fn ln(&self) -> PlannedMatrix {
        self.run_closure(OpKind::Elementwise, NormalizedMatrix::ln, Matrix::ln)
    }

    /// Transpose. Free on the normalized form (flag flip, §3.2), a copy on
    /// a materialized representation — there is no routing choice to make,
    /// so no decision is logged. A filled memo is carried over transposed
    /// (a permutation copy), so a paid materialization is never paid again
    /// just because the chain transposed.
    pub fn transpose(&self) -> PlannedMatrix {
        match &self.repr {
            Repr::Factorized(t) => {
                let derived = self.derive(Repr::Factorized(t.transpose()));
                if let Some(m) = self.memo.get() {
                    let _ = derived.memo.set(m.transpose());
                }
                derived
            }
            Repr::Materialized(m) => self.derive(Repr::Materialized(m.transpose())),
        }
    }

    /// `rowMin(T)`.
    pub fn row_min(&self) -> DenseMatrix {
        self.run(OpKind::RowMin, NormalizedMatrix::row_min, Matrix::row_min)
    }

    /// `tcrossprod(T) = T Tᵀ`.
    pub fn tcrossprod(&self) -> DenseMatrix {
        self.run(
            OpKind::Tcrossprod,
            NormalizedMatrix::tcrossprod,
            Matrix::tcrossprod,
        )
    }

    /// `T + X` for a same-shape regular matrix — the non-factorizable
    /// element-wise fallback of §3.3.7.
    pub fn add_matrix(&self, x: &Matrix) -> Matrix {
        self.run(
            OpKind::ElementwiseFallback,
            |t| t.add_matrix(x),
            |m| m.add(x),
        )
    }

    /// `T - X` (§3.3.7 fallback).
    pub fn sub_matrix(&self, x: &Matrix) -> Matrix {
        self.run(
            OpKind::ElementwiseFallback,
            |t| t.sub_matrix(x),
            |m| m.sub(x),
        )
    }

    /// `T * X` element-wise (§3.3.7 fallback).
    pub fn mul_elem_matrix(&self, x: &Matrix) -> Matrix {
        self.run(
            OpKind::ElementwiseFallback,
            |t| t.mul_elem_matrix(x),
            |m| m.mul_elem(x),
        )
    }

    /// `T / X` element-wise (§3.3.7 fallback).
    pub fn div_elem_matrix(&self, x: &Matrix) -> Matrix {
        self.run(
            OpKind::ElementwiseFallback,
            |t| t.div_elem_matrix(x),
            |m| m.div_elem(x),
        )
    }

    /// Double matrix multiplication `T₁ T₂` (appendix C). The factorized
    /// rewrite is only available while both operands still carry their
    /// normalized form; whether it *fires* is the left operand's strategy
    /// call, priced with the dedicated two-operand appendix-C estimate
    /// ([`crate::cost::estimate_dmm`]): the block rewrite per part of the
    /// left operand's join on the factorized side, a full `n·d_A·d_B`
    /// product on the materialized side — with the right operand's join
    /// materialization charged to the materialized route when its memo is
    /// empty. When exactly one side is spent, the multiplication routes
    /// through the surviving side's planned `lmm`/`rmm` instead of
    /// materializing it.
    pub fn dmm(&self, other: &PlannedMatrix) -> Matrix {
        match (&self.repr, &other.repr) {
            (Repr::Factorized(a), Repr::Factorized(b)) => {
                let op = OpKind::Dmm { m: b.cols() };
                let decision = if matches!(self.strategy, Strategy::CostBased) {
                    let profile = self.profile.get();
                    let est = crate::cost::estimate_dmm(profile, a, b);
                    let extra = if other.is_memoized() {
                        0.0
                    } else {
                        crate::cost::materialize_ns(profile, b)
                    };
                    let materialized_ns =
                        est.materialized_total_ns(self.memo.get().is_some()) + extra;
                    Decision {
                        op,
                        factorized_ns: est.factorized_ns,
                        materialized_ns,
                        factorized: est.factorized_ns < materialized_ns,
                    }
                } else {
                    self.plan_for(a, op)
                };
                if let Some(hook) = &self.hook {
                    hook(&decision);
                }
                if decision.factorized {
                    a.dmm(b)
                } else {
                    self.memo_ref(a).matmul(other.resident_matrix())
                }
            }
            // Left side still factorized: a planned LMM with the spent
            // right operand (dense only — sparse operands multiply
            // materialized).
            (Repr::Factorized(_), Repr::Materialized(b)) => match b.as_dense() {
                Some(bd) => Matrix::Dense(self.lmm(bd)),
                None => self.resident_matrix().matmul(b),
            },
            // Right side still factorized: a planned RMM symmetrically.
            (Repr::Materialized(a), Repr::Factorized(_)) => match a.as_dense() {
                Some(ad) => Matrix::Dense(other.rmm(ad)),
                None => a.matmul(other.resident_matrix()),
            },
            _ => self.resident_matrix().matmul(other.resident_matrix()),
        }
    }

    /// The materialized matrix this representation resolves to (memoizing
    /// for factorized representations).
    fn resident_matrix(&self) -> &Matrix {
        match &self.repr {
            Repr::Materialized(m) => m,
            Repr::Factorized(t) => self.memo_ref(t),
        }
    }
}

impl LinearOperand for PlannedMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(
            OpKind::Lmm { m: x.cols() },
            |t| t.lmm(x),
            |m| m.matmul_dense(x),
        )
    }

    fn lmm_into(&self, x: &DenseMatrix, out: &mut [f64]) {
        // Not expressible through `run` (both routes need the one `out`
        // borrow), so the routing is inlined: same op kind, same decision,
        // same memo — bit-identical to `lmm` on either verdict.
        match &self.repr {
            Repr::Materialized(m) => out.copy_from_slice(m.matmul_dense(x).as_slice()),
            Repr::Factorized(t) => {
                if self.decide(t, OpKind::Lmm { m: x.cols() }) {
                    t.lmm_into(x, out);
                } else {
                    out.copy_from_slice(self.memo_ref(t).matmul_dense(x).as_slice());
                }
            }
        }
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(
            OpKind::TLmm { m: x.cols() },
            |t| t.t_lmm(x),
            |m| m.t_matmul_dense(x),
        )
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.run(
            OpKind::Rmm { m: x.rows() },
            |t| t.rmm(x),
            |m| m.dense_matmul(x),
        )
    }

    fn crossprod(&self) -> DenseMatrix {
        self.run(
            OpKind::Crossprod,
            NormalizedMatrix::crossprod,
            Matrix::crossprod,
        )
    }

    fn row_sums(&self) -> DenseMatrix {
        self.run(
            OpKind::RowSums,
            NormalizedMatrix::row_sums,
            Matrix::row_sums,
        )
    }

    fn col_sums(&self) -> DenseMatrix {
        self.run(
            OpKind::ColSums,
            NormalizedMatrix::col_sums,
            Matrix::col_sums,
        )
    }

    fn sum(&self) -> f64 {
        self.run(OpKind::Sum, NormalizedMatrix::sum, Matrix::sum)
    }

    fn scale(&self, x: f64) -> Self {
        self.scalar_mul(x)
    }

    fn squared(&self) -> Self {
        self.scalar_pow(2.0)
    }

    fn ginv(&self) -> DenseMatrix {
        self.run(OpKind::Ginv, |t| t.ginv(), LinearOperand::ginv)
    }

    fn materialize(&self) -> Matrix {
        self.resident_matrix().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(n_s, d_s, |i, j| ((i * 3 + j) % 7) as f64 - 2.5);
        let r = DenseMatrix::from_fn(n_r, d_r, |i, j| ((i * d_r + j) % 5) as f64 * 0.5 + 0.1);
        let fk: Vec<usize> = (0..n_s).map(|i| (i * 7 + 1) % n_r).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    /// A planned matrix that records every decision it makes.
    fn logged(
        t: NormalizedMatrix,
        strategy: Strategy,
    ) -> (PlannedMatrix, Arc<Mutex<Vec<Decision>>>) {
        let log = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let planned = PlannedMatrix::with_strategy(t, strategy)
            .with_profile(MachineProfile::REFERENCE)
            .with_hook(move |d| sink.lock().unwrap().push(*d));
        (planned, log)
    }

    #[test]
    fn strategy_parsing() {
        assert_eq!(Strategy::parse("cost-based"), Some(Strategy::CostBased));
        assert_eq!(Strategy::parse("COST_BASED"), Some(Strategy::CostBased));
        assert!(matches!(
            Strategy::parse("heuristic"),
            Some(Strategy::Heuristic(_))
        ));
        assert_eq!(
            Strategy::parse(" factorize "),
            Some(Strategy::AlwaysFactorize)
        );
        assert_eq!(
            Strategy::parse("always-materialize"),
            Some(Strategy::AlwaysMaterialize)
        );
        assert_eq!(Strategy::parse("flip-a-coin"), None);
    }

    #[test]
    fn always_strategies_route_unconditionally_and_agree() {
        let tn = pkfk(40, 3, 8, 4);
        let x = DenseMatrix::from_fn(tn.cols(), 2, |i, j| (i + j) as f64 * 0.1);
        let (f, f_log) = logged(tn.clone(), Strategy::AlwaysFactorize);
        let (m, m_log) = logged(tn.clone(), Strategy::AlwaysMaterialize);
        // Factorized arm is bit-identical to the pure normalized path,
        // materialized arm to the pure materialized path.
        assert_eq!(f.lmm(&x), tn.lmm(&x));
        assert_eq!(m.lmm(&x), tn.materialize().matmul_dense(&x));
        assert!(f_log.lock().unwrap().iter().all(|d| d.factorized));
        assert!(m_log.lock().unwrap().iter().all(|d| !d.factorized));
        // And the two arms agree numerically.
        assert!(f.crossprod().approx_eq(&m.crossprod(), 1e-10));
    }

    #[test]
    fn heuristic_strategy_applies_the_paper_rule_uniformly() {
        let rule = DecisionRule::default();
        // TR = 10, FR = 2 → factorize; TR = 2, FR = 0.5 → materialize.
        let hot = pkfk(100, 2, 10, 4);
        let cold = pkfk(20, 4, 10, 2);
        assert!(rule.should_factorize(&hot));
        assert!(!rule.should_factorize(&cold));
        let (h, h_log) = logged(hot, Strategy::Heuristic(rule));
        let (c, c_log) = logged(cold, Strategy::Heuristic(rule));
        let _ = h.crossprod();
        let _ = h.row_sums();
        let _ = c.crossprod();
        let _ = c.row_sums();
        assert!(h_log.lock().unwrap().iter().all(|d| d.factorized));
        assert!(c_log.lock().unwrap().iter().all(|d| !d.factorized));
        // The heuristic decides without estimating (no calibration).
        assert!(h_log.lock().unwrap()[0].factorized_ns.is_nan());
        // A materialized verdict memoizes the join.
        assert!(c.is_memoized());
        assert!(!h.is_memoized());
    }

    #[test]
    fn cost_based_routes_per_operator_with_bit_identical_results() {
        // TR = 10, FR = 2: crossprod is factorized-profitable, while the
        // §3.3.7 element-wise fallback materializes internally either way,
        // so the planner routes it to the (memoizable) materialized side.
        let tn = pkfk(500, 4, 50, 8);
        let (planned, log) = logged(tn.clone(), Strategy::CostBased);

        let cp = planned.crossprod();
        let x = Matrix::Dense(DenseMatrix::from_fn(tn.rows(), tn.cols(), |i, j| {
            ((i * 13 + j * 7) % 11) as f64
        }));
        let ew = planned.add_matrix(&x);

        let decisions = log.lock().unwrap().clone();
        assert_eq!(decisions.len(), 2);
        assert!(
            decisions[0].factorized,
            "crossprod should be factorized: {:?}",
            decisions[0]
        );
        assert!(
            !decisions[1].factorized,
            "elementwise fallback should materialize: {:?}",
            decisions[1]
        );
        // Same PlannedMatrix, two operators, two different routes — and
        // both results bit-identical to their pure paths.
        assert_eq!(cp, tn.crossprod());
        assert!(ew.approx_eq(&tn.materialize().add(&x), 0.0));
    }

    #[test]
    fn memo_panic_leaves_a_recoverable_planner() {
        let _guard = morpheus_runtime::faults::exclusive();
        let tn = pkfk(30, 3, 6, 3);
        let expected = tn.materialize();
        let (planned, _log) = logged(tn, Strategy::AlwaysMaterialize);
        morpheus_runtime::faults::configure("planner.memo=panic(times=1)").unwrap();
        let attempt =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| planned.materialize()));
        morpheus_runtime::faults::clear();
        assert!(attempt.is_err(), "injected memo panic must propagate");
        // The OnceLock memo is left empty — never poisoned — so the same
        // planner (and every clone sharing the memo) simply recomputes.
        let recovered = planned.materialize();
        assert!(recovered.approx_eq(&expected, 0.0));
        assert!(planned.is_memoized());
    }

    #[test]
    fn materialize_verdicts_amortize_through_the_memo() {
        let tn = pkfk(60, 3, 12, 3);
        let (planned, log) = logged(tn, Strategy::CostBased);
        let x = Matrix::Dense(DenseMatrix::from_fn(60, 6, |i, j| (i + j) as f64));
        let _ = planned.add_matrix(&x);
        assert!(planned.is_memoized());
        let _ = planned.add_matrix(&x);
        let decisions = log.lock().unwrap().clone();
        // Second decision no longer charges materialization.
        assert!(decisions[1].materialized_ns < decisions[0].materialized_ns);
    }

    #[test]
    fn cost_based_decisions_match_brute_force_estimates() {
        let tn = pkfk(300, 3, 20, 6);
        let profile = MachineProfile::REFERENCE;
        let planned =
            PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased).with_profile(profile);
        for op in OpKind::ALL {
            let decision = planned.plan(op).unwrap();
            let est = estimate_op(&profile, &tn, op);
            assert_eq!(
                decision.factorized,
                est.factorized_ns < est.materialized_total_ns(planned.is_memoized()),
                "planner disagrees with brute-force comparison on {op:?}"
            );
        }
    }

    #[test]
    fn closure_ops_preserve_or_spend_the_representation() {
        let tn = pkfk(80, 2, 8, 4);
        // Factorized closure: representation stays normalized.
        let f = PlannedMatrix::with_strategy(tn.clone(), Strategy::AlwaysFactorize);
        let f2 = f.scale(2.0);
        assert!(f2.normalized().is_some());
        assert_eq!(f2.sum(), tn.scalar_mul(2.0).sum());
        // Materialized closure: the opportunity is spent.
        let m = PlannedMatrix::with_strategy(tn.clone(), Strategy::AlwaysMaterialize);
        let m2 = m.squared();
        assert!(m2.normalized().is_none());
        assert!(m2.is_memoized());
        assert_eq!(m2.sum(), tn.materialize().scalar_pow(2.0).sum());
        // Chained ops on a spent representation keep running materialized.
        assert_eq!(m2.scale(0.5).sum(), m2.sum() * 0.5);
    }

    #[test]
    fn transpose_round_trips_without_losing_planning() {
        let tn = pkfk(30, 2, 6, 3);
        let planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::AlwaysFactorize);
        let tt = planned.transpose();
        assert_eq!(tt.shape(), (tn.cols(), tn.rows()));
        assert!(tt.normalized().is_some());
        let x = DenseMatrix::from_fn(tn.rows(), 2, |i, j| (i * 2 + j) as f64 * 0.25);
        assert_eq!(tt.lmm(&x), tn.transpose().lmm(&x));
    }

    #[test]
    fn transpose_carries_a_paid_materialization() {
        let tn = pkfk(24, 2, 4, 3);
        let planned = PlannedMatrix::with_strategy(tn.clone(), Strategy::AlwaysMaterialize);
        let _ = planned.sum(); // routes materialized, fills the memo
        assert!(planned.is_memoized());
        let tt = planned.transpose();
        assert!(tt.is_memoized(), "transpose must not drop the paid memo");
        // And the carried memo is the transposed join, bit-identical to
        // materializing the transposed normalized form.
        assert_eq!(
            LinearOperand::materialize(&tt).to_dense(),
            tn.transpose().materialize().to_dense()
        );
    }

    #[test]
    fn dmm_factorizes_only_while_both_sides_are_normalized() {
        let a = pkfk(10, 2, 5, 2);
        let sb = DenseMatrix::from_fn(4, 1, |i, _| i as f64 * 0.2);
        let rb = DenseMatrix::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[0, 1, 0, 1], rb.into());
        let pa = PlannedMatrix::with_strategy(a.clone(), Strategy::AlwaysFactorize);
        let pb = PlannedMatrix::with_strategy(b.clone(), Strategy::AlwaysFactorize);
        let fact = pa.dmm(&pb);
        assert!(fact.approx_eq(&a.dmm(&b), 0.0));
        // One side spent → materialized multiply.
        let pb_mat =
            PlannedMatrix::with_strategy(b.clone(), Strategy::AlwaysMaterialize).scalar_mul(1.0);
        assert!(pb_mat.normalized().is_none());
        let mixed = pa.dmm(&pb_mat);
        assert!(mixed.approx_eq(&a.materialize().matmul(&b.materialize()), 1e-12));
        // Both sides normalized but the left strategy says materialize:
        // dmm must respect it (and log the decision) instead of
        // unconditionally firing the rewrite.
        let (pa_mat, log) = logged(a.clone(), Strategy::AlwaysMaterialize);
        let routed = pa_mat.dmm(&pb);
        assert!(routed.approx_eq(&a.materialize().matmul(&b.materialize()), 1e-12));
        let decisions = log.lock().unwrap().clone();
        assert_eq!(decisions.len(), 1);
        assert!(!decisions[0].factorized);
        assert!(
            pa_mat.is_memoized(),
            "materialized dmm memoizes the left join"
        );
    }

    #[test]
    fn plan_script_only_cost_based_and_only_while_unmemoized() {
        let tn = pkfk(120, 3, 12, 4);
        let uses = [OpKind::Elementwise, OpKind::Crossprod, OpKind::Sum];
        for strategy in [
            Strategy::AlwaysFactorize,
            Strategy::AlwaysMaterialize,
            Strategy::Heuristic(DecisionRule::default()),
        ] {
            let p = PlannedMatrix::with_strategy(tn.clone(), strategy);
            assert!(p.plan_script(&uses).is_none(), "{strategy:?} must not plan");
        }
        let p = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
            .with_profile(MachineProfile::REFERENCE);
        let d = p.plan_script(&uses).expect("cost-based plans scripts");
        assert!(d.greedy_ns.is_finite() && d.lookahead_ns.is_finite());
        // Once the join is memoized the decision is moot.
        p.prematerialize();
        assert!(p.is_memoized());
        assert!(p.plan_script(&uses).is_none());
        // And on a spent representation there is nothing to plan.
        let spent = PlannedMatrix::with_strategy(tn, Strategy::AlwaysMaterialize).scalar_mul(2.0);
        assert!(spent.normalized().is_none());
        assert!(spent.plan_script(&uses).is_none());
    }

    #[test]
    fn plan_script_verdict_matches_the_cost_model() {
        let tn = pkfk(200, 3, 20, 6);
        let profile = MachineProfile::REFERENCE;
        let p = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased).with_profile(profile);
        for uses in [
            vec![OpKind::Crossprod],
            vec![OpKind::ElementwiseFallback; 4],
            vec![OpKind::RowMin; 12],
            vec![OpKind::Lmm { m: 1 }, OpKind::TLmm { m: 1 }, OpKind::Sum],
        ] {
            let d = p.plan_script(&uses).unwrap();
            let est = crate::cost::estimate_script(&profile, &tn, &uses);
            assert_eq!(d.greedy_ns, est.greedy_ns);
            assert_eq!(d.lookahead_ns, est.lookahead_ns);
            assert_eq!(d.materialize_upfront, est.prefer_upfront_materialize());
        }
    }

    #[test]
    fn prematerialize_fills_the_memo_without_changing_results() {
        let tn = pkfk(80, 2, 8, 4);
        let cold = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
            .with_profile(MachineProfile::REFERENCE);
        let warm = PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
            .with_profile(MachineProfile::REFERENCE);
        warm.prematerialize();
        assert!(warm.is_memoized());
        assert!(!cold.is_memoized());
        // Idempotent.
        warm.prematerialize();
        // Routing may differ (the join is sunk for `warm`, so per-call
        // decisions compare against the bare operator cost) — but each
        // chosen route stays bit-identical to its pure path, and the two
        // schedules agree numerically.
        let cp = warm.crossprod();
        let route = warm.plan(OpKind::Crossprod).expect("still factorized");
        let pure = if route.factorized {
            tn.crossprod()
        } else {
            tn.materialize().crossprod()
        };
        assert_eq!(cp, pure);
        assert!(cp.approx_eq(&cold.crossprod(), 1e-9));
        assert_eq!(
            LinearOperand::materialize(&warm).to_dense(),
            tn.materialize().to_dense()
        );
    }

    #[test]
    fn from_materialized_never_plans() {
        let tn = pkfk(12, 2, 4, 2);
        let (planned, log) = logged(tn.clone(), Strategy::CostBased);
        let mat = PlannedMatrix::from_materialized(tn.materialize());
        assert!(mat.plan(OpKind::Sum).is_none());
        assert_eq!(mat.sum(), tn.materialize().sum());
        // The logged planned matrix still plans.
        assert!(planned.plan(OpKind::Sum).is_some());
        assert!(log.lock().unwrap().is_empty(), "plan() must not log");
    }
}
