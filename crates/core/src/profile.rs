//! Per-machine kernel rates: the [`MachineProfile`] behind the cost-based
//! planner.
//!
//! The paper's §3.4 cost model counts arithmetic computations, but the
//! factorized/materialized crossover it predicts depends on how fast each
//! *kind* of computation actually runs: cache-blocked dense GEMM sustains
//! several flops per nanosecond, while the indicator gather-adds inside the
//! factorized rewrites are irregular-memory operations that run an order of
//! magnitude slower per element. A profile captures those rates so flop
//! counts convert into comparable time estimates (see
//! [`crate::cost::estimate_op`]).
//!
//! Rates come from one of three places, in priority order:
//!
//! 1. a file named by `MORPHEUS_PROFILE_PATH`, if it exists (so CI and
//!    repeated test processes skip calibration),
//! 2. lazy microbenchmark calibration on first use — tiny invocations of
//!    the real kernels, dispatched on the resident `morpheus-runtime`
//!    pool so the measured rates match the execution environment the
//!    planner schedules (written back to `MORPHEUS_PROFILE_PATH` when
//!    set),
//! 3. the hard-coded [`MachineProfile::REFERENCE`] rates, used only by
//!    tests that need deterministic estimates.

use crate::{CoreError, CoreResult};
use morpheus_dense::DenseMatrix;
use morpheus_runtime::timing;
use morpheus_sparse::CsrMatrix;
use std::sync::OnceLock;

/// Environment variable naming the profile persistence file.
pub const PROFILE_PATH_ENV: &str = "MORPHEUS_PROFILE_PATH";

/// Calibrated per-kernel rates, in nanoseconds per operation.
///
/// The four rates cover the kernel classes the Table-1 operator set is
/// built from; every cost estimate is a weighted sum of them plus a fixed
/// per-part dispatch overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// ns per fused multiply-add in cache-blocked dense products
    /// (GEMM, crossprod).
    pub dense_flop_ns: f64,
    /// ns per element in streaming element-wise/aggregation passes over
    /// dense storage (scalar ops, row/col sums).
    pub ew_ns: f64,
    /// ns per gathered element in indicator applications and
    /// materialization (one-hot SpMM row gathers); also used as the rate
    /// for general sparse fused ops, which share the irregular-access
    /// profile.
    pub gather_ns: f64,
    /// Fixed ns of overhead per part of a factorized operator: closure
    /// dispatch on the runtime executor, partial-result assembly.
    pub op_overhead_ns: f64,
}

impl MachineProfile {
    /// Nominal rates of a mid-2020s x86 core (dense ≈ 2 flops/ns blocked
    /// GEMM, element-wise streaming ≈ 1/ns, gathers ≈ 3 ns each, ~1 µs per
    /// dispatched part). Used by tests that need deterministic estimates;
    /// real planning calibrates instead.
    pub const REFERENCE: MachineProfile = MachineProfile {
        dense_flop_ns: 0.5,
        ew_ns: 1.0,
        gather_ns: 3.0,
        op_overhead_ns: 1_000.0,
    };

    /// Measures the four rates with microbenchmarks of the real kernels.
    ///
    /// Sizes are chosen so one calibration costs a few milliseconds: large
    /// enough that per-call overhead is amortized out of the three rate
    /// measurements, small enough to stay cache-resident and fast. The
    /// resident pool is warmed first so worker spawns are never measured.
    pub fn calibrate() -> MachineProfile {
        timing::warm_pool();

        // Dense rate: 64x64x64 GEMM = 64^3 fused multiply-adds per call
        // (the profile's unit is ns per fused op, not per flop).
        let a = DenseMatrix::from_fn(64, 64, |i, j| ((i * 64 + j) % 31) as f64 * 0.07 - 1.0);
        let b = DenseMatrix::from_fn(64, 64, |i, j| ((i + j * 64) % 29) as f64 * 0.05 - 0.7);
        let dense_flop_ns = timing::measure_ns_per_op(5, 64 * 64 * 64, || {
            std::hint::black_box(a.matmul(&b));
        });

        // Element-wise rate: scalar multiply over 65 536 elements.
        let m = DenseMatrix::from_fn(256, 256, |i, j| ((i ^ j) % 17) as f64 * 0.11 - 0.9);
        let ew_ns = timing::measure_ns_per_op(5, 256 * 256, || {
            std::hint::black_box(m.scalar_mul(1.0001));
        });

        // Gather rate: one-hot indicator SpMM — 4096 logical rows each
        // gathering 8 elements from a 512-row base table.
        let assign: Vec<usize> = (0..4096).map(|i| (i * 7) % 512).collect();
        let k = CsrMatrix::indicator(&assign, 512);
        let x = DenseMatrix::from_fn(512, 8, |i, j| ((i * 3 + j) % 13) as f64 * 0.2 - 1.2);
        let gather_ns = timing::measure_ns_per_op(5, 4096 * 8, || {
            std::hint::black_box(k.spmm_dense(&x));
        });

        // Per-part overhead: dispatch of a near-empty two-item section on
        // the pool, the same shape the per-part rewrite loops use.
        let ex = morpheus_runtime::Runtime::executor();
        let op_overhead_ns = timing::measure_ns(20, || {
            std::hint::black_box(ex.map(2, |i| i as f64));
        }) / 2.0;

        MachineProfile {
            dense_flop_ns: dense_flop_ns.max(1e-3),
            ew_ns: ew_ns.max(1e-3),
            gather_ns: gather_ns.max(1e-3),
            op_overhead_ns: op_overhead_ns.max(1.0),
        }
    }

    /// The process-wide profile: loaded from `MORPHEUS_PROFILE_PATH` when
    /// that file exists, otherwise calibrated on first use (and written
    /// back to the path when one is named). Resolved once per process.
    pub fn global() -> &'static MachineProfile {
        static GLOBAL: OnceLock<MachineProfile> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let path = std::env::var(PROFILE_PATH_ENV).ok();
            if let Some(p) = path.as_deref() {
                if let Ok(text) = std::fs::read_to_string(p) {
                    match MachineProfile::from_text(&text) {
                        Ok(profile) => return profile,
                        Err(e) => eprintln!("morpheus: ignoring profile at {p}: {e}"),
                    }
                }
            }
            let profile = MachineProfile::calibrate();
            if let Some(p) = path.as_deref() {
                // Persistence is best-effort: a read-only path must not
                // break planning, so the error is reported, not raised.
                if let Some(dir) = std::path::Path::new(p).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                if let Err(e) = std::fs::write(p, profile.to_text()) {
                    eprintln!("morpheus: could not persist profile to {p}: {e}");
                }
            }
            profile
        })
    }

    /// Renders the profile in the `key = value` format [`from_text`]
    /// parses.
    ///
    /// [`from_text`]: MachineProfile::from_text
    pub fn to_text(&self) -> String {
        format!(
            "# morpheus machine profile (ns per operation)\n\
             dense_flop_ns = {}\n\
             ew_ns = {}\n\
             gather_ns = {}\n\
             op_overhead_ns = {}\n",
            self.dense_flop_ns, self.ew_ns, self.gather_ns, self.op_overhead_ns
        )
    }

    /// Parses a persisted profile: `key = value` lines, `#` comments,
    /// unknown keys ignored (forward compatibility), all four rates
    /// required and positive.
    pub fn from_text(text: &str) -> CoreResult<MachineProfile> {
        let mut rates = [None::<f64>; 4];
        const KEYS: [&str; 4] = ["dense_flop_ns", "ew_ns", "gather_ns", "op_overhead_ns"];
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CoreError::Profile(format!("malformed line: {line:?}")));
            };
            if let Some(slot) = KEYS.iter().position(|&k| k == key.trim()) {
                let v: f64 = value.trim().parse().map_err(|_| {
                    CoreError::Profile(format!("non-numeric value for {}: {value:?}", key.trim()))
                })?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(CoreError::Profile(format!(
                        "rate {} must be positive and finite, got {v}",
                        key.trim()
                    )));
                }
                rates[slot] = Some(v);
            }
        }
        match rates {
            [Some(dense_flop_ns), Some(ew_ns), Some(gather_ns), Some(op_overhead_ns)] => {
                Ok(MachineProfile {
                    dense_flop_ns,
                    ew_ns,
                    gather_ns,
                    op_overhead_ns,
                })
            }
            _ => {
                let missing: Vec<&str> = KEYS
                    .iter()
                    .zip(&rates)
                    .filter(|(_, r)| r.is_none())
                    .map(|(&k, _)| k)
                    .collect();
                Err(CoreError::Profile(format!(
                    "missing rate(s): {}",
                    missing.join(", ")
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trip() {
        let p = MachineProfile {
            dense_flop_ns: 0.42,
            ew_ns: 1.25,
            gather_ns: 2.75,
            op_overhead_ns: 900.0,
        };
        assert_eq!(MachineProfile::from_text(&p.to_text()).unwrap(), p);
    }

    #[test]
    fn parse_tolerates_comments_and_unknown_keys() {
        let text = "# a comment\nfuture_rate_ns = 9\n\
                    dense_flop_ns=0.5\new_ns = 1\ngather_ns = 3\nop_overhead_ns = 1000\n";
        let p = MachineProfile::from_text(text).unwrap();
        assert_eq!(p, MachineProfile::REFERENCE);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(matches!(
            MachineProfile::from_text("dense_flop_ns = fast"),
            Err(CoreError::Profile(_))
        ));
        assert!(matches!(
            MachineProfile::from_text("dense_flop_ns = 0.5"),
            Err(CoreError::Profile(msg)) if msg.contains("ew_ns")
        ));
        assert!(matches!(
            MachineProfile::from_text(
                "dense_flop_ns = -1\new_ns = 1\ngather_ns = 1\nop_overhead_ns = 1"
            ),
            Err(CoreError::Profile(_))
        ));
        assert!(matches!(
            MachineProfile::from_text("what is this"),
            Err(CoreError::Profile(_))
        ));
    }

    #[test]
    fn calibration_produces_positive_rates() {
        let p = MachineProfile::calibrate();
        for rate in [p.dense_flop_ns, p.ew_ns, p.gather_ns, p.op_overhead_ns] {
            assert!(rate.is_finite() && rate > 0.0, "bad calibrated rate {rate}");
        }
        // Sanity: a fused GEMM op cannot beat 0.01 ns (no machine this
        // code runs on does 100 flops/ns scalar) nor take longer than a
        // millisecond.
        assert!(p.dense_flop_ns > 0.01 && p.dense_flop_ns < 1e6);
    }
}
