//! Per-machine kernel rates: the [`MachineProfile`] behind the cost-based
//! planner.
//!
//! The paper's §3.4 cost model counts arithmetic computations, but the
//! factorized/materialized crossover it predicts depends on how fast each
//! *kind* of computation actually runs: cache-blocked dense GEMM sustains
//! several flops per nanosecond while its working set fits in L2, slows
//! measurably once operands spill to L3, and again when they stream from
//! DRAM; the indicator gather-adds inside the factorized rewrites are
//! irregular-memory operations an order of magnitude slower per element;
//! general sparse products sit between the two. A profile captures those
//! rates so flop counts convert into comparable time estimates (see
//! [`crate::cost::estimate_op`]).
//!
//! The dense rate is therefore not one number but a **tier curve**:
//! [`MachineProfile::calibrate`] measures the blocked-GEMM rate at three
//! working-set sizes chosen to land in L2, L3, and DRAM, and
//! [`MachineProfile::dense_flop_ns`] interpolates between them piecewise
//! log-linearly in the working-set size. The single-point 64³ calibration
//! of earlier revisions was ~2x optimistic for large cross-products — the
//! exact regime where the planner's crossover matters most.
//!
//! Rates come from one of three places, in priority order:
//!
//! 1. a file named by `MORPHEUS_PROFILE_PATH`, if it exists and carries
//!    the current [`PROFILE_FORMAT_VERSION`] (so CI and repeated test
//!    processes skip calibration). Files from older revisions, corrupted
//!    files, and files with missing keys are *ignored* — the profile is
//!    recalibrated and the file rewritten, never a hard error,
//! 2. lazy microbenchmark calibration on first use — tiny invocations of
//!    the real kernels, dispatched on the resident `morpheus-runtime`
//!    pool so the measured rates match the execution environment the
//!    planner schedules (written back to `MORPHEUS_PROFILE_PATH` when
//!    set),
//! 3. the hard-coded [`MachineProfile::REFERENCE`] rates, used only by
//!    tests that need deterministic estimates.

use crate::{CoreError, CoreResult};
use morpheus_dense::DenseMatrix;
use morpheus_runtime::{faults, timing};
use morpheus_sparse::CsrMatrix;
use std::sync::OnceLock;

/// Environment variable naming the profile persistence file.
pub const PROFILE_PATH_ENV: &str = "MORPHEUS_PROFILE_PATH";

/// Environment variable bounding calibration wall time, in milliseconds.
/// When first-use calibration misses this deadline (default
/// [`DEFAULT_CALIBRATION_TIMEOUT_MS`]; `0` disables the watchdog), the
/// planner proceeds on the built-in [`MachineProfile::FALLBACK`] rates
/// instead of blocking first use on a hostile machine — and the fallback
/// is *not* persisted, so a later healthy process calibrates for real.
pub const CALIBRATION_TIMEOUT_ENV: &str = "MORPHEUS_CALIBRATION_TIMEOUT_MS";

/// Default calibration watchdog deadline: generous (a healthy calibration
/// takes ~100 ms) so it only ever fires on a genuinely hostile machine.
pub const DEFAULT_CALIBRATION_TIMEOUT_MS: u64 = 10_000;

/// A calibration outcome: the rates plus whether they were actually
/// measured on this machine. Only measured rates are worth persisting —
/// writing the fallback rates to `MORPHEUS_PROFILE_PATH` would make a
/// transient stall permanent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationResult {
    /// The rates to plan with.
    pub profile: MachineProfile,
    /// `true` when the rates came from microbenchmarks on this machine;
    /// `false` when the watchdog substituted the built-in fallback.
    pub measured: bool,
}

/// Version of the persisted key set. Bumped whenever the rate set changes
/// shape *or the kernels behind the rates change speed class*; files
/// written by other versions trigger recalibration instead of being
/// misread (v1 had a single dense rate and one shared sparse/gather rate;
/// v2 rates were measured against the scalar GEMM and serial reduction
/// chains that the SIMD packed-panel microkernel and fixed-lane reductions
/// replaced — loading them would misprice every crossover decision).
pub const PROFILE_FORMAT_VERSION: u32 = 3;

/// One calibration point of the dense-rate tier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseTier {
    /// Working-set bytes of the calibration GEMM (all three operands).
    pub bytes: f64,
    /// Measured ns per fused multiply-add at that working set.
    pub ns: f64,
}

/// Calibrated per-kernel rates, in nanoseconds per operation.
///
/// The rates cover the kernel classes the Table-1 operator set is built
/// from; every cost estimate is a weighted sum of them plus a fixed
/// per-part dispatch overhead. The dense rate is size-tiered (see
/// [`MachineProfile::dense_flop_ns`]); the other classes are streaming or
/// latency-bound, so one number each suffices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineProfile {
    /// ns per fused multiply-add in cache-blocked dense products (GEMM,
    /// crossprod), calibrated at L2-, L3-, and DRAM-sized working sets
    /// (ascending `bytes`). Query through
    /// [`dense_flop_ns`](MachineProfile::dense_flop_ns), which
    /// interpolates.
    pub dense_tiers: [DenseTier; 3],
    /// ns per element in streaming element-wise passes over dense storage
    /// (scalar ops and maps: one read + one write per element).
    pub ew_ns: f64,
    /// ns per element in read-only streaming *sum* reductions with
    /// independent accumulators (row/col sums). Cheaper than
    /// [`ew_ns`](Self::ew_ns): no write stream, and the fixed-lane sums
    /// vectorize.
    pub red_ns: f64,
    /// ns per element in min/max fold reductions (`rowMin`). Since the
    /// fixed-lane vectorization the fold chains run at nearly the sum
    /// rate; the residual gap is the latency difference between `min` and
    /// `add`, no longer the old 2–3x serial-chain penalty.
    pub minmax_ns: f64,
    /// ns per element in a whole-matrix `sum`. Historically the slowest
    /// reduction class (one serial dependency chain); the fixed-lane
    /// kernel runs eight chains in flight, pulling it to the streaming
    /// bandwidth of [`red_ns`](Self::red_ns).
    pub sum_ns: f64,
    /// ns per stored-entry fused op in general sparse products (SpMM,
    /// SpGEMM, sparse crossprod) — priced against nnz, not logical size.
    pub sparse_ns: f64,
    /// ns per gathered element in *row*-major indicator applications and
    /// materialization (one-hot SpMM row gathers), with the per-row
    /// latency separated out (see
    /// [`gather_row_ns`](Self::gather_row_ns)).
    pub gather_ns: f64,
    /// Fixed ns per gathered *row* of an indicator application — index
    /// lookup and loop latency that narrow gathers cannot amortize. A
    /// width-`m` application of an explicit indicator over `n` logical
    /// rows costs `n * (m * gather_ns + gather_row_ns)`; the two rates
    /// come from a two-point (wide/narrow) calibration.
    pub gather_row_ns: f64,
    /// Measured ratio of the symmetric rank-k kernels (`crossprod`,
    /// `tcrossprod`) to blocked GEMM at the same working set, normalized
    /// to the tiles the triangular kernel actually computes
    /// (`cost::syrk_tile_fraction` of the padded output square — the
    /// kernel skips whole register tiles below the diagonal). What
    /// remains in this (dimensionless) factor is the genuine premium:
    /// transposed packing and the mirror pass.
    pub syrk_factor: f64,
    /// ns per element in *column*-strided indicator applications — the
    /// `X K` pushes of RMM and the `S_A K_B1`-style dense-times-one-hot
    /// products inside DMM, which scatter across output columns instead
    /// of walking rows. Measurably slower than
    /// [`gather_ns`](Self::gather_ns) on row-major storage.
    pub col_gather_ns: f64,
    /// Fixed ns of overhead per part of a factorized operator: closure
    /// dispatch on the runtime executor, partial-result assembly.
    pub op_overhead_ns: f64,
}

/// Working-set bytes of a `rows x k` by `k x cols` product (three dense
/// operands at 8 bytes each) — the tier-curve query key used by the cost
/// model and by calibration, kept in one place so they always agree.
pub fn gemm_working_set_bytes(rows: usize, k: usize, cols: usize) -> f64 {
    8.0 * (rows * k + k * cols + rows * cols) as f64
}

/// Calibration GEMM shapes `(rows, k, cols)` for the three tiers. Chosen
/// so the working sets land around 100 KB (L2-resident), 1.4 MB (L3), and
/// 17 MB (DRAM on anything current), while the flop counts stay small
/// enough that one calibration costs tens of milliseconds, not seconds.
const TIER_SHAPES: [(usize, usize, usize); 3] = [
    (64, 64, 64),   // ~98 KB,  262 k fused ops
    (512, 256, 64), // ~1.4 MB, 8.4 M fused ops
    (4096, 512, 8), // ~17 MB,  16.8 M fused ops
];

impl MachineProfile {
    /// Nominal rates of a mid-2020s x86 core: blocked GEMM ≈ 2 flops/ns in
    /// L2 degrading toward 1 flop/ns out of DRAM, element-wise streaming
    /// ≈ 1/ns, sparse fused ops ≈ 2.5 ns, gathers ≈ 3 ns each, ~1 µs per
    /// dispatched part. A **frozen test profile**, not a tracker of the
    /// current kernels — tests that pin planner decisions depend on these
    /// exact numbers, so kernel speedups (e.g. the SIMD microkernel)
    /// change calibration, never this constant. Real planning calibrates
    /// instead.
    pub const REFERENCE: MachineProfile = MachineProfile {
        dense_tiers: [
            DenseTier {
                bytes: 98_304.0,
                ns: 0.5,
            },
            DenseTier {
                bytes: 1_441_792.0,
                ns: 0.7,
            },
            DenseTier {
                bytes: 17_039_360.0,
                ns: 1.0,
            },
        ],
        ew_ns: 1.0,
        red_ns: 0.5,
        minmax_ns: 0.75,
        sum_ns: 1.25,
        sparse_ns: 2.5,
        gather_ns: 3.0,
        gather_row_ns: 2.0,
        col_gather_ns: 4.0,
        syrk_factor: 1.5,
        op_overhead_ns: 1_000.0,
    };

    /// The rates used when calibration cannot run to completion (watchdog
    /// deadline missed, calibration panicked) — the bottom rung of the
    /// profile's degradation ladder. Currently the same nominal mid-2020s
    /// x86 numbers as [`REFERENCE`](Self::REFERENCE), but a distinct
    /// constant: `REFERENCE` is frozen for test determinism while this
    /// one tracks "sane rates to plan with, blind"; they may diverge.
    /// Never persisted (see [`CalibrationResult::measured`]).
    pub const FALLBACK: MachineProfile = MachineProfile::REFERENCE;

    /// The blocked-dense rate at a given working-set size: piecewise
    /// log-linear interpolation through the calibrated tiers, clamped at
    /// both ends. Monotone whenever the tier rates are (calibration
    /// enforces that), so cost estimates stay monotone in problem size.
    pub fn dense_flop_ns(&self, working_set_bytes: f64) -> f64 {
        let t = &self.dense_tiers;
        if working_set_bytes <= t[0].bytes {
            return t[0].ns;
        }
        if working_set_bytes >= t[2].bytes {
            return t[2].ns;
        }
        let (lo, hi) = if working_set_bytes < t[1].bytes {
            (t[0], t[1])
        } else {
            (t[1], t[2])
        };
        let frac = (working_set_bytes.ln() - lo.bytes.ln()) / (hi.bytes.ln() - lo.bytes.ln());
        (lo.ns.ln() + frac * (hi.ns.ln() - lo.ns.ln())).exp()
    }

    /// Measures the rates with microbenchmarks of the real kernels.
    ///
    /// The dense rate is measured at the three [`TIER_SHAPES`] working
    /// sets; the larger two are time-budgeted
    /// ([`timing::measure_ns_budgeted`]) so first-use calibration stays
    /// bounded (~100 ms total) even on slow machines. The resident pool is
    /// warmed first so worker spawns are never measured, and the tier
    /// rates are forced non-decreasing (a larger working set can only
    /// measure *faster* through noise, never truly be faster), which keeps
    /// the interpolated rate — and with it every cost estimate — monotone
    /// in size.
    pub fn calibrate() -> MachineProfile {
        // `profile.calibrate` failpoint: a `sleep` kind simulates a
        // hostile machine (trips the watchdog), a `panic` kind a crashing
        // calibration — both recovered by `calibrate_watchdogged`.
        faults::maybe_panic("profile.calibrate");
        timing::warm_pool();

        // Dense tier curve: one blocked GEMM per tier (the profile's unit
        // is ns per fused op, not per flop).
        let mut dense_tiers = [DenseTier {
            bytes: 0.0,
            ns: 0.0,
        }; 3];
        for (tier, &(rows, k, cols)) in TIER_SHAPES.iter().enumerate() {
            let a = DenseMatrix::from_fn(rows, k, |i, j| ((i * k + j) % 31) as f64 * 0.07 - 1.0);
            let b = DenseMatrix::from_fn(k, cols, |i, j| ((i + j * k) % 29) as f64 * 0.05 - 0.7);
            let ops = rows * k * cols;
            let ns = if tier == 0 {
                timing::measure_ns_per_op(5, ops, || {
                    std::hint::black_box(a.matmul(&b));
                })
            } else {
                // ~60 ms budget per large tier, 4 reps when they fit.
                timing::measure_ns_per_op_budgeted(4, 6e7, ops, || {
                    std::hint::black_box(a.matmul(&b));
                })
            };
            dense_tiers[tier] = DenseTier {
                bytes: gemm_working_set_bytes(rows, k, cols),
                ns: ns.max(1e-3),
            };
        }
        // Monotone rates: cache effects only ever slow larger sets down.
        for i in 1..dense_tiers.len() {
            dense_tiers[i].ns = dense_tiers[i].ns.max(dense_tiers[i - 1].ns);
        }

        // Element-wise rate: scalar multiply over 65 536 elements (one
        // read + one write per element).
        let m = DenseMatrix::from_fn(256, 256, |i, j| ((i ^ j) % 17) as f64 * 0.11 - 0.9);
        let ew_ns = timing::measure_ns_per_op(5, 256 * 256, || {
            std::hint::black_box(m.scalar_mul(1.0001));
        });

        // Reduction rates, one per kernel class, over a table-shaped
        // (tall, tens-of-columns) matrix like the ones aggregations
        // actually reduce: independent-accumulator sums (row_sums),
        // min/max fold chains (row_min), and the serial whole-matrix sum.
        let tall = DenseMatrix::from_fn(2048, 32, |i, j| ((i * 5 + j) % 19) as f64 * 0.13 - 1.1);
        let red_ns = timing::measure_ns_per_op(5, 2048 * 32, || {
            std::hint::black_box(tall.row_sums());
        });
        let minmax_ns = timing::measure_ns_per_op(5, 2048 * 32, || {
            std::hint::black_box(tall.row_min());
        });
        let sum_ns = timing::measure_ns_per_op(5, 2048 * 32, || {
            std::hint::black_box(tall.sum());
        });

        // Sparse-product rate: a general (non-indicator) CSR SpMM with a
        // scattered 4-nnz/row pattern — the irregular inner loops of
        // SpMM/SpGEMM, as opposed to the pure row gather below.
        let trips: Vec<(usize, usize, f64)> = (0..2048)
            .flat_map(|i| (0..4).map(move |j| (i, (i * 13 + j * 131) % 512, 0.5 + j as f64)))
            .collect();
        let sp = CsrMatrix::from_triplets(2048, 512, &trips).expect("calibration CSR");
        let xs = DenseMatrix::from_fn(512, 8, |i, j| ((i + j * 5) % 11) as f64 * 0.3 - 1.4);
        let sparse_ns = timing::measure_ns_per_op(5, 2048 * 4 * 8, || {
            std::hint::black_box(sp.spmm_dense(&xs));
        });

        // Gather rates, two-point: one-hot indicator SpMM — 4096 logical
        // rows each gathering 8 (wide) or 1 (narrow) element(s) from a
        // 512-row base table. The narrow point isolates the per-row
        // latency (index lookup, loop overhead) that the wide point
        // amortizes: per-row time is `lat + m * g`, so two widths solve
        // for both.
        let assign: Vec<usize> = (0..4096).map(|i| (i * 7) % 512).collect();
        let k = CsrMatrix::indicator(&assign, 512);
        let x = DenseMatrix::from_fn(512, 8, |i, j| ((i * 3 + j) % 13) as f64 * 0.2 - 1.2);
        let row_w8 = timing::measure_ns_per_op(5, 4096, || {
            std::hint::black_box(k.spmm_dense(&x));
        });
        let x1 = DenseMatrix::from_fn(512, 1, |i, _| (i % 13) as f64 * 0.2 - 1.2);
        let row_w1 = timing::measure_ns_per_op(5, 4096, || {
            std::hint::black_box(k.spmm_dense(&x1));
        });
        let gather_ns = ((row_w8 - row_w1) / 7.0).max(1e-3);
        let gather_row_ns = (row_w1 - gather_ns).max(1e-3);

        // Column-gather rate: the same indicator pushed from the right
        // (`X K`, the RMM/DMM shape) — the dense-times-one-hot kernel
        // scatters across output columns, a different access pattern with
        // its own measured price.
        let xr = DenseMatrix::from_fn(8, 4096, |i, j| ((i + j * 3) % 13) as f64 * 0.2 - 1.2);
        let col_gather_ns = timing::measure_ns_per_op(5, 8 * 4096, || {
            std::hint::black_box(k.dense_spmm(&xr));
        });

        // Symmetric rank-k factor: the L2-tier crossprod against the
        // L2-tier GEMM rate measured above, normalized by the tiles the
        // triangular kernel actually computes at this output size (the
        // per-triangle-flop convention would fold the tile-granularity
        // waste into the factor and misprice other output sizes). The
        // strided-pack and mirror costs the estimator prices separately
        // (see `cost::sym_mm_ns`) are subtracted first so the factor
        // stays a pure flop-rate premium.
        let a64 = DenseMatrix::from_fn(64, 64, |i, j| ((i * 64 + j) % 23) as f64 * 0.09 - 1.0);
        let syrk_ops = (crate::cost::syrk_tile_fraction(64.0) * 64.0 * 64.0 * 64.0) as usize;
        let syrk_ns_raw = timing::measure_ns_per_op(5, syrk_ops, || {
            std::hint::black_box(a64.crossprod());
        });
        let syrk_side = (64.0 * 64.0 * (gather_ns - sum_ns).max(0.0)
            + 0.5 * 64.0 * 64.0 * (gather_ns + ew_ns))
            / syrk_ops as f64;
        let syrk_factor = ((syrk_ns_raw - syrk_side) / dense_tiers[0].ns).clamp(0.5, 4.0);

        // Per-part overhead: dispatch of a near-empty two-item section on
        // the pool, the same shape the per-part rewrite loops use.
        let ex = morpheus_runtime::Runtime::executor();
        let op_overhead_ns = timing::measure_ns(20, || {
            std::hint::black_box(ex.map(2, |i| i as f64));
        }) / 2.0;

        MachineProfile {
            dense_tiers,
            ew_ns: ew_ns.max(1e-3),
            red_ns: red_ns.max(1e-3),
            minmax_ns: minmax_ns.max(1e-3),
            sum_ns: sum_ns.max(1e-3),
            sparse_ns: sparse_ns.max(1e-3),
            gather_ns,
            gather_row_ns,
            col_gather_ns: col_gather_ns.max(1e-3),
            syrk_factor,
            op_overhead_ns: op_overhead_ns.max(1.0),
        }
    }

    /// Runs [`MachineProfile::calibrate`] under the watchdog deadline from
    /// [`CALIBRATION_TIMEOUT_ENV`]. Calibration runs on a named spare
    /// thread; if it misses the deadline **or dies**, the built-in
    /// [`MachineProfile::FALLBACK`] rates are substituted (counted in
    /// [`faults::stats`]) so a hostile machine can never block first use.
    /// A deadline of `0` disables the watchdog but still contains a
    /// calibration panic.
    pub fn calibrate_watchdogged() -> CalibrationResult {
        let timeout_ms = std::env::var(CALIBRATION_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(DEFAULT_CALIBRATION_TIMEOUT_MS);
        let fall_back = |why: &str| {
            faults::note(faults::Degradation::CalibrationTimeout);
            eprintln!("morpheus: calibration {why}; using built-in fallback rates (not persisted)");
            CalibrationResult {
                profile: MachineProfile::FALLBACK,
                measured: false,
            }
        };
        if timeout_ms == 0 {
            return match std::panic::catch_unwind(MachineProfile::calibrate) {
                Ok(profile) => CalibrationResult {
                    profile,
                    measured: true,
                },
                Err(_) => fall_back("panicked"),
            };
        }
        let (tx, rx) = std::sync::mpsc::channel();
        let spawned = std::thread::Builder::new()
            .name("morpheus-calibrate".into())
            .spawn(move || {
                // A calibration panic drops `tx`, surfacing below as a
                // disconnect rather than unwinding into the watchdog.
                let _ = tx.send(std::panic::catch_unwind(MachineProfile::calibrate));
            });
        if spawned.is_err() {
            // No thread to watchdog with: calibrate inline, contained.
            return match std::panic::catch_unwind(MachineProfile::calibrate) {
                Ok(profile) => CalibrationResult {
                    profile,
                    measured: true,
                },
                Err(_) => fall_back("panicked"),
            };
        }
        match rx.recv_timeout(std::time::Duration::from_millis(timeout_ms)) {
            Ok(Ok(profile)) => CalibrationResult {
                profile,
                measured: true,
            },
            Ok(Err(_)) => fall_back("panicked"),
            // Timeout: the calibration thread keeps running detached and
            // its eventual result is discarded — the process has already
            // committed to the fallback rates.
            Err(_) => fall_back(&format!("missed its {timeout_ms} ms deadline")),
        }
    }

    /// Writes `text` to `path` crash-safely: the bytes go to a temp file
    /// in the same directory (same filesystem, so the rename is atomic)
    /// and replace `path` only via `rename`. A crash or failure anywhere
    /// in the window leaves the previous profile intact — never a
    /// truncated or interleaved file.
    fn persist_atomically(path: &str, text: &str) -> std::io::Result<()> {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let tmp = format!("{path}.tmp.{}", std::process::id());
        std::fs::write(&tmp, text)?;
        // `profile.write` failpoint: error kinds simulate a failed write
        // (the temp file is cleaned up, the target untouched); a `panic`
        // kind crashes inside the window, which must also leave the
        // target intact — exactly what the rename ordering guarantees.
        if faults::fire("profile.write").is_some() {
            let _ = std::fs::remove_file(&tmp);
            return Err(std::io::Error::other("injected profile write failure"));
        }
        std::fs::rename(&tmp, path)
    }

    /// Load-else-produce-and-persist: the seam behind
    /// [`MachineProfile::global`] with the producer injected. Persistence
    /// is best-effort and atomic, skipped for unmeasured (fallback)
    /// rates, and a failure — including a panic inside the persistence
    /// window — is contained and counted, never raised: a read-only path
    /// must not break planning.
    fn load_else_produce(
        path: Option<&str>,
        produce: impl FnOnce() -> CalibrationResult,
    ) -> MachineProfile {
        if let Some(p) = path {
            if let Ok(text) = std::fs::read_to_string(p) {
                match MachineProfile::from_text(&text) {
                    Ok(profile) => return profile,
                    Err(e) => eprintln!("morpheus: recalibrating, profile at {p} unusable: {e}"),
                }
            }
        }
        let result = produce();
        if let (Some(p), true) = (path, result.measured) {
            let outcome = std::panic::catch_unwind(|| {
                MachineProfile::persist_atomically(p, &result.profile.to_text())
            });
            let failure: Option<String> = match outcome {
                Ok(Ok(())) => None,
                Ok(Err(e)) => Some(e.to_string()),
                Err(_) => Some("panic during persistence".into()),
            };
            if let Some(e) = failure {
                faults::note(faults::Degradation::ProfileWriteFailure);
                eprintln!("morpheus: could not persist profile to {p}: {e}");
            }
        }
        result.profile
    }

    /// Load-else-calibrate-and-persist, with the calibrator injected —
    /// the testable seam behind [`MachineProfile::global`]. When `path`
    /// names a readable file in the current format, its rates are
    /// returned and `calibrate` never runs; otherwise `calibrate` runs
    /// and its result is written to `path` (best-effort, atomically via
    /// a same-directory temp file and rename) when one is given.
    pub fn load_else_calibrate_with(
        path: Option<&str>,
        calibrate: impl FnOnce() -> MachineProfile,
    ) -> MachineProfile {
        Self::load_else_produce(path, || CalibrationResult {
            profile: calibrate(),
            measured: true,
        })
    }

    /// The process-wide profile: loaded from `MORPHEUS_PROFILE_PATH` when
    /// that file exists and is current, otherwise calibrated on first use
    /// under the [`CALIBRATION_TIMEOUT_ENV`] watchdog (and written back to
    /// the path when one is named and the rates were actually measured).
    /// Resolved once per process.
    pub fn global() -> &'static MachineProfile {
        static GLOBAL: OnceLock<MachineProfile> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let path = std::env::var(PROFILE_PATH_ENV).ok();
            MachineProfile::load_else_produce(
                path.as_deref(),
                MachineProfile::calibrate_watchdogged,
            )
        })
    }

    /// Renders the profile in the versioned `key = value` format
    /// [`from_text`] parses.
    ///
    /// [`from_text`]: MachineProfile::from_text
    pub fn to_text(&self) -> String {
        let t = &self.dense_tiers;
        format!(
            "# morpheus machine profile (ns per operation)\n\
             format_version = {PROFILE_FORMAT_VERSION}\n\
             dense_l2_bytes = {}\n\
             dense_l2_ns = {}\n\
             dense_l3_bytes = {}\n\
             dense_l3_ns = {}\n\
             dense_dram_bytes = {}\n\
             dense_dram_ns = {}\n\
             ew_ns = {}\n\
             red_ns = {}\n\
             minmax_ns = {}\n\
             sum_ns = {}\n\
             sparse_ns = {}\n\
             gather_ns = {}\n\
             gather_row_ns = {}\n\
             col_gather_ns = {}\n\
             syrk_factor = {}\n\
             op_overhead_ns = {}\n",
            t[0].bytes,
            t[0].ns,
            t[1].bytes,
            t[1].ns,
            t[2].bytes,
            t[2].ns,
            self.ew_ns,
            self.red_ns,
            self.minmax_ns,
            self.sum_ns,
            self.sparse_ns,
            self.gather_ns,
            self.gather_row_ns,
            self.col_gather_ns,
            self.syrk_factor,
            self.op_overhead_ns
        )
    }

    /// Parses a persisted profile: `key = value` lines, `#` comments,
    /// unknown keys ignored (forward compatibility within a version).
    /// `format_version` must be present and equal to
    /// [`PROFILE_FORMAT_VERSION`] — files from other versions are
    /// rejected, which [`global`](MachineProfile::global) treats as
    /// "recalibrate", never as a hard failure. All rates are required,
    /// positive, and the dense tier bytes strictly increasing.
    pub fn from_text(text: &str) -> CoreResult<MachineProfile> {
        const KEYS: [&str; 16] = [
            "dense_l2_bytes",
            "dense_l2_ns",
            "dense_l3_bytes",
            "dense_l3_ns",
            "dense_dram_bytes",
            "dense_dram_ns",
            "ew_ns",
            "red_ns",
            "minmax_ns",
            "sum_ns",
            "sparse_ns",
            "gather_ns",
            "gather_row_ns",
            "col_gather_ns",
            "syrk_factor",
            "op_overhead_ns",
        ];
        let mut version: Option<u32> = None;
        let mut rates = [None::<f64>; 16];
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(CoreError::Profile(format!("malformed line: {line:?}")));
            };
            let (key, value) = (key.trim(), value.trim());
            if key == "format_version" {
                version = Some(value.parse().map_err(|_| {
                    CoreError::Profile(format!("non-numeric format_version: {value:?}"))
                })?);
                continue;
            }
            if let Some(slot) = KEYS.iter().position(|&k| k == key) {
                let v: f64 = value.parse().map_err(|_| {
                    CoreError::Profile(format!("non-numeric value for {key}: {value:?}"))
                })?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(CoreError::Profile(format!(
                        "rate {key} must be positive and finite, got {v}"
                    )));
                }
                rates[slot] = Some(v);
            }
        }
        match version {
            None => {
                return Err(CoreError::Profile(
                    "no format_version (pre-v2 profile)".into(),
                ))
            }
            Some(v) if v != PROFILE_FORMAT_VERSION => {
                return Err(CoreError::Profile(format!(
                    "format_version {v} != supported {PROFILE_FORMAT_VERSION}"
                )))
            }
            Some(_) => {}
        }
        if rates.iter().any(Option::is_none) {
            let names: Vec<&str> = KEYS
                .iter()
                .zip(&rates)
                .filter(|(_, r)| r.is_none())
                .map(|(&k, _)| k)
                .collect();
            return Err(CoreError::Profile(format!(
                "missing rate(s): {}",
                names.join(", ")
            )));
        }
        let r = rates.map(|v| v.expect("checked above"));
        if !(r[0] < r[2] && r[2] < r[4]) {
            return Err(CoreError::Profile(format!(
                "dense tier bytes must be strictly increasing, got {} {} {}",
                r[0], r[2], r[4]
            )));
        }
        // The cost model's size-monotonicity rests on the tier rates
        // being non-decreasing; calibration enforces it, so a violating
        // file is hand-edited or stale — recalibrate rather than misprice.
        if !(r[1] <= r[3] && r[3] <= r[5]) {
            return Err(CoreError::Profile(format!(
                "dense tier rates must be non-decreasing, got {} {} {}",
                r[1], r[3], r[5]
            )));
        }
        Ok(MachineProfile {
            dense_tiers: [
                DenseTier {
                    bytes: r[0],
                    ns: r[1],
                },
                DenseTier {
                    bytes: r[2],
                    ns: r[3],
                },
                DenseTier {
                    bytes: r[4],
                    ns: r[5],
                },
            ],
            ew_ns: r[6],
            red_ns: r[7],
            minmax_ns: r[8],
            sum_ns: r[9],
            sparse_ns: r[10],
            gather_ns: r[11],
            gather_row_ns: r[12],
            col_gather_ns: r[13],
            syrk_factor: r[14],
            op_overhead_ns: r[15],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn fake_profile() -> MachineProfile {
        MachineProfile {
            dense_tiers: [
                DenseTier {
                    bytes: 1.0e5,
                    ns: 0.42,
                },
                DenseTier {
                    bytes: 1.5e6,
                    ns: 0.63,
                },
                DenseTier {
                    bytes: 1.7e7,
                    ns: 0.99,
                },
            ],
            ew_ns: 1.25,
            red_ns: 0.625,
            minmax_ns: 0.875,
            sum_ns: 1.375,
            sparse_ns: 2.125,
            gather_ns: 2.75,
            gather_row_ns: 1.75,
            col_gather_ns: 3.5,
            syrk_factor: 1.375,
            op_overhead_ns: 900.0,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "morpheus-profile-test-{name}-{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn text_round_trip() {
        let p = fake_profile();
        assert_eq!(MachineProfile::from_text(&p.to_text()).unwrap(), p);
        assert_eq!(
            MachineProfile::from_text(&MachineProfile::REFERENCE.to_text()).unwrap(),
            MachineProfile::REFERENCE
        );
    }

    #[test]
    fn parse_tolerates_comments_and_unknown_keys() {
        let mut text = MachineProfile::REFERENCE.to_text();
        text.push_str("# trailing comment\nfuture_rate_ns = 9\n");
        let p = MachineProfile::from_text(&text).unwrap();
        assert_eq!(p, MachineProfile::REFERENCE);
    }

    #[test]
    fn parse_rejects_bad_input() {
        // Garbage, non-numeric rates, negative rates.
        assert!(matches!(
            MachineProfile::from_text("what is this"),
            Err(CoreError::Profile(_))
        ));
        let bad_value = MachineProfile::REFERENCE
            .to_text()
            .replace("ew_ns = 1", "ew_ns = fast");
        assert!(matches!(
            MachineProfile::from_text(&bad_value),
            Err(CoreError::Profile(_))
        ));
        let negative = MachineProfile::REFERENCE
            .to_text()
            .replace("gather_ns = 3", "gather_ns = -3");
        assert!(matches!(
            MachineProfile::from_text(&negative),
            Err(CoreError::Profile(_))
        ));
    }

    #[test]
    fn parse_rejects_partial_key_sets_naming_the_missing_rates() {
        let partial = "format_version = 3\ndense_l2_bytes = 1e5\ndense_l2_ns = 0.5\n";
        match MachineProfile::from_text(partial) {
            Err(CoreError::Profile(msg)) => {
                assert!(msg.contains("ew_ns"), "should name missing keys: {msg}")
            }
            other => panic!("expected missing-rate error, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_old_version_and_missing_version() {
        // A v1-era file: four flat keys, no format_version.
        let v1 = "dense_flop_ns = 0.5\new_ns = 1\ngather_ns = 3\nop_overhead_ns = 1000\n";
        match MachineProfile::from_text(v1) {
            Err(CoreError::Profile(msg)) => assert!(msg.contains("format_version"), "{msg}"),
            other => panic!("expected version error, got {other:?}"),
        }
        let vfuture = MachineProfile::REFERENCE
            .to_text()
            .replace("format_version = 3", "format_version = 99");
        assert!(matches!(
            MachineProfile::from_text(&vfuture),
            Err(CoreError::Profile(msg)) if msg.contains("99")
        ));
    }

    #[test]
    fn parse_rejects_non_increasing_tier_bytes() {
        let text = fake_profile()
            .to_text()
            .replace("dense_l3_bytes = 1500000", "dense_l3_bytes = 50000");
        assert!(matches!(
            MachineProfile::from_text(&text),
            Err(CoreError::Profile(msg)) if msg.contains("increasing")
        ));
    }

    #[test]
    fn parse_rejects_decreasing_tier_rates() {
        // A hand-edited file with a faster L3 than L2 rate would make the
        // interpolated dense rate — and with it every cost estimate —
        // non-monotone in size; it must trigger recalibration instead.
        let text = fake_profile()
            .to_text()
            .replace("dense_l3_ns = 0.63", "dense_l3_ns = 0.1");
        assert!(matches!(
            MachineProfile::from_text(&text),
            Err(CoreError::Profile(msg)) if msg.contains("non-decreasing")
        ));
    }

    #[test]
    fn load_else_calibrate_round_trips_through_a_file() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap();
        // First use calibrates (injected) and writes.
        let written = MachineProfile::load_else_calibrate_with(Some(p), fake_profile);
        assert_eq!(written, fake_profile());
        // Second use loads; the injected calibrator must not run.
        let loaded = MachineProfile::load_else_calibrate_with(Some(p), || {
            panic!("a persisted profile must be loaded, not recalibrated")
        });
        assert_eq!(loaded, written);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_and_stale_files_fall_back_to_recalibration_and_are_rewritten() {
        for (name, contents) in [
            ("corrupt", "!!! not a profile !!!".to_string()),
            ("truncated", fake_profile().to_text()[..60].to_string()),
            (
                "v1",
                "dense_flop_ns = 0.5\new_ns = 1\ngather_ns = 3\nop_overhead_ns = 1000\n"
                    .to_string(),
            ),
        ] {
            let path = temp_path(name);
            std::fs::write(&path, contents).unwrap();
            let calibrations = AtomicUsize::new(0);
            let out =
                MachineProfile::load_else_calibrate_with(Some(path.to_str().unwrap()), || {
                    calibrations.fetch_add(1, Ordering::SeqCst);
                    fake_profile()
                });
            assert_eq!(out, fake_profile(), "case {name}");
            assert_eq!(calibrations.load(Ordering::SeqCst), 1, "case {name}");
            // The unusable file is replaced with the fresh rates.
            let rewritten = std::fs::read_to_string(&path).unwrap();
            assert_eq!(
                MachineProfile::from_text(&rewritten).unwrap(),
                fake_profile(),
                "case {name}"
            );
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn concurrent_first_use_calibrates_exactly_once() {
        // The same OnceLock shape `global()` uses, with a counting
        // calibrator: however many threads race the first use, exactly one
        // calibration runs and every thread sees the same rates.
        let cell: Arc<OnceLock<MachineProfile>> = Arc::new(OnceLock::new());
        let calibrations = Arc::new(AtomicUsize::new(0));
        let path = temp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let calibrations = Arc::clone(&calibrations);
                let p = path.to_str().unwrap().to_string();
                std::thread::spawn(move || {
                    *cell.get_or_init(|| {
                        MachineProfile::load_else_calibrate_with(Some(&p), || {
                            calibrations.fetch_add(1, Ordering::SeqCst);
                            fake_profile()
                        })
                    })
                })
            })
            .collect();
        let results: Vec<MachineProfile> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(calibrations.load(Ordering::SeqCst), 1);
        assert!(results.iter().all(|r| *r == fake_profile()));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tier_interpolation_clamps_and_is_monotone() {
        let p = MachineProfile::REFERENCE;
        let t = &p.dense_tiers;
        // Exact hits and clamps.
        assert_eq!(p.dense_flop_ns(0.0), t[0].ns);
        assert_eq!(p.dense_flop_ns(t[0].bytes), t[0].ns);
        assert!((p.dense_flop_ns(t[1].bytes) - t[1].ns).abs() < 1e-12);
        assert_eq!(p.dense_flop_ns(t[2].bytes), t[2].ns);
        assert_eq!(p.dense_flop_ns(1e12), t[2].ns);
        // Monotone across a log sweep.
        let mut prev = 0.0;
        for i in 0..200 {
            let ws = 1e3 * (1.1f64).powi(i);
            let ns = p.dense_flop_ns(ws);
            assert!(ns >= prev, "rate decreased at ws {ws}: {ns} < {prev}");
            assert!(ns >= t[0].ns && ns <= t[2].ns);
            prev = ns;
        }
        // Interior points sit strictly between their bracketing tiers.
        let mid = (t[0].bytes * t[1].bytes).sqrt();
        let ns = p.dense_flop_ns(mid);
        assert!(ns > t[0].ns && ns < t[1].ns);
    }

    #[test]
    fn calibration_produces_positive_monotone_rates() {
        let p = MachineProfile::calibrate();
        for rate in [
            p.ew_ns,
            p.red_ns,
            p.minmax_ns,
            p.sum_ns,
            p.sparse_ns,
            p.gather_ns,
            p.gather_row_ns,
            p.col_gather_ns,
            p.syrk_factor,
            p.op_overhead_ns,
        ] {
            assert!(rate.is_finite() && rate > 0.0, "bad calibrated rate {rate}");
        }
        for w in p.dense_tiers.windows(2) {
            assert!(w[0].bytes < w[1].bytes);
            assert!(w[0].ns <= w[1].ns, "tier rates must be non-decreasing");
        }
        // Sanity: a fused GEMM op cannot beat 0.01 ns (no machine this
        // code runs on does 100 flops/ns scalar) nor take longer than a
        // millisecond.
        let l2 = p.dense_tiers[0].ns;
        assert!(l2 > 0.01 && l2 < 1e6);
    }
}
