//! [`LinearOperand`] — the closure property as a Rust trait.
//!
//! The paper's Morpheus overloads R's LA operators on the normalized-matrix
//! class so existing ML scripts factorize automatically. The Rust analog is
//! a trait over the Table-1 operator set: ML algorithms in `morpheus-ml`
//! are generic over `LinearOperand`, so one implementation of, say,
//! logistic regression runs
//!
//! * materialized on a [`Matrix`],
//! * factorized on a [`crate::NormalizedMatrix`],
//! * per-operator planned on a [`crate::PlannedMatrix`], or
//! * out-of-core on `morpheus_chunked::ChunkedMatrix`
//!
//! without a line changing — the paper's generality and closure desiderata.

use crate::Matrix;
use morpheus_dense::DenseMatrix;
use morpheus_linalg::ginv_sym_psd;

/// The operator set of Table 1, as consumed by LA-written ML algorithms.
///
/// Parameter matrices (`X`, weight vectors, centroid matrices, …) are always
/// small and dense; the data matrix implementing this trait may be anything.
pub trait LinearOperand {
    /// Number of data rows (examples).
    fn nrows(&self) -> usize;

    /// Number of data columns (features).
    fn ncols(&self) -> usize;

    /// Left matrix multiplication `T X`.
    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix;

    /// Left matrix multiplication `T X` written into a caller-provided
    /// row-major buffer of `nrows() * x.cols()` slots, so a scoring hot
    /// path can reuse one allocation across calls. Every implementation
    /// is bit-identical to its [`LinearOperand::lmm`]: the default
    /// delegates to `lmm` and copies; representations with a native
    /// into-kernel (the normalized rewrite's accumulator) override it to
    /// skip the output allocation.
    ///
    /// # Panics
    /// Panics if `out.len() != self.nrows() * x.cols()`.
    fn lmm_into(&self, x: &DenseMatrix, out: &mut [f64]) {
        let r = self.lmm(x);
        out.copy_from_slice(r.as_slice());
    }

    /// Transposed left multiplication `Tᵀ X` (no transpose materialized).
    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix;

    /// Right matrix multiplication `X T`.
    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix;

    /// `crossprod(T) = Tᵀ T`.
    fn crossprod(&self) -> DenseMatrix;

    /// `rowSums(T)` as an `n x 1` vector.
    fn row_sums(&self) -> DenseMatrix;

    /// `colSums(T)` as a `1 x d` vector.
    fn col_sums(&self) -> DenseMatrix;

    /// `sum(T)`.
    fn sum(&self) -> f64;

    /// `T * x` element-wise by a scalar, staying in the same representation
    /// (closure: scalar ops on normalized data return normalized data).
    fn scale(&self, x: f64) -> Self
    where
        Self: Sized;

    /// `T ^ 2` element-wise, staying in the same representation.
    fn squared(&self) -> Self
    where
        Self: Sized;

    /// Moore–Penrose pseudo-inverse `ginv(T)` (§3.3.6 rewrite for
    /// normalized implementations).
    fn ginv(&self) -> DenseMatrix;

    /// Escape hatch for non-factorizable operators: the regular matrix `T`.
    fn materialize(&self) -> Matrix;
}

impl LinearOperand for Matrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.matmul_dense(x)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.t_matmul_dense(x)
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.dense_matmul(x)
    }

    fn crossprod(&self) -> DenseMatrix {
        Matrix::crossprod(self)
    }

    fn row_sums(&self) -> DenseMatrix {
        Matrix::row_sums(self)
    }

    fn col_sums(&self) -> DenseMatrix {
        Matrix::col_sums(self)
    }

    fn sum(&self) -> f64 {
        Matrix::sum(self)
    }

    fn scale(&self, x: f64) -> Self {
        self.scalar_mul(x)
    }

    fn squared(&self) -> Self {
        self.scalar_pow(2.0)
    }

    fn ginv(&self) -> DenseMatrix {
        let (n, d) = self.shape();
        if d < n {
            let g = ginv_sym_psd(&Matrix::crossprod(self));
            self.matmul_dense(&g).transpose()
        } else {
            let g = ginv_sym_psd(&self.tcrossprod());
            self.t_matmul_dense(&g)
        }
    }

    fn materialize(&self) -> Matrix {
        self.clone()
    }
}

impl LinearOperand for crate::NormalizedMatrix {
    fn nrows(&self) -> usize {
        self.rows()
    }

    fn ncols(&self) -> usize {
        self.cols()
    }

    fn lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        crate::NormalizedMatrix::lmm(self, x)
    }

    fn lmm_into(&self, x: &DenseMatrix, out: &mut [f64]) {
        crate::NormalizedMatrix::lmm_into(self, x, out)
    }

    fn t_lmm(&self, x: &DenseMatrix) -> DenseMatrix {
        crate::NormalizedMatrix::t_lmm(self, x)
    }

    fn rmm(&self, x: &DenseMatrix) -> DenseMatrix {
        crate::NormalizedMatrix::rmm(self, x)
    }

    fn crossprod(&self) -> DenseMatrix {
        crate::NormalizedMatrix::crossprod(self)
    }

    fn row_sums(&self) -> DenseMatrix {
        crate::NormalizedMatrix::row_sums(self)
    }

    fn col_sums(&self) -> DenseMatrix {
        crate::NormalizedMatrix::col_sums(self)
    }

    fn sum(&self) -> f64 {
        crate::NormalizedMatrix::sum(self)
    }

    fn scale(&self, x: f64) -> Self {
        self.scalar_mul(x)
    }

    fn squared(&self) -> Self {
        self.scalar_pow(2.0)
    }

    fn ginv(&self) -> DenseMatrix {
        crate::NormalizedMatrix::ginv(self)
    }

    fn materialize(&self) -> Matrix {
        crate::NormalizedMatrix::materialize(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NormalizedMatrix;

    fn fixture() -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(6, 2, |i, j| ((i * 2 + j) % 5) as f64 + 0.5);
        let r = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 - 2.0);
        NormalizedMatrix::pk_fk(s.into(), &[0, 1, 1, 0, 1, 0], r.into())
    }

    /// A generic "algorithm" written once against the trait.
    fn weighted_signature<M: LinearOperand>(data: &M) -> f64 {
        let w = DenseMatrix::from_fn(data.ncols(), 1, |i, _| (i + 1) as f64 * 0.1);
        let tw = data.lmm(&w);
        let grad = data.t_lmm(&tw);
        grad.sum() + data.scale(2.0).sum() + data.squared().sum() + data.crossprod().sum()
    }

    #[test]
    fn trait_unifies_materialized_and_factorized() {
        let tn = fixture();
        let t = tn.materialize();
        let f = weighted_signature(&tn);
        let m = weighted_signature(&t);
        assert!(
            (f - m).abs() <= 1e-9 * m.abs().max(1.0),
            "trait-generic result differs: {f} vs {m}"
        );
    }

    #[test]
    fn trait_shapes_agree() {
        let tn = fixture();
        let t = LinearOperand::materialize(&tn);
        assert_eq!(tn.nrows(), t.nrows());
        assert_eq!(tn.ncols(), t.ncols());
        assert_eq!(tn.row_sums(), LinearOperand::row_sums(&t));
        assert_eq!(tn.col_sums(), LinearOperand::col_sums(&t));
    }

    #[test]
    fn matrix_ginv_both_branches() {
        // tall
        let tall = Matrix::Dense(DenseMatrix::from_fn(5, 2, |i, j| (i * 2 + j) as f64 + 1.0));
        let p = LinearOperand::ginv(&tall);
        let t = tall.to_dense();
        assert!(t.matmul(&p).matmul(&t).approx_eq(&t, 1e-7));
        // wide
        let wide = Matrix::Dense(DenseMatrix::from_fn(2, 5, |i, j| (i + j * 2) as f64 + 0.5));
        let pw = LinearOperand::ginv(&wide);
        let w = wide.to_dense();
        assert!(w.matmul(&pw).matmul(&w).approx_eq(&w, 1e-7));
    }
}
