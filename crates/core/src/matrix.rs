//! [`Matrix`] — a regular matrix that is either dense or sparse.
//!
//! The paper's setting allows any of `S`, `R`, and `T` to be dense or sparse
//! (real normalized datasets use sparse one-hot feature matrices). `Matrix`
//! dispatches every operator to the right kernel and picks the natural
//! output representation: products involving a dense operand are dense,
//! sparse×sparse stays sparse, and zero-breaking scalar maps densify.

use morpheus_dense::DenseMatrix;
use morpheus_sparse::CsrMatrix;

/// A regular (single-table) matrix: dense or CSR sparse.
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    /// Dense row-major storage.
    Dense(DenseMatrix),
    /// Compressed sparse row storage.
    Sparse(CsrMatrix),
}

impl From<DenseMatrix> for Matrix {
    fn from(m: DenseMatrix) -> Self {
        Matrix::Dense(m)
    }
}

impl From<CsrMatrix> for Matrix {
    fn from(m: CsrMatrix) -> Self {
        Matrix::Sparse(m)
    }
}

impl Matrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.rows(),
            Matrix::Sparse(m) => m.rows(),
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.cols(),
            Matrix::Sparse(m) => m.cols(),
        }
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// `true` for the sparse representation.
    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }

    /// Number of stored non-zeros (dense matrices count exact non-zeros).
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(m) => m.nnz(),
            Matrix::Sparse(m) => m.nnz(),
        }
    }

    /// Converts to (a copy of) the dense representation.
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.clone(),
            Matrix::Sparse(m) => m.to_dense(),
        }
    }

    /// Converts to (a copy of) the sparse representation.
    pub fn to_csr(&self) -> CsrMatrix {
        match self {
            Matrix::Dense(m) => CsrMatrix::from_dense(m),
            Matrix::Sparse(m) => m.clone(),
        }
    }

    /// Borrows the dense payload, if dense.
    pub fn as_dense(&self) -> Option<&DenseMatrix> {
        match self {
            Matrix::Dense(m) => Some(m),
            Matrix::Sparse(_) => None,
        }
    }

    /// Borrows the sparse payload, if sparse.
    pub fn as_sparse(&self) -> Option<&CsrMatrix> {
        match self {
            Matrix::Dense(_) => None,
            Matrix::Sparse(m) => Some(m),
        }
    }

    /// Approximate equality across representations.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.to_dense().approx_eq(&other.to_dense(), tol)
    }

    // ---------------------------------------------------------------
    // Element-wise scalar operators (Table 1, first group)
    // ---------------------------------------------------------------

    /// `T + x`. Densifies sparse input (adding to zeros breaks sparsity).
    pub fn scalar_add(&self, x: f64) -> Matrix {
        Matrix::Dense(self.to_dense().scalar_add(x))
    }

    /// `T - x`. Densifies sparse input.
    pub fn scalar_sub(&self, x: f64) -> Matrix {
        Matrix::Dense(self.to_dense().scalar_sub(x))
    }

    /// `x - T`. Densifies sparse input.
    pub fn scalar_rsub(&self, x: f64) -> Matrix {
        Matrix::Dense(self.to_dense().scalar_rsub(x))
    }

    /// `T * x`, sparsity-preserving.
    pub fn scalar_mul(&self, x: f64) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.scalar_mul(x)),
            Matrix::Sparse(m) => Matrix::Sparse(m.scalar_mul(x)),
        }
    }

    /// `T / x`, sparsity-preserving.
    pub fn scalar_div(&self, x: f64) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.scalar_div(x)),
            Matrix::Sparse(m) => Matrix::Sparse(m.scalar_div(x)),
        }
    }

    /// `x / T` element-wise. Densifies (division turns zeros into ±inf,
    /// matching R's semantics).
    pub fn scalar_rdiv(&self, x: f64) -> Matrix {
        Matrix::Dense(self.to_dense().scalar_rdiv(x))
    }

    /// `T ^ x` element-wise; sparsity-preserving for `x > 0`.
    pub fn scalar_pow(&self, x: f64) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.scalar_pow(x)),
            Matrix::Sparse(m) if x > 0.0 => Matrix::Sparse(m.scalar_pow(x)),
            Matrix::Sparse(_) => Matrix::Dense(self.to_dense().scalar_pow(x)),
        }
    }

    /// Applies a scalar function `f` to every entry (`f(T)`).
    ///
    /// If `f(0) == 0` the sparse structure is preserved; otherwise the
    /// result is densified so the map is applied to the implicit zeros too.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.map(f)),
            Matrix::Sparse(m) => {
                if f(0.0) == 0.0 {
                    Matrix::Sparse(m.map_nnz(f))
                } else {
                    Matrix::Dense(m.to_dense().map(f))
                }
            }
        }
    }

    /// Element-wise exponential (`exp(T)`); densifies sparse input.
    pub fn exp(&self) -> Matrix {
        self.map(f64::exp)
    }

    /// Element-wise natural log; densifies sparse input (log 0 = −inf).
    pub fn ln(&self) -> Matrix {
        self.map(f64::ln)
    }

    // ---------------------------------------------------------------
    // Element-wise matrix operators (non-factorizable group)
    // ---------------------------------------------------------------

    /// Element-wise sum `T + X`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), Matrix::Sparse(b)) => Matrix::Sparse(a.add(b)),
            _ => Matrix::Dense(self.to_dense().add(&other.to_dense())),
        }
    }

    /// Element-wise difference `T - X`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Sparse(a), Matrix::Sparse(b)) => Matrix::Sparse(a.sub(b)),
            _ => Matrix::Dense(self.to_dense().sub(&other.to_dense())),
        }
    }

    /// Element-wise (Hadamard) product `T * X`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn mul_elem(&self, other: &Matrix) -> Matrix {
        Matrix::Dense(self.to_dense().mul_elem(&other.to_dense()))
    }

    /// Element-wise quotient `T / X`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn div_elem(&self, other: &Matrix) -> Matrix {
        Matrix::Dense(self.to_dense().div_elem(&other.to_dense()))
    }

    // ---------------------------------------------------------------
    // Aggregations
    // ---------------------------------------------------------------

    /// `rowSums(T)` as an `n x 1` dense column vector.
    pub fn row_sums(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.row_sums(),
            Matrix::Sparse(m) => m.row_sums(),
        }
    }

    /// `colSums(T)` as a `1 x d` dense row vector.
    pub fn col_sums(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.col_sums(),
            Matrix::Sparse(m) => m.col_sums(),
        }
    }

    /// `sum(T)`.
    pub fn sum(&self) -> f64 {
        match self {
            Matrix::Dense(m) => m.sum(),
            Matrix::Sparse(m) => m.sum(),
        }
    }

    /// `rowMin(T)` as an `n x 1` dense column vector. For sparse rows the
    /// implicit zeros participate: a row with fewer stored entries than
    /// columns has minimum `min(0, min(values))`.
    pub fn row_min(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.row_min(),
            Matrix::Sparse(m) => {
                let cols = m.cols();
                let mins: Vec<f64> = (0..m.rows())
                    .map(|i| {
                        let (idx, vals) = m.row(i);
                        let stored = vals.iter().copied().fold(f64::INFINITY, f64::min);
                        if idx.len() < cols {
                            stored.min(0.0)
                        } else {
                            stored
                        }
                    })
                    .collect();
                DenseMatrix::col_vector(&mins)
            }
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        match self {
            Matrix::Dense(m) => m.frobenius_norm(),
            Matrix::Sparse(m) => m.frobenius_norm(),
        }
    }

    // ---------------------------------------------------------------
    // Multiplication
    // ---------------------------------------------------------------

    /// Matrix product `self * other` with representation-aware dispatch.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Dense(a), Matrix::Dense(b)) => Matrix::Dense(a.matmul(b)),
            (Matrix::Sparse(a), Matrix::Dense(b)) => Matrix::Dense(a.spmm_dense(b)),
            (Matrix::Dense(a), Matrix::Sparse(b)) => Matrix::Dense(b.dense_spmm(a)),
            (Matrix::Sparse(a), Matrix::Sparse(b)) => Matrix::Sparse(a.spgemm(b)),
        }
    }

    /// `self * x` with a dense right operand, returning dense. This is the
    /// kernel behind the LMM rewrites.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        match self {
            Matrix::Dense(a) => a.matmul(x),
            Matrix::Sparse(a) => a.spmm_dense(x),
        }
    }

    /// `selfᵀ * x` with a dense operand, returning dense (no transpose is
    /// materialized). This is the kernel behind the transposed-LMM rewrites.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn t_matmul_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        match self {
            Matrix::Dense(a) => a.t_matmul(x),
            Matrix::Sparse(a) => a.t_spmm_dense(x),
        }
    }

    /// `x * self` with a dense left operand, returning dense. This is the
    /// kernel behind the RMM rewrites.
    ///
    /// # Panics
    /// Panics if the inner dimensions differ.
    pub fn dense_matmul(&self, x: &DenseMatrix) -> DenseMatrix {
        match self {
            Matrix::Dense(a) => x.matmul(a),
            Matrix::Sparse(a) => a.dense_spmm(x),
        }
    }

    /// Transpose, preserving the representation.
    pub fn transpose(&self) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.transpose()),
            Matrix::Sparse(m) => Matrix::Sparse(m.transpose()),
        }
    }

    /// `crossprod(T) = Tᵀ T`, always dense (`d x d` with modest `d`).
    pub fn crossprod(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.crossprod(),
            Matrix::Sparse(m) => m.crossprod_dense(),
        }
    }

    /// `tcrossprod(T) = T Tᵀ`, always dense.
    pub fn tcrossprod(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(m) => m.tcrossprod(),
            Matrix::Sparse(m) => {
                let t = m.transpose();
                t.t_spgemm_dense(&t)
            }
        }
    }

    // ---------------------------------------------------------------
    // Structure
    // ---------------------------------------------------------------

    /// Scales row `i` by `weights[i]` (`diag(w) * T`).
    ///
    /// # Panics
    /// Panics if `weights.len() != rows`.
    pub fn scale_rows(&self, weights: &[f64]) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.scale_rows(weights)),
            Matrix::Sparse(m) => Matrix::Sparse(m.scale_rows(weights)),
        }
    }

    /// Copies the rows at the given indices (gather), allowing repeats.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.gather_rows(indices)),
            Matrix::Sparse(m) => Matrix::Sparse(m.gather_rows(indices)),
        }
    }

    /// Copies the row range into a new matrix, preserving representation.
    ///
    /// # Panics
    /// Panics if `range.end > rows`.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.slice_rows(range)),
            Matrix::Sparse(m) => Matrix::Sparse(m.slice_rows(range)),
        }
    }

    /// Copies the column range into a new matrix, preserving representation.
    ///
    /// # Panics
    /// Panics if `range.end > cols`.
    pub fn slice_cols(&self, range: std::ops::Range<usize>) -> Matrix {
        match self {
            Matrix::Dense(m) => Matrix::Dense(m.slice_cols(range)),
            Matrix::Sparse(m) => {
                // CSR has no cheap column slice; go through the transpose.
                Matrix::Sparse(m.transpose().slice_rows(range).transpose())
            }
        }
    }

    /// Vertical concatenation of `self` on top of `other`, preserving
    /// representation when both sides agree.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        match (self, other) {
            (Matrix::Dense(a), Matrix::Dense(b)) => Matrix::Dense(a.vstack(b)),
            (Matrix::Sparse(a), Matrix::Sparse(b)) => Matrix::Sparse(a.vstack(b)),
            (a, b) => Matrix::Dense(a.to_dense().vstack(&b.to_dense())),
        }
    }

    /// Horizontal concatenation of blocks; sparse iff *all* blocks are
    /// sparse.
    ///
    /// # Panics
    /// Panics if the blocks disagree on row count or the list is empty.
    pub fn hstack_all(blocks: &[&Matrix]) -> Matrix {
        assert!(!blocks.is_empty(), "Matrix::hstack_all: no blocks");
        if blocks.iter().all(|b| b.is_sparse()) {
            let csrs: Vec<&CsrMatrix> = blocks
                .iter()
                .map(|b| b.as_sparse().expect("checked sparse"))
                .collect();
            Matrix::Sparse(CsrMatrix::hstack_all(&csrs))
        } else {
            let denses: Vec<DenseMatrix> = blocks.iter().map(|b| b.to_dense()).collect();
            let refs: Vec<&DenseMatrix> = denses.iter().collect();
            Matrix::Dense(DenseMatrix::hstack_all(&refs))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense() -> Matrix {
        Matrix::Dense(DenseMatrix::from_rows(&[
            &[1.0, 0.0, 2.0],
            &[0.0, 3.0, 0.0],
        ]))
    }

    fn sparse() -> Matrix {
        Matrix::Sparse(
            CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap(),
        )
    }

    #[test]
    fn representations_agree() {
        assert!(dense().approx_eq(&sparse(), 1e-15));
        assert_eq!(dense().nnz(), sparse().nnz());
        assert_eq!(sparse().to_csr().nnz(), 3);
        assert_eq!(dense().to_csr().to_dense(), dense().to_dense());
    }

    #[test]
    fn scalar_ops_match_across_representations() {
        let d = dense();
        let s = sparse();
        assert!(d.scalar_add(1.0).approx_eq(&s.scalar_add(1.0), 1e-15));
        assert!(d.scalar_mul(2.0).approx_eq(&s.scalar_mul(2.0), 1e-15));
        assert!(d.scalar_pow(2.0).approx_eq(&s.scalar_pow(2.0), 1e-15));
        // Sparsity preserved only when safe.
        assert!(s.scalar_mul(2.0).is_sparse());
        assert!(s.scalar_pow(2.0).is_sparse());
        assert!(!s.scalar_add(1.0).is_sparse());
        assert!(!s.scalar_pow(-1.0).is_sparse());
    }

    #[test]
    fn map_densifies_only_when_needed() {
        let s = sparse();
        assert!(s.map(|v| v * 3.0).is_sparse());
        let e = s.exp();
        assert!(!e.is_sparse());
        assert!((e.to_dense().get(1, 0) - 1.0).abs() < 1e-15); // exp(0) = 1
    }

    #[test]
    fn elementwise_binary_ops() {
        let d = dense();
        let s = sparse();
        assert!(d.add(&s).approx_eq(&d.scalar_mul(2.0), 1e-15));
        assert!(s.add(&s).is_sparse());
        assert!(s.sub(&s).nnz() == 0);
        assert!(d.mul_elem(&s).approx_eq(&d.scalar_pow(2.0), 1e-15));
    }

    #[test]
    fn aggregations_match() {
        let d = dense();
        let s = sparse();
        assert_eq!(d.row_sums(), s.row_sums());
        assert_eq!(d.col_sums(), s.col_sums());
        assert_eq!(d.sum(), s.sum());
        assert!((d.frobenius_norm() - s.frobenius_norm()).abs() < 1e-15);
    }

    #[test]
    fn matmul_dispatch_all_four_cases() {
        let d = dense();
        let s = sparse();
        let dt = d.transpose();
        let st = s.transpose();
        let dd = d.matmul(&dt);
        let ds = d.matmul(&st);
        let sd = s.matmul(&dt);
        let ss = s.matmul(&st);
        assert!(ss.is_sparse());
        assert!(!ds.is_sparse());
        for other in [&ds, &sd, &ss] {
            assert!(dd.approx_eq(other, 1e-12));
        }
    }

    #[test]
    fn fused_kernels_match_naive() {
        let d = dense();
        let s = sparse();
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        assert!(d.matmul_dense(&x).approx_eq(&s.matmul_dense(&x), 1e-13));
        let y = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        assert!(d.t_matmul_dense(&y).approx_eq(&s.t_matmul_dense(&y), 1e-13));
        let z = DenseMatrix::from_rows(&[&[1.0, 2.0]]);
        assert!(d.dense_matmul(&z).approx_eq(&s.dense_matmul(&z), 1e-13));
    }

    #[test]
    fn crossprods_match() {
        let d = dense();
        let s = sparse();
        assert!(d.crossprod().approx_eq(&s.crossprod(), 1e-13));
        assert!(d.tcrossprod().approx_eq(&s.tcrossprod(), 1e-13));
        let explicit = d.to_dense().transpose().matmul(&d.to_dense());
        assert!(d.crossprod().approx_eq(&explicit, 1e-13));
    }

    #[test]
    fn slicing_preserves_representation_and_values() {
        let d = dense();
        let s = sparse();
        assert!(d.slice_rows(1..2).approx_eq(&s.slice_rows(1..2), 1e-15));
        assert!(s.slice_rows(0..1).is_sparse());
        assert!(d.slice_cols(1..3).approx_eq(&s.slice_cols(1..3), 1e-15));
        assert!(s.slice_cols(0..2).is_sparse());
        assert_eq!(s.slice_cols(0..2).to_dense().get(0, 0), 1.0);
    }

    #[test]
    fn structural_ops() {
        let s = sparse();
        let g = s.gather_rows(&[1, 1, 0]);
        assert!(g.is_sparse());
        assert_eq!(g.to_dense().row(0), &[0.0, 3.0, 0.0]);
        let w = s.scale_rows(&[2.0, 0.5]);
        assert_eq!(w.to_dense().get(0, 2), 4.0);
        let h = Matrix::hstack_all(&[&s, &s]);
        assert!(h.is_sparse());
        assert_eq!(h.cols(), 6);
        let hd = Matrix::hstack_all(&[&s, &dense()]);
        assert!(!hd.is_sparse());
        assert_eq!(hd.cols(), 6);
    }
}
