//! Arithmetic-computation cost model (§3.4, Table 3; appendix F, Table 11).
//!
//! The paper characterizes each rewrite by the number of arithmetic
//! computations (multiplications + additions) of the standard (materialized)
//! and factorized versions, ignoring lower-order terms. This module encodes
//! those closed forms, the derived speedups, and their asymptotic limits:
//! for most operators the speedup converges to `1 + FR` as `TR → ∞` and to
//! `TR` as `FR → ∞`; for the cross-product it converges to `(1 + FR)²`
//! because its cost is quadratic in `d`.
//!
//! The cost model is used by tests (validating the rewrites' complexity
//! claims) and by the `table3` reproduction target.
//!
//! On top of the closed forms, [`estimate_op`] converts per-operator
//! arithmetic counts into *time* estimates using a calibrated
//! [`MachineProfile`]: each operator's work is decomposed into the kernel
//! classes it actually executes (blocked dense flops, streaming
//! element-wise passes, indicator gathers, per-part dispatch), and each
//! class is priced at its measured rate. This is what the per-operator
//! planner ([`crate::PlannedMatrix`]) compares — raw flop equality is a
//! poor crossover predictor precisely because the factorized path leans on
//! the slower irregular-access kernels, the effect behind the paper's
//! L-shaped slow-down region (Figure 3) and its conservative τ/ρ rule.

use crate::{MachineProfile, NormalizedMatrix};

/// Dimensions of a two-table PK-FK join, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dims {
    /// Rows of the entity table S (= rows of T).
    pub n_s: f64,
    /// Features of S.
    pub d_s: f64,
    /// Rows of the attribute table R.
    pub n_r: f64,
    /// Features of R.
    pub d_r: f64,
}

impl Dims {
    /// Creates dimensions from integer sizes.
    pub fn new(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> Self {
        Self {
            n_s: n_s as f64,
            d_s: d_s as f64,
            n_r: n_r as f64,
            d_r: d_r as f64,
        }
    }

    /// Tuple ratio `TR = n_S / n_R`.
    pub fn tuple_ratio(&self) -> f64 {
        self.n_s / self.n_r
    }

    /// Feature ratio `FR = d_R / d_S`.
    pub fn feature_ratio(&self) -> f64 {
        self.d_r / self.d_s
    }

    /// Total feature count `d = d_S + d_R`.
    pub fn d(&self) -> f64 {
        self.d_s + self.d_r
    }
}

/// Arithmetic computation counts for one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Count for the standard (materialized) version.
    pub standard: f64,
    /// Count for the factorized version.
    pub factorized: f64,
}

impl OpCost {
    /// Predicted speedup `standard / factorized`.
    pub fn speedup(&self) -> f64 {
        self.standard / self.factorized
    }
}

/// Element-wise scalar operators: `n_S d` vs `n_S d_S + n_R d_R` (Table 3).
pub fn scalar_op(dm: &Dims) -> OpCost {
    OpCost {
        standard: dm.n_s * dm.d(),
        factorized: dm.n_s * dm.d_s + dm.n_r * dm.d_r,
    }
}

/// Aggregation operators share the scalar-op counts (Table 3).
pub fn aggregation(dm: &Dims) -> OpCost {
    scalar_op(dm)
}

/// LMM with a `d x d_X` parameter: `d_X n_S d` vs `d_X (n_S d_S + n_R d_R)`.
pub fn lmm(dm: &Dims, d_x: f64) -> OpCost {
    OpCost {
        standard: d_x * dm.n_s * dm.d(),
        factorized: d_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// RMM with an `n_X x n_S` parameter: `n_X n_S d` vs
/// `n_X (n_S d_S + n_R d_R)`.
pub fn rmm(dm: &Dims, n_x: f64) -> OpCost {
    OpCost {
        standard: n_x * dm.n_s * dm.d(),
        factorized: n_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// Cross-product: `½ d² n_S` vs `½ d_S² n_S + ½ d_R² n_R + d_S d_R n_R`.
pub fn crossprod(dm: &Dims) -> OpCost {
    OpCost {
        standard: 0.5 * dm.d() * dm.d() * dm.n_s,
        factorized: 0.5 * dm.d_s * dm.d_s * dm.n_s
            + 0.5 * dm.d_r * dm.d_r * dm.n_r
            + dm.d_s * dm.d_r * dm.n_r,
    }
}

/// Pseudo-inverse (Table 11), branching on `n_S > d` vs `n_S ≤ d`. The
/// constants reflect R's economy-SVD (`7 n d² + 20 d³` for the standard
/// route, a `27 d³` Jacobi-style inner inversion for the factorized route).
pub fn pseudo_inverse(dm: &Dims) -> OpCost {
    let d = dm.d();
    if dm.n_s > d {
        OpCost {
            standard: 7.0 * dm.n_s * d * d + 20.0 * d * d * d,
            factorized: 27.0 * d * d * d
                + 0.5 * dm.d_s * dm.d_s * dm.n_s
                + 0.5 * dm.d_r * dm.d_r * dm.n_r
                + dm.d_s * dm.d_r * dm.n_r
                + d * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    } else {
        OpCost {
            standard: 7.0 * dm.n_s * dm.n_s * d + 20.0 * dm.n_s * dm.n_s * dm.n_s,
            factorized: 27.0 * dm.n_s * dm.n_s * dm.n_s
                + 0.5 * dm.n_s * dm.n_s * dm.d_s
                + 0.5 * dm.n_r * dm.n_r * dm.d_r
                + dm.n_s * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    }
}

/// Asymptotic speedup of the linear-cost operators (scalar, aggregation,
/// LMM, RMM) as `TR → ∞`: `1 + FR`.
pub fn linear_limit_tr(fr: f64) -> f64 {
    1.0 + fr
}

/// Asymptotic speedup of the linear-cost operators as `FR → ∞`: `TR`.
pub fn linear_limit_fr(tr: f64) -> f64 {
    tr
}

/// Asymptotic cross-product speedup as `TR → ∞`: `(1 + FR)²`.
pub fn crossprod_limit_tr(fr: f64) -> f64 {
    (1.0 + fr) * (1.0 + fr)
}

/// Asymptotic pseudo-inverse (`n > d`) speedup as `TR → ∞`:
/// `14 (1 + FR)² / (2 FR + 3)` (Table 11).
pub fn ginv_limit_tr(fr: f64) -> f64 {
    14.0 * (1.0 + fr) * (1.0 + fr) / (2.0 * fr + 3.0)
}

/// Asymptotic pseudo-inverse (`n ≤ d`) speedup as `FR → ∞`:
/// `14 TR² / (1 + TR)` (Table 11).
pub fn ginv_limit_fr(tr: f64) -> f64 {
    14.0 * tr * tr / (1.0 + tr)
}

// ---------------------------------------------------------------------
// Time estimates over the unified multi-part representation
// ---------------------------------------------------------------------

/// One operator of the Table-1 set, as seen by the per-operator planner.
///
/// Matrix-multiplication variants carry the parameter width `m` (`d_X` /
/// `n_X` in the paper's notation) because their cost is linear in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Left matrix multiplication `T X` with an `d x m` parameter.
    Lmm {
        /// Parameter columns `m`.
        m: usize,
    },
    /// Transposed left multiplication `Tᵀ X` with an `n x m` parameter.
    TLmm {
        /// Parameter columns `m`.
        m: usize,
    },
    /// Right matrix multiplication `X T` with an `m x n` parameter.
    Rmm {
        /// Parameter rows `m`.
        m: usize,
    },
    /// `crossprod(T) = Tᵀ T`.
    Crossprod,
    /// `tcrossprod(T) = T Tᵀ` (the Gram matrix).
    Tcrossprod,
    /// Moore–Penrose pseudo-inverse `ginv(T)`.
    Ginv,
    /// `rowSums(T)`.
    RowSums,
    /// `colSums(T)`.
    ColSums,
    /// `sum(T)`.
    Sum,
    /// `rowMin(T)`.
    RowMin,
    /// Element-wise scalar operators and maps (`T + x`, `T²`, `exp(T)`, …)
    /// — the closure ops that stay in the input representation.
    Elementwise,
    /// Element-wise combination with a regular matrix of the same shape
    /// (§3.3.7) — non-factorizable: the "factorized" path materializes
    /// internally, so only memoized materialization can win.
    ElementwiseFallback,
}

impl OpKind {
    /// Every plannable operator, with a representative parameter width for
    /// the multiplication variants — the single list "for every op" tests
    /// iterate, so coverage stays in one place when a variant is added.
    pub const ALL: [OpKind; 12] = [
        OpKind::Lmm { m: 2 },
        OpKind::TLmm { m: 2 },
        OpKind::Rmm { m: 2 },
        OpKind::Crossprod,
        OpKind::Tcrossprod,
        OpKind::Ginv,
        OpKind::RowSums,
        OpKind::ColSums,
        OpKind::Sum,
        OpKind::RowMin,
        OpKind::Elementwise,
        OpKind::ElementwiseFallback,
    ];
}

/// Estimated wall-clock nanoseconds for one operator, both ways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Running the factorized rewrite on the normalized representation.
    pub factorized_ns: f64,
    /// Running the standard operator on the already-materialized `T`.
    pub materialized_op_ns: f64,
    /// Materializing `T` from the normalized representation (paid once;
    /// the planner amortizes it through its memo).
    pub materialize_ns: f64,
}

impl PlanEstimate {
    /// Total cost of the materialized route: the operator itself plus the
    /// join materialization unless a memoized `T` already exists.
    pub fn materialized_total_ns(&self, memoized: bool) -> f64 {
        self.materialized_op_ns + if memoized { 0.0 } else { self.materialize_ns }
    }
}

/// Structural facts of one part, extracted once per estimate.
struct PartDims {
    /// Base-table rows `nᵢ`.
    rows: f64,
    /// Base-table columns `dᵢ`.
    cols: f64,
    /// Stored entries per base-table row (`dᵢ` for dense tables).
    entries_per_row: f64,
    /// Whether the base table is dense storage.
    dense: bool,
    /// Whether the indicator is the identity.
    identity: bool,
}

impl PartDims {
    /// Stored entries of the base table.
    fn size(&self) -> f64 {
        self.rows * self.entries_per_row
    }

    /// Cost of the dense-or-sparse product `Bᵢ Xᵢ` with `m` parameter
    /// columns: blocked flops for dense tables, gather-rate fused ops over
    /// the stored entries for sparse ones.
    fn product_ns(&self, p: &MachineProfile, m: f64) -> f64 {
        if self.dense {
            self.rows * self.cols * m * p.dense_flop_ns
        } else {
            self.size() * m * p.gather_ns
        }
    }
}

/// Everything [`estimate_op`] needs about a normalized matrix.
struct Shape {
    n: f64,
    d: f64,
    parts: Vec<PartDims>,
    /// Stored entries per logical row of the materialized `T`.
    entries_per_row: f64,
    all_dense: bool,
}

impl Shape {
    fn of(t: &NormalizedMatrix) -> Shape {
        let parts: Vec<PartDims> = t
            .parts()
            .iter()
            .map(|part| {
                let table = part.table();
                let rows = table.rows().max(1) as f64;
                let dense = !table.is_sparse();
                // nnz() is O(1) for CSR but a full scan for dense
                // storage; planning runs on every operator call, so dense
                // tables are priced at full width without looking.
                let entries_per_row = if dense {
                    table.cols() as f64
                } else {
                    table.nnz() as f64 / rows
                };
                PartDims {
                    rows,
                    cols: table.cols() as f64,
                    entries_per_row,
                    dense,
                    identity: part.indicator().is_identity(),
                }
            })
            .collect();
        let entries_per_row = parts.iter().map(|p| p.entries_per_row).sum();
        Shape {
            n: t.logical_rows() as f64,
            d: t.d_total() as f64,
            all_dense: parts.iter().all(|p| p.dense),
            parts,
            entries_per_row,
        }
    }

    /// The per-fused-op rate of kernels over the materialized `T`: blocked
    /// dense when every base table is dense (so `T` materializes dense),
    /// gather-class otherwise.
    fn mat_flop_ns(&self, p: &MachineProfile) -> f64 {
        if self.all_dense {
            p.dense_flop_ns
        } else {
            p.gather_ns
        }
    }

    /// Stored entries of the materialized `T`.
    fn mat_size(&self) -> f64 {
        self.n * self.entries_per_row
    }

    /// ns to materialize `T`: a row gather per explicit-indicator part, a
    /// streaming copy for identity parts, plus the horizontal assembly.
    fn materialize_ns(&self, p: &MachineProfile) -> f64 {
        let gathered: f64 = self
            .parts
            .iter()
            .map(|part| {
                let out = self.n * part.entries_per_row;
                if part.identity {
                    out * p.ew_ns
                } else {
                    out * p.gather_ns
                }
            })
            .sum();
        gathered + self.mat_size() * p.ew_ns
    }
}

/// ns to materialize the join output of `t` — the cost the planner
/// amortizes across operators through its memoized `T`, and charges to
/// the materialized route of `dmm` for the operand whose join it would
/// have to build.
pub fn materialize_ns(profile: &MachineProfile, t: &NormalizedMatrix) -> f64 {
    Shape::of(t).materialize_ns(profile)
}

/// Estimates factorized vs materialized wall-clock time for `op` on `t`,
/// pricing each kernel class at the profile's calibrated rate.
///
/// Transposed inputs are estimated through their appendix-A duals (e.g.
/// `crossprod(Tᵀ)` costs what `tcrossprod(T)` costs), mirroring how the
/// rewrites dispatch.
pub fn estimate_op(profile: &MachineProfile, t: &NormalizedMatrix, op: OpKind) -> PlanEstimate {
    let op = if t.is_transposed() { dual(op) } else { op };
    let s = Shape::of(t);
    let materialize = s.materialize_ns(profile);
    let (factorized_ns, materialized_op_ns) = match op {
        OpKind::Lmm { m } => (lmm_f(profile, &s, m as f64), mm_m(profile, &s, m as f64)),
        OpKind::TLmm { m } | OpKind::Rmm { m } => {
            (t_lmm_f(profile, &s, m as f64), mm_m(profile, &s, m as f64))
        }
        OpKind::Crossprod => (crossprod_f(profile, &s), crossprod_m(profile, &s)),
        OpKind::Tcrossprod => (gram_f(profile, &s), gram_m(profile, &s)),
        OpKind::Ginv => ginv_both(profile, &s),
        OpKind::RowSums | OpKind::ColSums | OpKind::Sum => (agg_f(profile, &s), agg_m(profile, &s)),
        OpKind::RowMin => (
            agg_f(profile, &s) + s.n * s.parts.len() as f64 * profile.gather_ns,
            agg_m(profile, &s),
        ),
        OpKind::Elementwise => (elementwise_f(profile, &s), elementwise_m(profile, &s)),
        OpKind::ElementwiseFallback => {
            // Non-factorizable: the factorized path materializes anyway
            // (without the benefit of the planner's memo), then streams.
            let op_ns = elementwise_m(profile, &s);
            (materialize + op_ns, op_ns)
        }
    };
    PlanEstimate {
        factorized_ns,
        materialized_op_ns,
        materialize_ns: materialize,
    }
}

/// The appendix-A dual an operator dispatches to under the transpose flag.
fn dual(op: OpKind) -> OpKind {
    match op {
        OpKind::Lmm { m } => OpKind::TLmm { m },
        OpKind::TLmm { m } | OpKind::Rmm { m } => OpKind::Lmm { m },
        OpKind::Crossprod => OpKind::Tcrossprod,
        OpKind::Tcrossprod => OpKind::Crossprod,
        OpKind::RowSums => OpKind::ColSums,
        OpKind::ColSums => OpKind::RowSums,
        // RowMin on a transposed input materializes; price it as the
        // fallback class, whose factorized side includes materialization.
        OpKind::RowMin => OpKind::ElementwiseFallback,
        other => other,
    }
}

fn overhead(profile: &MachineProfile, sections: usize) -> f64 {
    sections as f64 * profile.op_overhead_ns
}

/// `T X → Σᵢ Iᵢ (Bᵢ Xᵢ)`: per-part products plus one indicator
/// application (gather-add, or streaming add for identity parts) each.
fn lmm_f(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let apply = if part.identity {
                s.n * m * p.ew_ns
            } else {
                s.n * m * p.gather_ns
            };
            part.product_ns(p, m) + apply
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// `Tᵀ X` / `X T`: pull `X` through each indicator, then the per-part
/// product — same classes as LMM, applied in the other order.
fn t_lmm_f(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    lmm_f(p, s, m)
}

/// Any matrix multiplication on the materialized `T`: `n · d · m` fused
/// ops at the materialized-kernel rate.
fn mm_m(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    s.mat_size() * m * s.mat_flop_ns(p)
}

/// Block-wise `Tᵀ T` (Algorithm 2): symmetric diagonal blocks (half the
/// flops, after a `diag(colSums(K))^½` row scaling for explicit
/// indicators) plus one pulled cross block per part pair.
fn crossprod_f(p: &MachineProfile, s: &Shape) -> f64 {
    let q = s.parts.len();
    let mut ns = 0.0;
    for (i, pi) in s.parts.iter().enumerate() {
        ns += 0.5 * pi.product_ns(p, pi.cols);
        if !pi.identity {
            ns += pi.size() * p.ew_ns; // scale_rows by the reference counts
        }
        for pj in &s.parts[i + 1..] {
            // Pull the smaller side through the indicator, then a dense
            // product on base-table rows: gather(n · dᵢ) + nⱼ dᵢ dⱼ.
            let rows = pi.rows.min(pj.rows);
            ns += s.n * pi.cols.min(pj.cols) * p.gather_ns
                + rows * pi.cols * pj.cols * p.dense_flop_ns;
        }
    }
    ns + overhead(p, q * (q + 1) / 2)
}

fn crossprod_m(p: &MachineProfile, s: &Shape) -> f64 {
    0.5 * s.mat_size() * s.d * s.mat_flop_ns(p)
}

/// `T Tᵀ = Σᵢ Iᵢ (Bᵢ Bᵢᵀ) Iᵢᵀ`: a per-part Gram product plus two indicator
/// applications blowing `nᵢ x nᵢ` up to `n x n`, accumulated streaming.
fn gram_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let gram = 0.5 * part.product_ns(p, part.rows);
            let blow_up = if part.identity {
                0.0
            } else {
                (s.n * part.rows + s.n * s.n) * p.gather_ns
            };
            gram + blow_up + s.n * s.n * p.ew_ns
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

fn gram_m(p: &MachineProfile, s: &Shape) -> f64 {
    0.5 * s.n * s.mat_size() * s.mat_flop_ns(p)
}

/// `ginv(T)` (§3.3.6): an inner pseudo-inverse of the small Gram matrix
/// (`c·k³` dense work for its eigendecomposition) bracketed by the
/// factorized (or materialized) crossprod and LMM.
fn ginv_both(p: &MachineProfile, s: &Shape) -> (f64, f64) {
    // Constant matching Table 11's ~27 k³ Jacobi-style inner inversion.
    const INNER: f64 = 27.0;
    if s.d < s.n {
        let inner = INNER * s.d * s.d * s.d * p.dense_flop_ns;
        (
            crossprod_f(p, s) + inner + lmm_f(p, s, s.d),
            crossprod_m(p, s) + inner + mm_m(p, s, s.d),
        )
    } else {
        let inner = INNER * s.n * s.n * s.n * p.dense_flop_ns;
        (
            gram_f(p, s) + inner + t_lmm_f(p, s, s.n),
            gram_m(p, s) + inner + mm_m(p, s, s.n),
        )
    }
}

/// Aggregations: one streaming pass per base table plus an `n`-sized
/// indicator application.
fn agg_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let apply = if part.identity {
                s.n * p.ew_ns
            } else {
                s.n * p.gather_ns
            };
            part.size() * p.ew_ns + apply
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

fn agg_m(p: &MachineProfile, s: &Shape) -> f64 {
    s.mat_size() * p.ew_ns
}

/// Closure scalar ops: one streaming pass over each base table (sparse
/// tables stream their stored entries).
fn elementwise_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| part.size() * p.ew_ns)
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

fn elementwise_m(p: &MachineProfile, s: &Shape) -> f64 {
    s.mat_size() * p.ew_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(tr: f64, fr: f64) -> Dims {
        // Fix n_r and d_s, derive the rest from the ratios.
        let n_r = 1.0e6;
        let d_s = 20.0;
        Dims {
            n_s: tr * n_r,
            d_s,
            n_r,
            d_r: fr * d_s,
        }
    }

    #[test]
    fn speedups_increase_with_both_ratios() {
        let base = scalar_op(&dims(5.0, 1.0)).speedup();
        assert!(scalar_op(&dims(10.0, 1.0)).speedup() > base);
        assert!(scalar_op(&dims(5.0, 2.0)).speedup() > base);
    }

    #[test]
    fn lmm_and_rmm_speedups_independent_of_parameter_width() {
        let d = dims(10.0, 2.0);
        let s1 = lmm(&d, 1.0).speedup();
        let s8 = lmm(&d, 8.0).speedup();
        assert!((s1 - s8).abs() < 1e-12);
        assert!((rmm(&d, 3.0).speedup() - s1).abs() < 1e-12);
    }

    #[test]
    fn linear_ops_converge_to_one_plus_fr() {
        let fr = 3.0;
        let sp = scalar_op(&dims(1.0e6, fr)).speedup();
        assert!(
            (sp - linear_limit_tr(fr)).abs() < 1e-3,
            "speedup {sp} far from limit {}",
            linear_limit_tr(fr)
        );
    }

    #[test]
    fn linear_ops_converge_to_tr() {
        let tr = 15.0;
        let sp = scalar_op(&dims(tr, 1.0e6)).speedup();
        assert!((sp - linear_limit_fr(tr)).abs() / tr < 1e-3);
    }

    #[test]
    fn crossprod_converges_to_squared_limit() {
        let fr = 2.0;
        let sp = crossprod(&dims(1.0e8, fr)).speedup();
        assert!(
            (sp - crossprod_limit_tr(fr)).abs() / crossprod_limit_tr(fr) < 1e-2,
            "crossprod speedup {sp} vs limit {}",
            crossprod_limit_tr(fr)
        );
    }

    #[test]
    fn crossprod_speedup_exceeds_linear_ops() {
        // Quadratic-in-d cost ⇒ strictly larger wins at the same ratios.
        let d = dims(20.0, 4.0);
        assert!(crossprod(&d).speedup() > scalar_op(&d).speedup());
    }

    #[test]
    fn ginv_tall_converges_to_table11_limit() {
        let fr = 2.0;
        // n > d branch with huge TR.
        let d = dims(1.0e9, fr);
        let sp = pseudo_inverse(&d).speedup();
        let lim = ginv_limit_tr(fr);
        assert!(
            (sp - lim).abs() / lim < 1e-2,
            "ginv speedup {sp} vs limit {lim}"
        );
    }

    #[test]
    fn ginv_branches_on_shape() {
        // Wide case: n_S ≤ d.
        let wide = Dims::new(50, 40, 10, 10_000);
        let tall = Dims::new(100_000, 20, 1_000, 40);
        assert!(wide.n_s <= wide.d());
        assert!(tall.n_s > tall.d());
        // Both must produce positive costs.
        assert!(pseudo_inverse(&wide).standard > 0.0);
        assert!(pseudo_inverse(&tall).factorized > 0.0);
    }

    #[test]
    fn table3_example_row() {
        // Spot-check Table 3 arithmetic with concrete numbers.
        let d = Dims::new(100, 2, 10, 4);
        let c = scalar_op(&d);
        assert_eq!(c.standard, 600.0); // 100 * 6
        assert_eq!(c.factorized, 240.0); // 100*2 + 10*4
        let l = lmm(&d, 3.0);
        assert_eq!(l.standard, 1800.0);
        assert_eq!(l.factorized, 720.0);
        let cp = crossprod(&d);
        assert_eq!(cp.standard, 0.5 * 36.0 * 100.0);
        assert_eq!(
            cp.factorized,
            0.5 * 4.0 * 100.0 + 0.5 * 16.0 * 10.0 + 8.0 * 10.0
        );
    }

    #[test]
    fn ratios_helpers() {
        let d = Dims::new(100, 2, 10, 4);
        assert_eq!(d.tuple_ratio(), 10.0);
        assert_eq!(d.feature_ratio(), 2.0);
        assert_eq!(d.d(), 6.0);
    }

    // ------------------------------------------------------------------
    // Time estimates
    // ------------------------------------------------------------------

    use morpheus_dense::DenseMatrix;

    fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(n_s, d_s, |i, j| ((i + j) % 7) as f64);
        let r = DenseMatrix::from_fn(n_r, d_r, |i, j| ((i * d_r + j) % 5) as f64 + 0.5);
        let fk: Vec<usize> = (0..n_s).map(|i| i % n_r).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    #[test]
    fn estimates_are_positive_and_finite_for_every_op() {
        let t = pkfk(200, 4, 20, 8);
        let p = MachineProfile::REFERENCE;
        for op in OpKind::ALL {
            let e = estimate_op(&p, &t, op);
            for v in [e.factorized_ns, e.materialized_op_ns, e.materialize_ns] {
                assert!(v.is_finite() && v > 0.0, "bad estimate {v} for {op:?}");
            }
        }
    }

    #[test]
    fn high_redundancy_favors_factorized_low_favors_materialized() {
        let p = MachineProfile::REFERENCE;
        // TR = 20, FR = 2: deep in the factorized win region.
        let hot = pkfk(2_000, 10, 100, 20);
        let e = estimate_op(&p, &hot, OpKind::Crossprod);
        assert!(e.factorized_ns < e.materialized_total_ns(false));
        // TR = 1, FR = 0.25: the L-shaped slow-down corner. Once T is
        // memoized, the materialized route must win the LMM.
        let cold = pkfk(100, 16, 100, 4);
        let e = estimate_op(&p, &cold, OpKind::Lmm { m: 2 });
        assert!(e.factorized_ns > e.materialized_total_ns(true));
    }

    #[test]
    fn elementwise_fallback_never_beats_memoized_materialization() {
        let p = MachineProfile::REFERENCE;
        for t in [pkfk(500, 4, 50, 8), pkfk(60, 8, 30, 2)] {
            let e = estimate_op(&p, &t, OpKind::ElementwiseFallback);
            // F materializes internally, so it can at best tie the
            // unmemoized materialized route and always loses to a memo.
            assert!(e.factorized_ns >= e.materialized_total_ns(false));
            assert!(e.factorized_ns > e.materialized_total_ns(true));
        }
    }

    #[test]
    fn transposed_ops_price_as_their_duals() {
        let p = MachineProfile::REFERENCE;
        let t = pkfk(300, 3, 30, 6);
        let tt = t.transpose();
        let a = estimate_op(&p, &tt, OpKind::Crossprod);
        let b = estimate_op(&p, &t, OpKind::Tcrossprod);
        assert_eq!(a.factorized_ns, b.factorized_ns);
        assert_eq!(a.materialized_op_ns, b.materialized_op_ns);
        let a = estimate_op(&p, &tt, OpKind::Lmm { m: 3 });
        let b = estimate_op(&p, &t, OpKind::TLmm { m: 3 });
        assert_eq!(a.factorized_ns, b.factorized_ns);
    }

    #[test]
    fn crossprod_factorized_advantage_grows_with_tuple_ratio() {
        let p = MachineProfile::REFERENCE;
        let low = estimate_op(&p, &pkfk(200, 5, 100, 10), OpKind::Crossprod);
        let high = estimate_op(&p, &pkfk(2_000, 5, 100, 10), OpKind::Crossprod);
        let ratio_low = low.materialized_op_ns / low.factorized_ns;
        let ratio_high = high.materialized_op_ns / high.factorized_ns;
        assert!(
            ratio_high > ratio_low,
            "crossprod speedup should grow with TR: {ratio_low} vs {ratio_high}"
        );
    }
}
