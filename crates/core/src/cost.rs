//! Arithmetic-computation cost model (§3.4, Table 3; appendix F, Table 11).
//!
//! The paper characterizes each rewrite by the number of arithmetic
//! computations (multiplications + additions) of the standard (materialized)
//! and factorized versions, ignoring lower-order terms. This module encodes
//! those closed forms, the derived speedups, and their asymptotic limits:
//! for most operators the speedup converges to `1 + FR` as `TR → ∞` and to
//! `TR` as `FR → ∞`; for the cross-product it converges to `(1 + FR)²`
//! because its cost is quadratic in `d`.
//!
//! The cost model is used by tests (validating the rewrites' complexity
//! claims) and by the `table3` reproduction target.
//!
//! On top of the closed forms, [`estimate_op`] converts per-operator
//! arithmetic counts into *time* estimates using a calibrated
//! [`MachineProfile`]: each operator's work is decomposed into the kernel
//! classes it actually executes (blocked dense flops, streaming
//! element-wise passes, sparse-product fused ops, indicator gathers,
//! per-part dispatch), and each class is priced at its measured rate.
//! Dense products are priced through the profile's *tier curve* — the
//! blocked-GEMM rate interpolated at the product's working-set size — so
//! a DRAM-sized materialized cross-product is charged the slower
//! out-of-cache rate while the small per-part products of the factorized
//! rewrite keep the L2 rate; sparse kernels are priced against their
//! stored entries (nnz), not their logical size. This is what the
//! per-operator planner ([`crate::PlannedMatrix`]) compares — raw flop
//! equality is a poor crossover predictor precisely because the
//! factorized path leans on the slower irregular-access kernels, the
//! effect behind the paper's L-shaped slow-down region (Figure 3) and its
//! conservative τ/ρ rule. Double matrix multiplication gets its own
//! two-operand estimate ([`estimate_dmm`]) following the appendix-C block
//! form rather than a width-`m` LMM approximation.

use crate::{MachineProfile, NormalizedMatrix};

/// Dimensions of a two-table PK-FK join, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dims {
    /// Rows of the entity table S (= rows of T).
    pub n_s: f64,
    /// Features of S.
    pub d_s: f64,
    /// Rows of the attribute table R.
    pub n_r: f64,
    /// Features of R.
    pub d_r: f64,
}

impl Dims {
    /// Creates dimensions from integer sizes.
    pub fn new(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> Self {
        Self {
            n_s: n_s as f64,
            d_s: d_s as f64,
            n_r: n_r as f64,
            d_r: d_r as f64,
        }
    }

    /// Tuple ratio `TR = n_S / n_R`.
    pub fn tuple_ratio(&self) -> f64 {
        self.n_s / self.n_r
    }

    /// Feature ratio `FR = d_R / d_S`.
    pub fn feature_ratio(&self) -> f64 {
        self.d_r / self.d_s
    }

    /// Total feature count `d = d_S + d_R`.
    pub fn d(&self) -> f64 {
        self.d_s + self.d_r
    }
}

/// Arithmetic computation counts for one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Count for the standard (materialized) version.
    pub standard: f64,
    /// Count for the factorized version.
    pub factorized: f64,
}

impl OpCost {
    /// Predicted speedup `standard / factorized`.
    pub fn speedup(&self) -> f64 {
        self.standard / self.factorized
    }
}

/// Element-wise scalar operators: `n_S d` vs `n_S d_S + n_R d_R` (Table 3).
pub fn scalar_op(dm: &Dims) -> OpCost {
    OpCost {
        standard: dm.n_s * dm.d(),
        factorized: dm.n_s * dm.d_s + dm.n_r * dm.d_r,
    }
}

/// Aggregation operators share the scalar-op counts (Table 3).
pub fn aggregation(dm: &Dims) -> OpCost {
    scalar_op(dm)
}

/// LMM with a `d x d_X` parameter: `d_X n_S d` vs `d_X (n_S d_S + n_R d_R)`.
pub fn lmm(dm: &Dims, d_x: f64) -> OpCost {
    OpCost {
        standard: d_x * dm.n_s * dm.d(),
        factorized: d_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// RMM with an `n_X x n_S` parameter: `n_X n_S d` vs
/// `n_X (n_S d_S + n_R d_R)`.
pub fn rmm(dm: &Dims, n_x: f64) -> OpCost {
    OpCost {
        standard: n_x * dm.n_s * dm.d(),
        factorized: n_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// Cross-product: `½ d² n_S` vs `½ d_S² n_S + ½ d_R² n_R + d_S d_R n_R`.
pub fn crossprod(dm: &Dims) -> OpCost {
    OpCost {
        standard: 0.5 * dm.d() * dm.d() * dm.n_s,
        factorized: 0.5 * dm.d_s * dm.d_s * dm.n_s
            + 0.5 * dm.d_r * dm.d_r * dm.n_r
            + dm.d_s * dm.d_r * dm.n_r,
    }
}

/// Pseudo-inverse (Table 11), branching on `n_S > d` vs `n_S ≤ d`. The
/// constants reflect R's economy-SVD (`7 n d² + 20 d³` for the standard
/// route, a `27 d³` Jacobi-style inner inversion for the factorized route).
pub fn pseudo_inverse(dm: &Dims) -> OpCost {
    let d = dm.d();
    if dm.n_s > d {
        OpCost {
            standard: 7.0 * dm.n_s * d * d + 20.0 * d * d * d,
            factorized: 27.0 * d * d * d
                + 0.5 * dm.d_s * dm.d_s * dm.n_s
                + 0.5 * dm.d_r * dm.d_r * dm.n_r
                + dm.d_s * dm.d_r * dm.n_r
                + d * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    } else {
        OpCost {
            standard: 7.0 * dm.n_s * dm.n_s * d + 20.0 * dm.n_s * dm.n_s * dm.n_s,
            factorized: 27.0 * dm.n_s * dm.n_s * dm.n_s
                + 0.5 * dm.n_s * dm.n_s * dm.d_s
                + 0.5 * dm.n_r * dm.n_r * dm.d_r
                + dm.n_s * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    }
}

/// Asymptotic speedup of the linear-cost operators (scalar, aggregation,
/// LMM, RMM) as `TR → ∞`: `1 + FR`.
pub fn linear_limit_tr(fr: f64) -> f64 {
    1.0 + fr
}

/// Asymptotic speedup of the linear-cost operators as `FR → ∞`: `TR`.
pub fn linear_limit_fr(tr: f64) -> f64 {
    tr
}

/// Asymptotic cross-product speedup as `TR → ∞`: `(1 + FR)²`.
pub fn crossprod_limit_tr(fr: f64) -> f64 {
    (1.0 + fr) * (1.0 + fr)
}

/// Asymptotic pseudo-inverse (`n > d`) speedup as `TR → ∞`:
/// `14 (1 + FR)² / (2 FR + 3)` (Table 11).
pub fn ginv_limit_tr(fr: f64) -> f64 {
    14.0 * (1.0 + fr) * (1.0 + fr) / (2.0 * fr + 3.0)
}

/// Asymptotic pseudo-inverse (`n ≤ d`) speedup as `FR → ∞`:
/// `14 TR² / (1 + TR)` (Table 11).
pub fn ginv_limit_fr(tr: f64) -> f64 {
    14.0 * tr * tr / (1.0 + tr)
}

// ---------------------------------------------------------------------
// Time estimates over the unified multi-part representation
// ---------------------------------------------------------------------

/// One operator of the Table-1 set, as seen by the per-operator planner.
///
/// Matrix-multiplication variants carry the parameter width `m` (`d_X` /
/// `n_X` in the paper's notation) because their cost is linear in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Left matrix multiplication `T X` with an `d x m` parameter.
    Lmm {
        /// Parameter columns `m`.
        m: usize,
    },
    /// Transposed left multiplication `Tᵀ X` with an `n x m` parameter.
    TLmm {
        /// Parameter columns `m`.
        m: usize,
    },
    /// Right matrix multiplication `X T` with an `m x n` parameter.
    Rmm {
        /// Parameter rows `m`.
        m: usize,
    },
    /// `crossprod(T) = Tᵀ T`.
    Crossprod,
    /// `tcrossprod(T) = T Tᵀ` (the Gram matrix).
    Tcrossprod,
    /// Moore–Penrose pseudo-inverse `ginv(T)`.
    Ginv,
    /// `rowSums(T)`.
    RowSums,
    /// `colSums(T)`.
    ColSums,
    /// `sum(T)`.
    Sum,
    /// `rowMin(T)`.
    RowMin,
    /// Element-wise scalar operators and maps (`T + x`, `T²`, `exp(T)`, …)
    /// — the closure ops that stay in the input representation.
    Elementwise,
    /// Element-wise combination with a regular matrix of the same shape
    /// (§3.3.7) — non-factorizable: the "factorized" path materializes
    /// internally, so only memoized materialization can win.
    ElementwiseFallback,
    /// Double matrix multiplication `T₁ T₂` (appendix C) with a right
    /// operand of width `m`. Through [`estimate_op`] — which only sees the
    /// left operand — this prices like an LMM of width `m`; the planner's
    /// actual `dmm` routing uses the two-operand [`estimate_dmm`], which
    /// prices the appendix-C block rewrite against the left operand's join
    /// structure.
    Dmm {
        /// Right-operand columns `m`.
        m: usize,
    },
}

impl OpKind {
    /// Every plannable operator, with a representative parameter width for
    /// the multiplication variants — the single list "for every op" tests
    /// iterate, so coverage stays in one place when a variant is added.
    pub const ALL: [OpKind; 13] = [
        OpKind::Lmm { m: 2 },
        OpKind::TLmm { m: 2 },
        OpKind::Rmm { m: 2 },
        OpKind::Crossprod,
        OpKind::Tcrossprod,
        OpKind::Ginv,
        OpKind::RowSums,
        OpKind::ColSums,
        OpKind::Sum,
        OpKind::RowMin,
        OpKind::Elementwise,
        OpKind::ElementwiseFallback,
        OpKind::Dmm { m: 2 },
    ];

    /// The appendix-A dual this operator dispatches to on a transposed
    /// input (`crossprod(Tᵀ)` runs as `tcrossprod(T)`, …). Used by the
    /// script planner to attribute uses of transposed views back to the
    /// root operand; [`estimate_op`] applies the same mapping internally
    /// when the matrix itself carries the transpose flag.
    pub fn dual(self) -> OpKind {
        dual(self)
    }
}

/// Estimated wall-clock nanoseconds for one operator, both ways.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEstimate {
    /// Running the factorized rewrite on the normalized representation.
    pub factorized_ns: f64,
    /// Running the standard operator on the already-materialized `T`.
    pub materialized_op_ns: f64,
    /// Materializing `T` from the normalized representation (paid once;
    /// the planner amortizes it through its memo).
    pub materialize_ns: f64,
}

impl PlanEstimate {
    /// Total cost of the materialized route: the operator itself plus the
    /// join materialization unless a memoized `T` already exists.
    pub fn materialized_total_ns(&self, memoized: bool) -> f64 {
        self.materialized_op_ns + if memoized { 0.0 } else { self.materialize_ns }
    }
}

/// Structural facts of one part, extracted once per estimate.
struct PartDims {
    /// Base-table rows `nᵢ`.
    rows: f64,
    /// Base-table columns `dᵢ`.
    cols: f64,
    /// Stored entries per base-table row (`dᵢ` for dense tables).
    entries_per_row: f64,
    /// Whether the base table is dense storage.
    dense: bool,
    /// Whether the indicator is the identity.
    identity: bool,
}

impl PartDims {
    /// Stored entries of the base table.
    fn size(&self) -> f64 {
        self.rows * self.entries_per_row
    }

    /// Cost of the dense-or-sparse product `Bᵢ Xᵢ` with `m` parameter
    /// columns: tier-priced blocked flops for dense tables, sparse-rate
    /// fused ops over the stored entries (nnz-aware) for sparse ones.
    fn product_ns(&self, p: &MachineProfile, m: f64) -> f64 {
        if self.dense {
            dense_mm_ns(p, self.rows, self.cols, m)
        } else {
            self.size() * m * p.sparse_ns
        }
    }
}

/// Register-tile dims of the packed-panel GEMM microkernel
/// (`morpheus_dense::simd::{MR, NR}` — mirrored here because `core` sits
/// below `dense` in the crate DAG). The kernel computes whole `MR x NR`
/// output tiles, zero-padding the remainder, so narrow products execute
/// up to `NR / 1` times their nominal flop count and the estimate has to
/// price the padded shape the hardware actually runs.
const GEMM_MR: f64 = 4.0;
const GEMM_NR: f64 = 8.0;
const GEMM_KC: f64 = 256.0;

/// ns of a blocked dense product `(rows x k) · (k x m)`: the flop count
/// priced at the profile's tier rate for the product's working set (all
/// three operands, 8 bytes per entry) — so cache-resident products run at
/// the L2 rate and DRAM-sized ones at the streaming rate. Both output
/// dims are rounded up to the microkernel tile ([`GEMM_MR`] x
/// [`GEMM_NR`]) except for the single-row/single-column edge shapes,
/// which take the streaming axpy / per-row dot paths with no padding.
fn dense_mm_ns(p: &MachineProfile, rows: f64, k: f64, m: f64) -> f64 {
    let ws = 8.0 * (rows * k + k * m + rows * m);
    let (er, ec) = if rows <= 1.0 || m <= 1.0 {
        (rows, m)
    } else {
        (
            (rows / GEMM_MR).ceil() * GEMM_MR,
            (m / GEMM_NR).ceil() * GEMM_NR,
        )
    };
    // Beyond the tile flops, the kernel moves memory the tier rate does
    // not see: the output is re-read and re-written once per KC block of
    // the inner dimension (dominant when `k` is short relative to the
    // output — the `B Bᵀ` shape), and both operands are packed once
    // (streaming-rate copies). Short-`k` products are traffic-bound, not
    // flop-bound, and a flop-only estimate underprices them severely.
    let kc_passes = (k / GEMM_KC).ceil().max(1.0);
    let out_traffic = er * ec * kc_passes * p.ew_ns;
    let pack = (er * k + k * ec) * p.sum_ns;
    er * k * ec * p.dense_flop_ns(ws) + out_traffic + pack
}

/// ns of a width-`m` application of an explicit indicator over `n`
/// logical rows: `m` gathered elements plus the fixed per-row latency
/// (index lookup, loop overhead) each row pays — the term that makes
/// narrow (`m = 1`) applications disproportionately expensive.
fn apply_ns(p: &MachineProfile, n: f64, m: f64) -> f64 {
    n * (m * p.gather_ns + p.gather_row_ns)
}

/// Fraction of the padded `out x out` output square the triangular
/// (syrk-style) GEMM actually computes: the kernel skips whole `NR`
/// panels entirely left of each `MR` row tile's diagonal
/// (`jp_start = row / NR` in `morpheus_dense::simd::GemmBand`), so small
/// outputs compute most of the square and only large ones approach one
/// half. Pricing a flat `0.5` would underprice exactly the small
/// per-part blocks the factorized rewrites are made of.
pub(crate) fn syrk_tile_fraction(out: f64) -> f64 {
    let rt = (out / GEMM_MR).ceil().max(1.0);
    let ct = (out / GEMM_NR).ceil().max(1.0);
    let mut skipped = 0.0;
    let mut t = 0.0;
    while t < rt {
        skipped += (t * GEMM_MR / GEMM_NR).floor().min(ct);
        t += 1.0;
    }
    1.0 - skipped / (rt * ct)
}

/// ns of the symmetric product of one part's base table: `Bᵀ B` for the
/// cross-product's diagonal blocks (`out_cols = cols`) or `B Bᵀ` for the
/// Gram matrix (`out_cols = rows`). Dense tables run the triangular
/// packed-panel kernel — the computed tile fraction of the arithmetic,
/// at the measured [`MachineProfile::syrk_factor`] premium over blocked
/// GEMM.
fn sym_product_ns(p: &MachineProfile, part: &PartDims, gram: bool) -> f64 {
    let (k, out) = if gram {
        (part.cols, part.rows)
    } else {
        (part.rows, part.cols)
    };
    if part.dense {
        sym_mm_ns(p, out, k)
    } else {
        0.5 * part.size() * out * p.sparse_ns
    }
}

/// ns of a dense symmetric `out x out` product with inner dimension `k`
/// through the triangular packed-panel driver: the computed-tile
/// triangle, plus the costs unique to the symmetric kernels — one pack
/// source is read against the storage grain (the transposed view of the
/// same table), and the mirror pass copies the computed triangle across
/// the diagonal with strided access on one side.
fn sym_mm_ns(p: &MachineProfile, out: f64, k: f64) -> f64 {
    let tri = syrk_tile_fraction(out) * dense_mm_ns(p, out, k, out) * p.syrk_factor;
    let strided_pack = out * k * (p.gather_ns - p.sum_ns).max(0.0);
    let mirror = 0.5 * out * out * (p.gather_ns + p.ew_ns);
    tri + strided_pack + mirror
}

/// Everything [`estimate_op`] needs about a normalized matrix.
struct Shape {
    n: f64,
    d: f64,
    parts: Vec<PartDims>,
    /// Stored entries per logical row of the materialized `T`.
    entries_per_row: f64,
    all_dense: bool,
}

impl Shape {
    fn of(t: &NormalizedMatrix) -> Shape {
        let parts: Vec<PartDims> = t
            .parts()
            .iter()
            .map(|part| {
                let table = part.table();
                let rows = table.rows().max(1) as f64;
                let dense = !table.is_sparse();
                // nnz() is O(1) for CSR but a full scan for dense
                // storage; planning runs on every operator call, so dense
                // tables are priced at full width without looking.
                let entries_per_row = if dense {
                    table.cols() as f64
                } else {
                    table.nnz() as f64 / rows
                };
                PartDims {
                    rows,
                    cols: table.cols() as f64,
                    entries_per_row,
                    dense,
                    identity: part.indicator().is_identity(),
                }
            })
            .collect();
        let entries_per_row = parts.iter().map(|p| p.entries_per_row).sum();
        Shape {
            n: t.logical_rows() as f64,
            d: t.d_total() as f64,
            all_dense: parts.iter().all(|p| p.dense),
            parts,
            entries_per_row,
        }
    }

    /// Stored entries of the materialized `T`.
    fn mat_size(&self) -> f64 {
        self.n * self.entries_per_row
    }

    /// ns to materialize `T`: a row gather per explicit-indicator part, a
    /// streaming copy for identity parts, plus the horizontal assembly.
    fn materialize_ns(&self, p: &MachineProfile) -> f64 {
        let gathered: f64 = self
            .parts
            .iter()
            .map(|part| {
                if part.identity {
                    self.n * part.entries_per_row * p.ew_ns
                } else {
                    apply_ns(p, self.n, part.entries_per_row)
                }
            })
            .sum();
        gathered + self.mat_size() * p.ew_ns
    }
}

/// ns to materialize the join output of `t` — the cost the planner
/// amortizes across operators through its memoized `T`, and charges to
/// the materialized route of `dmm` for the operand whose join it would
/// have to build.
pub fn materialize_ns(profile: &MachineProfile, t: &NormalizedMatrix) -> f64 {
    Shape::of(t).materialize_ns(profile)
}

/// Estimates factorized vs materialized wall-clock time for the double
/// matrix multiplication `a · b` (appendix C) — the two-operand
/// counterpart of [`estimate_op`].
///
/// The factorized side prices the appendix-C block rewrite *per part of
/// the left operand's join*: each of `A`'s base tables multiplies the row
/// (or column) splits of `B`'s members at its own size and density —
/// `S_A S_B1` at the entity table's dimensions, `R_A S_B2` at the
/// attribute table's, the `K_B` splits as nnz-bounded sparse products,
/// and one indicator application per block — instead of approximating the
/// whole thing as an LMM of `B`'s width. Operand shapes outside the
/// appendix-C form (non-PK-FK) price the fallback route the rewrite
/// actually takes: materialize the smaller operand, multiply through the
/// survivor's LMM/RMM.
///
/// `materialize_ns` covers the **left** operand's join (the one the
/// planner's memo amortizes); the right operand's materialization, also
/// needed by the materialized route, is the caller's to add — the planner
/// charges it exactly when `b` has no memoized join (see
/// [`materialize_ns`]).
///
/// Transposed operands are priced at their untransposed dimensions: the
/// appendix-C transposed variants are block rewrites with the same kernel
/// classes and magnitudes as the plain form.
pub fn estimate_dmm(
    profile: &MachineProfile,
    a: &NormalizedMatrix,
    b: &NormalizedMatrix,
) -> PlanEstimate {
    let sa = Shape::of(a);
    let sb = Shape::of(b);
    let materialized_op_ns = if sa.all_dense && sb.all_dense {
        dense_mm_ns(profile, sa.n, sa.d, sb.d)
    } else {
        sa.mat_size() * sb.d * profile.sparse_ns
    };
    PlanEstimate {
        factorized_ns: dmm_f(profile, &sa, &sb),
        materialized_op_ns,
        materialize_ns: sa.materialize_ns(profile),
    }
}

/// `true` when a shape is the two-part PK-FK form appendix C rewrites:
/// an identity entity part followed by one indicator-mapped attribute
/// part.
fn is_pkfk_pair(s: &Shape) -> bool {
    s.parts.len() == 2 && s.parts[0].identity && !s.parts[1].identity
}

/// `(rows x k) · part` where the right-hand side is a base table of the
/// right operand: tier-priced dense flops, or nnz-aware sparse ops.
fn right_mul_ns(p: &MachineProfile, rows: f64, part: &PartDims) -> f64 {
    if part.dense {
        dense_mm_ns(p, rows, part.rows, part.cols)
    } else {
        rows * part.size() * p.sparse_ns
    }
}

/// Factorized cost of `A B` following the appendix-C block form when both
/// operands are two-part PK-FK joins, else the materialize-smaller
/// fallback the rewrite uses.
fn dmm_f(p: &MachineProfile, sa: &Shape, sb: &Shape) -> f64 {
    if !(is_pkfk_pair(sa) && is_pkfk_pair(sb)) {
        // dmm_fallback: materialize the smaller operand, route the other
        // through its planned RMM/LMM — priced with the matching cost
        // form (the left-materialized route executes as `b.rmm(T_A)`,
        // which pays RMM's column-strided pushes, not LMM's row gathers).
        let (a_sz, b_sz) = (sa.n * sa.d, sb.n * sb.d);
        return if a_sz <= b_sz {
            sa.materialize_ns(p) + rmm_f(p, sb, sa.n)
        } else {
            sb.materialize_ns(p) + lmm_f(p, sa, sb.d)
        };
    }
    let (ent_a, attr_a) = (&sa.parts[0], &sa.parts[1]);
    let (ent_b, attr_b) = (&sb.parts[0], &sb.parts[1]);
    let (d_sb, d_rb) = (ent_b.cols, attr_b.cols);
    let mut ns = 0.0;
    // Left block: S_A S_B1 + K_A (R_A S_B2), one gather-apply, one add.
    ns += ent_a.product_ns(p, d_sb); // S_A · S_B1 (d_SA x d_SB slice)
    ns += attr_a.product_ns(p, d_sb); // R_A · S_B2 (d_RA x d_SB slice)
    ns += apply_ns(p, sa.n, d_sb) + sa.n * d_sb * p.ew_ns;
    // Right block: (S_A K_B1) R_B + K_A ((R_A K_B2) R_B). The K_B row
    // splits are one-hot, so the products against them cost one
    // column-strided scatter op per (left row, nnz) pair — the
    // dense-times-one-hot kernel walks output columns, like RMM's push —
    // with nnz(K_B1) = d_SA, nnz(K_B2) = d_RA.
    ns += sa.n * ent_a.cols * p.col_gather_ns; // S_A · K_B1
    ns += right_mul_ns(p, sa.n, attr_b); // (n_A x n_RB) · R_B
    ns += attr_a.rows * attr_a.cols * p.col_gather_ns; // R_A · K_B2
    ns += right_mul_ns(p, attr_a.rows, attr_b); // (n_RA x n_RB) · R_B
    ns += apply_ns(p, sa.n, d_rb) + sa.n * d_rb * p.ew_ns;
    // Horizontal assembly of the two blocks.
    ns += sa.n * (d_sb + d_rb) * p.ew_ns;
    ns + overhead(p, 2)
}

/// Estimates factorized vs materialized wall-clock time for `op` on `t`,
/// pricing each kernel class at the profile's calibrated rate.
///
/// Transposed inputs are estimated through their appendix-A duals (e.g.
/// `crossprod(Tᵀ)` costs what `tcrossprod(T)` costs), mirroring how the
/// rewrites dispatch.
pub fn estimate_op(profile: &MachineProfile, t: &NormalizedMatrix, op: OpKind) -> PlanEstimate {
    let op = if t.is_transposed() { dual(op) } else { op };
    let s = Shape::of(t);
    let materialize = s.materialize_ns(profile);
    let (factorized_ns, materialized_op_ns) = match op {
        OpKind::Lmm { m } => (lmm_f(profile, &s, m as f64), mm_m(profile, &s, m as f64)),
        OpKind::TLmm { m } => (t_lmm_f(profile, &s, m as f64), mm_m(profile, &s, m as f64)),
        OpKind::Rmm { m } => (rmm_f(profile, &s, m as f64), rmm_m(profile, &s, m as f64)),
        OpKind::Crossprod => (crossprod_f(profile, &s), crossprod_m(profile, &s)),
        OpKind::Tcrossprod => (gram_f(profile, &s), gram_m(profile, &s)),
        OpKind::Ginv => ginv_both(profile, &s),
        OpKind::RowSums => (row_sums_f(profile, &s), agg_m(&s, profile.red_ns)),
        OpKind::ColSums => (col_sums_f(profile, &s), agg_m(&s, profile.red_ns)),
        OpKind::Sum => (sum_f(profile, &s), agg_m(&s, profile.sum_ns)),
        OpKind::RowMin => (row_min_f(profile, &s), agg_m(&s, profile.minmax_ns)),
        OpKind::Elementwise => (elementwise_f(profile, &s), elementwise_m(profile, &s)),
        // Single-operand approximation: without the right operand's
        // structure, the per-part products carry its full width `m`. The
        // planner's dmm() uses [`estimate_dmm`] instead.
        OpKind::Dmm { m } => (lmm_f(profile, &s, m as f64), mm_m(profile, &s, m as f64)),
        OpKind::ElementwiseFallback => {
            // Non-factorizable: the factorized path materializes anyway
            // (without the benefit of the planner's memo), then streams.
            let op_ns = elementwise_m(profile, &s);
            (materialize + op_ns, op_ns)
        }
    };
    PlanEstimate {
        factorized_ns,
        materialized_op_ns,
        materialize_ns: materialize,
    }
}

/// Estimates the wall-clock ns of scoring a micro-batch of `batch`
/// logical rows of `t` against a dense `d x m` parameter — the row-slice
/// counterpart of [`estimate_op`], used by the scoring service to pick
/// its resident serving mode once at startup.
///
/// The **factorized** route builds the slice directly on the normalized
/// representation (`NormalizedMatrix::select_rows`): per part, a
/// composed-assignment gather of at most `batch` referenced base rows,
/// the small `B'ᵢ Xᵢ` product, and the gather-add back into the batch
/// output. The **materialized** route gathers `batch` rows of a resident
/// join output and runs one dense product over the full width;
/// `materialize_ns` prices building that resident `T` — paid once per
/// service lifetime, so a long-lived server treats it as sunk and
/// compares the steady-state per-batch terms.
pub fn estimate_row_slice(
    profile: &MachineProfile,
    t: &NormalizedMatrix,
    batch: usize,
    m: usize,
) -> PlanEstimate {
    let s = Shape::of(t);
    let b = (batch as f64).max(1.0);
    let mf = (m as f64).max(1.0);
    let factorized_ns = s
        .parts
        .iter()
        .map(|part| {
            // The slice's base table holds only referenced rows — at most
            // the batch, at most the table.
            let referenced = b.min(part.rows);
            let assemble = apply_ns(profile, b, part.entries_per_row);
            let product = if part.dense {
                dense_mm_ns(profile, referenced, part.cols, mf)
            } else {
                referenced * part.entries_per_row * mf * profile.sparse_ns
            };
            let scatter = apply_ns(profile, b, mf);
            assemble + product + scatter
        })
        .sum();
    let materialized_op_ns =
        apply_ns(profile, b, s.entries_per_row) + dense_mm_ns(profile, b, s.d, mf);
    PlanEstimate {
        factorized_ns,
        materialized_op_ns,
        materialize_ns: s.materialize_ns(profile),
    }
}

/// Script-level look-ahead totals for a *sequence* of operator uses of
/// one normalized operand — the whole-script counterpart of
/// [`PlanEstimate`], produced by [`estimate_script`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptEstimate {
    /// Simulated total ns of the per-call greedy planner over the
    /// sequence: each use takes the cheaper route at its own decision
    /// point, with the join charged to (and memoized by) the first
    /// materialized verdict, exactly as [`PlanEstimate::materialized_total_ns`]
    /// plays out call by call.
    pub greedy_ns: f64,
    /// Total ns with the join materialized up front: one
    /// [`materialize_ns`] plus, per use, the cheaper of the factorized
    /// rewrite and the bare materialized operator.
    pub lookahead_ns: f64,
    /// The one-time join materialization cost both totals price.
    pub materialize_ns: f64,
}

impl ScriptEstimate {
    /// `true` when materializing the join up front beats letting the
    /// greedy per-call planner discover it (strictly — ties keep the
    /// greedy schedule, which defers the join until an operator wants it).
    pub fn prefer_upfront_materialize(&self) -> bool {
        self.lookahead_ns < self.greedy_ns
    }
}

/// Estimates the whole-script cost of `uses` — every planned operator the
/// script applies to `t`, in order, loop bodies repeated per trip — both
/// as the greedy per-call planner would schedule it and with the join
/// materialized up front.
///
/// The greedy simulation mirrors [`estimate_op`]'s per-call comparison
/// including the memo dynamics: once any use takes the materialized
/// route, the join is sunk cost for every later use. The look-ahead total
/// instead charges [`materialize_ns`] once and gives every use the
/// cheaper of its two routes. Since the factorized route stays available
/// after materializing (the memo never spends the normalized form for
/// read-only ops), `lookahead_ns` can only beat `greedy_ns` when the
/// summed per-use materialized savings outweigh the join — exactly the
/// look-ahead the per-call planner cannot see.
///
/// `uses` are interpreted against `t` as-is: callers tracking transposed
/// views of `t` should map each use through [`OpKind::dual`] per
/// transpose before recording it.
pub fn estimate_script(
    profile: &MachineProfile,
    t: &NormalizedMatrix,
    uses: &[OpKind],
) -> ScriptEstimate {
    let join_ns = materialize_ns(profile, t);
    let mut greedy = 0.0;
    let mut memoized = false;
    let mut lookahead = join_ns;
    for &op in uses {
        let est = estimate_op(profile, t, op);
        let mat_total = est.materialized_total_ns(memoized);
        if est.factorized_ns < mat_total {
            greedy += est.factorized_ns;
        } else {
            greedy += mat_total;
            memoized = true;
        }
        lookahead += est.factorized_ns.min(est.materialized_op_ns);
    }
    ScriptEstimate {
        greedy_ns: greedy,
        lookahead_ns: lookahead,
        materialize_ns: join_ns,
    }
}

/// The appendix-A dual an operator dispatches to under the transpose flag.
fn dual(op: OpKind) -> OpKind {
    match op {
        OpKind::Lmm { m } => OpKind::TLmm { m },
        OpKind::TLmm { m } | OpKind::Rmm { m } => OpKind::Lmm { m },
        OpKind::Crossprod => OpKind::Tcrossprod,
        OpKind::Tcrossprod => OpKind::Crossprod,
        OpKind::RowSums => OpKind::ColSums,
        OpKind::ColSums => OpKind::RowSums,
        // RowMin on a transposed input materializes; price it as the
        // fallback class, whose factorized side includes materialization.
        OpKind::RowMin => OpKind::ElementwiseFallback,
        // The transposed dmm variants (appendix C: AᵀBᵀ, ABᵀ, AᵀB) are
        // block rewrites with the same kernel classes and flop magnitudes
        // as the plain form, so they price identically.
        other => other,
    }
}

fn overhead(profile: &MachineProfile, sections: usize) -> f64 {
    sections as f64 * profile.op_overhead_ns
}

/// `T X → Σᵢ Iᵢ (Bᵢ Xᵢ)`: per-part products plus one indicator
/// application (gather-add, or streaming add for identity parts) each.
fn lmm_f(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let apply = if part.identity {
                s.n * m * p.ew_ns
            } else {
                apply_ns(p, s.n, m)
            };
            part.product_ns(p, m) + apply
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// `Tᵀ X`: pull `X` through each indicator transposed — a *row* gather
/// over `X` — then the per-part product: the same kernel classes as LMM,
/// applied in the other order.
fn t_lmm_f(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    lmm_f(p, s, m)
}

/// `X T = [(X I₀) B₀ | …]` (RMM): each part pushes `X` through its
/// indicator from the *right* — a column-strided scatter over `X`'s `n`
/// columns, priced at the dedicated `col_gather_ns` rate because it walks
/// row-major storage against the grain (nothing like LMM's row gathers)
/// — then a dense product at the base-table width.
fn rmm_f(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let push = if part.identity {
                s.n * m * p.ew_ns // X passes through unchanged (copy)
            } else {
                s.n * m * p.col_gather_ns
            };
            // The product runs right-multiplied — `(m x nᵢ) · Bᵢ`, an
            // `m x dᵢ` output — so the microkernel pads the *base-table
            // width*, not the parameter width like LMM's per-part shape.
            push + right_mul_ns(p, m, part)
        })
        .sum::<f64>()
        + s.d * m * p.ew_ns // hstack of the output blocks
        + overhead(p, s.parts.len())
}

/// Any matrix multiplication on the materialized `T`: `n · d · m` fused
/// ops — blocked dense at the tier rate when `T` materializes dense,
/// nnz-aware sparse ops otherwise.
fn mm_m(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    if s.all_dense {
        dense_mm_ns(p, s.n, s.d, m)
    } else {
        s.mat_size() * m * p.sparse_ns
    }
}

/// `X T` on the materialized `T`: same fused-op count as [`mm_m`], but
/// the output is `m x d`, so the microkernel pads `T`'s width rather
/// than the (typically narrow) parameter width.
fn rmm_m(p: &MachineProfile, s: &Shape, m: f64) -> f64 {
    if s.all_dense {
        dense_mm_ns(p, m, s.n, s.d)
    } else {
        s.mat_size() * m * p.sparse_ns
    }
}

/// Block-wise `Tᵀ T` (Algorithm 2): symmetric diagonal blocks (half the
/// flops at the syrk rate, after a `diag(colSums(K))^½` row scaling for
/// explicit indicators) plus one pulled cross block per part pair.
fn crossprod_f(p: &MachineProfile, s: &Shape) -> f64 {
    let q = s.parts.len();
    let mut ns = 0.0;
    for (i, pi) in s.parts.iter().enumerate() {
        ns += sym_product_ns(p, pi, false);
        if !pi.identity {
            ns += pi.size() * p.ew_ns; // scale_rows by the reference counts
        }
        for pj in &s.parts[i + 1..] {
            // Pull the left side (its full width — the rewrite pulls the
            // earlier part, the entity table in a PK-FK join) through the
            // other indicator transposed, then a transpose-product on
            // base-table rows: apply(n, dᵢ) + nⱼ dᵢ dⱼ. The t_matmul
            // driver packs its A source column-strided (against the
            // storage grain), so it carries the same measured premium
            // over plain blocked GEMM as the symmetric kernels.
            let rows = pi.rows.min(pj.rows);
            ns +=
                apply_ns(p, s.n, pi.cols) + dense_mm_ns(p, rows, pi.cols, pj.cols) * p.syrk_factor;
        }
    }
    ns + overhead(p, q * (q + 1) / 2)
}

fn crossprod_m(p: &MachineProfile, s: &Shape) -> f64 {
    if s.all_dense {
        sym_mm_ns(p, s.d, s.n)
    } else {
        0.5 * s.mat_size() * s.d * p.sparse_ns
    }
}

/// `T Tᵀ = Σᵢ Iᵢ (Bᵢ Bᵢᵀ) Iᵢᵀ`: a per-part Gram product plus two indicator
/// applications blowing `nᵢ x nᵢ` up to `n x n`, accumulated streaming.
fn gram_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let gram = sym_product_ns(p, part, true);
            let blow_up = if part.identity {
                0.0
            } else {
                (s.n * part.rows + s.n * s.n) * p.gather_ns
            };
            gram + blow_up + s.n * s.n * p.ew_ns
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

fn gram_m(p: &MachineProfile, s: &Shape) -> f64 {
    if s.all_dense {
        sym_mm_ns(p, s.n, s.d)
    } else {
        0.5 * s.n * s.mat_size() * p.sparse_ns
    }
}

/// `ginv(T)` (§3.3.6): an inner pseudo-inverse of the small Gram matrix
/// (`c·k³` dense work for its eigendecomposition) bracketed by the
/// factorized (or materialized) crossprod and LMM.
fn ginv_both(p: &MachineProfile, s: &Shape) -> (f64, f64) {
    // Constant matching Table 11's ~27 k³ Jacobi-style inner inversion.
    const INNER: f64 = 27.0;
    let k = s.d.min(s.n);
    let inner = INNER * k * k * k * p.dense_flop_ns(8.0 * 2.0 * k * k);
    if s.d < s.n {
        (
            crossprod_f(p, s) + inner + lmm_f(p, s, s.d),
            crossprod_m(p, s) + inner + mm_m(p, s, s.d),
        )
    } else {
        (
            gram_f(p, s) + inner + t_lmm_f(p, s, s.n),
            gram_m(p, s) + inner + mm_m(p, s, s.n),
        )
    }
}

/// `rowSums(T) → Σᵢ Iᵢ rowSums(Bᵢ)`: one read-only reduction pass per
/// base table, then an `n`-row gather-accumulate of the per-part vectors
/// through each explicit indicator.
fn row_sums_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let apply = if part.identity {
                s.n * p.ew_ns
            } else {
                apply_ns(p, s.n, 1.0)
            };
            part.size() * p.red_ns + apply
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// `colSums(T) → [colSums(Iᵢ) Bᵢ]`: the reference counts are one
/// scattered pass over the indicator's `n` stored entries, the
/// count-weighted fold one read pass over the base table — **no**
/// `n`-sized gather at all, which is why factorized column sums win much
/// earlier than row sums.
fn col_sums_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let counts = if part.identity {
                0.0
            } else {
                s.n * p.gather_ns
            };
            counts + part.size() * p.red_ns
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// `sum(T) → Σᵢ colSums(Iᵢ) · rowSums(Bᵢ)`: per-part vectorized row-sum
/// passes plus the counts pass and a base-table-rows dot chain —
/// gather-free like colSums, and crucially *not* the serial
/// whole-matrix sum chain the materialized route runs.
fn sum_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| {
            let counts = if part.identity {
                part.rows * p.red_ns
            } else {
                s.n * p.gather_ns
            };
            part.size() * p.red_ns + counts + part.rows * p.sum_ns
        })
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// `rowMin(T)`: per-part min-fold passes, then an assignment-indexed
/// gather-min per logical row and part.
fn row_min_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| part.size() * p.minmax_ns + apply_ns(p, s.n, 1.0))
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

/// An aggregation on the materialized `T`: one reduction pass at the
/// kernel class's rate (vectorized sums, min folds, or the serial scalar
/// sum chain).
fn agg_m(s: &Shape, rate: f64) -> f64 {
    s.mat_size() * rate
}

/// Closure scalar ops: one streaming pass over each base table (sparse
/// tables stream their stored entries).
fn elementwise_f(p: &MachineProfile, s: &Shape) -> f64 {
    s.parts
        .iter()
        .map(|part| part.size() * p.ew_ns)
        .sum::<f64>()
        + overhead(p, s.parts.len())
}

fn elementwise_m(p: &MachineProfile, s: &Shape) -> f64 {
    s.mat_size() * p.ew_ns
}

// ---------------------------------------------------------------------
// Chunked (out-of-core) pricing
// ---------------------------------------------------------------------

/// Execution-environment facts of a chunked operand that
/// [`estimate_op_chunked`] prices on top of the in-memory kernel model:
/// the chunk granularity, the resident-pool budget that decides how much
/// of the materialized join spills, and the calibrated spill-I/O rates.
///
/// The rates live here rather than in [`MachineProfile`] deliberately:
/// spill throughput depends on the spill *directory* (tmpfs vs disk), not
/// the machine, so the chunked backend calibrates it lazily per process
/// and passes it in — the persisted profile format stays untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkedCostCtx {
    /// Logical rows per chunk.
    pub chunk_rows: usize,
    /// Resident budget in bytes (`MORPHEUS_CHUNK_BYTES`); materialized
    /// bytes beyond it stream through spill files on every access.
    pub resident_budget_bytes: f64,
    /// Calibrated ns per byte to fault a spilled chunk back in (mmap +
    /// copy).
    pub spill_read_ns_per_byte: f64,
    /// Calibrated ns per byte to write + rename + map a spill file.
    pub spill_write_ns_per_byte: f64,
}

/// `profile` with every dense tier clamped to the DRAM rate: chunked
/// execution streams each chunk through the cache exactly once, so no
/// working set stays cache-resident across chunks and the L2/L3 rates the
/// in-memory model would pick for small shapes never materialize.
fn dram_clamped(p: &MachineProfile) -> MachineProfile {
    let mut q = *p;
    let dram = q.dense_tiers[2].ns;
    for tier in &mut q.dense_tiers {
        tier.ns = dram;
    }
    q
}

/// Estimates factorized vs materialized wall-clock time for `op` on a
/// *chunked* operand — the out-of-core counterpart of [`estimate_op`].
///
/// Three terms sit on top of the in-memory model:
///
/// * every dense kernel is priced at the profile's **DRAM tier** (see
///   [`dram_clamped`]) — chunk-at-a-time execution is streaming by
///   construction;
/// * the **materialized** route pays the spill traffic: the bytes of the
///   chunked join beyond the resident budget are faulted in from spill
///   files on every operator pass (`spill_read_ns_per_byte`), and
///   `materialize_ns` additionally pays writing them out once
///   (`spill_write_ns_per_byte`). The factorized route pays neither —
///   the chunked normalized form keeps the (small) base tables resident,
///   which is exactly the asymmetry the paper's ORE experiments exploit;
/// * both routes pay one dispatch overhead per chunk.
pub fn estimate_op_chunked(
    profile: &MachineProfile,
    t: &NormalizedMatrix,
    op: OpKind,
    ctx: &ChunkedCostCtx,
) -> PlanEstimate {
    let clamped = dram_clamped(profile);
    let base = estimate_op(&clamped, t, op);
    let s = Shape::of(t);
    let n_chunks = ((s.n / ctx.chunk_rows.max(1) as f64).ceil()).max(1.0);
    let mat_bytes = 8.0 * s.mat_size();
    let spilled_bytes = (mat_bytes - ctx.resident_budget_bytes).max(0.0);
    let dispatch = n_chunks * profile.op_overhead_ns;
    PlanEstimate {
        factorized_ns: base.factorized_ns + dispatch,
        materialized_op_ns: base.materialized_op_ns
            + spilled_bytes * ctx.spill_read_ns_per_byte
            + dispatch,
        materialize_ns: base.materialize_ns + spilled_bytes * ctx.spill_write_ns_per_byte,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(tr: f64, fr: f64) -> Dims {
        // Fix n_r and d_s, derive the rest from the ratios.
        let n_r = 1.0e6;
        let d_s = 20.0;
        Dims {
            n_s: tr * n_r,
            d_s,
            n_r,
            d_r: fr * d_s,
        }
    }

    #[test]
    fn row_slice_estimates_are_sane() {
        use morpheus_dense::DenseMatrix;
        let p = MachineProfile::REFERENCE;
        // High-redundancy PK-FK: 10_000 entity rows over 100 wide
        // attribute rows.
        let s = DenseMatrix::zeros(10_000, 4);
        let r = DenseMatrix::zeros(100, 40);
        let fk: Vec<usize> = (0..10_000).map(|i| i % 100).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());

        let small = estimate_row_slice(&p, &tn, 16, 1);
        let big = estimate_row_slice(&p, &tn, 1024, 1);
        for e in [&small, &big] {
            assert!(e.factorized_ns.is_finite() && e.factorized_ns > 0.0);
            assert!(e.materialized_op_ns.is_finite() && e.materialized_op_ns > 0.0);
            assert!(e.materialize_ns > 0.0);
        }
        // Bigger batches cost more on either route.
        assert!(big.factorized_ns > small.factorized_ns);
        assert!(big.materialized_op_ns > small.materialized_op_ns);
        // A cold start (join not yet built) must never favor the resident
        // route for one small batch: the join alone dwarfs the slice.
        assert!(small.factorized_ns < small.materialized_total_ns(false));
    }

    #[test]
    fn speedups_increase_with_both_ratios() {
        let base = scalar_op(&dims(5.0, 1.0)).speedup();
        assert!(scalar_op(&dims(10.0, 1.0)).speedup() > base);
        assert!(scalar_op(&dims(5.0, 2.0)).speedup() > base);
    }

    #[test]
    fn lmm_and_rmm_speedups_independent_of_parameter_width() {
        let d = dims(10.0, 2.0);
        let s1 = lmm(&d, 1.0).speedup();
        let s8 = lmm(&d, 8.0).speedup();
        assert!((s1 - s8).abs() < 1e-12);
        assert!((rmm(&d, 3.0).speedup() - s1).abs() < 1e-12);
    }

    #[test]
    fn linear_ops_converge_to_one_plus_fr() {
        let fr = 3.0;
        let sp = scalar_op(&dims(1.0e6, fr)).speedup();
        assert!(
            (sp - linear_limit_tr(fr)).abs() < 1e-3,
            "speedup {sp} far from limit {}",
            linear_limit_tr(fr)
        );
    }

    #[test]
    fn linear_ops_converge_to_tr() {
        let tr = 15.0;
        let sp = scalar_op(&dims(tr, 1.0e6)).speedup();
        assert!((sp - linear_limit_fr(tr)).abs() / tr < 1e-3);
    }

    #[test]
    fn crossprod_converges_to_squared_limit() {
        let fr = 2.0;
        let sp = crossprod(&dims(1.0e8, fr)).speedup();
        assert!(
            (sp - crossprod_limit_tr(fr)).abs() / crossprod_limit_tr(fr) < 1e-2,
            "crossprod speedup {sp} vs limit {}",
            crossprod_limit_tr(fr)
        );
    }

    #[test]
    fn crossprod_speedup_exceeds_linear_ops() {
        // Quadratic-in-d cost ⇒ strictly larger wins at the same ratios.
        let d = dims(20.0, 4.0);
        assert!(crossprod(&d).speedup() > scalar_op(&d).speedup());
    }

    #[test]
    fn ginv_tall_converges_to_table11_limit() {
        let fr = 2.0;
        // n > d branch with huge TR.
        let d = dims(1.0e9, fr);
        let sp = pseudo_inverse(&d).speedup();
        let lim = ginv_limit_tr(fr);
        assert!(
            (sp - lim).abs() / lim < 1e-2,
            "ginv speedup {sp} vs limit {lim}"
        );
    }

    #[test]
    fn ginv_branches_on_shape() {
        // Wide case: n_S ≤ d.
        let wide = Dims::new(50, 40, 10, 10_000);
        let tall = Dims::new(100_000, 20, 1_000, 40);
        assert!(wide.n_s <= wide.d());
        assert!(tall.n_s > tall.d());
        // Both must produce positive costs.
        assert!(pseudo_inverse(&wide).standard > 0.0);
        assert!(pseudo_inverse(&tall).factorized > 0.0);
    }

    #[test]
    fn table3_example_row() {
        // Spot-check Table 3 arithmetic with concrete numbers.
        let d = Dims::new(100, 2, 10, 4);
        let c = scalar_op(&d);
        assert_eq!(c.standard, 600.0); // 100 * 6
        assert_eq!(c.factorized, 240.0); // 100*2 + 10*4
        let l = lmm(&d, 3.0);
        assert_eq!(l.standard, 1800.0);
        assert_eq!(l.factorized, 720.0);
        let cp = crossprod(&d);
        assert_eq!(cp.standard, 0.5 * 36.0 * 100.0);
        assert_eq!(
            cp.factorized,
            0.5 * 4.0 * 100.0 + 0.5 * 16.0 * 10.0 + 8.0 * 10.0
        );
    }

    #[test]
    fn ratios_helpers() {
        let d = Dims::new(100, 2, 10, 4);
        assert_eq!(d.tuple_ratio(), 10.0);
        assert_eq!(d.feature_ratio(), 2.0);
        assert_eq!(d.d(), 6.0);
    }

    // ------------------------------------------------------------------
    // Time estimates
    // ------------------------------------------------------------------

    use morpheus_dense::DenseMatrix;

    fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> NormalizedMatrix {
        let s = DenseMatrix::from_fn(n_s, d_s, |i, j| ((i + j) % 7) as f64);
        let r = DenseMatrix::from_fn(n_r, d_r, |i, j| ((i * d_r + j) % 5) as f64 + 0.5);
        let fk: Vec<usize> = (0..n_s).map(|i| i % n_r).collect();
        NormalizedMatrix::pk_fk(s.into(), &fk, r.into())
    }

    #[test]
    fn estimates_are_positive_and_finite_for_every_op() {
        let t = pkfk(200, 4, 20, 8);
        let p = MachineProfile::REFERENCE;
        for op in OpKind::ALL {
            let e = estimate_op(&p, &t, op);
            for v in [e.factorized_ns, e.materialized_op_ns, e.materialize_ns] {
                assert!(v.is_finite() && v > 0.0, "bad estimate {v} for {op:?}");
            }
        }
    }

    #[test]
    fn high_redundancy_favors_factorized_low_favors_materialized() {
        let p = MachineProfile::REFERENCE;
        // TR = 20, FR = 2: deep in the factorized win region.
        let hot = pkfk(2_000, 10, 100, 20);
        let e = estimate_op(&p, &hot, OpKind::Crossprod);
        assert!(e.factorized_ns < e.materialized_total_ns(false));
        // TR = 1, FR = 0.25: the L-shaped slow-down corner. Once T is
        // memoized, the materialized route must win the LMM.
        let cold = pkfk(100, 16, 100, 4);
        let e = estimate_op(&p, &cold, OpKind::Lmm { m: 2 });
        assert!(e.factorized_ns > e.materialized_total_ns(true));
    }

    #[test]
    fn elementwise_fallback_never_beats_memoized_materialization() {
        let p = MachineProfile::REFERENCE;
        for t in [pkfk(500, 4, 50, 8), pkfk(60, 8, 30, 2)] {
            let e = estimate_op(&p, &t, OpKind::ElementwiseFallback);
            // F materializes internally, so it can at best tie the
            // unmemoized materialized route and always loses to a memo.
            assert!(e.factorized_ns >= e.materialized_total_ns(false));
            assert!(e.factorized_ns > e.materialized_total_ns(true));
        }
    }

    #[test]
    fn transposed_ops_price_as_their_duals() {
        let p = MachineProfile::REFERENCE;
        let t = pkfk(300, 3, 30, 6);
        let tt = t.transpose();
        let a = estimate_op(&p, &tt, OpKind::Crossprod);
        let b = estimate_op(&p, &t, OpKind::Tcrossprod);
        assert_eq!(a.factorized_ns, b.factorized_ns);
        assert_eq!(a.materialized_op_ns, b.materialized_op_ns);
        let a = estimate_op(&p, &tt, OpKind::Lmm { m: 3 });
        let b = estimate_op(&p, &t, OpKind::TLmm { m: 3 });
        assert_eq!(a.factorized_ns, b.factorized_ns);
    }

    #[test]
    fn tier_pricing_charges_large_dense_products_a_slower_rate() {
        // Same flop count, bigger working set ⇒ the per-flop rate (and
        // with it the estimate per flop) must not be cheaper. A small
        // crossprod fits L2; one ~64x larger in rows spills.
        let p = MachineProfile::REFERENCE;
        let small = Shape::of(&pkfk(400, 8, 40, 8));
        let large = Shape::of(&pkfk(25_600, 8, 40, 8));
        // Per-computed-flop rate: the estimate divided by the tile work
        // the triangular kernel actually runs (padded square times the
        // computed-tile fraction, at the syrk premium).
        let rate = |s: &Shape| {
            let ec = (s.d / GEMM_NR).ceil() * GEMM_NR;
            let er = (s.d / GEMM_MR).ceil() * GEMM_MR;
            crossprod_m(&p, s) / (syrk_tile_fraction(s.d) * er * s.n * ec * p.syrk_factor)
        };
        assert!(
            rate(&large) > rate(&small) * 1.05,
            "large crossprod must be priced above the L2 rate: {} vs {}",
            rate(&large),
            rate(&small)
        );
        // And both sit inside the calibrated tier band, allowing the
        // structural traffic terms (packing, strided source, mirror
        // pass) that ride on top of the pure flop rate.
        for s in [&small, &large] {
            let r = rate(s);
            assert!(r >= p.dense_tiers[0].ns && r <= 2.0 * p.dense_tiers[2].ns);
        }
    }

    #[test]
    fn sparse_parts_price_by_nnz_not_logical_size() {
        use morpheus_sparse::CsrMatrix;
        let p = MachineProfile::REFERENCE;
        let n_s = 600;
        let s = DenseMatrix::from_fn(n_s, 4, |i, j| ((i + j) % 5) as f64);
        let fk: Vec<usize> = (0..n_s).map(|i| i % 30).collect();
        let mk_sparse = |nnz_per_row: usize| {
            let trips: Vec<(usize, usize, f64)> = (0..30)
                .flat_map(|i| (0..nnz_per_row).map(move |k| (i, (i * 7 + k * 3) % 16, 1.0)))
                .collect();
            let r = CsrMatrix::from_triplets(30, 16, &trips).unwrap();
            NormalizedMatrix::pk_fk(s.clone().into(), &fk, crate::Matrix::Sparse(r))
        };
        // 16x the stored entries in the same logical shape ⇒ strictly more
        // expensive factorized products.
        let thin = estimate_op(&p, &mk_sparse(1), OpKind::Lmm { m: 4 });
        let fat = estimate_op(&p, &mk_sparse(16), OpKind::Lmm { m: 4 });
        assert!(
            fat.factorized_ns > thin.factorized_ns,
            "nnz must drive the sparse price: {} vs {}",
            thin.factorized_ns,
            fat.factorized_ns
        );
    }

    #[test]
    fn dmm_estimate_is_finite_positive_and_tracks_redundancy() {
        let p = MachineProfile::REFERENCE;
        // d_A = 4 + 8 = 12 ⇒ B has 12 rows.
        let mk_b = || {
            let sb = DenseMatrix::from_fn(12, 3, |i, j| (i + j) as f64 * 0.25);
            let rb = DenseMatrix::from_fn(4, 5, |i, j| ((i * 5 + j) % 7) as f64 - 2.0);
            let fk: Vec<usize> = (0..12).map(|i| i % 4).collect();
            NormalizedMatrix::pk_fk(sb.into(), &fk, rb.into())
        };
        let low = pkfk(60, 4, 60, 8); // TR = 1
        let high = pkfk(6_000, 4, 60, 8); // TR = 100
        for a in [&low, &high] {
            let e = estimate_dmm(&p, a, &mk_b());
            for v in [e.factorized_ns, e.materialized_op_ns, e.materialize_ns] {
                assert!(v.is_finite() && v > 0.0, "bad dmm estimate {v}");
            }
        }
        // The factorized advantage must grow with the left tuple ratio —
        // the attribute-table blocks of appendix C are priced at n_R, not
        // n_S.
        let e_low = estimate_dmm(&p, &low, &mk_b());
        let e_high = estimate_dmm(&p, &high, &mk_b());
        assert!(
            e_high.materialized_op_ns / e_high.factorized_ns
                > e_low.materialized_op_ns / e_low.factorized_ns,
            "dmm speedup should grow with TR"
        );
    }

    #[test]
    fn dmm_estimate_sees_right_operand_structure_the_lmm_approximation_cannot() {
        // Two right operands with the same width d_B but different
        // internal splits: the width-m LMM approximation prices them
        // identically, the appendix-C form must not — it prices B's
        // entity/attribute blocks separately against the left join.
        let p = MachineProfile::REFERENCE;
        let a = pkfk(5_000, 4, 50, 8); // d_A = 12
        let mk_b = |d_sb: usize, n_rb: usize| {
            let d_rb = 16 - d_sb;
            let sb = DenseMatrix::from_fn(12, d_sb, |i, j| (i + j) as f64 * 0.5);
            let rb = DenseMatrix::from_fn(n_rb, d_rb, |i, j| (i * 2 + j) as f64);
            let fk: Vec<usize> = (0..12).map(|i| i % n_rb).collect();
            NormalizedMatrix::pk_fk(sb.into(), &fk, rb.into())
        };
        let (b1, b2) = (mk_b(6, 3), mk_b(2, 9));
        assert_eq!(b1.cols(), b2.cols());
        let e1 = estimate_dmm(&p, &a, &b1);
        let e2 = estimate_dmm(&p, &a, &b2);
        assert!(
            (e1.factorized_ns - e2.factorized_ns).abs() > 1e-6,
            "appendix-C pricing must distinguish B's split: {} == {}",
            e1.factorized_ns,
            e2.factorized_ns
        );
        // The width-m approximation is blind to the split by construction.
        let a1 = estimate_op(&p, &a, OpKind::Dmm { m: b1.cols() });
        let a2 = estimate_op(&p, &a, OpKind::Dmm { m: b2.cols() });
        assert_eq!(a1.factorized_ns, a2.factorized_ns);
    }

    #[test]
    fn dmm_estimate_falls_back_for_non_pkfk_shapes() {
        let p = MachineProfile::REFERENCE;
        // An M:N-shaped left operand is outside appendix C.
        let s = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f64 + 1.0);
        let r = DenseMatrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 * 0.5);
        let a = NormalizedMatrix::mn_join(s.into(), &[0, 1, 2, 0], r.into(), &[0, 1, 1, 0]);
        let sb = DenseMatrix::from_fn(4, 1, |i, _| i as f64);
        let rb = DenseMatrix::from_fn(1, 3, |_, j| 2.0 + j as f64);
        let b = NormalizedMatrix::pk_fk(sb.into(), &[0, 0, 0, 0], rb.into());
        let e = estimate_dmm(&p, &a, &b);
        assert!(e.factorized_ns.is_finite() && e.factorized_ns > 0.0);
        // The fallback materializes the smaller operand, so its price is
        // at least that materialization.
        let smaller = materialize_ns(&p, &a).min(materialize_ns(&p, &b));
        assert!(e.factorized_ns >= smaller);
    }

    #[test]
    fn crossprod_factorized_advantage_grows_with_tuple_ratio() {
        let p = MachineProfile::REFERENCE;
        let low = estimate_op(&p, &pkfk(200, 5, 100, 10), OpKind::Crossprod);
        let high = estimate_op(&p, &pkfk(2_000, 5, 100, 10), OpKind::Crossprod);
        let ratio_low = low.materialized_op_ns / low.factorized_ns;
        let ratio_high = high.materialized_op_ns / high.factorized_ns;
        assert!(
            ratio_high > ratio_low,
            "crossprod speedup should grow with TR: {ratio_low} vs {ratio_high}"
        );
    }

    #[test]
    fn estimate_script_matches_per_call_simulation() {
        // The greedy total must be exactly what replaying estimate_op
        // call-by-call (with memo dynamics) produces.
        let p = MachineProfile::REFERENCE;
        let t = pkfk(400, 3, 40, 6);
        let uses = [
            OpKind::Elementwise,
            OpKind::ElementwiseFallback,
            OpKind::Lmm { m: 1 },
            OpKind::Crossprod,
            OpKind::ElementwiseFallback,
        ];
        let script = estimate_script(&p, &t, &uses);
        let mut greedy = 0.0;
        let mut memoized = false;
        for &op in &uses {
            let e = estimate_op(&p, &t, op);
            let m = e.materialized_total_ns(memoized);
            if e.factorized_ns < m {
                greedy += e.factorized_ns;
            } else {
                greedy += m;
                memoized = true;
            }
        }
        assert_eq!(script.greedy_ns, greedy);
        assert_eq!(script.materialize_ns, materialize_ns(&p, &t));
    }

    #[test]
    fn lookahead_never_loses_by_more_than_one_join() {
        // lookahead = join + Σ min(f, m_op) while greedy ≥ Σ min(f, m_op):
        // the upfront schedule can lose at most the join it pre-pays, and
        // wins exactly when deferred per-call materialized savings exist.
        let p = MachineProfile::REFERENCE;
        let t = pkfk(300, 4, 30, 4);
        for uses in [
            vec![OpKind::Elementwise; 3],
            vec![OpKind::Crossprod, OpKind::Sum, OpKind::Lmm { m: 2 }],
            vec![OpKind::ElementwiseFallback; 6],
        ] {
            let s = estimate_script(&p, &t, &uses);
            assert!(s.lookahead_ns <= s.greedy_ns + s.materialize_ns + 1e-9);
            assert!(s.greedy_ns >= s.lookahead_ns - s.materialize_ns - 1e-9);
        }
    }

    #[test]
    fn repeated_fallback_uses_flip_the_script_verdict() {
        // One §3.3.7 fallback: the greedy planner already materializes
        // (its factorized route materializes internally anyway), so
        // look-ahead cannot help. Many fallback uses *after* factorized-
        // looking elementwise ops: the greedy path still wins the same
        // way. The interesting flip needs ops where greedy prefers the
        // factorized route per call but the summed materialized savings
        // exceed the join — construct it with a high-redundancy join
        // whose elementwise ops are individually near break-even.
        let p = MachineProfile::REFERENCE;
        // TR = 1: no redundancy, so factorized row_min pays gathers the
        // materialized scan avoids — per-call savings exist but each call
        // alone cannot justify the join.
        let t = pkfk(64, 2, 64, 32);
        let one = estimate_script(&p, &t, &[OpKind::RowMin]);
        // A single use never prefers up-front materialization when the
        // greedy route factorizes it.
        let e = estimate_op(&p, &t, OpKind::RowMin);
        if e.factorized_ns < e.materialized_total_ns(false) {
            assert!(!one.prefer_upfront_materialize());
        }
        // Stack enough uses and the verdict must eventually flip iff each
        // use leaves per-call savings on the table while the greedy
        // planner still factorizes it per call (f < m_op + join).
        let gap = e.factorized_ns - e.materialized_op_ns;
        if gap > 0.0 && e.factorized_ns < e.materialized_total_ns(false) {
            let needed = (e.materialize_ns / gap).ceil() as usize + 1;
            let many = estimate_script(&p, &t, &vec![OpKind::RowMin; needed.min(10_000)]);
            if (needed as f64) < 10_000.0 {
                assert!(
                    many.prefer_upfront_materialize(),
                    "{needed} uses at gap {gap} should justify the join: {many:?}"
                );
            }
        }
    }

    #[test]
    fn chunked_estimates_price_spill_traffic_on_the_materialized_route() {
        let p = MachineProfile::REFERENCE;
        let t = pkfk(10_000, 4, 100, 40);
        let resident = ChunkedCostCtx {
            chunk_rows: 512,
            resident_budget_bytes: f64::INFINITY,
            spill_read_ns_per_byte: 0.5,
            spill_write_ns_per_byte: 1.0,
        };
        let spilled = ChunkedCostCtx {
            resident_budget_bytes: 0.0,
            ..resident
        };
        for op in OpKind::ALL {
            let base = estimate_op(&p, &t, op);
            let res = estimate_op_chunked(&p, &t, op, &resident);
            let spl = estimate_op_chunked(&p, &t, op, &spilled);
            for e in [&res, &spl] {
                assert!(
                    e.factorized_ns.is_finite() && e.factorized_ns > 0.0,
                    "{op:?}"
                );
                assert!(e.materialized_op_ns.is_finite() && e.materialized_op_ns > 0.0);
            }
            // Chunked execution is never priced cheaper than in-memory:
            // DRAM-clamped tiers plus per-chunk dispatch only add cost.
            assert!(res.factorized_ns >= base.factorized_ns, "{op:?}");
            assert!(res.materialized_op_ns >= base.materialized_op_ns, "{op:?}");
            // Spilling charges the materialized route, not the factorized
            // one — the base tables stay resident.
            assert_eq!(spl.factorized_ns, res.factorized_ns, "{op:?}");
            assert!(spl.materialized_op_ns > res.materialized_op_ns, "{op:?}");
            assert!(spl.materialize_ns > res.materialize_ns, "{op:?}");
        }
        // The spill charge equals bytes x rate when everything spills.
        let mat_bytes = 8.0 * t.rows() as f64 * t.cols() as f64;
        let res = estimate_op_chunked(&p, &t, OpKind::Sum, &resident);
        let spl = estimate_op_chunked(&p, &t, OpKind::Sum, &spilled);
        assert!((spl.materialized_op_ns - res.materialized_op_ns - mat_bytes * 0.5).abs() < 1e-6);
        assert!((spl.materialize_ns - res.materialize_ns - mat_bytes * 1.0).abs() < 1e-6);
    }

    #[test]
    fn spill_pricing_flips_decisions_toward_factorized() {
        // At TR = 2, FR = 0.5 the in-memory model picks the materialized
        // route for LMM once the join is memoized; with the join spilled
        // to disk at a realistic read rate, every pass pays the spill
        // traffic and the factorized route must win.
        let p = MachineProfile::REFERENCE;
        let t = pkfk(2_000, 20, 1_000, 10);
        let ctx = ChunkedCostCtx {
            chunk_rows: 256,
            resident_budget_bytes: 0.0,
            spill_read_ns_per_byte: 1.0,
            spill_write_ns_per_byte: 1.0,
        };
        let op = OpKind::Lmm { m: 2 };
        let chunked = estimate_op_chunked(&p, &t, op, &ctx);
        assert!(
            chunked.factorized_ns < chunked.materialized_total_ns(true),
            "spilled join must favor factorized: {chunked:?}"
        );
    }
}
