//! Arithmetic-computation cost model (§3.4, Table 3; appendix F, Table 11).
//!
//! The paper characterizes each rewrite by the number of arithmetic
//! computations (multiplications + additions) of the standard (materialized)
//! and factorized versions, ignoring lower-order terms. This module encodes
//! those closed forms, the derived speedups, and their asymptotic limits:
//! for most operators the speedup converges to `1 + FR` as `TR → ∞` and to
//! `TR` as `FR → ∞`; for the cross-product it converges to `(1 + FR)²`
//! because its cost is quadratic in `d`.
//!
//! The cost model is used by tests (validating the rewrites' complexity
//! claims) and by the `table3` reproduction target.

/// Dimensions of a two-table PK-FK join, in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dims {
    /// Rows of the entity table S (= rows of T).
    pub n_s: f64,
    /// Features of S.
    pub d_s: f64,
    /// Rows of the attribute table R.
    pub n_r: f64,
    /// Features of R.
    pub d_r: f64,
}

impl Dims {
    /// Creates dimensions from integer sizes.
    pub fn new(n_s: usize, d_s: usize, n_r: usize, d_r: usize) -> Self {
        Self {
            n_s: n_s as f64,
            d_s: d_s as f64,
            n_r: n_r as f64,
            d_r: d_r as f64,
        }
    }

    /// Tuple ratio `TR = n_S / n_R`.
    pub fn tuple_ratio(&self) -> f64 {
        self.n_s / self.n_r
    }

    /// Feature ratio `FR = d_R / d_S`.
    pub fn feature_ratio(&self) -> f64 {
        self.d_r / self.d_s
    }

    /// Total feature count `d = d_S + d_R`.
    pub fn d(&self) -> f64 {
        self.d_s + self.d_r
    }
}

/// Arithmetic computation counts for one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Count for the standard (materialized) version.
    pub standard: f64,
    /// Count for the factorized version.
    pub factorized: f64,
}

impl OpCost {
    /// Predicted speedup `standard / factorized`.
    pub fn speedup(&self) -> f64 {
        self.standard / self.factorized
    }
}

/// Element-wise scalar operators: `n_S d` vs `n_S d_S + n_R d_R` (Table 3).
pub fn scalar_op(dm: &Dims) -> OpCost {
    OpCost {
        standard: dm.n_s * dm.d(),
        factorized: dm.n_s * dm.d_s + dm.n_r * dm.d_r,
    }
}

/// Aggregation operators share the scalar-op counts (Table 3).
pub fn aggregation(dm: &Dims) -> OpCost {
    scalar_op(dm)
}

/// LMM with a `d x d_X` parameter: `d_X n_S d` vs `d_X (n_S d_S + n_R d_R)`.
pub fn lmm(dm: &Dims, d_x: f64) -> OpCost {
    OpCost {
        standard: d_x * dm.n_s * dm.d(),
        factorized: d_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// RMM with an `n_X x n_S` parameter: `n_X n_S d` vs
/// `n_X (n_S d_S + n_R d_R)`.
pub fn rmm(dm: &Dims, n_x: f64) -> OpCost {
    OpCost {
        standard: n_x * dm.n_s * dm.d(),
        factorized: n_x * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
    }
}

/// Cross-product: `½ d² n_S` vs `½ d_S² n_S + ½ d_R² n_R + d_S d_R n_R`.
pub fn crossprod(dm: &Dims) -> OpCost {
    OpCost {
        standard: 0.5 * dm.d() * dm.d() * dm.n_s,
        factorized: 0.5 * dm.d_s * dm.d_s * dm.n_s
            + 0.5 * dm.d_r * dm.d_r * dm.n_r
            + dm.d_s * dm.d_r * dm.n_r,
    }
}

/// Pseudo-inverse (Table 11), branching on `n_S > d` vs `n_S ≤ d`. The
/// constants reflect R's economy-SVD (`7 n d² + 20 d³` for the standard
/// route, a `27 d³` Jacobi-style inner inversion for the factorized route).
pub fn pseudo_inverse(dm: &Dims) -> OpCost {
    let d = dm.d();
    if dm.n_s > d {
        OpCost {
            standard: 7.0 * dm.n_s * d * d + 20.0 * d * d * d,
            factorized: 27.0 * d * d * d
                + 0.5 * dm.d_s * dm.d_s * dm.n_s
                + 0.5 * dm.d_r * dm.d_r * dm.n_r
                + dm.d_s * dm.d_r * dm.n_r
                + d * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    } else {
        OpCost {
            standard: 7.0 * dm.n_s * dm.n_s * d + 20.0 * dm.n_s * dm.n_s * dm.n_s,
            factorized: 27.0 * dm.n_s * dm.n_s * dm.n_s
                + 0.5 * dm.n_s * dm.n_s * dm.d_s
                + 0.5 * dm.n_r * dm.n_r * dm.d_r
                + dm.n_s * (dm.n_s * dm.d_s + dm.n_r * dm.d_r),
        }
    }
}

/// Asymptotic speedup of the linear-cost operators (scalar, aggregation,
/// LMM, RMM) as `TR → ∞`: `1 + FR`.
pub fn linear_limit_tr(fr: f64) -> f64 {
    1.0 + fr
}

/// Asymptotic speedup of the linear-cost operators as `FR → ∞`: `TR`.
pub fn linear_limit_fr(tr: f64) -> f64 {
    tr
}

/// Asymptotic cross-product speedup as `TR → ∞`: `(1 + FR)²`.
pub fn crossprod_limit_tr(fr: f64) -> f64 {
    (1.0 + fr) * (1.0 + fr)
}

/// Asymptotic pseudo-inverse (`n > d`) speedup as `TR → ∞`:
/// `14 (1 + FR)² / (2 FR + 3)` (Table 11).
pub fn ginv_limit_tr(fr: f64) -> f64 {
    14.0 * (1.0 + fr) * (1.0 + fr) / (2.0 * fr + 3.0)
}

/// Asymptotic pseudo-inverse (`n ≤ d`) speedup as `FR → ∞`:
/// `14 TR² / (1 + TR)` (Table 11).
pub fn ginv_limit_fr(tr: f64) -> f64 {
    14.0 * tr * tr / (1.0 + tr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims(tr: f64, fr: f64) -> Dims {
        // Fix n_r and d_s, derive the rest from the ratios.
        let n_r = 1.0e6;
        let d_s = 20.0;
        Dims {
            n_s: tr * n_r,
            d_s,
            n_r,
            d_r: fr * d_s,
        }
    }

    #[test]
    fn speedups_increase_with_both_ratios() {
        let base = scalar_op(&dims(5.0, 1.0)).speedup();
        assert!(scalar_op(&dims(10.0, 1.0)).speedup() > base);
        assert!(scalar_op(&dims(5.0, 2.0)).speedup() > base);
    }

    #[test]
    fn lmm_and_rmm_speedups_independent_of_parameter_width() {
        let d = dims(10.0, 2.0);
        let s1 = lmm(&d, 1.0).speedup();
        let s8 = lmm(&d, 8.0).speedup();
        assert!((s1 - s8).abs() < 1e-12);
        assert!((rmm(&d, 3.0).speedup() - s1).abs() < 1e-12);
    }

    #[test]
    fn linear_ops_converge_to_one_plus_fr() {
        let fr = 3.0;
        let sp = scalar_op(&dims(1.0e6, fr)).speedup();
        assert!(
            (sp - linear_limit_tr(fr)).abs() < 1e-3,
            "speedup {sp} far from limit {}",
            linear_limit_tr(fr)
        );
    }

    #[test]
    fn linear_ops_converge_to_tr() {
        let tr = 15.0;
        let sp = scalar_op(&dims(tr, 1.0e6)).speedup();
        assert!((sp - linear_limit_fr(tr)).abs() / tr < 1e-3);
    }

    #[test]
    fn crossprod_converges_to_squared_limit() {
        let fr = 2.0;
        let sp = crossprod(&dims(1.0e8, fr)).speedup();
        assert!(
            (sp - crossprod_limit_tr(fr)).abs() / crossprod_limit_tr(fr) < 1e-2,
            "crossprod speedup {sp} vs limit {}",
            crossprod_limit_tr(fr)
        );
    }

    #[test]
    fn crossprod_speedup_exceeds_linear_ops() {
        // Quadratic-in-d cost ⇒ strictly larger wins at the same ratios.
        let d = dims(20.0, 4.0);
        assert!(crossprod(&d).speedup() > scalar_op(&d).speedup());
    }

    #[test]
    fn ginv_tall_converges_to_table11_limit() {
        let fr = 2.0;
        // n > d branch with huge TR.
        let d = dims(1.0e9, fr);
        let sp = pseudo_inverse(&d).speedup();
        let lim = ginv_limit_tr(fr);
        assert!(
            (sp - lim).abs() / lim < 1e-2,
            "ginv speedup {sp} vs limit {lim}"
        );
    }

    #[test]
    fn ginv_branches_on_shape() {
        // Wide case: n_S ≤ d.
        let wide = Dims::new(50, 40, 10, 10_000);
        let tall = Dims::new(100_000, 20, 1_000, 40);
        assert!(wide.n_s <= wide.d());
        assert!(tall.n_s > tall.d());
        // Both must produce positive costs.
        assert!(pseudo_inverse(&wide).standard > 0.0);
        assert!(pseudo_inverse(&tall).factorized > 0.0);
    }

    #[test]
    fn table3_example_row() {
        // Spot-check Table 3 arithmetic with concrete numbers.
        let d = Dims::new(100, 2, 10, 4);
        let c = scalar_op(&d);
        assert_eq!(c.standard, 600.0); // 100 * 6
        assert_eq!(c.factorized, 240.0); // 100*2 + 10*4
        let l = lmm(&d, 3.0);
        assert_eq!(l.standard, 1800.0);
        assert_eq!(l.factorized, 720.0);
        let cp = crossprod(&d);
        assert_eq!(cp.standard, 0.5 * 36.0 * 100.0);
        assert_eq!(
            cp.factorized,
            0.5 * 4.0 * 100.0 + 0.5 * 16.0 * 10.0 + 8.0 * 10.0
        );
    }

    #[test]
    fn ratios_helpers() {
        let d = Dims::new(100, 2, 10, 4);
        assert_eq!(d.tuple_ratio(), 10.0);
        assert_eq!(d.feature_ratio(), 2.0);
        assert_eq!(d.d(), 6.0);
    }
}
