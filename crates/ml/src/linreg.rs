//! Least-squares linear regression (paper Algorithms 5/6, 11/12, 13/14).
//!
//! Three solvers, all generic over [`LinearOperand`]:
//!
//! * [`LinearRegressionNe`] — normal equations
//!   `w = ginv(crossprod(T)) (Tᵀ Y)` (Algorithm 5). On normalized input the
//!   cross-product and transposed-LMM rewrites fire (Algorithm 6).
//! * [`LinearRegressionGd`] — gradient descent
//!   `w = w − α Tᵀ(T w − Y)` (Algorithm 11/12), for large `d` or singular
//!   Gram matrices.
//! * [`LinearRegressionCofactor`] — the Schleich et al. (SIGMOD'16) hybrid
//!   (Algorithm 13/14): build the co-factor `C = [Yᵀ T; crossprod(T)]` once,
//!   then iterate AdaGrad steps `w = w − α ⊙ (Cᵀ [−1; w])` that never touch
//!   the data again.

use morpheus_core::LinearOperand;
use morpheus_dense::DenseMatrix;
use morpheus_linalg::{ginv_sym_psd, solve_spd};

/// Normal-equations linear regression (Algorithm 5/6).
///
/// Follows the paper's §3.3.6 note that `solve` is preferred over a full
/// inversion when possible: the Gram system is first attempted with a
/// Cholesky solve (optionally ridge-stabilized); if the Gram matrix is not
/// positive definite (rank-deficient data, e.g. one-hot encodings), it
/// falls back to the pseudo-inverse route `ginv(crossprod(T)) (Tᵀ Y)`.
#[derive(Debug, Clone, Default)]
pub struct LinearRegressionNe {
    /// L2 (ridge) regularization added to the Gram diagonal; `0.0` gives
    /// plain least squares.
    pub ridge: f64,
}

impl LinearRegressionNe {
    /// Plain least squares (no ridge).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ridge-regularized least squares.
    pub fn with_ridge(ridge: f64) -> Self {
        Self { ridge }
    }

    /// Solves `min ‖T w − y‖² + ridge ‖w‖²` via the normal equations.
    ///
    /// # Panics
    /// Panics if `y` is not `n x 1`.
    pub fn fit<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> DenseMatrix {
        assert_eq!(y.shape(), (t.nrows(), 1), "linreg: y must be n x 1");
        let mut cp = t.crossprod(); // factorized cross-product
        if self.ridge > 0.0 {
            for i in 0..cp.rows() {
                let v = cp.get(i, i) + self.ridge;
                cp.set(i, i, v);
            }
        }
        let tty = t.t_lmm(y); // factorized transposed LMM
        match solve_spd(&cp, &tty) {
            Ok(w) => w,
            // Singular Gram matrix: use the Moore–Penrose route.
            Err(_) => ginv_sym_psd(&cp).matmul(&tty),
        }
    }
}

/// Gradient-descent linear regression (Algorithm 11/12).
#[derive(Debug, Clone)]
pub struct LinearRegressionGd {
    /// Step size `α`.
    pub alpha: f64,
    /// Number of gradient iterations.
    pub max_iter: usize,
}

impl Default for LinearRegressionGd {
    fn default() -> Self {
        Self {
            alpha: 1e-4,
            max_iter: 20,
        }
    }
}

impl LinearRegressionGd {
    /// Creates a trainer with the given step size and iteration count.
    pub fn new(alpha: f64, max_iter: usize) -> Self {
        Self { alpha, max_iter }
    }

    /// Trains from the zero vector, returning the weights and the squared
    /// error after each iteration.
    ///
    /// # Panics
    /// Panics if `y` is not `n x 1`.
    pub fn fit<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> (DenseMatrix, Vec<f64>) {
        assert_eq!(y.shape(), (t.nrows(), 1), "linreg: y must be n x 1");
        let mut w = DenseMatrix::zeros(t.ncols(), 1);
        let mut trace = Vec::with_capacity(self.max_iter);
        for _ in 0..self.max_iter {
            let resid = t.lmm(&w).sub(y); // T w − Y
            let grad = t.t_lmm(&resid); // Tᵀ (T w − Y)
            w.axpy(-self.alpha, &grad);
            trace.push(resid.frobenius_norm().powi(2));
        }
        (w, trace)
    }
}

/// Co-factor + AdaGrad linear regression (Schleich et al., Algorithm 13/14).
#[derive(Debug, Clone)]
pub struct LinearRegressionCofactor {
    /// Base step size `α`.
    pub alpha: f64,
    /// Number of AdaGrad iterations.
    pub max_iter: usize,
    /// AdaGrad denominator floor.
    pub eps: f64,
}

impl Default for LinearRegressionCofactor {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            max_iter: 20,
            eps: 1e-8,
        }
    }
}

impl LinearRegressionCofactor {
    /// Creates a trainer with the given step size and iteration count.
    pub fn new(alpha: f64, max_iter: usize) -> Self {
        Self {
            alpha,
            max_iter,
            eps: 1e-8,
        }
    }

    /// Builds the co-factor matrix `C = [Yᵀ T; crossprod(T)]`
    /// (`(d+1) x d`), the only data-touching step.
    pub fn cofactor<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> DenseMatrix {
        let yt_t = t.t_lmm(y).transpose(); // Yᵀ T : 1 x d
        let cp = t.crossprod(); // d x d
        yt_t.vstack(&cp)
    }

    /// Trains via AdaGrad on the precomputed co-factor. The gradient is
    /// `Cᵀ [−1; w] = crossprod(T) w − Tᵀ Y`, i.e. the least-squares
    /// gradient, reconstructed without touching `T` again.
    ///
    /// # Panics
    /// Panics if `y` is not `n x 1`.
    pub fn fit<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> DenseMatrix {
        assert_eq!(y.shape(), (t.nrows(), 1), "linreg: y must be n x 1");
        let c = self.cofactor(t, y);
        let d = t.ncols();
        let mut w = DenseMatrix::zeros(d, 1);
        let mut accum = vec![0.0f64; d];
        for _ in 0..self.max_iter {
            // [−1; w] is (d+1) x 1.
            let mut v = vec![0.0; d + 1];
            v[0] = -1.0;
            v[1..].copy_from_slice(w.as_slice());
            let grad = c.t_matmul(&DenseMatrix::col_vector(&v)); // d x 1
            for (i, acc) in accum.iter_mut().enumerate() {
                let g = grad.get(i, 0);
                *acc += g * g;
                let step = self.alpha / (acc.sqrt() + self.eps);
                w.set(i, 0, w.get(i, 0) - step * g);
            }
        }
        w
    }
}

/// Predicted responses `T w` for weights fitted by any of the linear
/// trainers in this module.
pub fn predict<M: LinearOperand>(t: &M, w: &DenseMatrix) -> DenseMatrix {
    t.lmm(w)
}

/// Like [`predict`], but written into a caller-provided buffer of
/// `t.nrows()` slots — the serving hot path reuses one allocation across
/// micro-batches instead of allocating per call. Bit-identical to
/// [`predict`] for every [`LinearOperand`] (the contract of
/// [`LinearOperand::lmm_into`]).
///
/// # Panics
/// Panics if `w` is not `d x 1` or `out.len() != t.nrows()`.
pub fn predict_into<M: LinearOperand>(t: &M, w: &DenseMatrix, out: &mut [f64]) {
    assert_eq!(w.cols(), 1, "predict_into: w must be d x 1");
    t.lmm_into(w, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::pkfk;

    #[test]
    fn ne_factorized_matches_materialized() {
        let fx = pkfk(50, 3, 8, 4, 13);
        let wf = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        let wm = LinearRegressionNe::new().fit(&fx.t, &fx.y);
        assert!(wf.approx_eq(&wm, 1e-7));
    }

    #[test]
    fn ne_planned_routing_matches_pure_paths() {
        // All three data representations — normalized, materialized, and
        // per-operator planned — must land on the same solution.
        let fx = pkfk(50, 3, 8, 4, 13);
        let w_planned = LinearRegressionNe::new().fit(&crate::test_data::planned(&fx.tn), &fx.y);
        let w_f = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        let w_m = LinearRegressionNe::new().fit(&fx.t, &fx.y);
        assert!(w_planned.approx_eq(&w_f, 1e-7));
        assert!(w_planned.approx_eq(&w_m, 1e-7));
    }

    #[test]
    fn ne_recovers_planted_model() {
        let fx = pkfk(100, 3, 10, 3, 17);
        let w = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        assert!(
            w.approx_eq(&fx.w_true, 1e-6),
            "normal equations failed to recover the noiseless model"
        );
    }

    #[test]
    fn gd_factorized_matches_materialized() {
        let fx = pkfk(40, 2, 5, 3, 19);
        let trainer = LinearRegressionGd::new(1e-3, 15);
        let (wf, tf) = trainer.fit(&fx.tn, &fx.y);
        let (wm, tm) = trainer.fit(&fx.t, &fx.y);
        assert!(wf.approx_eq(&wm, 1e-9));
        for (a, b) in tf.iter().zip(&tm) {
            assert!((a - b).abs() <= 1e-9 * b.max(1.0));
        }
    }

    #[test]
    fn gd_loss_decreases() {
        let fx = pkfk(60, 3, 6, 2, 23);
        let (_, trace) = LinearRegressionGd::new(1e-3, 30).fit(&fx.tn, &fx.y);
        assert!(trace.last().unwrap() < trace.first().unwrap());
    }

    #[test]
    fn cofactor_factorized_matches_materialized() {
        let fx = pkfk(40, 2, 5, 3, 29);
        let trainer = LinearRegressionCofactor::new(0.05, 25);
        let cf = trainer.cofactor(&fx.tn, &fx.y);
        let cm = trainer.cofactor(&fx.t, &fx.y);
        assert!(cf.approx_eq(&cm, 1e-9));
        let wf = trainer.fit(&fx.tn, &fx.y);
        let wm = trainer.fit(&fx.t, &fx.y);
        assert!(wf.approx_eq(&wm, 1e-9));
    }

    #[test]
    fn cofactor_gradient_is_least_squares_gradient() {
        // Cᵀ[−1; w] must equal TᵀT w − Tᵀ y for any w.
        let fx = pkfk(30, 2, 4, 2, 31);
        let trainer = LinearRegressionCofactor::default();
        let c = trainer.cofactor(&fx.t, &fx.y);
        let d = fx.t.cols();
        let w = DenseMatrix::from_fn(d, 1, |i, _| (i as f64) * 0.1 - 0.2);
        let mut v = vec![0.0; d + 1];
        v[0] = -1.0;
        v[1..].copy_from_slice(w.as_slice());
        let via_cofactor = c.t_matmul(&DenseMatrix::col_vector(&v));
        let direct = fx.t.crossprod().matmul(&w).sub(&fx.t.t_matmul_dense(&fx.y));
        assert!(via_cofactor.approx_eq(&direct, 1e-9));
    }

    #[test]
    fn ridge_shrinks_weights() {
        let fx = pkfk(60, 3, 8, 3, 41);
        let w0 = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        let w1 = LinearRegressionNe::with_ridge(100.0).fit(&fx.tn, &fx.y);
        assert!(w1.frobenius_norm() < w0.frobenius_norm());
    }

    #[test]
    fn singular_gram_falls_back_to_pseudo_inverse() {
        // Duplicate feature columns make crossprod singular.
        let base = DenseMatrix::from_fn(20, 2, |i, j| ((i * 3 + j) % 7) as f64 + 0.5);
        let t = morpheus_core::Matrix::Dense(base.hstack(&base));
        let y = DenseMatrix::from_fn(20, 1, |i, _| (i % 5) as f64);
        let w = LinearRegressionNe::new().fit(&t, &y);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
        // Minimum-norm solution: duplicated columns share weight equally.
        assert!((w.get(0, 0) - w.get(2, 0)).abs() < 1e-6);
    }

    #[test]
    fn all_three_solvers_approach_the_same_model() {
        let fx = pkfk(120, 3, 8, 3, 37);
        let w_ne = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        let (w_gd, _) = LinearRegressionGd::new(2e-3, 4000).fit(&fx.tn, &fx.y);
        assert!(
            w_gd.approx_eq(&w_ne, 1e-2),
            "GD did not converge towards the NE solution"
        );
    }

    #[test]
    fn predict_into_is_bit_identical_to_predict() {
        let fx = pkfk(50, 3, 8, 4, 13);
        let w = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        // All three data representations: normalized, materialized, planned.
        let planned = crate::test_data::planned(&fx.tn);
        let n = fx.t.rows();
        let mut buf = vec![f64::NAN; n];
        for (alloc, run) in [
            (predict(&fx.tn, &w), {
                predict_into(&fx.tn, &w, &mut buf);
                buf.clone()
            }),
            (predict(&fx.t, &w), {
                predict_into(&fx.t, &w, &mut buf);
                buf.clone()
            }),
            (predict(&planned, &w), {
                predict_into(&planned, &w, &mut buf);
                buf.clone()
            }),
        ] {
            for (a, b) in alloc.as_slice().iter().zip(&run) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batch_slice_predictions_match_full_scoring() {
        // Scoring a factorized micro-batch slice must reproduce, bit for
        // bit, the corresponding entries of a full-table scoring pass —
        // the invariant the serving layer's coalescing relies on.
        let fx = pkfk(50, 3, 8, 4, 13);
        let w = LinearRegressionNe::new().fit(&fx.tn, &fx.y);
        let full = predict(&fx.tn, &w);
        let rows = [3usize, 0, 3, 47, 11];
        let (slice, truth) = fx.batch(&rows);
        let mut buf = vec![0.0; rows.len()];
        predict_into(&slice, &w, &mut buf);
        for (j, &r) in rows.iter().enumerate() {
            assert_eq!(buf[j].to_bits(), full.get(r, 0).to_bits());
        }
        // And the slice agrees with its materialized ground truth.
        let direct = predict(&truth, &w);
        for (a, b) in buf.iter().zip(direct.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}
