//! Losses and quality metrics shared by tests, examples, and benchmarks.

use morpheus_dense::DenseMatrix;

/// Negative log-likelihood of logistic regression with `y ∈ {−1, +1}`:
/// `Σ log(1 + exp(−yᵢ · tᵢ))`, given the margins `t = T w`.
///
/// # Panics
/// Panics if shapes differ.
pub fn logistic_loss(tw: &DenseMatrix, y: &DenseMatrix) -> f64 {
    assert_eq!(tw.shape(), y.shape(), "logistic_loss: shape mismatch");
    tw.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&t, &yi)| {
            let m = -yi * t;
            // log1p(exp(m)) computed stably for large |m|.
            if m > 30.0 {
                m
            } else {
                m.exp().ln_1p()
            }
        })
        .sum()
}

/// Classification accuracy of probabilities against labels `y ∈ {−1, +1}`
/// with a 0.5 threshold.
///
/// # Panics
/// Panics if shapes differ.
pub fn accuracy(proba: &DenseMatrix, y: &DenseMatrix) -> f64 {
    assert_eq!(proba.shape(), y.shape(), "accuracy: shape mismatch");
    let n = y.len().max(1);
    let correct = proba
        .as_slice()
        .iter()
        .zip(y.as_slice())
        .filter(|(&p, &yi)| (p >= 0.5) == (yi > 0.0))
        .count();
    correct as f64 / n as f64
}

/// Mean squared error between predictions and targets.
///
/// # Panics
/// Panics if shapes differ.
pub fn mse(pred: &DenseMatrix, y: &DenseMatrix) -> f64 {
    assert_eq!(pred.shape(), y.shape(), "mse: shape mismatch");
    let n = y.len().max(1);
    pred.as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f64>()
        / n as f64
}

/// Coefficient of determination `R²`.
///
/// # Panics
/// Panics if shapes differ.
pub fn r2(pred: &DenseMatrix, y: &DenseMatrix) -> f64 {
    assert_eq!(pred.shape(), y.shape(), "r2: shape mismatch");
    let mean = y.mean();
    let ss_res: f64 = pred
        .as_slice()
        .iter()
        .zip(y.as_slice())
        .map(|(&p, &t)| (t - p) * (t - p))
        .sum();
    let ss_tot: f64 = y.as_slice().iter().map(|&t| (t - mean) * (t - mean)).sum();
    1.0 - ss_res / ss_tot.max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_loss_at_zero_margin() {
        let tw = DenseMatrix::zeros(4, 1);
        let y = DenseMatrix::col_vector(&[1.0, -1.0, 1.0, -1.0]);
        // log(2) per example.
        assert!((logistic_loss(&tw, &y) - 4.0 * 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn logistic_loss_stable_for_large_margins() {
        let tw = DenseMatrix::col_vector(&[1000.0]);
        let y = DenseMatrix::col_vector(&[-1.0]);
        let l = logistic_loss(&tw, &y);
        assert!(l.is_finite());
        assert!((l - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_threshold_matches() {
        let p = DenseMatrix::col_vector(&[0.9, 0.2, 0.6, 0.4]);
        let y = DenseMatrix::col_vector(&[1.0, -1.0, -1.0, -1.0]);
        assert!((accuracy(&p, &y) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mse_and_r2_on_perfect_fit() {
        let y = DenseMatrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(mse(&y, &y), 0.0);
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_zero_for_mean_predictor() {
        let y = DenseMatrix::col_vector(&[1.0, 2.0, 3.0]);
        let mean_pred = DenseMatrix::filled(3, 1, 2.0);
        assert!(r2(&mean_pred, &y).abs() < 1e-12);
    }
}
