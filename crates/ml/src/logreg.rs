//! Logistic regression via gradient descent (paper Algorithms 3 & 4).
//!
//! The standard LA script is
//!
//! ```text
//! for i in 1 : max_iter do
//!     w = w + α * (Tᵀ (Y / (1 + exp(Y ∘ T w))))
//! end
//! ```
//!
//! with labels `Y ∈ {−1, +1}ⁿ` — the gradient-ascent update on the
//! logistic log-likelihood from Kumar et al. (SIGMOD'15), which the paper's
//! Algorithm 3 abbreviates as `Y/(1 + exp(T w))`. The element-wise label
//! product only touches `n x 1` vectors, so the factorized operator
//! pattern is identical. Written against [`LinearOperand`], the two
//! data-intensive operators — the LMM `T w` and the transposed LMM
//! `Tᵀ P` — factorize automatically on normalized input, reproducing the
//! paper's Algorithm 4 without any algorithm-specific rewriting.

use morpheus_core::LinearOperand;
use morpheus_dense::DenseMatrix;

/// Gradient-descent logistic regression, following the paper's script.
#[derive(Debug, Clone)]
pub struct LogisticRegressionGd {
    /// Step size `α`.
    pub alpha: f64,
    /// Number of gradient iterations.
    pub max_iter: usize,
}

impl Default for LogisticRegressionGd {
    fn default() -> Self {
        Self {
            alpha: 1e-3,
            max_iter: 20,
        }
    }
}

/// A fitted logistic-regression model.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    /// Weight vector `w` (`d x 1`).
    pub w: DenseMatrix,
    /// Negative log-likelihood after each iteration; empty unless trained
    /// with [`LogisticRegressionGd::fit_traced`].
    pub loss_trace: Vec<f64>,
}

/// Fused element-wise gradient scaling `P = Y / (1 + exp(Y ∘ m))`, one pass
/// over the margins `m = T w`. Overwrites `m` in place — the single
/// intermediate the update needs, matching what R's vectorized expression
/// would allocate after constant folding.
fn logistic_scale_in_place(margins: &mut DenseMatrix, y: &DenseMatrix) {
    for (pv, &yv) in margins.as_mut_slice().iter_mut().zip(y.as_slice()) {
        *pv = yv / (1.0 + (yv * *pv).exp());
    }
}

impl LogisticRegressionGd {
    /// Creates a trainer with the given step size and iteration count.
    pub fn new(alpha: f64, max_iter: usize) -> Self {
        Self { alpha, max_iter }
    }

    /// Trains on any [`LinearOperand`] data matrix with labels
    /// `y ∈ {−1, +1}` (`n x 1`), starting from the zero vector. No loss
    /// trace is recorded (see [`LogisticRegressionGd::fit_traced`]).
    ///
    /// # Panics
    /// Panics if `y` is not `n x 1`.
    pub fn fit<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> LogisticModel {
        let w0 = DenseMatrix::zeros(t.ncols(), 1);
        self.fit_impl(t, y, &w0, false)
    }

    /// Like [`LogisticRegressionGd::fit`], but records the negative
    /// log-likelihood after every iteration (one extra O(n) pass per
    /// iteration).
    pub fn fit_traced<M: LinearOperand>(&self, t: &M, y: &DenseMatrix) -> LogisticModel {
        let w0 = DenseMatrix::zeros(t.ncols(), 1);
        self.fit_impl(t, y, &w0, true)
    }

    /// Trains from an explicit initial weight vector.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn fit_from<M: LinearOperand>(
        &self,
        t: &M,
        y: &DenseMatrix,
        w0: &DenseMatrix,
    ) -> LogisticModel {
        self.fit_impl(t, y, w0, false)
    }

    fn fit_impl<M: LinearOperand>(
        &self,
        t: &M,
        y: &DenseMatrix,
        w0: &DenseMatrix,
        traced: bool,
    ) -> LogisticModel {
        assert_eq!(y.shape(), (t.nrows(), 1), "logreg: y must be n x 1");
        assert_eq!(w0.shape(), (t.ncols(), 1), "logreg: w0 must be d x 1");
        let mut w = w0.clone();
        let mut loss_trace = Vec::new();
        for _ in 0..self.max_iter {
            let mut tw = t.lmm(&w); // T w — factorized LMM on normalized input
            if traced {
                loss_trace.push(crate::metrics::logistic_loss(&tw, y));
            }
            // P = Y / (1 + exp(Y ∘ T w)), fused into one pass over T w.
            logistic_scale_in_place(&mut tw, y);
            let grad = t.t_lmm(&tw); // Tᵀ P — factorized transposed LMM
            w.axpy(self.alpha, &grad);
        }
        LogisticModel { w, loss_trace }
    }

    /// Per-iteration body only (used by the ORE-style chunked benchmarks
    /// that time a single iteration).
    pub fn step<M: LinearOperand>(&self, t: &M, y: &DenseMatrix, w: &mut DenseMatrix) {
        let mut tw = t.lmm(w);
        logistic_scale_in_place(&mut tw, y);
        let grad = t.t_lmm(&tw);
        w.axpy(self.alpha, &grad);
    }
}

/// Predicts class probabilities `σ(T w)` for a fitted model.
pub fn predict_proba<M: LinearOperand>(t: &M, w: &DenseMatrix) -> DenseMatrix {
    t.lmm(w).sigmoid()
}

/// Like [`predict_proba`], but written into a caller-provided buffer of
/// `t.nrows()` slots so a scoring hot path can reuse one allocation per
/// batch. Bit-identical to [`predict_proba`]: the margin comes from
/// [`LinearOperand::lmm_into`] (itself bit-identical to `lmm`) and the
/// sigmoid below is the same expression `DenseMatrix::sigmoid` applies.
///
/// # Panics
/// Panics if `w` is not `d x 1` or `out.len() != t.nrows()`.
pub fn predict_proba_into<M: LinearOperand>(t: &M, w: &DenseMatrix, out: &mut [f64]) {
    assert_eq!(w.cols(), 1, "predict_proba_into: w must be d x 1");
    t.lmm_into(w, out);
    for v in out.iter_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
}

impl LogisticModel {
    /// Class probabilities `σ(T w)` on new data.
    pub fn predict_proba<M: LinearOperand>(&self, t: &M) -> DenseMatrix {
        predict_proba(t, &self.w)
    }

    /// Allocation-free variant of [`LogisticModel::predict_proba`]; see
    /// [`predict_proba_into`].
    pub fn predict_proba_into<M: LinearOperand>(&self, t: &M, out: &mut [f64]) {
        predict_proba_into(t, &self.w, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::pkfk;

    fn binarize(y: &DenseMatrix) -> DenseMatrix {
        y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
    }

    #[test]
    fn factorized_matches_materialized_trajectory() {
        let fx = pkfk(60, 3, 8, 4, 7);
        let y = binarize(&fx.y);
        let trainer = LogisticRegressionGd::new(1e-2, 15);
        let fact = trainer.fit_traced(&fx.tn, &y);
        let mat = trainer.fit_traced(&fx.t, &y);
        assert!(
            fact.w.approx_eq(&mat.w, 1e-9),
            "weight vectors diverged between factorized and materialized"
        );
        for (a, b) in fact.loss_trace.iter().zip(&mat.loss_trace) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn planned_routing_matches_pure_trajectories() {
        let fx = pkfk(60, 3, 8, 4, 7);
        let y = binarize(&fx.y);
        let trainer = LogisticRegressionGd::new(1e-2, 15);
        let planned = trainer.fit_traced(&crate::test_data::planned(&fx.tn), &y);
        let mat = trainer.fit_traced(&fx.t, &y);
        assert!(planned.w.approx_eq(&mat.w, 1e-9));
        for (a, b) in planned.loss_trace.iter().zip(&mat.loss_trace) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn loss_decreases() {
        let fx = pkfk(80, 3, 10, 3, 11);
        let y = binarize(&fx.y);
        let m = LogisticRegressionGd::new(5e-3, 25).fit_traced(&fx.tn, &y);
        let first = m.loss_trace.first().unwrap();
        let last = m.loss_trace.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
    }

    #[test]
    fn learns_separable_data() {
        let fx = pkfk(120, 4, 6, 2, 3);
        let y = binarize(&fx.y);
        let m = LogisticRegressionGd::new(1e-2, 300).fit(&fx.tn, &y);
        let proba = predict_proba(&fx.tn, &m.w);
        // The planted labels are separable but many points sit very close
        // to the hyperplane; finite-iteration GD classifies the clear
        // majority correctly.
        let acc = crate::metrics::accuracy(&proba, &y);
        assert!(acc > 0.8, "accuracy too low: {acc}");
        // On the comfortably-separated examples (|margin| > 0.2) accuracy
        // must be essentially perfect.
        let (mut hits, mut total) = (0usize, 0usize);
        for i in 0..y.rows() {
            if fx.y.get(i, 0).abs() > 0.2 {
                total += 1;
                if (proba.get(i, 0) >= 0.5) == (y.get(i, 0) > 0.0) {
                    hits += 1;
                }
            }
        }
        assert!(total > 20, "fixture produced too few clear examples");
        assert!(
            hits as f64 / total as f64 > 0.95,
            "clear-margin accuracy too low: {hits}/{total}"
        );
    }

    #[test]
    fn step_matches_one_iteration_of_fit() {
        let fx = pkfk(30, 2, 5, 2, 5);
        let y = binarize(&fx.y);
        let trainer = LogisticRegressionGd::new(1e-2, 1);
        let fitted = trainer.fit(&fx.tn, &y);
        let mut w = DenseMatrix::zeros(fx.tn.cols(), 1);
        trainer.step(&fx.tn, &y, &mut w);
        assert!(w.approx_eq(&fitted.w, 1e-12));
    }

    #[test]
    #[should_panic(expected = "y must be n x 1")]
    fn wrong_label_shape_panics() {
        let fx = pkfk(10, 2, 2, 2, 1);
        LogisticRegressionGd::default().fit(&fx.tn, &DenseMatrix::zeros(3, 1));
    }

    #[test]
    fn predict_proba_into_is_bit_identical_to_predict_proba() {
        let fx = pkfk(40, 3, 6, 3, 19);
        let y = binarize(&fx.y);
        let model = LogisticRegressionGd::new(1e-2, 10).fit(&fx.tn, &y);
        let planned = crate::test_data::planned(&fx.tn);
        let mut buf = vec![f64::NAN; fx.t.rows()];
        let check = |alloc: DenseMatrix, run: &[f64]| {
            for (a, b) in alloc.as_slice().iter().zip(run) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        };
        model.predict_proba_into(&fx.tn, &mut buf);
        check(model.predict_proba(&fx.tn), &buf);
        model.predict_proba_into(&fx.t, &mut buf);
        check(model.predict_proba(&fx.t), &buf);
        model.predict_proba_into(&planned, &mut buf);
        check(model.predict_proba(&planned), &buf);
        // Micro-batch slices reproduce the full pass bit for bit.
        let rows = [7usize, 7, 0, 33];
        let (slice, _) = fx.batch(&rows);
        let mut small = vec![0.0; rows.len()];
        model.predict_proba_into(&slice, &mut small);
        let full = model.predict_proba(&fx.tn);
        for (j, &r) in rows.iter().enumerate() {
            assert_eq!(small[j].to_bits(), full.get(r, 0).to_bits());
        }
    }
}
