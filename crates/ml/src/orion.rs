//! Orion-style factorized logistic regression (Kumar et al., SIGMOD'15) —
//! the algorithm-specific baseline of the paper's Table 8 comparison.
//!
//! Orion's "factorized learning" decomposes the inner products
//! `wᵀx = w_Sᵀx_S + w_Rᵀx_R` and caches the R-side partial inner products
//! in an **associative array** keyed by the foreign key, re-using them for
//! every S-tuple that references the same R-tuple. The gradient is
//! assembled the same way, with a second associative array accumulating
//! partial sums grouped by foreign key.
//!
//! The paper's Morpheus replaces those associative arrays with sparse
//! matrix products to preserve LA closure, accepting a small constant
//! overhead but — per Table 8 — actually winning because it skips Orion's
//! hashing. This module reproduces Orion's structure faithfully, *including*
//! the hash-map lookups on the hot path, so the Table 8 comparison
//! exercises the same trade-off.

use morpheus_dense::{dot, DenseMatrix};
use std::collections::HashMap;

/// Orion-style factorized trainer for a single PK-FK join.
///
/// Unlike the Morpheus-factorized [`crate::logreg::LogisticRegressionGd`],
/// this implementation is *algorithm- and schema-specific*: it only handles
/// dense two-table PK-FK inputs — exactly the restriction the paper
/// criticizes in prior work.
#[derive(Debug, Clone)]
pub struct OrionLogisticRegression {
    /// Step size `α`.
    pub alpha: f64,
    /// Number of gradient iterations.
    pub max_iter: usize,
}

impl OrionLogisticRegression {
    /// Creates a trainer with the given step size and iteration count.
    pub fn new(alpha: f64, max_iter: usize) -> Self {
        Self { alpha, max_iter }
    }

    /// Trains on the base tables directly: entity features `s`
    /// (`n_S x d_S`), foreign key `fk`, attribute features `r`
    /// (`n_R x d_R`), labels `y ∈ {−1, +1}`.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn fit(
        &self,
        s: &DenseMatrix,
        fk: &[usize],
        r: &DenseMatrix,
        y: &DenseMatrix,
    ) -> DenseMatrix {
        let n_s = s.rows();
        let d_s = s.cols();
        let d_r = r.cols();
        assert_eq!(fk.len(), n_s, "orion: fk length mismatch");
        assert_eq!(y.shape(), (n_s, 1), "orion: y must be n x 1");
        let mut w = vec![0.0f64; d_s + d_r];
        for _ in 0..self.max_iter {
            let (w_s, w_r) = w.split_at(d_s);
            // Phase 1: partial inner products over R, cached in an
            // associative array keyed by the FK value (Orion's HR table).
            let mut hr: HashMap<usize, f64> = HashMap::with_capacity(r.rows());
            for rid in 0..r.rows() {
                hr.insert(rid, dot(r.row(rid), w_r));
            }
            // Phase 2: scan S, combine with the cached R-side products via
            // hash lookup, and accumulate the S-side gradient plus the
            // grouped R-side partial gradients (Orion's second pass).
            let mut grad_s = vec![0.0f64; d_s];
            let mut hgrad: HashMap<usize, f64> = HashMap::with_capacity(r.rows());
            for i in 0..n_s {
                let full = dot(s.row(i), w_s) + hr[&fk[i]];
                let yi = y.get(i, 0);
                let p = yi / (1.0 + (yi * full).exp());
                for (g, &x) in grad_s.iter_mut().zip(s.row(i)) {
                    *g += p * x;
                }
                *hgrad.entry(fk[i]).or_insert(0.0) += p;
            }
            // Phase 3: expand the grouped partials through R.
            let mut grad_r = vec![0.0f64; d_r];
            for (&rid, &p) in &hgrad {
                for (g, &x) in grad_r.iter_mut().zip(r.row(rid)) {
                    *g += p * x;
                }
            }
            for (wi, g) in w.iter_mut().zip(grad_s.iter().chain(&grad_r)) {
                *wi += self.alpha * g;
            }
        }
        DenseMatrix::col_vector(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logreg::LogisticRegressionGd;
    use crate::test_data::{pkfk, Fixture};

    /// Recovers the base tables `(S, fk, R)` from the fixture's
    /// normalized matrix via the centralized assignment extraction.
    fn base_tables(fx: &Fixture) -> (DenseMatrix, Vec<usize>, DenseMatrix) {
        let parts = fx.tn.parts();
        let s = parts[0].table().to_dense();
        let r = parts[1].table().to_dense();
        let fk = parts[1].indicator().assignment(parts[1].table().rows());
        (s, fk, r)
    }

    #[test]
    fn orion_matches_morpheus_factorized_logreg() {
        let fx = pkfk(50, 3, 6, 4, 53);
        let y = fx.y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let (s, fk, r) = base_tables(&fx);

        let orion = OrionLogisticRegression::new(1e-2, 12).fit(&s, &fk, &r, &y);
        let morpheus = LogisticRegressionGd::new(1e-2, 12).fit(&fx.tn, &y);
        assert!(
            orion.approx_eq(&morpheus.w, 1e-9),
            "Orion and Morpheus must compute identical models"
        );
    }

    #[test]
    fn orion_matches_materialized_logreg() {
        let fx = pkfk(30, 2, 4, 2, 59);
        let y = fx.y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let (s, fk, r) = base_tables(&fx);

        let orion = OrionLogisticRegression::new(5e-3, 8).fit(&s, &fk, &r, &y);
        let mat = LogisticRegressionGd::new(5e-3, 8).fit(&fx.t, &y);
        assert!(orion.approx_eq(&mat.w, 1e-9));
    }

    #[test]
    fn learns_signal() {
        let fx = pkfk(120, 4, 6, 2, 61);
        let y = fx.y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 });
        let (s, fk, r) = base_tables(&fx);
        let w = OrionLogisticRegression::new(1e-2, 200).fit(&s, &fk, &r, &y);
        let proba = crate::logreg::predict_proba(&fx.t, &w);
        assert!(crate::metrics::accuracy(&proba, &y) > 0.9);
    }
}
