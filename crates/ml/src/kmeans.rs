//! K-Means clustering in linear algebra (paper Algorithms 7 & 15).
//!
//! The LA formulation works on whole matrices — pairwise squared distances
//! via `rowSums(T²)`, `colSums(C²)` and the LMM `T C` — which is exactly
//! what makes it factorizable:
//!
//! ```text
//! D_T = rowSums(T²) 1_{1xk}
//! repeat:
//!     D = D_T + 1_{nx1} colSums(C²) − 2 T C
//!     A = (D == rowMin(D) 1_{1xk})
//!     C = (Tᵀ A) / (1_{dx1} colSums(A))
//! ```
//!
//! The `rowSums(T²)` pre-computation showcases operator *composition*:
//! `squared()` returns a normalized matrix, whose `row_sums()` then
//! factorizes too. Assignment ties are broken toward the lowest centroid
//! index (equivalent to the paper's `D == rowMin(D)` with deterministic
//! tie-breaking).

use morpheus_core::LinearOperand;
use morpheus_dense::DenseMatrix;

/// LA-formulated K-Means.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of centroids `k`.
    pub k: usize,
    /// Number of Lloyd iterations.
    pub max_iter: usize,
}

/// A fitted K-Means model.
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Centroid matrix `C` (`d x k`, centroids are columns).
    pub centroids: DenseMatrix,
    /// Cluster index per data row.
    pub assignments: Vec<usize>,
    /// Within-cluster sum of squared distances after the final iteration.
    pub inertia: f64,
}

impl KMeans {
    /// Creates a trainer with `k` centroids and `max_iter` iterations.
    pub fn new(k: usize, max_iter: usize) -> Self {
        Self { k, max_iter }
    }

    /// Deterministic initial centroids: the first `k` distinct data rows
    /// of the materialized matrix would break factorization, so instead we
    /// seed from `Tᵀ E` where `E` picks every `n/k`-th unit row — an LMM,
    /// hence factorized.
    fn init_centroids<M: LinearOperand>(&self, t: &M) -> DenseMatrix {
        let n = t.nrows();
        let mut e = DenseMatrix::zeros(n, self.k);
        for c in 0..self.k {
            let row = (c * n.max(1)) / self.k.max(1);
            e.set(row.min(n - 1), c, 1.0);
        }
        t.t_lmm(&e) // d x k: column c is data row `row` — a real data point
    }

    /// Runs Lloyd iterations on any [`LinearOperand`] data matrix.
    ///
    /// # Panics
    /// Panics if `k == 0` or the data has no rows.
    pub fn fit<M: LinearOperand>(&self, t: &M) -> KMeansModel {
        assert!(self.k > 0, "kmeans: k must be positive");
        assert!(t.nrows() > 0, "kmeans: empty data");
        let c0 = self.init_centroids(t);
        self.fit_from(t, &c0)
    }

    /// Runs Lloyd iterations from explicit initial centroids (`d x k`).
    ///
    /// # Panics
    /// Panics if `c0` is not `d x k`.
    pub fn fit_from<M: LinearOperand>(&self, t: &M, c0: &DenseMatrix) -> KMeansModel {
        assert_eq!(
            c0.shape(),
            (t.ncols(), self.k),
            "kmeans: initial centroids must be d x k"
        );
        let n = t.nrows();
        // Pre-compute rowSums(T²) — factorized through squared() + row_sums().
        let dt = t.squared().row_sums(); // n x 1
        let two_t = t.scale(2.0); // stays normalized on normalized input
        let mut c = c0.clone();
        let mut assignments = vec![0usize; n];
        let mut inertia = 0.0;
        for _ in 0..self.max_iter {
            // D = D_T 1 + 1 colSums(C²) − 2 T C, an n x k distance matrix.
            let c2 = c.scalar_pow(2.0).col_sums(); // 1 x k
            let mut d = two_t.lmm(&c).scalar_mul(-1.0); // −2 T C
            d.add_assign(&dt.replicate_cols(self.k));
            d.add_assign(&c2.replicate_rows(n));
            // A = one-hot argmin per row (ties toward lowest index).
            assignments = d.row_argmin();
            inertia = assignments
                .iter()
                .enumerate()
                .map(|(i, &j)| d.get(i, j))
                .sum::<f64>();
            let mut a = DenseMatrix::zeros(n, self.k);
            for (i, &j) in assignments.iter().enumerate() {
                a.set(i, j, 1.0);
            }
            // C = (Tᵀ A) / colSums(A) columns; empty clusters keep their
            // previous centroid (a common Lloyd convention).
            let counts = a.col_sums();
            let num = t.t_lmm(&a); // d x k
            for col in 0..self.k {
                let cnt = counts.get(0, col);
                if cnt > 0.0 {
                    for row in 0..num.rows() {
                        c.set(row, col, num.get(row, col) / cnt);
                    }
                }
            }
        }
        KMeansModel {
            centroids: c,
            assignments,
            inertia: inertia.max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_data::pkfk;

    #[test]
    fn factorized_matches_materialized() {
        let fx = pkfk(60, 3, 8, 3, 41);
        let km = KMeans::new(4, 10);
        let mf = km.fit(&fx.tn);
        let mm = km.fit(&fx.t);
        assert_eq!(mf.assignments, mm.assignments);
        assert!(mf.centroids.approx_eq(&mm.centroids, 1e-8));
        assert!((mf.inertia - mm.inertia).abs() <= 1e-8 * mm.inertia.max(1.0));
    }

    #[test]
    fn planned_routing_matches_pure_paths() {
        // K-Means chains closure ops (squared, scale) with LMMs and
        // aggregations — exactly the mix the per-operator planner routes.
        let fx = pkfk(60, 3, 8, 3, 41);
        let km = KMeans::new(4, 10);
        let planned = km.fit(&crate::test_data::planned(&fx.tn));
        let mm = km.fit(&fx.t);
        assert_eq!(planned.assignments, mm.assignments);
        assert!(planned.centroids.approx_eq(&mm.centroids, 1e-8));
    }

    #[test]
    fn separated_clusters_are_found() {
        // Two far-apart blobs in a PK-FK layout: R carries the blob offset.
        use morpheus_core::NormalizedMatrix;
        let mut rng = crate::test_data::stream(5);
        let s = DenseMatrix::from_fn(40, 1, |_, _| rng() * 0.1);
        let r = DenseMatrix::from_rows(&[&[0.0, 0.0], &[50.0, 50.0]]);
        let fk: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let model = KMeans::new(2, 15).fit(&tn);
        // All even rows together, all odd rows together.
        let c0 = model.assignments[0];
        for (i, &a) in model.assignments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, c0);
            } else {
                assert_ne!(a, c0);
            }
        }
    }

    #[test]
    fn inertia_nonincreasing_over_iterations() {
        let fx = pkfk(50, 2, 6, 2, 43);
        let mut last = f64::INFINITY;
        for iters in [1, 3, 6, 12] {
            let m = KMeans::new(3, iters).fit(&fx.tn);
            assert!(
                m.inertia <= last + 1e-9,
                "inertia increased at {iters} iters: {last} -> {}",
                m.inertia
            );
            last = m.inertia;
        }
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        // k larger than distinct points: some clusters must stay empty and
        // the algorithm must not produce NaNs.
        use morpheus_core::Matrix;
        let t = Matrix::Dense(DenseMatrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]));
        let model = KMeans::new(2, 5).fit(&t);
        for v in model.centroids.as_slice() {
            assert!(v.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let fx = pkfk(10, 2, 2, 2, 1);
        KMeans::new(0, 1).fit(&fx.tn);
    }
}
