//! Gaussian non-negative matrix factorization (paper Algorithms 8 & 16).
//!
//! GNMF factorizes the data as `T ≈ W Hᵀ` with non-negative `W` (`n x r`)
//! and `H` (`d x r`) via Lee–Seung multiplicative updates:
//!
//! ```text
//! H = H * (Tᵀ W) / (H crossprod(W))
//! W = W * (T H)  / (W crossprod(H))
//! ```
//!
//! Both data-touching products — the transposed LMM `Tᵀ W` and the LMM
//! `T H` — factorize on normalized input; everything else operates on the
//! small `r`-column factor matrices. Like K-Means, GNMF requires full
//! matrix-matrix multiplications, demonstrating the generality the paper
//! claims beyond the vector-only prior work.

use morpheus_core::LinearOperand;
use morpheus_dense::DenseMatrix;

/// Multiplicative-update GNMF.
#[derive(Debug, Clone)]
pub struct Gnmf {
    /// Factorization rank (number of "topics") `r`.
    pub rank: usize,
    /// Number of multiplicative-update iterations.
    pub max_iter: usize,
}

/// A fitted GNMF model `T ≈ W Hᵀ`.
#[derive(Debug, Clone)]
pub struct GnmfModel {
    /// Row-factor matrix `W` (`n x r`).
    pub w: DenseMatrix,
    /// Column-factor matrix `H` (`d x r`).
    pub h: DenseMatrix,
}

/// Numerical floor keeping the multiplicative updates away from 0/0.
const EPS: f64 = 1e-12;

impl Gnmf {
    /// Creates a trainer with the given rank and iteration count.
    pub fn new(rank: usize, max_iter: usize) -> Self {
        Self { rank, max_iter }
    }

    /// Deterministic strictly-positive initial factors.
    fn init(&self, n: usize, d: usize) -> (DenseMatrix, DenseMatrix) {
        let r = self.rank;
        let w = DenseMatrix::from_fn(n, r, |i, j| {
            0.5 + 0.25 * (((i * 31 + j * 17 + 1) % 97) as f64 / 97.0)
        });
        let h = DenseMatrix::from_fn(d, r, |i, j| {
            0.5 + 0.25 * (((i * 13 + j * 41 + 5) % 89) as f64 / 89.0)
        });
        (w, h)
    }

    /// Runs multiplicative updates on any [`LinearOperand`] data matrix.
    /// The data should be non-negative for the NMF semantics to hold.
    ///
    /// # Panics
    /// Panics if `rank == 0`.
    pub fn fit<M: LinearOperand>(&self, t: &M) -> GnmfModel {
        assert!(self.rank > 0, "gnmf: rank must be positive");
        let (w0, h0) = self.init(t.nrows(), t.ncols());
        self.fit_from(t, &w0, &h0)
    }

    /// Runs multiplicative updates from explicit initial factors.
    ///
    /// # Panics
    /// Panics if the factor shapes disagree with the data.
    pub fn fit_from<M: LinearOperand>(
        &self,
        t: &M,
        w0: &DenseMatrix,
        h0: &DenseMatrix,
    ) -> GnmfModel {
        assert_eq!(w0.shape(), (t.nrows(), self.rank), "gnmf: W must be n x r");
        assert_eq!(h0.shape(), (t.ncols(), self.rank), "gnmf: H must be d x r");
        let mut w = w0.clone();
        let mut h = h0.clone();
        for _ in 0..self.max_iter {
            // H = H * (Tᵀ W) / (H crossprod(W))
            let num_h = t.t_lmm(&w); // d x r — factorized
            let den_h = h.matmul(&w.crossprod()).scalar_add(EPS);
            h = h.mul_elem(&num_h.div_elem(&den_h));
            // W = W * (T H) / (W crossprod(H))
            let num_w = t.lmm(&h); // n x r — factorized
            let den_w = w.matmul(&h.crossprod()).scalar_add(EPS);
            w = w.mul_elem(&num_w.div_elem(&den_w));
        }
        GnmfModel { w, h }
    }
}

impl GnmfModel {
    /// Reconstruction `W Hᵀ`.
    pub fn reconstruct(&self) -> DenseMatrix {
        self.w.matmul_t(&self.h)
    }

    /// Frobenius reconstruction error `‖T − W Hᵀ‖_F` against a
    /// materialized copy of the data.
    pub fn reconstruction_error(&self, t: &DenseMatrix) -> f64 {
        let mut diff = self.reconstruct();
        diff.sub_assign(t);
        diff.frobenius_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_core::{Matrix, NormalizedMatrix};

    /// Non-negative PK-FK fixture (NMF needs non-negative data).
    fn fixture() -> (NormalizedMatrix, Matrix) {
        let mut rng = crate::test_data::stream(71);
        let s = DenseMatrix::from_fn(40, 3, |_, _| rng().abs() + 0.05);
        let r = DenseMatrix::from_fn(5, 4, |_, _| rng().abs() + 0.05);
        let fk: Vec<usize> = (0..40).map(|i| (i * 3 + 1) % 5).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let t = tn.materialize();
        (tn, t)
    }

    #[test]
    fn factorized_matches_materialized() {
        let (tn, t) = fixture();
        let g = Gnmf::new(3, 10);
        let mf = g.fit(&tn);
        let mm = g.fit(&t);
        assert!(mf.w.approx_eq(&mm.w, 1e-7));
        assert!(mf.h.approx_eq(&mm.h, 1e-7));
    }

    #[test]
    fn planned_routing_matches_pure_paths() {
        let (tn, t) = fixture();
        let g = Gnmf::new(3, 10);
        let planned = g.fit(&crate::test_data::planned(&tn));
        let mm = g.fit(&t);
        assert!(planned.w.approx_eq(&mm.w, 1e-7));
        assert!(planned.h.approx_eq(&mm.h, 1e-7));
    }

    #[test]
    fn factors_stay_nonnegative() {
        let (tn, _) = fixture();
        let m = Gnmf::new(2, 15).fit(&tn);
        assert!(m.w.as_slice().iter().all(|&v| v >= 0.0));
        assert!(m.h.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn reconstruction_error_decreases() {
        let (tn, t) = fixture();
        let td = t.to_dense();
        let e1 = Gnmf::new(3, 2).fit(&tn).reconstruction_error(&td);
        let e2 = Gnmf::new(3, 20).fit(&tn).reconstruction_error(&td);
        assert!(
            e2 < e1,
            "reconstruction error did not decrease: {e1} -> {e2}"
        );
    }

    #[test]
    fn exact_low_rank_data_is_recovered_well() {
        // T = W₀ H₀ᵀ with rank 2 — GNMF should drive the error near zero.
        let w0 = DenseMatrix::from_fn(30, 2, |i, j| ((i + 2 * j) % 5) as f64 + 0.5);
        let h0 = DenseMatrix::from_fn(4, 2, |i, j| ((i * 2 + j) % 3) as f64 + 0.5);
        let t = Matrix::Dense(w0.matmul_t(&h0));
        let m = Gnmf::new(2, 300).fit(&t);
        let err = m.reconstruction_error(&t.to_dense());
        let scale = t.to_dense().frobenius_norm();
        assert!(
            err / scale < 0.05,
            "relative error too high: {}",
            err / scale
        );
    }

    #[test]
    #[should_panic(expected = "rank must be positive")]
    fn zero_rank_panics() {
        let (tn, _) = fixture();
        Gnmf::new(0, 1).fit(&tn);
    }
}
