//! ML algorithms over the Morpheus operator trait — written once,
//! automatically factorized (§4 of the paper).
//!
//! Every algorithm in this crate is generic over
//! [`morpheus_core::LinearOperand`], the Rust realization of the paper's
//! closure property. Training on a regular [`morpheus_core::Matrix`] gives
//! the standard single-table algorithm (Algorithms 3, 5, 11, 15, 16);
//! training on a [`morpheus_core::NormalizedMatrix`] gives the factorized
//! version (Algorithms 4, 6, 12, 7, 8) — **the code is the same**, the
//! rewrite rules fire inside the operator calls. Training on a
//! [`morpheus_core::PlannedMatrix`] routes every one of those operator
//! calls through the per-operator cost-based planner, which is how the
//! algorithms are meant to be run when the caller does not want to choose
//! a side up front.
//!
//! The algorithms, chosen for diversity as in the paper:
//!
//! * [`logreg`] — logistic regression via gradient descent (classification).
//! * [`linreg`] — least-squares linear regression via normal equations,
//!   gradient descent, and the Schleich et al. co-factor + AdaGrad hybrid.
//! * [`kmeans`] — K-Means clustering (full matrix-matrix multiplications).
//! * [`gnmf`] — Gaussian non-negative matrix factorization (feature
//!   extraction).
//! * [`orion`] — a reimplementation of the algorithm-specific Orion
//!   factorized logistic regression of Kumar et al. (SIGMOD'15), used as
//!   the Table 8 comparison baseline.
//! * [`metrics`] — losses and quality metrics shared by tests and benches.

pub mod gnmf;
pub mod kmeans;
pub mod linreg;
pub mod logreg;
pub mod metrics;
pub mod orion;

#[cfg(test)]
pub(crate) mod test_data {
    //! Shared fixtures: a PK-FK normalized matrix with a planted linear
    //! model, used by the algorithm equivalence tests.
    use morpheus_core::{MachineProfile, Matrix, NormalizedMatrix, PlannedMatrix, Strategy};
    use morpheus_dense::DenseMatrix;

    /// Wraps a normalized matrix behind the cost-based per-operator
    /// planner with deterministic reference rates — the routing the
    /// algorithms see in production, made reproducible for tests.
    pub fn planned(tn: &NormalizedMatrix) -> PlannedMatrix {
        PlannedMatrix::with_strategy(tn.clone(), Strategy::CostBased)
            .with_profile(MachineProfile::REFERENCE)
    }

    /// Deterministic pseudo-random stream (splitmix64) — keeps the crate's
    /// unit tests free of external RNG dependencies.
    pub fn stream(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        }
    }

    pub struct Fixture {
        pub tn: NormalizedMatrix,
        pub t: Matrix,
        pub y: DenseMatrix,
        pub w_true: DenseMatrix,
    }

    impl Fixture {
        /// A scoring micro-batch: the factorized row slice for `rows`
        /// (duplicates and arbitrary order allowed) plus the matching
        /// materialized rows as ground truth.
        pub fn batch(&self, rows: &[usize]) -> (NormalizedMatrix, Matrix) {
            (self.tn.select_rows(rows), self.t.gather_rows(rows))
        }
    }

    /// `n_s x (d_s + d_r)` PK-FK data with labels from a planted model.
    pub fn pkfk(n_s: usize, d_s: usize, n_r: usize, d_r: usize, seed: u64) -> Fixture {
        let mut rng = stream(seed);
        let s = DenseMatrix::from_fn(n_s, d_s, |_, _| rng());
        let r = DenseMatrix::from_fn(n_r, d_r, |_, _| rng());
        let fk: Vec<usize> = (0..n_s).map(|i| (i * 7 + 3) % n_r).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let t = tn.materialize();
        let d = d_s + d_r;
        let w_true = DenseMatrix::from_fn(d, 1, |i, _| (i as f64 - d as f64 / 2.0) * 0.3);
        let y = t.matmul_dense(&w_true);
        Fixture { tn, t, y, w_true }
    }
}
