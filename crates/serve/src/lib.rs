//! Micro-batched concurrent model scoring over the factorized
//! representation.
//!
//! Training over normalized data is the paper's story; this crate is the
//! deployment end of it: a [`ScoringService`] loads a fitted model
//! (linear or logistic, see [`ScoringModel`]) plus its normalized schema
//! **once**, then serves concurrent scoring requests — each a set of
//! entity row ids — without ever materializing the join per request.
//!
//! The performance core is a **micro-batcher**: requests arriving within
//! a latency budget (`MORPHEUS_BATCH_WINDOW_US`) are coalesced, up to
//! `MORPHEUS_BATCH_MAX` rows, into a single row slice of the factorized
//! representation ([`morpheus_core::NormalizedMatrix::select_rows`]) and
//! scored with one evaluation over the shared calibrated machine
//! profile and resident worker pool. Because every scoring kernel is
//! row-independent, a coalesced request's answers are **bit-identical**
//! to scoring it alone — batching is invisible to clients except in
//! latency and throughput.
//!
//! Operational behavior:
//!
//! * **Admission control** — a bounded queue (`MORPHEUS_BATCH_QUEUE`);
//!   submissions beyond it are shed with [`ServeError::Shed`] and
//!   counted, so overload degrades loudly instead of growing latency
//!   without bound.
//! * **Fairness** — coalescing is strictly FIFO; the first queued
//!   request that does not fit closes the batch, so no request is
//!   starved by smaller ones arriving behind it.
//! * **Self-healing** — a panic inside a batch (injectable via the
//!   `serve.batch` failpoint) is caught, converted into
//!   [`ServeError::BatchAborted`] for exactly that batch's requests,
//!   counted as a degradation, and the scorer keeps serving.
//! * **Observability** — [`ScoringService::stats`] folds the serve
//!   counters together with [`morpheus_runtime::faults::stats`] and
//!   [`morpheus_lang::plan_cache_stats`] into one [`ServeStats`]
//!   snapshot.

mod config;
mod model;
mod service;
mod stats;

pub use config::{ServeConfig, BATCH_MAX_ENV, BATCH_QUEUE_ENV, BATCH_WINDOW_ENV};
pub use model::ScoringModel;
pub use service::{ScoringService, ServeError, ServeMode, Ticket, BATCH_FAILPOINT};
pub use stats::ServeStats;
