//! Service tuning knobs and their `MORPHEUS_*` environment variables.

use morpheus_core::{MachineProfile, Strategy};
use std::time::Duration;

/// Environment variable holding the micro-batch latency budget in
/// microseconds: how long a scorer waits for more requests to coalesce
/// after the first one arrives (default
/// [`ServeConfig::DEFAULT_BATCH_WINDOW_US`]). `0` disables waiting —
/// every batch is whatever is already queued.
pub const BATCH_WINDOW_ENV: &str = "MORPHEUS_BATCH_WINDOW_US";

/// Environment variable holding the maximum number of entity rows
/// coalesced into one scoring batch (default
/// [`ServeConfig::DEFAULT_BATCH_MAX`]).
pub const BATCH_MAX_ENV: &str = "MORPHEUS_BATCH_MAX";

/// Environment variable holding the admission-control bound: the maximum
/// number of queued requests before new submissions are shed (default
/// [`ServeConfig::DEFAULT_BATCH_QUEUE`]).
pub const BATCH_QUEUE_ENV: &str = "MORPHEUS_BATCH_QUEUE";

/// Tuning parameters of a [`crate::ScoringService`].
///
/// [`ServeConfig::default`] gives the built-in defaults with the routing
/// strategy read from `MORPHEUS_STRATEGY`; [`ServeConfig::from_env`]
/// additionally applies the `MORPHEUS_BATCH_*` variables. All fields can
/// be overridden programmatically afterwards.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Latency budget for coalescing a batch after its first request.
    pub batch_window: Duration,
    /// Maximum entity rows per scoring batch (≥ 1; an oversized single
    /// request still runs, alone).
    pub batch_max: usize,
    /// Maximum queued requests before load shedding (≥ 1).
    pub queue_cap: usize,
    /// Number of scorer threads draining the queue (≥ 1). They share the
    /// one resident runtime pool via
    /// [`morpheus_runtime::Runtime::with_pool_share`].
    pub scorers: usize,
    /// Routing policy mapped to the service's scoring mode once at
    /// startup (per-batch re-routing would change floating-point
    /// summation order between batch sizes and break the bit-identity
    /// guarantee).
    pub strategy: Strategy,
    /// Machine profile for the cost-based mode decision; `None` uses the
    /// shared calibrated [`MachineProfile::global`].
    pub profile: Option<MachineProfile>,
}

impl ServeConfig {
    /// Default coalescing window, in microseconds.
    pub const DEFAULT_BATCH_WINDOW_US: u64 = 200;
    /// Default maximum rows per batch.
    pub const DEFAULT_BATCH_MAX: usize = 256;
    /// Default queue capacity (requests) before shedding.
    pub const DEFAULT_BATCH_QUEUE: usize = 1024;

    /// Built-in defaults plus every `MORPHEUS_BATCH_*` override.
    /// Malformed or zero values fall back to the defaults — tuning
    /// variables must never take the service down.
    pub fn from_env() -> ServeConfig {
        let mut cfg = ServeConfig::default();
        if let Some(us) = parse_env(BATCH_WINDOW_ENV) {
            // 0 is meaningful here: "never wait".
            cfg.batch_window = Duration::from_micros(us);
        }
        if let Some(n) = parse_env(BATCH_MAX_ENV) {
            if n > 0 {
                cfg.batch_max = n as usize;
            }
        }
        if let Some(n) = parse_env(BATCH_QUEUE_ENV) {
            if n > 0 {
                cfg.queue_cap = n as usize;
            }
        }
        cfg
    }

    /// Returns the config with `batch_max` replaced (builder style).
    pub fn with_batch_max(mut self, batch_max: usize) -> ServeConfig {
        self.batch_max = batch_max.max(1);
        self
    }

    /// Returns the config with `batch_window` replaced (builder style).
    pub fn with_batch_window(mut self, window: Duration) -> ServeConfig {
        self.batch_window = window;
        self
    }

    /// Returns the config with `scorers` replaced (builder style).
    pub fn with_scorers(mut self, scorers: usize) -> ServeConfig {
        self.scorers = scorers.max(1);
        self
    }

    /// Returns the config with `strategy` replaced (builder style).
    pub fn with_strategy(mut self, strategy: Strategy) -> ServeConfig {
        self.strategy = strategy;
        self
    }

    /// Returns the config with an explicit machine profile for the mode
    /// decision (builder style) — tests use
    /// [`MachineProfile::REFERENCE`] for reproducibility.
    pub fn with_profile(mut self, profile: MachineProfile) -> ServeConfig {
        self.profile = Some(profile);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            batch_window: Duration::from_micros(Self::DEFAULT_BATCH_WINDOW_US),
            batch_max: Self::DEFAULT_BATCH_MAX,
            queue_cap: Self::DEFAULT_BATCH_QUEUE,
            scorers: 1,
            strategy: Strategy::from_env(),
            profile: None,
        }
    }
}

fn parse_env(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}
