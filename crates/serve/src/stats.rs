//! One observable snapshot of the whole serving stack.

use crate::ServeMode;
use morpheus_lang::PlanCacheStats;
use morpheus_runtime::faults::FaultStats;

/// Point-in-time counters of a [`crate::ScoringService`], folded together
/// with the process-wide fault/degradation and plan-cache counters so one
/// snapshot answers "how is serving doing" — throughput, admission
/// control, self-healing, and plan reuse in a single place.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Scoring mode the service locked in at startup.
    pub mode: ServeMode,
    /// Requests admitted into the queue.
    pub requests: u64,
    /// Requests refused by admission control (queue at capacity).
    pub shed: u64,
    /// Scoring batches executed (including aborted ones).
    pub batches: u64,
    /// Requests carried by those batches.
    pub batched_requests: u64,
    /// Entity rows scored successfully.
    pub rows_scored: u64,
    /// Batches aborted by a panic and converted into per-request errors.
    pub batch_aborts: u64,
    /// Requests waiting in the queue right now.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: u64,
    /// Mean requests per batch (`batched_requests / batches`; 0 before
    /// the first batch). 1.0 means no coalescing is happening.
    pub coalesce_ratio: f64,
    /// Process-wide fault-injection and degradation counters
    /// ([`morpheus_runtime::faults::stats`]).
    pub faults: FaultStats,
    /// Process-wide script-plan-cache counters
    /// ([`morpheus_lang::plan_cache_stats`]).
    pub plan_cache: PlanCacheStats,
}
