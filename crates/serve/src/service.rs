//! The micro-batching scoring service.
//!
//! One scorer loop: pop the oldest request, keep coalescing queued
//! requests **in FIFO order** into the batch until the row budget is
//! full or the latency window since the batch opened has elapsed, then
//! score the union as a *single* row slice of the factorized
//! representation with one planned evaluation. The per-request answers
//! are carved back out of the batch output by offset — valid because
//! every scoring kernel underneath is row-independent, so a row's score
//! is bit-identical no matter which other rows ride along.

use crate::{ScoringModel, ServeConfig, ServeStats};
use morpheus_core::{cost, MachineProfile, Matrix, NormalizedMatrix, Strategy};
use morpheus_runtime::faults::{self, Degradation};
use morpheus_runtime::Runtime;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Failpoint checked once per scoring batch (`MORPHEUS_FAILPOINTS`,
/// e.g. `serve.batch=panic(0.1,seed=7)`): a `panic` kind aborts the
/// batch, which the service converts into a structured
/// [`ServeError::BatchAborted`] for every request in it.
pub const BATCH_FAILPOINT: &str = "serve.batch";

/// Why a scoring request did not produce scores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control refused the request: the queue was at capacity.
    /// Back off and retry; already-queued requests are unaffected.
    Shed,
    /// The batch carrying this request died with a panic (injected or
    /// genuine). No partial output is ever returned — the whole request
    /// fails and can be resubmitted; the service keeps running.
    BatchAborted,
    /// A requested row id is outside the model's entity table.
    RowOutOfRange {
        /// The offending row id.
        row: usize,
        /// Number of logical rows the service was loaded with.
        n_rows: usize,
    },
    /// The service is shutting down and no longer admits requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shed => write!(f, "request shed: scoring queue at capacity"),
            ServeError::BatchAborted => write!(f, "scoring batch aborted by a panic"),
            ServeError::RowOutOfRange { row, n_rows } => {
                write!(f, "row {row} out of range for {n_rows} entity rows")
            }
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The scoring representation the service locked in at startup.
///
/// Decided **once**, from [`ServeConfig::strategy`] — never per batch:
/// factorized partial sums and a materialized row dot product accumulate
/// in different orders, so re-deciding per batch would let two batch
/// sizes return bitwise-different scores for the same row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Batches are row slices of the factorized representation; the join
    /// is never materialized.
    Factorized,
    /// The join was materialized once at startup; batches gather rows
    /// from the resident join output.
    Resident,
}

/// A request waiting in the queue.
struct Pending {
    rows: Vec<usize>,
    slot: Arc<Slot>,
}

/// Where a request's answer appears; the submitting thread blocks on it.
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

struct SlotState {
    result: Option<Result<Vec<f64>, ServeError>>,
    /// Whether the submitter is (about to be) parked on `ready`. Guarded
    /// by `state`, so `fulfill` can skip the wake syscall when nobody is
    /// listening — on the hot path most answers are consumed by a
    /// pipelined client that has not reached this ticket yet.
    waiting: bool,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            state: Mutex::new(SlotState {
                result: None,
                waiting: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn ready_with(r: Result<Vec<f64>, ServeError>) -> Slot {
        Slot {
            state: Mutex::new(SlotState {
                result: Some(r),
                waiting: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn fulfill(&self, r: Result<Vec<f64>, ServeError>) {
        let mut g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.result = Some(r);
        let waiting = g.waiting;
        drop(g);
        if waiting {
            self.ready.notify_all();
        }
    }
}

/// A submitted request; [`Ticket::wait`] blocks until its batch ran.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl Ticket {
    /// Blocks until the request was scored (or failed) and returns one
    /// score per requested row, in request order.
    pub fn wait(self) -> Result<Vec<f64>, ServeError> {
        let mut g = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = g.result.take() {
                return r;
            }
            g.waiting = true;
            g = self.slot.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The data representation batches are sliced from.
enum Backing {
    /// Row slices of the factorized representation
    /// ([`NormalizedMatrix::select_rows`]) — the join is never
    /// materialized, per request or otherwise.
    Factorized(NormalizedMatrix),
    /// Rows gathered from the join output, materialized once at startup
    /// (the long-lived analog of the planner's join memo).
    Resident(Matrix),
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutdown: bool,
    /// Scorers currently parked on (or committed to parking on) the
    /// `work` condvar. Guarded by the state mutex, which is what makes
    /// skipping the wake syscall in `submit` safe: a scorer either saw
    /// the new request during its locked queue check, or had already
    /// bumped `idle` before releasing the lock to wait.
    idle: usize,
}

struct Inner {
    cfg: ServeConfig,
    model: ScoringModel,
    backing: Backing,
    state: Mutex<QueueState>,
    work: Condvar,
    requests: AtomicU64,
    shed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    rows_scored: AtomicU64,
    batch_aborts: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl Inner {
    fn lock_state(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| {
            faults::note(Degradation::LockRecovery);
            self.state.clear_poison();
            e.into_inner()
        })
    }
}

/// A loaded model serving scoring requests with micro-batching.
///
/// Created once per model; shared by reference (or `Arc`) across any
/// number of client threads calling [`ScoringService::score`] /
/// [`ScoringService::submit`] concurrently. Dropping the service drains
/// the queue, answers every pending request, and joins its scorers.
pub struct ScoringService {
    inner: Arc<Inner>,
    mode: ServeMode,
    n_rows: usize,
    scorers: Vec<JoinHandle<()>>,
}

impl ScoringService {
    /// Loads `model` over the normalized data `tn` and starts
    /// `config.scorers` scorer threads.
    ///
    /// The scoring mode (factorized slicing vs. resident materialized
    /// gathering) is decided here, once, from `config.strategy` — see
    /// [`ServeMode`] for why it must not vary per batch. With
    /// [`Strategy::AlwaysMaterialize`] (or a cost/heuristic verdict for
    /// it) the join is materialized now, so steady-state batches only
    /// pay a row gather.
    ///
    /// # Panics
    /// Panics if the model weight vector is not `d x 1` for `tn`'s `d`,
    /// or if a scorer thread cannot be spawned.
    pub fn new(tn: NormalizedMatrix, model: ScoringModel, config: ServeConfig) -> ScoringService {
        let cfg = ServeConfig {
            batch_max: config.batch_max.max(1),
            queue_cap: config.queue_cap.max(1),
            scorers: config.scorers.max(1),
            ..config
        };
        assert_eq!(
            model.weights().shape(),
            (tn.cols(), 1),
            "serve: model weights must be {} x 1",
            tn.cols()
        );
        let n_rows = tn.rows();
        let mode = decide_mode(&tn, &cfg);
        let backing = match mode {
            ServeMode::Factorized => Backing::Factorized(tn),
            ServeMode::Resident => Backing::Resident(tn.materialize()),
        };
        let inner = Arc::new(Inner {
            cfg,
            model,
            backing,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
                idle: 0,
            }),
            work: Condvar::new(),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            rows_scored: AtomicU64::new(0),
            batch_aborts: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        });
        let scorers = (0..inner.cfg.scorers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("morpheus-serve-{i}"))
                    .spawn(move || scorer_loop(&inner))
                    .expect("serve: failed to spawn scorer thread")
            })
            .collect();
        ScoringService {
            inner,
            mode,
            n_rows,
            scorers,
        }
    }

    /// The scoring mode locked in at startup.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Number of logical entity rows the service can score.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Enqueues a scoring request for the given entity row ids
    /// (duplicates and arbitrary order allowed) without blocking on the
    /// result. Fails fast — shed queue, bad row id, shutdown — instead
    /// of enqueueing a request that cannot succeed.
    pub fn submit(&self, rows: Vec<usize>) -> Result<Ticket, ServeError> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.n_rows) {
            return Err(ServeError::RowOutOfRange {
                row: bad,
                n_rows: self.n_rows,
            });
        }
        if rows.is_empty() {
            return Ok(Ticket {
                slot: Arc::new(Slot::ready_with(Ok(Vec::new()))),
            });
        }
        let slot = Arc::new(Slot::empty());
        let scorer_parked = {
            let mut st = self.inner.lock_state();
            if st.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if st.queue.len() >= self.inner.cfg.queue_cap {
                self.inner.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Shed);
            }
            st.queue.push_back(Pending {
                rows,
                slot: Arc::clone(&slot),
            });
            self.inner
                .max_queue_depth
                .fetch_max(st.queue.len() as u64, Ordering::Relaxed);
            st.idle > 0
        };
        self.inner.requests.fetch_add(1, Ordering::Relaxed);
        if scorer_parked {
            self.inner.work.notify_one();
        }
        Ok(Ticket { slot })
    }

    /// Submits and blocks for the answer: one score per requested row,
    /// in request order.
    pub fn score(&self, rows: Vec<usize>) -> Result<Vec<f64>, ServeError> {
        self.submit(rows)?.wait()
    }

    /// Snapshot of the service counters together with the process-wide
    /// fault/degradation and plan-cache counters.
    pub fn stats(&self) -> ServeStats {
        let queue_depth = self.inner.lock_state().queue.len() as u64;
        let batches = self.inner.batches.load(Ordering::Relaxed);
        let batched_requests = self.inner.batched_requests.load(Ordering::Relaxed);
        ServeStats {
            mode: self.mode,
            requests: self.inner.requests.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            batches,
            batched_requests,
            rows_scored: self.inner.rows_scored.load(Ordering::Relaxed),
            batch_aborts: self.inner.batch_aborts.load(Ordering::Relaxed),
            queue_depth,
            max_queue_depth: self.inner.max_queue_depth.load(Ordering::Relaxed),
            coalesce_ratio: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            faults: faults::stats(),
            plan_cache: morpheus_lang::plan_cache_stats(),
        }
    }
}

impl Drop for ScoringService {
    fn drop(&mut self) {
        self.inner.lock_state().shutdown = true;
        self.inner.work.notify_all();
        for h in self.scorers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Maps the routing strategy to a scoring mode, once.
fn decide_mode(tn: &NormalizedMatrix, cfg: &ServeConfig) -> ServeMode {
    match cfg.strategy {
        Strategy::AlwaysFactorize => ServeMode::Factorized,
        Strategy::AlwaysMaterialize => ServeMode::Resident,
        Strategy::Heuristic(rule) => {
            if rule.should_factorize(tn) {
                ServeMode::Factorized
            } else {
                ServeMode::Resident
            }
        }
        Strategy::CostBased => {
            // Steady-state comparison at the configured batch size: the
            // one-off join materialization is sunk cost for a long-lived
            // server, so only the per-batch rates compete. Ties go to
            // factorized — it never pays the join.
            let est = match &cfg.profile {
                Some(p) => cost::estimate_row_slice(p, tn, cfg.batch_max, 1),
                None => cost::estimate_row_slice(MachineProfile::global(), tn, cfg.batch_max, 1),
            };
            if est.factorized_ns <= est.materialized_op_ns {
                ServeMode::Factorized
            } else {
                ServeMode::Resident
            }
        }
    }
}

/// One scorer thread: coalesce, score, distribute, repeat.
fn scorer_loop(inner: &Inner) {
    // Buffers reused across batches — the hot path allocates only the
    // per-request answer vectors it hands back.
    let mut batch: Vec<Pending> = Vec::new();
    let mut rows: Vec<usize> = Vec::new();
    let mut out: Vec<f64> = Vec::new();
    loop {
        batch.clear();
        rows.clear();
        {
            let mut st = inner.lock_state();
            // Wait for the first request of the next batch.
            let mut total = loop {
                if let Some(p) = st.queue.pop_front() {
                    let n = p.rows.len();
                    batch.push(p);
                    break n;
                }
                if st.shutdown {
                    return;
                }
                st.idle += 1;
                st = inner.work.wait(st).unwrap_or_else(|e| e.into_inner());
                st.idle -= 1;
            };
            // Coalesce FIFO until the row budget is full or the window
            // since the batch opened has elapsed. Never skip ahead: the
            // first queued request that does not fit closes the batch,
            // so no request can be starved by smaller ones behind it.
            let deadline = Instant::now() + inner.cfg.batch_window;
            let mut yielded = false;
            'coalesce: while total < inner.cfg.batch_max {
                while let Some(front) = st.queue.front() {
                    if total + front.rows.len() > inner.cfg.batch_max {
                        break 'coalesce;
                    }
                    let p = st.queue.pop_front().expect("front() was Some");
                    total += p.rows.len();
                    batch.push(p);
                    if total >= inner.cfg.batch_max {
                        break 'coalesce;
                    }
                }
                if st.shutdown {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    // Cooperative coalescing: before dispatching an
                    // under-filled batch, give submitters one scheduling
                    // turn and re-drain. Unlike a timed wait this costs
                    // nanoseconds on an idle machine, yet on a saturated
                    // one it lets queued-up clients land their requests,
                    // keeping batches deep without a timer.
                    if yielded {
                        break;
                    }
                    yielded = true;
                    drop(st);
                    std::thread::yield_now();
                    st = inner.lock_state();
                    continue;
                }
                st.idle += 1;
                let (g, _) = inner
                    .work
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
                st.idle -= 1;
            }
        } // queue unlocked while scoring
        run_batch(inner, &batch, &mut rows, &mut out);
    }
}

/// Scores one coalesced batch and distributes per-request answers.
fn run_batch(inner: &Inner, batch: &[Pending], rows: &mut Vec<usize>, out: &mut Vec<f64>) {
    for p in batch {
        rows.extend_from_slice(&p.rows);
    }
    inner.batches.fetch_add(1, Ordering::Relaxed);
    inner
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        faults::maybe_panic(BATCH_FAILPOINT);
        out.clear();
        out.resize(rows.len(), 0.0);
        // Concurrent scorers split the one resident worker pool instead
        // of oversubscribing it.
        Runtime::with_pool_share(inner.cfg.scorers, || match &inner.backing {
            Backing::Factorized(tn) => inner.model.score_into(&tn.select_rows(rows), out),
            Backing::Resident(m) => inner.model.score_into(&m.gather_rows(rows), out),
        });
    }));
    match scored {
        Ok(()) => {
            inner
                .rows_scored
                .fetch_add(rows.len() as u64, Ordering::Relaxed);
            let mut offset = 0;
            for p in batch {
                let next = offset + p.rows.len();
                p.slot.fulfill(Ok(out[offset..next].to_vec()));
                offset = next;
            }
        }
        Err(_) => {
            // Self-healing: the batch dies, the service does not. Every
            // request in the batch gets a structured error (no partial
            // or torn scores can leak — the output buffer is discarded),
            // and the scorer moves on to the next batch.
            faults::note(Degradation::ServeBatchAbort);
            inner.batch_aborts.fetch_add(1, Ordering::Relaxed);
            for p in batch {
                p.slot.fulfill(Err(ServeError::BatchAborted));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morpheus_core::DecisionRule;
    use morpheus_dense::DenseMatrix;
    use std::time::Duration;

    /// Deterministic PK-FK fixture plus a weight vector.
    fn fixture(n_s: usize, n_r: usize, seed: u64) -> (NormalizedMatrix, DenseMatrix) {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let s = DenseMatrix::from_fn(n_s, 3, |_, _| next());
        let r = DenseMatrix::from_fn(n_r, 4, |_, _| next());
        let fk: Vec<usize> = (0..n_s).map(|i| (i * 7 + 3) % n_r).collect();
        let tn = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| (i as f64 - 3.0) * 0.25);
        (tn, w)
    }

    fn quick_config() -> ServeConfig {
        ServeConfig::default()
            .with_strategy(Strategy::AlwaysFactorize)
            .with_batch_window(Duration::from_micros(50))
    }

    #[test]
    fn scores_match_full_table_predictions_bitwise() {
        let (tn, w) = fixture(40, 6, 3);
        for model in [
            ScoringModel::Linear(w.clone()),
            ScoringModel::Logistic(w.clone()),
        ] {
            let expected = match &model {
                ScoringModel::Linear(w) => morpheus_ml::linreg::predict(&tn, w),
                ScoringModel::Logistic(w) => morpheus_ml::logreg::predict_proba(&tn, w),
            };
            let svc = ScoringService::new(tn.clone(), model, quick_config());
            assert_eq!(svc.mode(), ServeMode::Factorized);
            for rows in [vec![0], vec![7, 7, 39], vec![12, 3, 25, 0, 1]] {
                let got = svc.score(rows.clone()).unwrap();
                for (j, &r) in rows.iter().enumerate() {
                    assert_eq!(got[j].to_bits(), expected.get(r, 0).to_bits());
                }
            }
        }
    }

    #[test]
    fn resident_mode_scores_match_materialized_predictions_bitwise() {
        let (tn, w) = fixture(30, 5, 9);
        let expected = morpheus_ml::linreg::predict(&tn.materialize(), &w);
        let svc = ScoringService::new(
            tn,
            ScoringModel::Linear(w),
            quick_config().with_strategy(Strategy::AlwaysMaterialize),
        );
        assert_eq!(svc.mode(), ServeMode::Resident);
        let rows = vec![5usize, 0, 29, 5];
        let got = svc.score(rows.clone()).unwrap();
        for (j, &r) in rows.iter().enumerate() {
            assert_eq!(got[j].to_bits(), expected.get(r, 0).to_bits());
        }
    }

    #[test]
    fn mode_decision_follows_strategy() {
        let (tn, _) = fixture(200, 4, 1);
        let base = quick_config();
        // High tuple ratio (200/4) and feature ratio (4/3 > 1): the
        // heuristic rule favors factorized.
        let cfg = base
            .clone()
            .with_strategy(Strategy::Heuristic(DecisionRule::default()));
        assert_eq!(decide_mode(&tn, &cfg), ServeMode::Factorized);
        assert_eq!(
            decide_mode(&tn, &base.clone().with_strategy(Strategy::AlwaysFactorize)),
            ServeMode::Factorized
        );
        let cfg = base.clone().with_strategy(Strategy::AlwaysMaterialize);
        assert_eq!(decide_mode(&tn, &cfg), ServeMode::Resident);
        // Cost-based: with a wide attribute table the factorized slice
        // replaces a 62-feature dense product by two tiny ones, beating
        // the resident gather; the narrow 7-feature fixture's slicing
        // overhead dominates instead, flipping the verdict to resident.
        let s = DenseMatrix::from_fn(500, 2, |i, j| (i + j) as f64 * 0.01);
        let r = DenseMatrix::from_fn(10, 60, |i, j| (i * 60 + j) as f64 * 0.001);
        let fk: Vec<usize> = (0..500).map(|i| i % 10).collect();
        let wide = NormalizedMatrix::pk_fk(s.into(), &fk, r.into());
        let cost_cfg = base
            .clone()
            .with_strategy(Strategy::CostBased)
            .with_profile(MachineProfile::REFERENCE);
        assert_eq!(decide_mode(&wide, &cost_cfg), ServeMode::Factorized);
        assert_eq!(decide_mode(&tn, &cost_cfg), ServeMode::Resident);
        // A redundancy-free join (tuple ratio 1) fails the heuristic.
        let (flat, _) = fixture(4, 4, 1);
        let cfg = base.with_strategy(Strategy::Heuristic(DecisionRule::default()));
        assert_eq!(decide_mode(&flat, &cfg), ServeMode::Resident);
    }

    #[test]
    fn rejects_invalid_requests_without_enqueueing() {
        let (tn, w) = fixture(10, 4, 5);
        let svc = ScoringService::new(tn, ScoringModel::Linear(w), quick_config());
        assert_eq!(
            svc.submit(vec![1, 10]).err(),
            Some(ServeError::RowOutOfRange {
                row: 10,
                n_rows: 10
            })
        );
        assert_eq!(svc.score(Vec::new()).unwrap(), Vec::<f64>::new());
        let stats = svc.stats();
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.shed, 0);
    }

    #[test]
    fn oversized_request_runs_alone() {
        let (tn, w) = fixture(32, 4, 7);
        let expected = morpheus_ml::linreg::predict(&tn, &w);
        let svc = ScoringService::new(
            tn,
            ScoringModel::Linear(w),
            quick_config().with_batch_max(4),
        );
        let rows: Vec<usize> = (0..32).collect();
        let got = svc.score(rows).unwrap();
        for (r, v) in got.iter().enumerate() {
            assert_eq!(v.to_bits(), expected.get(r, 0).to_bits());
        }
        assert!(svc.stats().batches >= 1);
    }

    #[test]
    fn queue_overflow_sheds_and_is_counted() {
        let _guard = faults::exclusive();
        // First batch stalls 400 ms inside scoring (queue lock released),
        // giving this thread time to overfill the 2-slot queue.
        faults::configure("serve.batch=sleep(400,times=1)").unwrap();
        let (tn, w) = fixture(16, 4, 11);
        let mut cfg = quick_config().with_batch_max(1);
        cfg.queue_cap = 2;
        cfg.batch_window = Duration::ZERO;
        let svc = ScoringService::new(tn, ScoringModel::Linear(w), cfg);
        let t0 = svc.submit(vec![0]).unwrap();
        std::thread::sleep(Duration::from_millis(100)); // scorer now stalled in batch 1
        let t1 = svc.submit(vec![1]).unwrap();
        let t2 = svc.submit(vec![2]).unwrap();
        let shed = svc.submit(vec![3]);
        faults::clear();
        assert_eq!(shed.err(), Some(ServeError::Shed));
        for t in [t0, t1, t2] {
            assert!(t.wait().is_ok());
        }
        let stats = svc.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 3);
        assert!(stats.max_queue_depth >= 2);
    }

    #[test]
    fn injected_batch_panic_becomes_structured_error_and_service_survives() {
        let _guard = faults::exclusive();
        faults::configure("serve.batch=panic(times=1)").unwrap();
        let (tn, w) = fixture(20, 4, 13);
        let expected = morpheus_ml::linreg::predict(&tn, &w);
        let svc = ScoringService::new(tn, ScoringModel::Linear(w), quick_config());
        let aborted = svc.score(vec![1, 2]);
        faults::clear();
        assert_eq!(aborted.err(), Some(ServeError::BatchAborted));
        // The scorer healed: the next request is answered, correctly.
        let got = svc.score(vec![3]).unwrap();
        assert_eq!(got[0].to_bits(), expected.get(3, 0).to_bits());
        let stats = svc.stats();
        assert_eq!(stats.batch_aborts, 1);
        assert!(stats.faults.serve_batch_aborts >= 1);
        assert_eq!(stats.rows_scored, 1);
    }

    #[test]
    fn concurrent_clients_coalesce() {
        let (tn, w) = fixture(64, 8, 17);
        let expected = morpheus_ml::linreg::predict(&tn, &w);
        let svc = ScoringService::new(
            tn,
            ScoringModel::Linear(w),
            quick_config().with_batch_window(Duration::from_millis(2)),
        );
        std::thread::scope(|scope| {
            for c in 0..8usize {
                let svc = &svc;
                let expected = &expected;
                scope.spawn(move || {
                    for k in 0..20usize {
                        let rows = vec![(c * 20 + k) % 64, (c + k * 13) % 64];
                        let got = svc.score(rows.clone()).unwrap();
                        for (j, &r) in rows.iter().enumerate() {
                            assert_eq!(got[j].to_bits(), expected.get(r, 0).to_bits());
                        }
                    }
                });
            }
        });
        let stats = svc.stats();
        assert_eq!(stats.requests, 160);
        assert_eq!(stats.batched_requests, 160);
        assert_eq!(stats.rows_scored, 320);
        assert!(stats.batches <= stats.batched_requests);
        assert!(stats.coalesce_ratio >= 1.0);
        assert_eq!(stats.queue_depth, 0);
    }

    #[test]
    fn drop_drains_pending_requests() {
        let _guard = faults::exclusive();
        faults::configure("serve.batch=sleep(100,times=1)").unwrap();
        let (tn, w) = fixture(12, 4, 19);
        let svc = ScoringService::new(
            tn,
            ScoringModel::Linear(w),
            quick_config().with_batch_max(1),
        );
        let t0 = svc.submit(vec![0]).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let t1 = svc.submit(vec![1]).unwrap();
        drop(svc);
        faults::clear();
        assert!(t0.wait().is_ok());
        assert!(t1.wait().is_ok());
    }
}
