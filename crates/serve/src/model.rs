//! The trained models the service knows how to score.

use morpheus_core::LinearOperand;
use morpheus_dense::DenseMatrix;

/// A fitted model loaded into the service once, at startup.
///
/// Both variants carry a `d x 1` weight vector fitted by the trainers in
/// `morpheus-ml`; scoring routes through the allocation-free
/// `predict_into` entry points so the hot path reuses one output buffer
/// per scorer thread.
#[derive(Debug, Clone)]
pub enum ScoringModel {
    /// Linear regression: responses `T w`.
    Linear(DenseMatrix),
    /// Logistic regression: class probabilities `σ(T w)`.
    Logistic(DenseMatrix),
}

impl ScoringModel {
    /// The model's weight vector.
    pub fn weights(&self) -> &DenseMatrix {
        match self {
            ScoringModel::Linear(w) | ScoringModel::Logistic(w) => w,
        }
    }

    /// Scores `t` into `out` (one value per row of `t`). Bit-identical
    /// regardless of which rows accompany a given row in `t` — the
    /// invariant that lets the service coalesce requests freely.
    pub fn score_into<M: LinearOperand>(&self, t: &M, out: &mut [f64]) {
        match self {
            ScoringModel::Linear(w) => morpheus_ml::linreg::predict_into(t, w, out),
            ScoringModel::Logistic(w) => morpheus_ml::logreg::predict_proba_into(t, w, out),
        }
    }
}
