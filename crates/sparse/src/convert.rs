//! Conversions and structural transformations: densification, transpose,
//! gather, and stacking.

use crate::CsrMatrix;
use morpheus_dense::DenseMatrix;

impl CsrMatrix {
    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows(), self.cols());
        for i in 0..self.rows() {
            let (cols, vals) = self.row(i);
            let orow = out.row_mut(i);
            for (&c, &v) in cols.iter().zip(vals) {
                orow[c] = v;
            }
        }
        out
    }

    /// Builds a CSR matrix from a dense one, dropping exact zeros.
    pub fn from_dense(m: &DenseMatrix) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(m.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for row in m.row_iter() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    indices.push(j);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(m.rows(), m.cols(), indptr, indices, values)
    }

    /// Matrix transpose, returned in CSR form.
    ///
    /// Uses a counting sort over columns: O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrMatrix {
        let (m, n) = self.shape();
        let nnz = self.nnz();
        let mut indptr = vec![0usize; n + 1];
        for &c in self.indices() {
            indptr[c + 1] += 1;
        }
        for j in 0..n {
            indptr[j + 1] += indptr[j];
        }
        let mut cursor = indptr.clone();
        let mut indices = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for i in 0..m {
            let (cols, vals) = self.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let pos = cursor[c];
                indices[pos] = i;
                values[pos] = v;
                cursor[c] += 1;
            }
        }
        CsrMatrix::from_raw_unchecked(n, m, indptr, indices, values)
    }

    /// Copies the rows at the given indices (gather), allowing repeats.
    ///
    /// For an indicator matrix `K` with assignment `a`, `R.gather_rows(&a)`
    /// materializes `K * R` directly — this is the fast path for join
    /// materialization.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, rows: &[usize]) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0);
        let mut nnz = 0usize;
        for &r in rows {
            assert!(
                r < self.rows(),
                "gather_rows: index {r} out of bounds ({} rows)",
                self.rows()
            );
            nnz += self.row(r).0.len();
            indptr.push(nnz);
        }
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        for &r in rows {
            let (cols, vals) = self.row(r);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
        }
        CsrMatrix::from_raw_unchecked(rows.len(), self.cols(), indptr, indices, values)
    }

    /// Horizontal concatenation `[self, other]` in CSR form.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &CsrMatrix) -> CsrMatrix {
        CsrMatrix::hstack_all(&[self, other])
    }

    /// Horizontal concatenation of any number of blocks.
    ///
    /// # Panics
    /// Panics if the blocks disagree on row count or the list is empty.
    pub fn hstack_all(blocks: &[&CsrMatrix]) -> CsrMatrix {
        assert!(!blocks.is_empty(), "hstack_all: no blocks");
        let rows = blocks[0].rows();
        for b in blocks {
            assert_eq!(b.rows(), rows, "hstack_all: row counts differ");
        }
        let cols: usize = blocks.iter().map(|b| b.cols()).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        indptr.push(0);
        for i in 0..rows {
            let mut off = 0usize;
            for b in blocks {
                let (bc, bv) = b.row(i);
                indices.extend(bc.iter().map(|&c| c + off));
                values.extend_from_slice(bv);
                off += b.cols();
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(rows, cols, indptr, indices, values)
    }

    /// Vertical concatenation of `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "vstack: column counts differ ({} vs {})",
            self.cols(),
            other.cols()
        );
        let rows = self.rows() + other.rows();
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.extend_from_slice(self.indptr());
        let base = self.nnz();
        indptr.extend(other.indptr()[1..].iter().map(|&p| p + base));
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        indices.extend_from_slice(self.indices());
        indices.extend_from_slice(other.indices());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        values.extend_from_slice(self.values());
        values.extend_from_slice(other.values());
        CsrMatrix::from_raw_unchecked(rows, self.cols(), indptr, indices, values)
    }

    /// Copies the row range into a new CSR matrix.
    ///
    /// # Panics
    /// Panics if `range.end > rows`.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> CsrMatrix {
        assert!(
            range.end <= self.rows(),
            "slice_rows: range end {} exceeds {} rows",
            range.end,
            self.rows()
        );
        let lo = self.indptr()[range.start];
        let hi = self.indptr()[range.end];
        let indptr: Vec<usize> = self.indptr()[range.start..=range.end]
            .iter()
            .map(|&p| p - lo)
            .collect();
        CsrMatrix::from_raw_unchecked(
            range.len(),
            self.cols(),
            indptr,
            self.indices()[lo..hi].to_vec(),
            self.values()[lo..hi].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 4, &[(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0), (2, 2, 4.0)])
            .unwrap()
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d.get(0, 3), 2.0);
        assert_eq!(d.get(1, 1), 0.0);
        assert_eq!(CsrMatrix::from_dense(&d), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.to_dense(), m.to_dense().transpose());
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gather_rows_materializes_indicator_product() {
        let r = sample();
        let assign = [2, 0, 0, 1];
        let k = CsrMatrix::indicator(&assign, 3);
        let via_gather = r.gather_rows(&assign);
        let via_product = k.spmm_dense(&r.to_dense());
        assert_eq!(via_gather.to_dense(), via_product);
    }

    #[test]
    fn hstack_and_vstack() {
        let a = sample();
        let b = CsrMatrix::identity(3);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (3, 7));
        assert_eq!(h.get(1, 0), 3.0);
        assert_eq!(h.get(1, 5), 1.0);
        assert_eq!(h.to_dense(), a.to_dense().hstack(&b.to_dense()));

        let c = CsrMatrix::from_triplets(2, 4, &[(0, 0, 9.0)]).unwrap();
        let v = a.vstack(&c);
        assert_eq!(v.shape(), (5, 4));
        assert_eq!(v.to_dense(), a.to_dense().vstack(&c.to_dense()));
    }

    #[test]
    fn slice_rows_matches_dense() {
        let m = sample();
        let s = m.slice_rows(1..3);
        assert_eq!(s.to_dense(), m.to_dense().slice_rows(1..3));
        assert_eq!(m.slice_rows(0..0).rows(), 0);
    }

    #[test]
    fn transpose_empty() {
        let z = CsrMatrix::zeros(3, 5);
        assert_eq!(z.transpose().shape(), (5, 3));
        assert_eq!(z.transpose().nnz(), 0);
    }
}
