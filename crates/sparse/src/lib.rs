//! CSR sparse matrix kernels for the Morpheus factorized linear-algebra stack.
//!
//! The paper's normalized matrix leans on *highly sparse indicator matrices*:
//! the PK-FK indicator `K` (exactly one non-zero per row), and the M:N
//! indicators `I_S`/`I_R`. Real-world feature matrices are sparse one-hot
//! encodings. This crate provides a compressed-sparse-row matrix with the
//! kernels those rewrites need: sparse×dense and dense×sparse products,
//! sparse×sparse products (SpGEMM), transposition, aggregations, and row and
//! column scaling.
//!
//! # Example
//!
//! ```
//! use morpheus_sparse::CsrMatrix;
//! use morpheus_dense::DenseMatrix;
//!
//! // The indicator matrix K for foreign keys [0, 1, 1, 0] over 2 R-rows.
//! let k = CsrMatrix::indicator(&[0, 1, 1, 0], 2);
//! let r = DenseMatrix::from_rows(&[&[1.1, 2.2], &[3.3, 4.4]]);
//! let kr = k.spmm_dense(&r); // replicates R's rows per the join
//! assert_eq!(kr.row(0), &[1.1, 2.2]);
//! assert_eq!(kr.row(2), &[3.3, 4.4]);
//! ```

mod agg;
mod arith;
mod convert;
mod csr;
mod error;
mod products;

pub use csr::{CsrMatrix, Triplet};
pub use error::{SparseError, SparseResult};
