//! Aggregations and diagonal scaling for CSR matrices.
//!
//! `colSums(K)` is the heart of the paper's efficient cross-product rewrite
//! (Algorithm 2): `Kᵀ K = diag(colSums(K))` for a PK-FK indicator matrix.
//!
//! The linear reductions over the CSR value array run on the fixed-lane
//! kernels of [`morpheus_dense::simd`], sharing the dense side's
//! determinism contract; `colSums` keeps its scatter walk (it is bound by
//! the indexed stores, not the additions).

use crate::CsrMatrix;
use morpheus_dense::{simd, DenseMatrix};

impl CsrMatrix {
    /// Row-wise sums as an `n x 1` dense column vector (`rowSums`).
    pub fn row_sums(&self) -> DenseMatrix {
        let sums: Vec<f64> = (0..self.rows()).map(|i| simd::sum(self.row(i).1)).collect();
        DenseMatrix::col_vector(&sums)
    }

    /// Column-wise sums as a `1 x d` dense row vector (`colSums`).
    pub fn col_sums(&self) -> DenseMatrix {
        let mut sums = vec![0.0; self.cols()];
        for (&c, &v) in self.indices().iter().zip(self.values()) {
            sums[c] += v;
        }
        DenseMatrix::row_vector(&sums)
    }

    /// Sum of all entries (`sum`).
    pub fn sum(&self) -> f64 {
        simd::sum(self.values())
    }

    /// Scales row `i` by `weights[i]` (`diag(w) * M`), preserving sparsity.
    ///
    /// # Panics
    /// Panics if `weights.len() != rows`.
    pub fn scale_rows(&self, weights: &[f64]) -> CsrMatrix {
        assert_eq!(
            weights.len(),
            self.rows(),
            "scale_rows: weight length {} != rows {}",
            weights.len(),
            self.rows()
        );
        let mut out = self.clone();
        for (i, &w) in weights.iter().enumerate() {
            let lo = out.indptr()[i];
            let hi = out.indptr()[i + 1];
            for v in &mut out.values_mut()[lo..hi] {
                *v *= w;
            }
        }
        out
    }

    /// Scales column `j` by `weights[j]` (`M * diag(w)`), preserving sparsity.
    ///
    /// # Panics
    /// Panics if `weights.len() != cols`.
    pub fn scale_cols(&self, weights: &[f64]) -> CsrMatrix {
        assert_eq!(
            weights.len(),
            self.cols(),
            "scale_cols: weight length {} != cols {}",
            weights.len(),
            self.cols()
        );
        let mut out = self.clone();
        let indices: Vec<usize> = out.indices().to_vec();
        for (v, &c) in out.values_mut().iter_mut().zip(&indices) {
            *v *= weights[c];
        }
        out
    }

    /// Frobenius norm `sqrt(sum(M^2))`.
    pub fn frobenius_norm(&self) -> f64 {
        simd::dot(self.values(), self.values()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> CsrMatrix {
        CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (0, 1, 2.0), (2, 1, 3.0)]).unwrap()
    }

    #[test]
    fn sums_match_dense() {
        let m = sp();
        let d = m.to_dense();
        assert_eq!(m.row_sums(), d.row_sums());
        assert_eq!(m.col_sums(), d.col_sums());
        assert_eq!(m.sum(), d.sum());
    }

    #[test]
    fn indicator_col_sums_count_references() {
        // colSums(K)[j] = number of S-tuples referencing R-tuple j (paper §3.3.5).
        let k = CsrMatrix::indicator(&[0, 1, 1, 1, 0], 2);
        assert_eq!(k.col_sums().as_slice(), &[2.0, 3.0]);
        // Kᵀ K == diag(colSums(K)) for PK-FK indicators.
        let ktk = k.transpose().spgemm(&k);
        assert_eq!(ktk.to_dense(), DenseMatrix::from_diag(&[2.0, 3.0]));
    }

    #[test]
    fn scaling_matches_dense() {
        let m = sp();
        let d = m.to_dense();
        assert_eq!(
            m.scale_rows(&[2.0, 5.0, 0.5]).to_dense(),
            d.scale_rows(&[2.0, 5.0, 0.5])
        );
        assert_eq!(
            m.scale_cols(&[0.0, 3.0]).to_dense(),
            d.scale_cols(&[0.0, 3.0])
        );
    }

    #[test]
    fn frobenius_norm_matches_dense() {
        assert!((sp().frobenius_norm() - sp().to_dense().frobenius_norm()).abs() < 1e-12);
    }
}
