//! The [`CsrMatrix`] type: representation, constructors, and accessors.

use crate::{SparseError, SparseResult};
use std::fmt;

/// A coordinate-format entry `(row, col, value)` used to build CSR matrices.
pub type Triplet = (usize, usize, f64);

/// A compressed-sparse-row `f64` matrix.
///
/// Representation: `indptr` has `rows + 1` entries; the non-zeros of row `i`
/// live at positions `indptr[i]..indptr[i + 1]` of `indices` (column ids,
/// sorted ascending within a row) and `values`.
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Creates an empty (all-zero) sparse matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates the `n x n` sparse identity matrix.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds the indicator matrix of a row assignment: row `i` has a single
    /// `1.0` in column `assign[i]`.
    ///
    /// This is exactly the paper's PK-FK indicator `K` (§3.1) when `assign`
    /// holds the foreign-key row numbers, and the M:N indicators `I_S`/`I_R`
    /// (§3.6) when `assign` holds the provenance row numbers of `T'`.
    ///
    /// # Panics
    /// Panics if any entry of `assign` is `>= cols`.
    pub fn indicator(assign: &[usize], cols: usize) -> Self {
        for (i, &j) in assign.iter().enumerate() {
            assert!(
                j < cols,
                "indicator: assignment {j} at row {i} out of bounds (cols = {cols})"
            );
        }
        Self {
            rows: assign.len(),
            cols,
            indptr: (0..=assign.len()).collect(),
            indices: assign.to_vec(),
            values: vec![1.0; assign.len()],
        }
    }

    /// Builds a CSR matrix from coordinate triplets. Duplicate coordinates
    /// are summed. Explicit zeros are dropped.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[Triplet]) -> SparseResult<Self> {
        for &(r, c, _) in triplets {
            if r >= rows || c >= cols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    rows,
                    cols,
                });
            }
        }
        // Counting sort by row.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut order = counts.clone();
        let mut cols_tmp = vec![0usize; triplets.len()];
        let mut vals_tmp = vec![0.0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let pos = order[r];
            cols_tmp[pos] = c;
            vals_tmp[pos] = v;
            order[r] += 1;
        }
        // Sort within each row, merging duplicates and dropping zeros.
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for i in 0..rows {
            scratch.clear();
            scratch.extend(
                cols_tmp[counts[i]..counts[i + 1]]
                    .iter()
                    .copied()
                    .zip(vals_tmp[counts[i]..counts[i + 1]].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = scratch.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while iter.peek().is_some_and(|&(c2, _)| c2 == c) {
                    v += iter.next().unwrap().1;
                }
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from raw arrays, validating the invariants.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> SparseResult<Self> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::MalformedCsr(format!(
                "indptr length {} != rows + 1 = {}",
                indptr.len(),
                rows + 1
            )));
        }
        if indptr[0] != 0 || *indptr.last().unwrap() != indices.len() {
            return Err(SparseError::MalformedCsr(
                "indptr does not start at 0 / end at nnz".into(),
            ));
        }
        if indices.len() != values.len() {
            return Err(SparseError::MalformedCsr(
                "indices and values lengths differ".into(),
            ));
        }
        for w in indptr.windows(2) {
            if w[0] > w[1] {
                return Err(SparseError::MalformedCsr("indptr not monotone".into()));
            }
        }
        for i in 0..rows {
            let row = &indices[indptr[i]..indptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::MalformedCsr(format!(
                        "row {i} column indices not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= cols {
                    return Err(SparseError::MalformedCsr(format!(
                        "row {i} has column {last} >= cols {cols}"
                    )));
                }
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix from raw arrays without validation.
    ///
    /// Intended for kernels in this crate that construct valid output by
    /// construction; external callers should prefer [`CsrMatrix::from_raw`].
    pub(crate) fn from_raw_unchecked(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fill fraction `nnz / (rows * cols)`; `0.0` for empty shapes.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.cols == 0 {
            0.0
        } else {
            self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
        }
    }

    /// The row-pointer array (`rows + 1` entries).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array (one entry per non-zero).
    #[inline]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// The non-zero values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the non-zero values (structure is fixed).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// The `(column, value)` pairs of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        let lo = self.indptr[i];
        let hi = self.indptr[i + 1];
        (&self.indices[lo..hi], &self.values[lo..hi])
    }

    /// Reads a single element (binary search within the row).
    ///
    /// # Panics
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterator over all stored entries as `(row, col, value)` triplets.
    pub fn triplet_iter(&self) -> impl Iterator<Item = Triplet> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&c, &v)| (i, c, v))
        })
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} (nnz = {}, density = {:.4})",
            self.rows,
            self.cols,
            self.nnz(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indicator_structure() {
        let k = CsrMatrix::indicator(&[0, 1, 1, 0], 2);
        assert_eq!(k.shape(), (4, 2));
        assert_eq!(k.nnz(), 4);
        assert_eq!(k.get(0, 0), 1.0);
        assert_eq!(k.get(0, 1), 0.0);
        assert_eq!(k.get(2, 1), 1.0);
        // PK-FK property from the paper: exactly one non-zero per row.
        for i in 0..4 {
            assert_eq!(k.row(i).0.len(), 1);
        }
    }

    #[test]
    fn from_triplets_sorts_merges_and_drops_zeros() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(1, 2, 5.0), (0, 1, 1.0), (0, 1, 2.0), (1, 0, 0.0)])
                .unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds() {
        let err = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).unwrap_err();
        assert!(matches!(err, SparseError::IndexOutOfBounds { row: 2, .. }));
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 2.0]).is_ok());
        // non-monotone indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 2.0]).is_err());
        // unsorted columns within a row
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn identity_and_density() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        assert_eq!(i.get(3, 3), 1.0);
        assert_eq!(i.get(3, 0), 0.0);
        assert!((i.density() - 0.25).abs() < 1e-12);
        assert_eq!(CsrMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn triplet_iter_round_trip() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 2, 1.0), (2, 0, 2.0), (1, 1, 3.0)]).unwrap();
        let trips: Vec<_> = m.triplet_iter().collect();
        let m2 = CsrMatrix::from_triplets(3, 3, &trips).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indicator_out_of_bounds_panics() {
        CsrMatrix::indicator(&[3], 2);
    }
}
