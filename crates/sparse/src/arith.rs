//! Element-wise arithmetic on CSR matrices.
//!
//! Scalar operations that preserve zeros (`*`, `/` by non-zero, `^` with
//! positive exponent) stay sparse; operations that do not (`+ x`, `exp`)
//! must densify — the `Matrix` enum in `morpheus-core` makes that call.

use crate::CsrMatrix;

impl CsrMatrix {
    /// Applies `f` to the stored non-zeros only.
    ///
    /// Correct as a full element-wise map **only when** `f(0) == 0`; callers
    /// needing general maps should densify first (see
    /// `morpheus_core::Matrix::map`).
    pub fn map_nnz(&self, f: impl Fn(f64) -> f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in out.values_mut() {
            *v = f(*v);
        }
        out
    }

    /// Multiplies every entry by a scalar, preserving sparsity.
    pub fn scalar_mul(&self, x: f64) -> CsrMatrix {
        self.map_nnz(|v| v * x)
    }

    /// Divides every entry by a scalar, preserving sparsity.
    pub fn scalar_div(&self, x: f64) -> CsrMatrix {
        self.map_nnz(|v| v / x)
    }

    /// Raises every stored entry to the power `x` (zero-preserving for
    /// `x > 0`).
    pub fn scalar_pow(&self, x: f64) -> CsrMatrix {
        if x == 2.0 {
            self.map_nnz(|v| v * v)
        } else {
            self.map_nnz(|v| v.powf(x))
        }
    }

    /// Element-wise sum of two CSR matrices (sorted two-pointer merge).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "CsrMatrix::add: shape mismatch"
        );
        let mut indptr = Vec::with_capacity(self.rows() + 1);
        let mut indices = Vec::with_capacity(self.nnz() + other.nnz());
        let mut values = Vec::with_capacity(self.nnz() + other.nnz());
        indptr.push(0);
        for i in 0..self.rows() {
            let (ac, av) = self.row(i);
            let (bc, bv) = other.row(i);
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() || q < bc.len() {
                let (c, v) = if q >= bc.len() || (p < ac.len() && ac[p] < bc[q]) {
                    let r = (ac[p], av[p]);
                    p += 1;
                    r
                } else if p >= ac.len() || bc[q] < ac[p] {
                    let r = (bc[q], bv[q]);
                    q += 1;
                    r
                } else {
                    let r = (ac[p], av[p] + bv[q]);
                    p += 1;
                    q += 1;
                    r
                };
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(self.rows(), self.cols(), indptr, indices, values)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &CsrMatrix) -> CsrMatrix {
        self.add(&other.scalar_mul(-1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> CsrMatrix {
        CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0)]).unwrap()
    }

    #[test]
    fn zero_preserving_scalar_ops() {
        let m = sp();
        assert_eq!(m.scalar_mul(2.0).to_dense(), m.to_dense().scalar_mul(2.0));
        assert_eq!(m.scalar_div(2.0).to_dense(), m.to_dense().scalar_div(2.0));
        assert_eq!(m.scalar_pow(2.0).to_dense(), m.to_dense().scalar_pow(2.0));
        assert_eq!(m.scalar_pow(3.0).get(1, 1), -27.0);
    }

    #[test]
    fn sparse_add_and_sub_match_dense() {
        let a = sp();
        let b = CsrMatrix::from_triplets(2, 3, &[(0, 1, 5.0), (0, 2, -2.0), (1, 1, 3.0)]).unwrap();
        let s = a.add(&b);
        assert_eq!(s.to_dense(), a.to_dense().add(&b.to_dense()));
        // cancellations drop stored entries
        assert_eq!(s.get(0, 2), 0.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(a.sub(&b).to_dense(), a.to_dense().sub(&b.to_dense()));
    }

    #[test]
    fn map_nnz_leaves_structure() {
        let m = sp().map_nnz(|v| v * v);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 1), 9.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        sp().add(&CsrMatrix::zeros(3, 3));
    }
}
