//! Error type for fallible sparse-matrix constructors.

use std::fmt;

/// Errors produced by fallible [`crate::CsrMatrix`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// A triplet referenced a row or column outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
    },
    /// Raw CSR arrays were internally inconsistent.
    MalformedCsr(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "triplet ({row}, {col}) out of bounds for {rows}x{cols} matrix"
            ),
            SparseError::MalformedCsr(msg) => write!(f, "malformed CSR arrays: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias for results with [`SparseError`].
pub type SparseResult<T> = std::result::Result<T, SparseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SparseError::IndexOutOfBounds {
            row: 5,
            col: 0,
            rows: 2,
            cols: 2,
        };
        assert!(e.to_string().contains("(5, 0)"));
        let m = SparseError::MalformedCsr("bad indptr".into());
        assert!(m.to_string().contains("bad indptr"));
    }
}
