//! Multiplication kernels: sparse×dense, dense×sparse, sparse×sparse, and
//! the symmetric cross-product.
//!
//! These are the kernels the factorized rewrites spend their time in:
//! `K (R X)` is a sparse×dense SpMM, `(X K) R` needs dense×sparse, the
//! efficient cross-product needs `Kᵀ S` (transposed SpMM) and sparse
//! cross-products of the base tables.

use crate::CsrMatrix;
use morpheus_dense::DenseMatrix;
use morpheus_runtime::{Executor, Runtime};

/// Work estimate (in fused multiply-adds) below which sparse kernels run
/// inline — scoped-thread spawns cost more than tiny products.
const PAR_WORK_THRESHOLD: usize = 1 << 16;

/// Caps `ex` to one worker when there is too little work to amortize
/// thread spawns. Scheduling only — results are identical either way.
fn effective(ex: &Executor, work: usize) -> Executor {
    if work < PAR_WORK_THRESHOLD {
        Executor::serial()
    } else {
        *ex
    }
}

impl CsrMatrix {
    /// Sparse × dense product `self * x` → dense.
    ///
    /// # Panics
    /// Panics if `self.cols() != x.rows()`.
    pub fn spmm_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        self.spmm_dense_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::spmm_dense`] with an explicit executor: CSR rows map to
    /// independent output rows, parallelized over row bands with the serial
    /// per-row accumulation order preserved (bit-identical to one thread).
    ///
    /// # Panics
    /// Panics if `self.cols() != x.rows()`.
    pub fn spmm_dense_with(&self, x: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            x.rows(),
            "spmm_dense: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            x.rows(),
            x.cols()
        );
        let m = self.rows();
        let n = x.cols();
        let ex = effective(ex, self.nnz() * n.max(1));
        if n == 1 {
            // Vector fast path: one fused scalar accumulation per non-zero.
            let xs = x.as_slice();
            let mut sums = vec![0.0; m];
            if m > 0 {
                let band = ex.grain(m);
                ex.par_chunks_mut(&mut sums, band, |bi, chunk| {
                    let i0 = bi * band;
                    for (li, o) in chunk.iter_mut().enumerate() {
                        let (cols, vals) = self.row(i0 + li);
                        *o = cols.iter().zip(vals).map(|(&c, &v)| v * xs[c]).sum();
                    }
                });
            }
            return DenseMatrix::col_vector(&sums);
        }
        let mut out = DenseMatrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let band = ex.grain(m);
        ex.par_chunks_mut(out.as_mut_slice(), band * n, |bi, chunk| {
            let i0 = bi * band;
            for (li, orow) in chunk.chunks_mut(n).enumerate() {
                let (cols, vals) = self.row(i0 + li);
                for (&c, &v) in cols.iter().zip(vals) {
                    let xrow = x.row(c);
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Transposed sparse × dense product `selfᵀ * x` → dense, computed by
    /// scattering rows of `x` — the transpose is never materialized.
    ///
    /// # Panics
    /// Panics if `self.rows() != x.rows()`.
    pub fn t_spmm_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            x.rows(),
            "t_spmm_dense: row counts differ ({} vs {})",
            self.rows(),
            x.rows()
        );
        let n = x.cols();
        let mut out = DenseMatrix::zeros(self.cols(), n);
        let o = out.as_mut_slice();
        if n == 1 {
            // Vector fast path: scalar scatter per non-zero.
            let xs = x.as_slice();
            for (i, &xv) in xs.iter().enumerate() {
                let (cols, vals) = self.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    o[c] += v * xv;
                }
            }
            return out;
        }
        for i in 0..self.rows() {
            let (cols, vals) = self.row(i);
            let xrow = x.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                let orow = &mut o[c * n..(c + 1) * n];
                for (ov, &xv) in orow.iter_mut().zip(xrow) {
                    *ov += v * xv;
                }
            }
        }
        out
    }

    /// Dense × sparse product `x * self` → dense.
    ///
    /// Iterates the sparse matrix row-wise and scatters into the output:
    /// `out[i, c] += x[i, k] * self[k, c]`.
    ///
    /// # Panics
    /// Panics if `x.cols() != self.rows()`.
    pub fn dense_spmm(&self, x: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            x.cols(),
            self.rows(),
            "dense_spmm: inner dimensions differ ({}x{} * {}x{})",
            x.rows(),
            x.cols(),
            self.rows(),
            self.cols()
        );
        let m = x.rows();
        let n = self.cols();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            let xrow = x.row(i);
            let orow = out.row_mut(i);
            for (k, &xv) in xrow.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let (cols, vals) = self.row(k);
                for (&c, &v) in cols.iter().zip(vals) {
                    orow[c] += xv * v;
                }
            }
        }
        out
    }

    /// Sparse × sparse product `self * other` → sparse (SpGEMM).
    ///
    /// Gustavson's algorithm with a dense accumulator row and a touched-column
    /// list, so each output row costs O(flops + |touched|).
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn spgemm(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "spgemm: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let n = other.cols();
        let mut acc = vec![0.0f64; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut indptr = Vec::with_capacity(self.rows() + 1);
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        indptr.push(0);
        for i in 0..self.rows() {
            let (acols, avals) = self.row(i);
            for (&k, &av) in acols.iter().zip(avals) {
                let (bcols, bvals) = other.row(k);
                for (&c, &bv) in bcols.iter().zip(bvals) {
                    if acc[c] == 0.0 && !touched.contains(&c) {
                        touched.push(c);
                    }
                    acc[c] += av * bv;
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                if acc[c] != 0.0 {
                    indices.push(c);
                    values.push(acc[c]);
                }
                acc[c] = 0.0;
            }
            touched.clear();
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_unchecked(self.rows(), n, indptr, indices, values)
    }

    /// Symmetric cross-product `selfᵀ * self` → dense `d x d`.
    ///
    /// Accumulates outer products of the sparse rows into the upper triangle,
    /// then mirrors — the same symmetry saving as the dense kernel.
    pub fn crossprod_dense(&self) -> DenseMatrix {
        self.crossprod_dense_with(&Runtime::executor())
    }

    /// [`CsrMatrix::crossprod_dense`] with an explicit executor.
    ///
    /// This kernel scatters row outer-products into the output, so workers
    /// own disjoint bands of output rows; each streams over all non-zeros
    /// but accumulates only the entries whose leading column falls in its
    /// band. Per-element accumulation order equals the serial kernel, so
    /// parallel results are bit-identical to one thread.
    pub fn crossprod_dense_with(&self, ex: &Executor) -> DenseMatrix {
        let d = self.cols();
        let mut out = DenseMatrix::zeros(d, d);
        if d == 0 || self.nnz() == 0 {
            return out;
        }
        // Work per row of the triangle is irregular; nnz² / rows is a
        // crude but serviceable estimate of the fma count.
        let ex = effective(ex, self.nnz() * (self.nnz() / self.rows().max(1) + 1));
        let band = ex.grain(d);
        ex.par_chunks_mut(out.as_mut_slice(), band * d, |bi, chunk| {
            let c0 = bi * band;
            let rows_in_band = chunk.len() / d;
            for i in 0..self.rows() {
                let (cols, vals) = self.row(i);
                for (p, (&ci, &vi)) in cols.iter().zip(vals).enumerate() {
                    if ci < c0 || ci >= c0 + rows_in_band {
                        continue;
                    }
                    let orow = &mut chunk[(ci - c0) * d..(ci - c0 + 1) * d];
                    for (&cj, &vj) in cols[p..].iter().zip(&vals[p..]) {
                        orow[cj] += vi * vj;
                    }
                }
            }
        });
        let o = out.as_mut_slice();
        for i in 0..d {
            for j in (i + 1)..d {
                o[j * d + i] = o[i * d + j];
            }
        }
        out
    }

    /// `selfᵀ * other` for two sparse matrices with equal row counts → dense.
    ///
    /// Used for the off-diagonal blocks `P = Rᵀ (Kᵀ S)` of the cross-product
    /// rewrites when both operands are sparse.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn t_spgemm_dense(&self, other: &CsrMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_spgemm_dense: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let d1 = self.cols();
        let d2 = other.cols();
        let mut out = DenseMatrix::zeros(d1, d2);
        let o = out.as_mut_slice();
        for i in 0..self.rows() {
            let (acols, avals) = self.row(i);
            let (bcols, bvals) = other.row(i);
            for (&ca, &va) in acols.iter().zip(avals) {
                let orow = &mut o[ca * d2..(ca + 1) * d2];
                for (&cb, &vb) in bcols.iter().zip(bvals) {
                    orow[cb] += va * vb;
                }
            }
        }
        out
    }

    /// Sparse matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        self.spmv_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::spmv`] with an explicit executor; output entries are
    /// independent row dot-products, parallelized over row bands.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv_with(&self, x: &[f64], ex: &Executor) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols(),
            "spmv: vector length {} != cols {}",
            x.len(),
            self.cols()
        );
        let m = self.rows();
        let mut out = vec![0.0; m];
        if m == 0 {
            return out;
        }
        let ex = effective(ex, self.nnz());
        let band = ex.grain(m);
        ex.par_chunks_mut(&mut out, band, |bi, chunk| {
            let i0 = bi * band;
            for (li, o) in chunk.iter_mut().enumerate() {
                let (cols, vals) = self.row(i0 + li);
                *o = cols.iter().zip(vals).map(|(&c, &v)| v * x[c]).sum();
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (2, 3, -1.0),
            ],
        )
        .unwrap()
    }

    fn dn(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |i, j| (i * cols + j + 1) as f64)
    }

    #[test]
    fn spmm_dense_matches_dense_product() {
        let a = sp();
        let x = dn(4, 2);
        assert!(a.spmm_dense(&x).approx_eq(&a.to_dense().matmul(&x), 1e-12));
    }

    #[test]
    fn t_spmm_dense_matches_transpose_product() {
        let a = sp();
        let x = dn(3, 2);
        assert!(a
            .t_spmm_dense(&x)
            .approx_eq(&a.to_dense().transpose().matmul(&x), 1e-12));
    }

    #[test]
    fn dense_spmm_matches_dense_product() {
        let a = sp();
        let x = dn(2, 3);
        assert!(a.dense_spmm(&x).approx_eq(&x.matmul(&a.to_dense()), 1e-12));
    }

    #[test]
    fn spgemm_matches_dense_product() {
        let a = sp();
        let b = a.transpose();
        let c = a.spgemm(&b);
        assert!(c
            .to_dense()
            .approx_eq(&a.to_dense().matmul(&b.to_dense()), 1e-12));
        // cancellation should drop entries
        let p = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, -1.0)]).unwrap();
        let q = CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(p.spgemm(&q).nnz(), 0);
    }

    #[test]
    fn crossprod_matches_dense() {
        let a = sp();
        assert!(a
            .crossprod_dense()
            .approx_eq(&a.to_dense().crossprod(), 1e-12));
    }

    #[test]
    fn t_spgemm_dense_matches_dense() {
        let a = sp();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let expected = a.to_dense().transpose().matmul(&b.to_dense());
        assert!(a.t_spgemm_dense(&b).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn spmv_matches_matvec() {
        let a = sp();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.spmv(&x), a.to_dense().matvec(&x));
    }

    #[test]
    fn indicator_products_replicate_rows() {
        // K (R x) — the inner building block of factorized LMM.
        let k = CsrMatrix::indicator(&[1, 0, 1], 2);
        let r = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let kr = k.spmm_dense(&r);
        assert_eq!(kr.row(0), &[3.0, 4.0]);
        assert_eq!(kr.row(1), &[1.0, 2.0]);
        assert_eq!(kr.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn parallel_sparse_kernels_bit_identical_to_serial() {
        use morpheus_runtime::Executor;
        // A bigger pseudo-random sparse matrix so several bands exist.
        let trips: Vec<(usize, usize, f64)> = (0..400)
            .map(|t| {
                let i = (t * 7 + 3) % 37;
                let j = (t * 13 + 5) % 19;
                (i, j, ((t % 11) as f64) - 5.0)
            })
            .collect();
        let a = CsrMatrix::from_triplets(37, 19, &trips).unwrap();
        let x = dn(19, 4);
        let xv: Vec<f64> = (0..19).map(|i| (i as f64) * 0.25 - 2.0).collect();
        let serial = Executor::serial();
        for threads in [2, 3, 8] {
            let par = Executor::new(threads);
            assert_eq!(a.spmm_dense_with(&x, &par), a.spmm_dense_with(&x, &serial));
            assert_eq!(a.spmv_with(&xv, &par), a.spmv_with(&xv, &serial));
            assert_eq!(
                a.crossprod_dense_with(&par),
                a.crossprod_dense_with(&serial)
            );
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn spmm_shape_mismatch_panics() {
        sp().spmm_dense(&DenseMatrix::zeros(3, 2));
    }
}
