//! Multiplication kernels: sparse×dense, dense×sparse, sparse×sparse, and
//! the symmetric cross-product.
//!
//! These are the kernels the factorized rewrites spend their time in:
//! `K (R X)` is a sparse×dense SpMM, `(X K) R` needs dense×sparse, the
//! efficient cross-product needs `Kᵀ S` (transposed SpMM) and sparse
//! cross-products of the base tables.
//!
//! ## Parallel scatter kernels
//!
//! The gather-style kernels (`spmm_dense`, `spmv`) parallelize directly
//! over independent output rows. The *scatter*-written kernels
//! (`t_spmm_dense`, `t_spgemm_dense`, `spgemm`) cannot — several input
//! rows write the same output row — so they run a **two-pass
//! symbolic/numeric scheme** above the parallelism threshold:
//!
//! 1. a counting pass computes exact per-output-row extents (the column
//!    buckets of the transposed access for `t_spmm_dense`/`t_spgemm_dense`;
//!    exact per-row nnz for `spgemm`), then
//! 2. disjoint output bands are filled in parallel, each band replaying
//!    the serial per-element accumulation order.
//!
//! Because each output element is still accumulated by exactly one worker
//! in input-row-ascending order, parallel results are **bit-for-bit
//! identical** to one thread (property-tested in
//! `tests/parallel_kernels_proptest.rs`).

use crate::CsrMatrix;
use morpheus_dense::{simd, DenseMatrix};
use morpheus_runtime::{Executor, Runtime};

/// Flop estimate for products that stream `a`'s non-zeros against rows of
/// `b`: nnz(a) × the average `b`-row density it multiplies into. Crude but
/// serviceable for the parallelism gate; shared so the heuristic cannot
/// drift between the kernels that use it.
fn sparse_product_work(a: &CsrMatrix, b: &CsrMatrix) -> usize {
    a.nnz().saturating_mul(b.nnz() / b.rows().max(1) + 1)
}

impl CsrMatrix {
    /// The symbolic/numeric counting pass shared by the transposed scatter
    /// kernels: per-column extents (`offsets`, length `cols + 1`) plus the
    /// non-zeros regrouped by column — `rows[offsets[c]..offsets[c+1]]` /
    /// `vals[..]` list the entries of column `c` in ascending row order,
    /// which is exactly the serial kernels' per-element accumulation
    /// order.
    fn column_buckets(&self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let d = self.cols();
        let mut offsets = vec![0usize; d + 1];
        for &c in self.indices() {
            offsets[c + 1] += 1;
        }
        for c in 0..d {
            offsets[c + 1] += offsets[c];
        }
        let nnz = self.nnz();
        let mut rows = vec![0usize; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut fill = offsets.clone();
        for i in 0..self.rows() {
            let (cols, vs) = self.row(i);
            for (&c, &v) in cols.iter().zip(vs) {
                let slot = fill[c];
                fill[c] = slot + 1;
                rows[slot] = i;
                vals[slot] = v;
            }
        }
        (offsets, rows, vals)
    }

    /// One Gustavson output row of `self * other`, appended to
    /// `out_cols`/`out_vals` (sorted columns, exact zeros dropped). The
    /// single definition keeps the serial kernel and the banded parallel
    /// pass accumulating in the identical order.
    fn gustavson_row(
        &self,
        other: &CsrMatrix,
        i: usize,
        acc: &mut [f64],
        touched: &mut Vec<usize>,
        out_cols: &mut Vec<usize>,
        out_vals: &mut Vec<f64>,
    ) {
        let (acols, avals) = self.row(i);
        for (&k, &av) in acols.iter().zip(avals) {
            let (bcols, bvals) = other.row(k);
            for (&c, &bv) in bcols.iter().zip(bvals) {
                if acc[c] == 0.0 && !touched.contains(&c) {
                    touched.push(c);
                }
                acc[c] += av * bv;
            }
        }
        touched.sort_unstable();
        for &c in touched.iter() {
            if acc[c] != 0.0 {
                out_cols.push(c);
                out_vals.push(acc[c]);
            }
            acc[c] = 0.0;
        }
        touched.clear();
    }

    /// Sparse × dense product `self * x` → dense.
    ///
    /// # Panics
    /// Panics if `self.cols() != x.rows()`.
    pub fn spmm_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        self.spmm_dense_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::spmm_dense`] with an explicit executor: CSR rows map to
    /// independent output rows, parallelized over row bands with the serial
    /// per-row accumulation order preserved (bit-identical to one thread).
    ///
    /// # Panics
    /// Panics if `self.cols() != x.rows()`.
    pub fn spmm_dense_with(&self, x: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            x.rows(),
            "spmm_dense: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            x.rows(),
            x.cols()
        );
        let m = self.rows();
        let n = x.cols();
        let ex = ex.gated(self.nnz() * n.max(1));
        if n == 1 {
            // Vector fast path: one fused scalar accumulation per non-zero.
            let xs = x.as_slice();
            let mut sums = vec![0.0; m];
            if m > 0 {
                let band = ex.grain(m);
                ex.par_chunks_mut(&mut sums, band, |bi, chunk| {
                    let i0 = bi * band;
                    for (li, o) in chunk.iter_mut().enumerate() {
                        let (cols, vals) = self.row(i0 + li);
                        *o = simd::dot_indexed(vals, cols, xs);
                    }
                });
            }
            return DenseMatrix::col_vector(&sums);
        }
        let mut out = DenseMatrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let band = ex.grain(m);
        ex.par_chunks_mut(out.as_mut_slice(), band * n, |bi, chunk| {
            let i0 = bi * band;
            for (li, orow) in chunk.chunks_mut(n).enumerate() {
                let (cols, vals) = self.row(i0 + li);
                for (&c, &v) in cols.iter().zip(vals) {
                    let xrow = x.row(c);
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Transposed sparse × dense product `selfᵀ * x` → dense, computed by
    /// scattering rows of `x` — the transpose is never materialized.
    ///
    /// # Panics
    /// Panics if `self.rows() != x.rows()`.
    pub fn t_spmm_dense(&self, x: &DenseMatrix) -> DenseMatrix {
        self.t_spmm_dense_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::t_spmm_dense`] with an explicit executor.
    ///
    /// Output rows are scatter-written (row `i` of `x` lands on output row
    /// `c` for every non-zero `(i, c)`), so the parallel path runs the
    /// two-pass scheme: [`CsrMatrix::column_buckets`] regroups the
    /// non-zeros by output row, then disjoint output bands accumulate
    /// their buckets in ascending input-row order — the serial kernel's
    /// exact per-element order, so results are bit-identical to one
    /// thread.
    ///
    /// # Panics
    /// Panics if `self.rows() != x.rows()`.
    pub fn t_spmm_dense_with(&self, x: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            x.rows(),
            "t_spmm_dense: row counts differ ({} vs {})",
            self.rows(),
            x.rows()
        );
        let n = x.cols();
        let d = self.cols();
        let mut out = DenseMatrix::zeros(d, n);
        if d == 0 || n == 0 || self.nnz() == 0 {
            return out;
        }
        let ex = ex.gated(self.nnz() * n);
        if ex.threads() <= 1 {
            // Serial scatter: no counting pass, no bucket allocation.
            let o = out.as_mut_slice();
            if n == 1 {
                // Vector fast path: scalar scatter per non-zero.
                let xs = x.as_slice();
                for (i, &xv) in xs.iter().enumerate() {
                    let (cols, vals) = self.row(i);
                    for (&c, &v) in cols.iter().zip(vals) {
                        o[c] += v * xv;
                    }
                }
                return out;
            }
            for i in 0..self.rows() {
                let (cols, vals) = self.row(i);
                let xrow = x.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    let orow = &mut o[c * n..(c + 1) * n];
                    for (ov, &xv) in orow.iter_mut().zip(xrow) {
                        *ov += v * xv;
                    }
                }
            }
            return out;
        }
        let (offsets, src_rows, src_vals) = self.column_buckets();
        let band = ex.grain(d);
        if n == 1 {
            let xs = x.as_slice();
            ex.par_chunks_mut(out.as_mut_slice(), band, |bi, chunk| {
                let c0 = bi * band;
                for (lc, o) in chunk.iter_mut().enumerate() {
                    for s in offsets[c0 + lc]..offsets[c0 + lc + 1] {
                        *o += src_vals[s] * xs[src_rows[s]];
                    }
                }
            });
            return out;
        }
        ex.par_chunks_mut(out.as_mut_slice(), band * n, |bi, chunk| {
            let c0 = bi * band;
            for (lc, orow) in chunk.chunks_mut(n).enumerate() {
                for s in offsets[c0 + lc]..offsets[c0 + lc + 1] {
                    let xrow = x.row(src_rows[s]);
                    let v = src_vals[s];
                    for (o, &xv) in orow.iter_mut().zip(xrow) {
                        *o += v * xv;
                    }
                }
            }
        });
        out
    }

    /// Dense × sparse product `x * self` → dense.
    ///
    /// Iterates the sparse matrix row-wise and scatters into the output:
    /// `out[i, c] += x[i, k] * self[k, c]`.
    ///
    /// # Panics
    /// Panics if `x.cols() != self.rows()`.
    pub fn dense_spmm(&self, x: &DenseMatrix) -> DenseMatrix {
        self.dense_spmm_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::dense_spmm`] with an explicit executor.
    ///
    /// The scatter stays *within* each output row (`orow[c] += …`), and
    /// output rows depend on exactly one row of `x` — so rows are
    /// independent and parallelize over bands directly, each preserving
    /// the serial k-ascending accumulation order (bit-identical to one
    /// thread).
    ///
    /// # Panics
    /// Panics if `x.cols() != self.rows()`.
    pub fn dense_spmm_with(&self, x: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            x.cols(),
            self.rows(),
            "dense_spmm: inner dimensions differ ({}x{} * {}x{})",
            x.rows(),
            x.cols(),
            self.rows(),
            self.cols()
        );
        let m = x.rows();
        let n = self.cols();
        let mut out = DenseMatrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        // Upper bound: every dense row streams all non-zeros of `self`.
        let ex = ex.gated(m.saturating_mul(self.nnz()));
        let band = ex.grain(m);
        ex.par_chunks_mut(out.as_mut_slice(), band * n, |bi, chunk| {
            let i0 = bi * band;
            for (li, orow) in chunk.chunks_mut(n).enumerate() {
                let xrow = x.row(i0 + li);
                for (k, &xv) in xrow.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let (cols, vals) = self.row(k);
                    for (&c, &v) in cols.iter().zip(vals) {
                        orow[c] += xv * v;
                    }
                }
            }
        });
        out
    }

    /// Sparse × sparse product `self * other` → sparse (SpGEMM).
    ///
    /// Gustavson's algorithm with a dense accumulator row and a touched-column
    /// list, so each output row costs O(flops + |touched|).
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn spgemm(&self, other: &CsrMatrix) -> CsrMatrix {
        self.spgemm_with(other, &Runtime::executor())
    }

    /// [`CsrMatrix::spgemm`] with an explicit executor.
    ///
    /// The output's sparsity structure is unknown upfront, so the parallel
    /// path is two-pass: row bands first compute their exact output rows
    /// (Gustavson into private buffers — the counting pass that yields
    /// exact per-row extents, cancellation included), then `indptr` is
    /// assembled by prefix sum and the disjoint `indices`/`values` bands
    /// are placed in parallel. Per-row content is computed by the same
    /// code as the serial kernel, so results are bit-identical at any
    /// worker count.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn spgemm_with(&self, other: &CsrMatrix, ex: &Executor) -> CsrMatrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "spgemm: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let m = self.rows();
        let n = other.cols();
        let ex = ex.gated(sparse_product_work(self, other));
        if ex.threads() <= 1 || m <= 1 {
            let mut acc = vec![0.0f64; n];
            let mut touched: Vec<usize> = Vec::new();
            let mut indptr = Vec::with_capacity(m + 1);
            let mut indices: Vec<usize> = Vec::new();
            let mut values: Vec<f64> = Vec::new();
            indptr.push(0);
            for i in 0..m {
                self.gustavson_row(other, i, &mut acc, &mut touched, &mut indices, &mut values);
                indptr.push(indices.len());
            }
            return CsrMatrix::from_raw_unchecked(m, n, indptr, indices, values);
        }
        // Pass 1 — counting + numeric per band: exact per-row extents and
        // contents, each band with private Gustavson scratch.
        let band = ex.grain(m);
        let n_bands = m.div_ceil(band);
        let bands: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = ex.map(n_bands, |bi| {
            let i0 = bi * band;
            let iend = (i0 + band).min(m);
            let mut acc = vec![0.0f64; n];
            let mut touched: Vec<usize> = Vec::new();
            let mut lens = Vec::with_capacity(iend - i0);
            let mut cols_buf: Vec<usize> = Vec::new();
            let mut vals_buf: Vec<f64> = Vec::new();
            for i in i0..iend {
                let before = cols_buf.len();
                self.gustavson_row(
                    other,
                    i,
                    &mut acc,
                    &mut touched,
                    &mut cols_buf,
                    &mut vals_buf,
                );
                lens.push(cols_buf.len() - before);
            }
            (lens, cols_buf, vals_buf)
        });
        // indptr by prefix sum over the exact extents, in row order.
        let mut indptr = Vec::with_capacity(m + 1);
        indptr.push(0usize);
        for (lens, _, _) in &bands {
            for &l in lens {
                indptr.push(indptr.last().unwrap() + l);
            }
        }
        let total = *indptr.last().unwrap();
        // Pass 2 — placement: carve `indices`/`values` into disjoint
        // per-band output slices and fill them in parallel.
        let mut indices = vec![0usize; total];
        let mut values = vec![0.0f64; total];
        let mut idx_rest: &mut [usize] = &mut indices;
        let mut val_rest: &mut [f64] = &mut values;
        let mut items = Vec::with_capacity(bands.len());
        for (_, cols_buf, vals_buf) in bands {
            let (idx_band, rest) = std::mem::take(&mut idx_rest).split_at_mut(cols_buf.len());
            idx_rest = rest;
            let (val_band, rest) = std::mem::take(&mut val_rest).split_at_mut(vals_buf.len());
            val_rest = rest;
            items.push((cols_buf, vals_buf, idx_band, val_band));
        }
        ex.for_each_item(items, |(cols_buf, vals_buf, idx_band, val_band)| {
            idx_band.copy_from_slice(&cols_buf);
            val_band.copy_from_slice(&vals_buf);
        });
        CsrMatrix::from_raw_unchecked(m, n, indptr, indices, values)
    }

    /// Symmetric cross-product `selfᵀ * self` → dense `d x d`.
    ///
    /// Accumulates outer products of the sparse rows into the upper triangle,
    /// then mirrors — the same symmetry saving as the dense kernel.
    pub fn crossprod_dense(&self) -> DenseMatrix {
        self.crossprod_dense_with(&Runtime::executor())
    }

    /// [`CsrMatrix::crossprod_dense`] with an explicit executor.
    ///
    /// This kernel scatters row outer-products into the output, so workers
    /// own disjoint bands of output rows; each streams over all non-zeros
    /// but accumulates only the entries whose leading column falls in its
    /// band. Per-element accumulation order equals the serial kernel, so
    /// parallel results are bit-identical to one thread.
    pub fn crossprod_dense_with(&self, ex: &Executor) -> DenseMatrix {
        let d = self.cols();
        let mut out = DenseMatrix::zeros(d, d);
        if d == 0 || self.nnz() == 0 {
            return out;
        }
        // Work per row of the triangle is irregular; nnz² / rows (i.e. the
        // self-product estimate) is a crude but serviceable fma count.
        let ex = ex.gated(sparse_product_work(self, self));
        let band = ex.grain(d);
        ex.par_chunks_mut(out.as_mut_slice(), band * d, |bi, chunk| {
            let c0 = bi * band;
            let rows_in_band = chunk.len() / d;
            for i in 0..self.rows() {
                let (cols, vals) = self.row(i);
                for (p, (&ci, &vi)) in cols.iter().zip(vals).enumerate() {
                    if ci < c0 || ci >= c0 + rows_in_band {
                        continue;
                    }
                    let orow = &mut chunk[(ci - c0) * d..(ci - c0 + 1) * d];
                    for (&cj, &vj) in cols[p..].iter().zip(&vals[p..]) {
                        orow[cj] += vi * vj;
                    }
                }
            }
        });
        let o = out.as_mut_slice();
        for i in 0..d {
            for j in (i + 1)..d {
                o[j * d + i] = o[i * d + j];
            }
        }
        out
    }

    /// `selfᵀ * other` for two sparse matrices with equal row counts → dense.
    ///
    /// Used for the off-diagonal blocks `P = Rᵀ (Kᵀ S)` of the cross-product
    /// rewrites when both operands are sparse.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn t_spgemm_dense(&self, other: &CsrMatrix) -> DenseMatrix {
        self.t_spgemm_dense_with(other, &Runtime::executor())
    }

    /// [`CsrMatrix::t_spgemm_dense`] with an explicit executor.
    ///
    /// Scatter-written like [`CsrMatrix::t_spmm_dense`] (output row `ca`
    /// collects every input row where `self` has a non-zero in column
    /// `ca`), and parallelized the same way: the counting pass buckets
    /// `self`'s non-zeros by column, then disjoint output bands replay
    /// their buckets in ascending input-row order — bit-identical to one
    /// thread.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn t_spgemm_dense_with(&self, other: &CsrMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_spgemm_dense: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let d1 = self.cols();
        let d2 = other.cols();
        let mut out = DenseMatrix::zeros(d1, d2);
        if d1 == 0 || d2 == 0 || self.nnz() == 0 || other.nnz() == 0 {
            return out;
        }
        let ex = ex.gated(sparse_product_work(self, other));
        if ex.threads() <= 1 {
            let o = out.as_mut_slice();
            for i in 0..self.rows() {
                let (acols, avals) = self.row(i);
                let (bcols, bvals) = other.row(i);
                for (&ca, &va) in acols.iter().zip(avals) {
                    let orow = &mut o[ca * d2..(ca + 1) * d2];
                    for (&cb, &vb) in bcols.iter().zip(bvals) {
                        orow[cb] += va * vb;
                    }
                }
            }
            return out;
        }
        let (offsets, src_rows, src_vals) = self.column_buckets();
        let band = ex.grain(d1);
        ex.par_chunks_mut(out.as_mut_slice(), band * d2, |bi, chunk| {
            let c0 = bi * band;
            for (lc, orow) in chunk.chunks_mut(d2).enumerate() {
                for s in offsets[c0 + lc]..offsets[c0 + lc + 1] {
                    let i = src_rows[s];
                    let va = src_vals[s];
                    let (bcols, bvals) = other.row(i);
                    for (&cb, &vb) in bcols.iter().zip(bvals) {
                        orow[cb] += va * vb;
                    }
                }
            }
        });
        out
    }

    /// Sparse matrix–vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        self.spmv_with(x, &Runtime::executor())
    }

    /// [`CsrMatrix::spmv`] with an explicit executor; output entries are
    /// independent row dot-products, parallelized over row bands.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn spmv_with(&self, x: &[f64], ex: &Executor) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols(),
            "spmv: vector length {} != cols {}",
            x.len(),
            self.cols()
        );
        let m = self.rows();
        let mut out = vec![0.0; m];
        if m == 0 {
            return out;
        }
        let ex = ex.gated(self.nnz());
        let band = ex.grain(m);
        ex.par_chunks_mut(&mut out, band, |bi, chunk| {
            let i0 = bi * band;
            for (li, o) in chunk.iter_mut().enumerate() {
                let (cols, vals) = self.row(i0 + li);
                *o = simd::dot_indexed(vals, cols, x);
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 1.0),
                (0, 3, 2.0),
                (1, 0, 3.0),
                (2, 2, 4.0),
                (2, 3, -1.0),
            ],
        )
        .unwrap()
    }

    fn dn(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix::from_fn(rows, cols, |i, j| (i * cols + j + 1) as f64)
    }

    #[test]
    fn spmm_dense_matches_dense_product() {
        let a = sp();
        let x = dn(4, 2);
        assert!(a.spmm_dense(&x).approx_eq(&a.to_dense().matmul(&x), 1e-12));
    }

    #[test]
    fn t_spmm_dense_matches_transpose_product() {
        let a = sp();
        let x = dn(3, 2);
        assert!(a
            .t_spmm_dense(&x)
            .approx_eq(&a.to_dense().transpose().matmul(&x), 1e-12));
    }

    #[test]
    fn dense_spmm_matches_dense_product() {
        let a = sp();
        let x = dn(2, 3);
        assert!(a.dense_spmm(&x).approx_eq(&x.matmul(&a.to_dense()), 1e-12));
    }

    #[test]
    fn spgemm_matches_dense_product() {
        let a = sp();
        let b = a.transpose();
        let c = a.spgemm(&b);
        assert!(c
            .to_dense()
            .approx_eq(&a.to_dense().matmul(&b.to_dense()), 1e-12));
        // cancellation should drop entries
        let p = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, -1.0)]).unwrap();
        let q = CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        assert_eq!(p.spgemm(&q).nnz(), 0);
    }

    #[test]
    fn crossprod_matches_dense() {
        let a = sp();
        assert!(a
            .crossprod_dense()
            .approx_eq(&a.to_dense().crossprod(), 1e-12));
    }

    #[test]
    fn t_spgemm_dense_matches_dense() {
        let a = sp();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 2.0), (2, 1, 3.0)]).unwrap();
        let expected = a.to_dense().transpose().matmul(&b.to_dense());
        assert!(a.t_spgemm_dense(&b).approx_eq(&expected, 1e-12));
    }

    #[test]
    fn spmv_matches_matvec() {
        let a = sp();
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.spmv(&x), a.to_dense().matvec(&x));
    }

    #[test]
    fn indicator_products_replicate_rows() {
        // K (R x) — the inner building block of factorized LMM.
        let k = CsrMatrix::indicator(&[1, 0, 1], 2);
        let r = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let kr = k.spmm_dense(&r);
        assert_eq!(kr.row(0), &[3.0, 4.0]);
        assert_eq!(kr.row(1), &[1.0, 2.0]);
        assert_eq!(kr.row(2), &[3.0, 4.0]);
    }

    /// A bigger pseudo-random sparse matrix so several bands exist.
    fn pseudo_sparse(rows: usize, cols: usize) -> CsrMatrix {
        let trips: Vec<(usize, usize, f64)> = (0..400)
            .map(|t| {
                let i = (t * 7 + 3) % rows;
                let j = (t * 13 + 5) % cols;
                (i, j, ((t % 11) as f64) - 5.0)
            })
            .collect();
        CsrMatrix::from_triplets(rows, cols, &trips).unwrap()
    }

    #[test]
    fn parallel_sparse_kernels_bit_identical_to_serial() {
        use morpheus_runtime::Executor;
        // Drop the gate so these small shapes actually exercise the
        // parallel paths (scheduling only — any test asserting equality
        // is threshold-independent, so the global override is safe).
        Runtime::set_par_threshold(1);
        let a = pseudo_sparse(37, 19);
        let x = dn(19, 4);
        let xv: Vec<f64> = (0..19).map(|i| (i as f64) * 0.25 - 2.0).collect();
        let serial = Executor::serial();
        for threads in [2, 3, 8] {
            let par = Executor::new(threads);
            assert_eq!(a.spmm_dense_with(&x, &par), a.spmm_dense_with(&x, &serial));
            assert_eq!(a.spmv_with(&xv, &par), a.spmv_with(&xv, &serial));
            assert_eq!(
                a.crossprod_dense_with(&par),
                a.crossprod_dense_with(&serial)
            );
        }
    }

    #[test]
    fn parallel_scatter_kernels_bit_identical_to_serial() {
        use morpheus_runtime::Executor;
        Runtime::set_par_threshold(1);
        let a = pseudo_sparse(37, 19);
        let y = dn(37, 4);
        let yv = dn(37, 1);
        let xd = dn(5, 37);
        let b = pseudo_sparse(19, 23);
        let bt = pseudo_sparse(37, 11);
        let serial = Executor::serial();
        for threads in [2, 3, 8] {
            let par = Executor::new(threads);
            assert_eq!(
                a.t_spmm_dense_with(&y, &par),
                a.t_spmm_dense_with(&y, &serial)
            );
            assert_eq!(
                a.t_spmm_dense_with(&yv, &par),
                a.t_spmm_dense_with(&yv, &serial)
            );
            assert_eq!(
                a.dense_spmm_with(&xd, &par),
                a.dense_spmm_with(&xd, &serial)
            );
            assert_eq!(a.spgemm_with(&b, &par), a.spgemm_with(&b, &serial));
            assert_eq!(
                a.t_spgemm_dense_with(&bt, &par),
                a.t_spgemm_dense_with(&bt, &serial)
            );
        }
    }

    #[test]
    fn two_pass_spgemm_matches_serial_structure() {
        // The banded two-pass SpGEMM must produce the identical CSR
        // structure (indptr/indices/values), including dropped
        // cancellation zeros, not merely the same dense content.
        use morpheus_runtime::Executor;
        Runtime::set_par_threshold(1);
        let a = pseudo_sparse(37, 19);
        let b = pseudo_sparse(19, 23);
        let serial = a.spgemm_with(&b, &Executor::serial());
        let par = a.spgemm_with(&b, &Executor::new(4));
        assert_eq!(par.indptr(), serial.indptr());
        assert_eq!(par.indices(), serial.indices());
        assert_eq!(par.values(), serial.values());
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn spmm_shape_mismatch_panics() {
        sp().spmm_dense(&DenseMatrix::zeros(3, 2));
    }
}
