//! CSV ingestion: building a normalized matrix from base-table files.
//!
//! Mirrors the paper's §3.2 construction snippet:
//!
//! ```r
//! S = read.csv("S.csv") //foreign key name K
//! R = read.csv("R.csv")
//! K = sparseMatrix(i=1:nrow(S), j=S[,"K"], x=1)
//! TN = NormalizedMatrix(EntTable=list(S), AttTables=list(R), KIndicators=list(K))
//! ```
//!
//! Files are headered, comma-separated, all-numeric. Foreign-key columns
//! hold 0-based row numbers of the referenced table (the paper assumes RID
//! and K "are already sequential row numbers").

use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors from CSV parsing and normalized-matrix assembly.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file had no header row.
    MissingHeader,
    /// A named column was not found in the header.
    NoSuchColumn(String),
    /// A data row had the wrong number of fields.
    RaggedRow {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// A field failed to parse as a number.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// Column name.
        column: String,
        /// Raw text.
        text: String,
    },
    /// A foreign-key value was out of range for the referenced table.
    BadForeignKey {
        /// 1-based line number.
        line: usize,
        /// Parsed key value.
        key: usize,
        /// Rows in the referenced table.
        rows: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::MissingHeader => write!(f, "file has no header row"),
            CsvError::NoSuchColumn(c) => write!(f, "no column named '{c}'"),
            CsvError::RaggedRow {
                line,
                found,
                expected,
            } => write!(f, "line {line}: {found} fields, expected {expected}"),
            CsvError::BadNumber { line, column, text } => {
                write!(f, "line {line}, column '{column}': cannot parse '{text}'")
            }
            CsvError::BadForeignKey { line, key, rows } => {
                write!(
                    f,
                    "line {line}: foreign key {key} out of range ({rows} rows)"
                )
            }
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<CsvError> for morpheus_core::MorpheusError {
    /// Carries the rendered message: `morpheus-data` sits above
    /// `morpheus-core` in the crate DAG, so the unified error cannot hold
    /// `CsvError` structurally without a dependency cycle.
    fn from(e: CsvError) -> Self {
        morpheus_core::MorpheusError::Data(e.to_string())
    }
}

/// A parsed CSV table: header names plus a dense numeric matrix.
#[derive(Debug, Clone)]
pub struct CsvTable {
    /// Column names from the header row.
    pub columns: Vec<String>,
    /// Row-major numeric payload.
    pub data: DenseMatrix,
}

impl CsvTable {
    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize, CsvError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| CsvError::NoSuchColumn(name.to_string()))
    }

    /// Copies one column out as `Vec<f64>`.
    pub fn column(&self, name: &str) -> Result<Vec<f64>, CsvError> {
        let idx = self.column_index(name)?;
        Ok(self.data.col(idx))
    }

    /// The feature matrix with the named columns removed (e.g. dropping the
    /// target and foreign-key columns).
    pub fn features_without(&self, drop: &[&str]) -> Result<DenseMatrix, CsvError> {
        let mut drop_idx = Vec::with_capacity(drop.len());
        for name in drop {
            drop_idx.push(self.column_index(name)?);
        }
        let keep: Vec<usize> = (0..self.columns.len())
            .filter(|i| !drop_idx.contains(i))
            .collect();
        let mut out = DenseMatrix::zeros(self.data.rows(), keep.len());
        for r in 0..self.data.rows() {
            let src = self.data.row(r);
            for (dst_c, &src_c) in keep.iter().enumerate() {
                out.set(r, dst_c, src[src_c]);
            }
        }
        Ok(out)
    }
}

/// Reads a headered, all-numeric CSV file.
pub fn read_csv(path: &Path) -> Result<CsvTable, CsvError> {
    let text = fs::read_to_string(path)?;
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::MissingHeader)?;
    let columns: Vec<String> = header.split(',').map(|c| c.trim().to_string()).collect();
    let width = columns.len();
    let mut values = Vec::new();
    let mut rows = 0usize;
    for (i, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != width {
            return Err(CsvError::RaggedRow {
                line: i + 1,
                found: fields.len(),
                expected: width,
            });
        }
        for (c, field) in fields.iter().enumerate() {
            let v: f64 = field.trim().parse().map_err(|_| CsvError::BadNumber {
                line: i + 1,
                column: columns[c].clone(),
                text: field.trim().to_string(),
            })?;
            values.push(v);
        }
        rows += 1;
    }
    let data = DenseMatrix::from_vec(rows, width, values)
        .expect("read_csv: internal shape accounting error");
    Ok(CsvTable { columns, data })
}

/// The result of loading a PK-FK schema from CSV files.
pub struct LoadedPkFk {
    /// The normalized matrix over the loaded base tables.
    pub tn: NormalizedMatrix,
    /// The target column from the entity table, if requested.
    pub y: Option<DenseMatrix>,
}

/// Loads entity table `s_path` and attribute table `r_path` and assembles
/// the normalized matrix, following the paper's construction. `fk_column`
/// names the 0-based foreign-key column in S; `target_column` (optional)
/// names the label column, which is excluded from the features.
pub fn load_pk_fk(
    s_path: &Path,
    fk_column: &str,
    target_column: Option<&str>,
    r_path: &Path,
) -> Result<LoadedPkFk, CsvError> {
    let s_table = read_csv(s_path)?;
    let r_table = read_csv(r_path)?;
    let fk_raw = s_table.column(fk_column)?;
    let n_r = r_table.data.rows();
    let mut fk = Vec::with_capacity(fk_raw.len());
    for (i, &v) in fk_raw.iter().enumerate() {
        let k = v as usize;
        if v < 0.0 || v.fract() != 0.0 || k >= n_r {
            return Err(CsvError::BadForeignKey {
                line: i + 2, // header + 1-based
                key: k,
                rows: n_r,
            });
        }
        fk.push(k);
    }
    let mut drop = vec![fk_column];
    if let Some(t) = target_column {
        drop.push(t);
    }
    let s_features = s_table.features_without(&drop)?;
    let y = match target_column {
        Some(t) => Some(DenseMatrix::col_vector(&s_table.column(t)?)),
        None => None,
    };
    let tn = NormalizedMatrix::pk_fk(Matrix::Dense(s_features), &fk, Matrix::Dense(r_table.data));
    Ok(LoadedPkFk { tn, y })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("morpheus-csv-test-{}-{name}", std::process::id()));
        let mut f = fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path
    }

    #[test]
    fn read_csv_parses_header_and_rows() {
        let p = temp_file("basic.csv", "a,b,c\n1,2,3\n4,5,6\n");
        let t = read_csv(&p).unwrap();
        assert_eq!(t.columns, vec!["a", "b", "c"]);
        assert_eq!(t.data.shape(), (2, 3));
        assert_eq!(t.column("b").unwrap(), vec![2.0, 5.0]);
        fs::remove_file(p).ok();
    }

    #[test]
    fn read_csv_rejects_ragged_and_bad_numbers() {
        let p = temp_file("ragged.csv", "a,b\n1,2\n3\n");
        assert!(matches!(
            read_csv(&p),
            Err(CsvError::RaggedRow { line: 3, .. })
        ));
        fs::remove_file(p).ok();
        let p2 = temp_file("nan.csv", "a,b\n1,x\n");
        assert!(matches!(read_csv(&p2), Err(CsvError::BadNumber { .. })));
        fs::remove_file(p2).ok();
    }

    #[test]
    fn load_pk_fk_mirrors_paper_snippet() {
        // Customers(churn, age, income, employer_id) and Employers(revenue).
        let s = temp_file(
            "S.csv",
            "churn,age,income,K\n1,30,50,0\n-1,40,60,1\n1,25,40,1\n-1,55,90,0\n",
        );
        let r = temp_file("R.csv", "revenue,country\n100,1\n200,2\n");
        let loaded = load_pk_fk(&s, "K", Some("churn"), &r).unwrap();
        assert_eq!(loaded.tn.shape(), (4, 4)); // [age, income] + [revenue, country]
        let y = loaded.y.unwrap();
        assert_eq!(y.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
        // Row 2 joins employer 1: features [25, 40, 200, 2].
        let t = loaded.tn.materialize().to_dense();
        assert_eq!(t.row(2), &[25.0, 40.0, 200.0, 2.0]);
        fs::remove_file(s).ok();
        fs::remove_file(r).ok();
    }

    #[test]
    fn load_pk_fk_rejects_bad_keys() {
        let s = temp_file("Sbad.csv", "v,K\n1,5\n");
        let r = temp_file("Rbad.csv", "w\n9\n");
        assert!(matches!(
            load_pk_fk(&s, "K", None, &r),
            Err(CsvError::BadForeignKey { key: 5, .. })
        ));
        fs::remove_file(s).ok();
        fs::remove_file(r).ok();
    }

    #[test]
    fn missing_column_is_reported() {
        let p = temp_file("cols.csv", "a\n1\n");
        let t = read_csv(&p).unwrap();
        assert!(matches!(
            t.column("zz"),
            Err(CsvError::NoSuchColumn(ref c)) if c == "zz"
        ));
        fs::remove_file(p).ok();
    }
}
