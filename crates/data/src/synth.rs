//! Synthetic dense data generators for the operator- and ML-level sweeps.
//!
//! The paper's synthetic experiments (Tables 4 and 5) vary the tuple ratio
//! `TR = n_S / n_R`, the feature ratio `FR = d_R / d_S`, and — for M:N
//! joins — the join-attribute domain size `n_U`. The generators here are
//! deterministic given a seed, guarantee the paper's structural assumptions
//! (every attribute-table row referenced at least once), and produce both
//! the normalized matrix and a target vector.

use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: the normalized matrix plus a numeric target.
pub struct SynthDataset {
    /// The normalized (factorized) data matrix.
    pub tn: NormalizedMatrix,
    /// Numeric target (`n x 1`); binarize for classification.
    pub y: DenseMatrix,
}

impl SynthDataset {
    /// Targets as `{−1, +1}` labels for classification experiments.
    pub fn labels(&self) -> DenseMatrix {
        self.y.map(|v| if v >= 0.0 { 1.0 } else { -1.0 })
    }
}

fn dense_uniform(rng: &mut StdRng, rows: usize, cols: usize) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Foreign-key column guaranteeing every attribute row is referenced
/// (paper §3.1: unreferenced rows are dropped a priori).
fn covering_fk(rng: &mut StdRng, n_s: usize, n_r: usize) -> Vec<usize> {
    assert!(n_s >= n_r, "covering_fk: need n_s >= n_r to cover all rows");
    let mut fk: Vec<usize> = (0..n_s)
        .map(|i| if i < n_r { i } else { rng.gen_range(0..n_r) })
        .collect();
    // Shuffle so the covered prefix is not positionally biased.
    for i in (1..n_s).rev() {
        let j = rng.gen_range(0..=i);
        fk.swap(i, j);
    }
    fk
}

/// Specification of a single PK-FK join (Table 4 style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PkFkSpec {
    /// Entity-table rows `n_S`.
    pub n_s: usize,
    /// Entity-table features `d_S`.
    pub d_s: usize,
    /// Attribute-table rows `n_R`.
    pub n_r: usize,
    /// Attribute-table features `d_R`.
    pub d_r: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PkFkSpec {
    /// Builds a spec directly from the paper's ratios: `TR = n_S / n_R` and
    /// `FR = d_R / d_S`, holding `n_r` and `d_s` fixed.
    pub fn from_ratios(tr: f64, fr: f64, n_r: usize, d_s: usize, seed: u64) -> Self {
        Self {
            n_s: (tr * n_r as f64).round() as usize,
            d_s,
            n_r,
            d_r: (fr * d_s as f64).round().max(1.0) as usize,
            seed,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> SynthDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = dense_uniform(&mut rng, self.n_s, self.d_s);
        let r = dense_uniform(&mut rng, self.n_r, self.d_r);
        let fk = covering_fk(&mut rng, self.n_s, self.n_r);
        let tn = NormalizedMatrix::pk_fk(Matrix::Dense(s), &fk, Matrix::Dense(r));
        let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| ((i % 7) as f64 - 3.0) * 0.2);
        let noise = DenseMatrix::from_fn(tn.rows(), 1, |_, _| rng.gen_range(-0.01..0.01));
        let mut y = tn.lmm(&w);
        y.add_assign(&noise);
        SynthDataset { tn, y }
    }
}

/// Specification of a star-schema multi-table PK-FK join (§3.5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarSpec {
    /// Entity-table rows `n_S`.
    pub n_s: usize,
    /// Entity-table features `d_S`.
    pub d_s: usize,
    /// `(n_Ri, d_Ri)` for each attribute table.
    pub tables: Vec<(usize, usize)>,
    /// RNG seed.
    pub seed: u64,
}

impl StarSpec {
    /// Generates the dataset.
    pub fn generate(&self) -> SynthDataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = dense_uniform(&mut rng, self.n_s, self.d_s);
        let links = self
            .tables
            .iter()
            .map(|&(n_r, d_r)| {
                let r = dense_uniform(&mut rng, n_r, d_r);
                let fk = covering_fk(&mut rng, self.n_s, n_r);
                (fk, Matrix::Dense(r))
            })
            .collect();
        let tn = NormalizedMatrix::star(Matrix::Dense(s), links);
        let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| ((i % 5) as f64 - 2.0) * 0.25);
        let y = tn.lmm(&w);
        SynthDataset { tn, y }
    }
}

/// Specification of a two-table M:N join (Table 5 style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MnJoinSpec {
    /// Rows of S (`n_S`).
    pub n_s: usize,
    /// Rows of R (`n_R`).
    pub n_r: usize,
    /// Features of S (`d_S`).
    pub d_s: usize,
    /// Features of R (`d_R`).
    pub d_r: usize,
    /// Join-attribute domain size `n_U` (number of unique key values).
    /// `n_U = 1` degenerates to the full Cartesian product.
    pub n_u: usize,
    /// RNG seed.
    pub seed: u64,
}

impl MnJoinSpec {
    /// The paper's "join attribute uniqueness degree" `n_U / n_S`.
    pub fn uniqueness_degree(&self) -> f64 {
        self.n_u as f64 / self.n_s as f64
    }

    /// Generates the dataset. Every key value is guaranteed to occur on
    /// both sides so no base row is dangling.
    pub fn generate(&self) -> SynthDataset {
        assert!(self.n_u >= 1, "MnJoinSpec: n_u must be at least 1");
        assert!(
            self.n_u <= self.n_s.min(self.n_r),
            "MnJoinSpec: n_u cannot exceed table sizes"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);
        let s = dense_uniform(&mut rng, self.n_s, self.d_s);
        let r = dense_uniform(&mut rng, self.n_r, self.d_r);
        let js: Vec<u64> = (0..self.n_s)
            .map(|i| {
                if i < self.n_u {
                    i as u64
                } else {
                    rng.gen_range(0..self.n_u as u64)
                }
            })
            .collect();
        let jr: Vec<u64> = (0..self.n_r)
            .map(|i| {
                if i < self.n_u {
                    i as u64
                } else {
                    rng.gen_range(0..self.n_u as u64)
                }
            })
            .collect();
        let tn = NormalizedMatrix::mn_join_on_keys(Matrix::Dense(s), &js, Matrix::Dense(r), &jr);
        let w = DenseMatrix::from_fn(tn.cols(), 1, |i, _| ((i % 3) as f64 - 1.0) * 0.4);
        let y = tn.lmm(&w);
        SynthDataset { tn, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pkfk_spec_dimensions() {
        let ds = PkFkSpec {
            n_s: 100,
            d_s: 4,
            n_r: 10,
            d_r: 8,
            seed: 1,
        }
        .generate();
        assert_eq!(ds.tn.shape(), (100, 12));
        assert_eq!(ds.y.shape(), (100, 1));
        let stats = ds.tn.stats();
        assert!((stats.tuple_ratio - 10.0).abs() < 1e-12);
        assert!((stats.feature_ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pkfk_from_ratios() {
        let spec = PkFkSpec::from_ratios(20.0, 4.0, 50, 5, 2);
        assert_eq!(spec.n_s, 1000);
        assert_eq!(spec.d_r, 20);
    }

    #[test]
    fn pkfk_covers_every_attribute_row() {
        let ds = PkFkSpec {
            n_s: 50,
            d_s: 2,
            n_r: 7,
            d_r: 3,
            seed: 3,
        }
        .generate();
        let k = ds.tn.parts()[1].indicator().as_rows().unwrap();
        let counts = k.col_sums();
        for j in 0..7 {
            assert!(counts.get(0, j) >= 1.0, "attribute row {j} unreferenced");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PkFkSpec {
            n_s: 30,
            d_s: 2,
            n_r: 5,
            d_r: 2,
            seed: 42,
        }
        .generate();
        let b = PkFkSpec {
            n_s: 30,
            d_s: 2,
            n_r: 5,
            d_r: 2,
            seed: 42,
        }
        .generate();
        assert!(a.tn.materialize().approx_eq(&b.tn.materialize(), 0.0));
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn star_spec_dimensions() {
        let ds = StarSpec {
            n_s: 60,
            d_s: 3,
            tables: vec![(6, 4), (5, 2)],
            seed: 7,
        }
        .generate();
        assert_eq!(ds.tn.shape(), (60, 9));
        assert_eq!(ds.tn.parts().len(), 3);
    }

    #[test]
    fn mn_join_row_count_scales_inversely_with_domain() {
        // E[|T'|] = n_s * n_r / n_u: halving the degree roughly doubles rows.
        let small = MnJoinSpec {
            n_s: 100,
            n_r: 100,
            d_s: 2,
            d_r: 2,
            n_u: 50,
            seed: 9,
        }
        .generate();
        let large = MnJoinSpec {
            n_s: 100,
            n_r: 100,
            d_s: 2,
            d_r: 2,
            n_u: 10,
            seed: 9,
        }
        .generate();
        assert!(large.tn.rows() > 2 * small.tn.rows());
        // And the normalized matrix stays faithful.
        let x = DenseMatrix::from_fn(4, 1, |i, _| i as f64);
        assert!(large
            .tn
            .lmm(&x)
            .approx_eq(&large.tn.materialize().matmul_dense(&x), 1e-10));
    }

    #[test]
    fn mn_uniqueness_degree() {
        let spec = MnJoinSpec {
            n_s: 200,
            n_r: 200,
            d_s: 2,
            d_r: 2,
            n_u: 20,
            seed: 1,
        };
        assert!((spec.uniqueness_degree() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mn_with_domain_one_is_full_cartesian_product() {
        let ds = MnJoinSpec {
            n_s: 12,
            n_r: 9,
            d_s: 2,
            d_r: 2,
            n_u: 1,
            seed: 4,
        }
        .generate();
        assert_eq!(ds.tn.rows(), 12 * 9);
        assert!(ds
            .tn
            .row_sums()
            .approx_eq(&ds.tn.materialize().row_sums(), 1e-10));
    }

    #[test]
    fn labels_are_plus_minus_one() {
        let ds = PkFkSpec {
            n_s: 40,
            d_s: 2,
            n_r: 4,
            d_r: 2,
            seed: 5,
        }
        .generate();
        for &v in ds.labels().as_slice() {
            assert!(v == 1.0 || v == -1.0);
        }
    }
}
