//! Simulated versions of the paper's seven real normalized datasets
//! (Table 6).
//!
//! The original datasets (adapted from Kumar et al., "To Join or Not to
//! Join", SIGMOD'16) are not redistributable here, so this module simulates
//! them: each dataset is described by the exact Table 6 shape statistics —
//! `(n_S, d_S, nnz_S)` for the entity table and `(n_Ri, d_Ri, nnz_Ri)` per
//! attribute table — and the generator emits sparse feature matrices with
//! the same rows, columns, and non-zeros per row (one-hot-style columns
//! plus a few numeric ones, matching how the paper encodes nominal
//! features). Foreign keys are uniform over the attribute rows.
//!
//! What the LA operators observe — dimensions, sparsity, tuple/feature
//! ratios — matches the originals (up to the uniform `scale` factor), which
//! is what determines the Table 7 speedup structure.

use morpheus_core::{Matrix, NormalizedMatrix};
use morpheus_dense::DenseMatrix;
use morpheus_sparse::CsrMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape statistics of one feature matrix: rows, columns, non-zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableShape {
    /// Number of rows.
    pub rows: usize,
    /// Number of (sparse, mostly one-hot) feature columns.
    pub cols: usize,
    /// Total stored non-zeros.
    pub nnz: usize,
}

impl TableShape {
    const fn new(rows: usize, cols: usize, nnz: usize) -> Self {
        Self { rows, cols, nnz }
    }

    fn scaled(&self, scale: f64) -> TableShape {
        let rows = ((self.rows as f64 * scale).ceil() as usize).max(1);
        let cols = ((self.cols as f64 * scale).ceil() as usize).max(1);
        // Non-zeros per row is scale-invariant (it is the number of
        // categorical attributes, a property of the schema, not the size).
        let nnz_per_row = (self.nnz as f64 / self.rows as f64).max(0.0);
        let nnz = (nnz_per_row * rows as f64).round() as usize;
        TableShape { rows, cols, nnz }
    }
}

/// A Table 6 dataset profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealDatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Entity table shape `(n_S, d_S, nnz)`; `d_S = 0` for the
    /// ratings-style datasets whose entity table carries only the target.
    pub entity: TableShape,
    /// Attribute table shapes `(n_Ri, d_Ri, nnz)`.
    pub attributes: Vec<TableShape>,
}

/// The seven Table 6 profiles, verbatim from the paper.
pub fn catalog() -> Vec<RealDatasetSpec> {
    vec![
        RealDatasetSpec {
            name: "Expedia",
            entity: TableShape::new(942_142, 27, 5_652_852),
            attributes: vec![
                TableShape::new(11_939, 12_013, 107_451),
                TableShape::new(37_021, 40_242, 555_315),
            ],
        },
        RealDatasetSpec {
            name: "Movies",
            entity: TableShape::new(1_000_209, 0, 0),
            attributes: vec![
                TableShape::new(6_040, 9_509, 30_200),
                TableShape::new(3_706, 3_839, 81_532),
            ],
        },
        RealDatasetSpec {
            name: "Yelp",
            entity: TableShape::new(215_879, 0, 0),
            attributes: vec![
                TableShape::new(11_535, 11_706, 380_655),
                TableShape::new(43_873, 43_900, 307_111),
            ],
        },
        RealDatasetSpec {
            name: "Walmart",
            entity: TableShape::new(421_570, 1, 421_570),
            attributes: vec![
                TableShape::new(2_340, 2_387, 23_400),
                TableShape::new(45, 53, 135),
            ],
        },
        RealDatasetSpec {
            name: "LastFM",
            entity: TableShape::new(343_747, 0, 0),
            attributes: vec![
                TableShape::new(4_099, 5_019, 39_992),
                TableShape::new(50_000, 50_233, 250_000),
            ],
        },
        RealDatasetSpec {
            name: "Books",
            entity: TableShape::new(253_120, 0, 0),
            attributes: vec![
                TableShape::new(27_876, 28_022, 83_628),
                TableShape::new(49_972, 53_641, 249_860),
            ],
        },
        RealDatasetSpec {
            name: "Flights",
            entity: TableShape::new(66_548, 20, 55_301),
            attributes: vec![
                TableShape::new(540, 718, 3_240),
                TableShape::new(3_167, 6_464, 22_169),
                TableShape::new(3_170, 6_467, 22_190),
            ],
        },
    ]
}

/// Looks up a profile by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<RealDatasetSpec> {
    catalog()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
}

/// A generated simulated-real dataset.
pub struct RealDataset {
    /// Dataset name.
    pub name: &'static str,
    /// The normalized data matrix with sparse base tables.
    pub tn: NormalizedMatrix,
    /// Numeric target (`n x 1`), in `[0, 5)` like the ratings datasets.
    pub y: DenseMatrix,
}

impl RealDataset {
    /// Targets binarized to `{−1, +1}` around the median-ish midpoint,
    /// matching the paper's treatment for logistic regression.
    pub fn labels(&self) -> DenseMatrix {
        self.y.map(|v| if v >= 2.5 { 1.0 } else { -1.0 })
    }
}

/// Sparse feature matrix with a given shape: `nnz/rows` entries per row in
/// distinct random columns (one-hot style with unit values).
fn sparse_features(rng: &mut StdRng, shape: TableShape) -> CsrMatrix {
    let per_row_base = shape.nnz / shape.rows.max(1);
    let remainder = shape.nnz % shape.rows.max(1);
    let mut triplets = Vec::with_capacity(shape.nnz);
    for i in 0..shape.rows {
        let k = (per_row_base + usize::from(i < remainder)).min(shape.cols);
        let mut cols = std::collections::BTreeSet::new();
        while cols.len() < k {
            cols.insert(rng.gen_range(0..shape.cols));
        }
        for c in cols {
            triplets.push((i, c, 1.0));
        }
    }
    CsrMatrix::from_triplets(shape.rows, shape.cols, &triplets)
        .expect("sparse_features: internal bounds error")
}

impl RealDatasetSpec {
    /// Generates the dataset at `scale` (1.0 = paper-size). Row and column
    /// counts scale linearly; non-zeros per row stay fixed.
    pub fn generate(&self, scale: f64, seed: u64) -> RealDataset {
        assert!(scale > 0.0, "generate: scale must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let e = self.entity.scaled(scale);
        let n_s = e.rows;
        let s: Matrix = if self.entity.cols == 0 {
            // Ratings-style dataset: entity table has no features, only
            // the target and foreign keys.
            Matrix::Sparse(CsrMatrix::zeros(n_s, 0))
        } else {
            Matrix::Sparse(sparse_features(&mut rng, e))
        };
        let links: Vec<(Vec<usize>, Matrix)> = self
            .attributes
            .iter()
            .map(|shape| {
                let sc = shape.scaled(scale);
                let r = sparse_features(&mut rng, sc);
                let fk: Vec<usize> = (0..n_s)
                    .map(|i| {
                        if i < sc.rows {
                            i
                        } else {
                            rng.gen_range(0..sc.rows)
                        }
                    })
                    .collect();
                (fk, Matrix::Sparse(r))
            })
            .collect();
        let tn = NormalizedMatrix::star(s, links);
        let y = DenseMatrix::from_fn(n_s, 1, |_, _| rng.gen_range(0.0..5.0));
        RealDataset {
            name: self.name,
            tn,
            y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table6() {
        let c = catalog();
        assert_eq!(c.len(), 7);
        let names: Vec<_> = c.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["Expedia", "Movies", "Yelp", "Walmart", "LastFM", "Books", "Flights"]
        );
        // Spot-check a few Table 6 entries.
        let expedia = &c[0];
        assert_eq!(expedia.entity.rows, 942_142);
        assert_eq!(expedia.attributes[1].cols, 40_242);
        let flights = &c[6];
        assert_eq!(flights.attributes.len(), 3);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(by_name("yelp").is_some());
        assert!(by_name("YELP").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scaled_shapes_preserve_nnz_per_row() {
        let shape = TableShape::new(10_000, 5_000, 90_000); // 9 nnz/row
        let s = shape.scaled(0.01);
        assert_eq!(s.rows, 100);
        assert_eq!(s.cols, 50);
        let per_row = s.nnz as f64 / s.rows as f64;
        assert!((per_row - 9.0).abs() < 0.5);
    }

    #[test]
    fn scale_one_preserves_exact_table6_dimensions() {
        let shape = TableShape::new(11_939, 12_013, 107_451);
        let s = shape.scaled(1.0);
        assert_eq!(s.rows, 11_939);
        assert_eq!(s.cols, 12_013);
        // nnz reconstructed from the invariant nnz-per-row (rounding only).
        assert!((s.nnz as i64 - 107_451).unsigned_abs() < 12_000);
    }

    #[test]
    fn generated_dataset_matches_scaled_profile() {
        let spec = by_name("Walmart").unwrap();
        let ds = spec.generate(0.05, 42);
        let parts = ds.tn.parts();
        assert_eq!(parts.len(), 3);
        // Entity rows ≈ 421570 * 0.05.
        let want_rows = (421_570.0f64 * 0.05).ceil() as usize;
        assert_eq!(ds.tn.logical_rows(), want_rows);
        assert_eq!(ds.y.rows(), want_rows);
        // All parts sparse; attribute shapes scaled.
        for p in parts {
            assert!(p.table().is_sparse());
        }
        assert_eq!(parts[1].table().rows(), (2_340.0f64 * 0.05).ceil() as usize);
    }

    #[test]
    fn zero_feature_entity_tables_work_end_to_end() {
        let spec = by_name("Movies").unwrap();
        let ds = spec.generate(0.002, 7);
        assert_eq!(ds.tn.parts()[0].table().cols(), 0);
        // The factorized operators must agree with materialization even
        // with an empty entity feature block.
        let x = DenseMatrix::from_fn(ds.tn.cols(), 1, |i, _| ((i % 5) as f64) - 2.0);
        let f = ds.tn.lmm(&x);
        let m = ds.tn.materialize().matmul_dense(&x);
        assert!(f.approx_eq(&m, 1e-10));
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = by_name("Flights").unwrap();
        let a = spec.generate(0.05, 9);
        let b = spec.generate(0.05, 9);
        assert!(a.tn.materialize().approx_eq(&b.tn.materialize(), 0.0));
    }

    #[test]
    fn labels_are_binary() {
        let ds = by_name("Books").unwrap().generate(0.005, 3);
        for &v in ds.labels().as_slice() {
            assert!(v == 1.0 || v == -1.0);
        }
    }
}
