//! Dataset generators for the Morpheus experiments.
//!
//! Two families, mirroring §5 of the paper:
//!
//! * [`synth`] — dense synthetic data for the operator- and algorithm-level
//!   sweeps: single PK-FK joins parameterized by tuple/feature ratio
//!   (Table 4), star-schema joins, and M:N joins parameterized by the join
//!   attribute domain size (Table 5).
//! * [`realsim`] — simulated versions of the paper's seven real normalized
//!   datasets (Table 6: Expedia, Movies, Yelp, Walmart, LastFM, Books,
//!   Flights). The originals are sparse one-hot feature matrices; the
//!   simulator reproduces their exact shape statistics — per-table row and
//!   column counts and non-zeros per row — at a configurable scale. The
//!   operators only observe dimensions and sparsity, so the paper's
//!   speedup structure (Table 7) is preserved. This substitution is
//!   documented in `DESIGN.md`.
//!
//! A small [`csv`] module additionally mirrors the paper's §3.2 snippet
//! for assembling a normalized matrix from base-table CSV files.
//!
//! Both produce [`morpheus_core::NormalizedMatrix`] values plus targets, so
//! experiments can run factorized ("F") and materialized ("M") from the
//! same object.

pub mod csv;
pub mod realsim;
pub mod synth;
