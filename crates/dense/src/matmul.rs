//! Matrix multiplication, transpose, and the symmetric cross-product.
//!
//! The GEMM kernel uses the classic i-k-j loop order so that the innermost
//! loop walks both the output row and the `other` row contiguously — this is
//! the cache-friendly, auto-vectorizable ordering for row-major storage.

use crate::DenseMatrix;

impl DenseMatrix {
    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let m = self.rows();
        let n = other.cols();
        if n == 1 {
            // Matrix-vector products degrade the ikj kernel to length-1
            // inner loops; route through the contiguous dot-product kernel
            // (this is the hot path of every GLM iteration).
            return DenseMatrix::col_vector(&self.matvec(other.as_slice()));
        }
        let mut out = DenseMatrix::zeros(m, n);
        let b = other.as_slice();
        for i in 0..m {
            let arow = self.row(i);
            let orow = &mut out.as_mut_slice()[i * n..(i + 1) * n];
            for (kk, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue; // cheap sparsity win; exact-zero skip is safe
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`, returning a column vector.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols(),
            "matvec: vector length {} != cols {}",
            x.len(),
            self.cols()
        );
        self.row_iter()
            .map(|row| row.iter().zip(x).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Vector-matrix product `x^T * self`, returning a row vector.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows(),
            "vecmat: vector length {} != rows {}",
            x.len(),
            self.rows()
        );
        let n = self.cols();
        let mut out = vec![0.0; n];
        for (i, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i)) {
                *o += xv * a;
            }
        }
        out
    }

    /// Matrix transpose `T^t`.
    pub fn transpose(&self) -> DenseMatrix {
        let (m, n) = self.shape();
        let mut out = DenseMatrix::zeros(n, m);
        // Blocked transpose keeps both access patterns within cache lines.
        const B: usize = 32;
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for ib in (0..m).step_by(B) {
            for jb in (0..n).step_by(B) {
                for i in ib..(ib + B).min(m) {
                    for j in jb..(jb + B).min(n) {
                        dst[j * m + i] = src[i * n + j];
                    }
                }
            }
        }
        out
    }

    /// The cross-product `crossprod(T) = T^t * T` (the Gram matrix of the
    /// columns), exploiting symmetry: only the upper triangle is computed and
    /// then mirrored, saving roughly half the arithmetic — exactly the saving
    /// the paper's "efficient" rewrite (Algorithm 2) relies on.
    pub fn crossprod(&self) -> DenseMatrix {
        let (_, d) = self.shape();
        let mut out = DenseMatrix::zeros(d, d);
        {
            let o = out.as_mut_slice();
            for row in self.row_iter() {
                for (i, &xi) in row.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    // Contiguous upper-triangle tail: vectorizable, and
                    // does exactly half the arithmetic of a full product.
                    let orow = &mut o[i * d + i..(i + 1) * d];
                    for (ov, &xj) in orow.iter_mut().zip(&row[i..]) {
                        *ov += xi * xj;
                    }
                }
            }
            for i in 0..d {
                for j in (i + 1)..d {
                    o[j * d + i] = o[i * d + j];
                }
            }
        }
        out
    }

    /// The outer cross-product `tcrossprod(T) = T * T^t` (Gram matrix of the
    /// rows), exploiting symmetry.
    pub fn tcrossprod(&self) -> DenseMatrix {
        let n = self.rows();
        let mut out = DenseMatrix::zeros(n, n);
        for i in 0..n {
            let ri = self.row(i);
            for j in i..n {
                let v: f64 = ri.iter().zip(self.row(j)).map(|(&a, &b)| a * b).sum();
                out.set(i, j, v);
                out.set(j, i, v);
            }
        }
        out
    }

    /// `self^t * other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn t_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_matmul: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (n, d) = self.shape();
        let p = other.cols();
        let mut out = DenseMatrix::zeros(d, p);
        let o = out.as_mut_slice();
        if p == 1 {
            // Tᵀ x for a vector x: accumulate x[i] * row(i) with a
            // contiguous inner loop instead of length-1 scatters.
            let xs = other.as_slice();
            for (i, &xv) in xs.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                for (ov, &a) in o.iter_mut().zip(self.row(i)) {
                    *ov += xv * a;
                }
            }
            return out;
        }
        for i in 0..n {
            let arow = self.row(i);
            let brow = other.row(i);
            for (k, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let orow = &mut o[k * p..(k + 1) * p];
                for (ov, &b) in orow.iter_mut().zip(brow) {
                    *ov += a * b;
                }
            }
        }
        out
    }

    /// `self * other^t` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_t(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_t: column counts differ ({} vs {})",
            self.cols(),
            other.cols()
        );
        let m = self.rows();
        let n = other.rows();
        let mut out = DenseMatrix::zeros(m, n);
        for i in 0..m {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (j, ov) in orow.iter_mut().enumerate() {
                *ov = arow
                    .iter()
                    .zip(other.row(j))
                    .map(|(&a, &b)| a * b)
                    .sum::<f64>();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        let expected = DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        assert_eq!(m.matmul(&DenseMatrix::identity(3)), m);
        assert_eq!(DenseMatrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = a();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = DenseMatrix::from_fn(67, 45, |i, j| (i * 1000 + j) as f64);
        let t = m.transpose();
        for i in 0..67 {
            for j in 0..45 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn crossprod_matches_explicit() {
        let m = a();
        let expected = m.transpose().matmul(&m);
        assert!(m.crossprod().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn tcrossprod_matches_explicit() {
        let m = a();
        let expected = m.matmul(&m.transpose());
        assert!(m.tcrossprod().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn fused_transpose_products() {
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = DenseMatrix::from_rows(&[&[1.0], &[0.5], &[-1.0]]);
        assert!(x.t_matmul(&y).approx_eq(&x.transpose().matmul(&y), 1e-12));
        let z = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        assert!(x.matmul_t(&z).approx_eq(&x.matmul(&z.transpose()), 1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dim_mismatch_panics() {
        a().matmul(&a());
    }
}
