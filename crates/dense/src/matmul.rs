//! Matrix multiplication, transpose, and the symmetric cross-product.
//!
//! Every matrix-matrix product in this module — `matmul`, `crossprod`,
//! `tcrossprod`, `t_matmul`, `matmul_t` — bottoms out in the packed-panel,
//! register-blocked SIMD microkernel of [`crate::simd`]: the right operand
//! is packed once into `KC x NR` column panels, each row band packs its
//! left-operand tiles into `MR`-row panels, and an `MR x NR` register tile
//! is updated with broadcast-FMA (AVX2 where detected, a bit-identical
//! scalar-FMA microkernel under `MORPHEUS_SIMD=off`, plain multiply-add on
//! hardware without FMA). Transposed drivers absorb their transpose into
//! the packing strides, so no operand is ever materialized transposed.
//!
//! **Parallelism**: output rows are split into bands executed on the
//! shared [`morpheus_runtime`] executor. Each output element is
//! accumulated by exactly one worker in the exact ascending-k order
//! regardless of band or tile alignment, so the parallel kernels agree
//! with the single-threaded path **bit for bit** (and `Executor::new(1)`
//! reproduces the full-pool results exactly).
//!
//! Every hot kernel has a `*_with(&Executor)` variant for per-call thread
//! control; the plain methods draw workers from [`Runtime::executor`], which
//! already accounts for threads claimed by enclosing parallel sections
//! (e.g. the chunked backend), so the two levels compose without
//! oversubscription.

use crate::simd::{self, GemmBand, GemmIsa, MatSrc};
use crate::DenseMatrix;
use morpheus_runtime::{Executor, Runtime};

/// Packs `b`, then runs the packed-panel GEMM band-parallel on `ex`:
/// `out[r, :] += Σ_kk a(i0 + r, kk) * b(kk, :)` for the `m x n` output.
/// `tri_upper` skips tiles entirely below the diagonal (the symmetric
/// drivers mirror afterwards).
#[allow(clippy::too_many_arguments)]
fn gemm_driver(
    a: MatSrc<'_>,
    b: MatSrc<'_>,
    out: &mut [f64],
    m: usize,
    k: usize,
    n: usize,
    tri_upper: bool,
    ex: &Executor,
) {
    let isa = GemmIsa::active();
    let packed = simd::pack_b(b, k, n);
    let band = ex.grain(m);
    ex.par_chunks_mut(out, band * n, |bi, chunk| {
        GemmBand {
            a,
            b: &packed,
            i0: bi * band,
            tri_upper,
        }
        .run(isa, chunk);
    });
}

impl DenseMatrix {
    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        self.matmul_with(other, &Runtime::executor())
    }

    /// [`DenseMatrix::matmul`] with an explicit executor.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul_with(&self, other: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            other.rows(),
            "matmul: inner dimensions differ ({}x{} * {}x{})",
            self.rows(),
            self.cols(),
            other.rows(),
            other.cols()
        );
        let (m, k) = self.shape();
        let n = other.cols();
        if n == 1 {
            // Matrix-vector products degrade the ikj kernel to length-1
            // inner loops; route through the contiguous dot-product kernel
            // (this is the hot path of every GLM iteration).
            return DenseMatrix::col_vector(&self.matvec_with(other.as_slice(), ex));
        }
        if m == 1 {
            // One output row: packing all of B (zero-padded to NR panels)
            // costs as much as the product itself. Stream B exactly once
            // with a contiguous axpy per input row instead — this is
            // `colSums(K) * B` in the factorized column-sum rewrite.
            // Either way every output element accumulates in ascending-k
            // order, so the worker count never changes the bits.
            let mut out = DenseMatrix::zeros(1, n);
            let ex = ex.gated(k * n);
            let a = self.as_slice();
            let bs = other.as_slice();
            if ex.threads() <= 1 {
                let o = out.as_mut_slice();
                for (&av, brow) in a.iter().zip(bs.chunks_exact(n)) {
                    for (ov, &bv) in o.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            } else {
                // Column bands each scan all of A and own their columns.
                let band = ex.grain(n);
                ex.par_chunks_mut(out.as_mut_slice(), band, |bi, chunk| {
                    let j0 = bi * band;
                    let w = chunk.len();
                    for (kk, &av) in a.iter().enumerate() {
                        let brow = &bs[kk * n + j0..kk * n + j0 + w];
                        for (o, &bv) in chunk.iter_mut().zip(brow) {
                            *o += av * bv;
                        }
                    }
                });
            }
            return out;
        }
        let mut out = DenseMatrix::zeros(m, n);
        if m == 0 || n == 0 || k == 0 {
            return out;
        }
        let ex = ex.gated(m * k * n);
        let a = MatSrc {
            data: self.as_slice(),
            rs: k,
            cs: 1,
        };
        let b = MatSrc {
            data: other.as_slice(),
            rs: n,
            cs: 1,
        };
        gemm_driver(a, b, out.as_mut_slice(), m, k, n, false, &ex);
        out
    }

    /// Matrix-vector product `self * x`, returning a column vector.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.matvec_with(x, &Runtime::executor())
    }

    /// [`DenseMatrix::matvec`] with an explicit executor; output rows are
    /// independent dot products, parallelized over row bands.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec_with(&self, x: &[f64], ex: &Executor) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols(),
            "matvec: vector length {} != cols {}",
            x.len(),
            self.cols()
        );
        let (m, k) = self.shape();
        let mut out = vec![0.0; m];
        if m == 0 {
            return out;
        }
        let ex = ex.gated(m * k);
        let band = ex.grain(m);
        let a = self.as_slice();
        ex.par_chunks_mut(&mut out, band, |bi, chunk| {
            let i0 = bi * band;
            for (r, o) in chunk.iter_mut().enumerate() {
                let row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                *o = simd::dot(row, x);
            }
        });
        out
    }

    /// Vector-matrix product `x^T * self`, returning a row vector.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat(&self, x: &[f64]) -> Vec<f64> {
        self.vecmat_with(x, &Runtime::executor())
    }

    /// [`DenseMatrix::vecmat`] with an explicit executor; the output is
    /// parallelized over column bands so each band accumulates the input
    /// rows in serial order (bit-identical to one thread).
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn vecmat_with(&self, x: &[f64], ex: &Executor) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows(),
            "vecmat: vector length {} != rows {}",
            x.len(),
            self.rows()
        );
        let (m, n) = self.shape();
        let mut out = vec![0.0; n];
        if n == 0 {
            return out;
        }
        let ex = ex.gated(m * n);
        let band = ex.grain(n);
        let a = self.as_slice();
        ex.par_chunks_mut(&mut out, band, |bi, chunk| {
            let j0 = bi * band;
            let w = chunk.len();
            for (i, &xv) in x.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let row = &a[i * n + j0..i * n + j0 + w];
                for (o, &av) in chunk.iter_mut().zip(row) {
                    *o += xv * av;
                }
            }
        });
        out
    }

    /// Matrix transpose `T^t`.
    pub fn transpose(&self) -> DenseMatrix {
        let (m, n) = self.shape();
        let mut out = DenseMatrix::zeros(n, m);
        // Blocked transpose keeps both access patterns within cache lines.
        const B: usize = 32;
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for ib in (0..m).step_by(B) {
            for jb in (0..n).step_by(B) {
                for i in ib..(ib + B).min(m) {
                    for j in jb..(jb + B).min(n) {
                        dst[j * m + i] = src[i * n + j];
                    }
                }
            }
        }
        out
    }

    /// The cross-product `crossprod(T) = T^t * T` (the Gram matrix of the
    /// columns), exploiting symmetry: only the upper triangle is computed and
    /// then mirrored, saving roughly half the arithmetic — exactly the saving
    /// the paper's "efficient" rewrite (Algorithm 2) relies on.
    pub fn crossprod(&self) -> DenseMatrix {
        self.crossprod_with(&Runtime::executor())
    }

    /// [`DenseMatrix::crossprod`] with an explicit executor.
    ///
    /// The packed kernel reads the left operand through a transposed view
    /// (`rs = 1, cs = d`) and skips register tiles entirely below the
    /// diagonal — roughly half the arithmetic, tile-granular, exactly the
    /// saving the paper's "efficient" rewrite (Algorithm 2) relies on.
    /// Workers own disjoint bands of output rows, so every upper-triangle
    /// element accumulates the input rows in ascending order regardless of
    /// the worker count.
    pub fn crossprod_with(&self, ex: &Executor) -> DenseMatrix {
        let (n, d) = self.shape();
        let mut out = DenseMatrix::zeros(d, d);
        if d == 0 || n == 0 {
            return out;
        }
        let ex = ex.gated(n * d * (d + 1) / 2);
        let data = self.as_slice();
        let a = MatSrc { data, rs: 1, cs: d };
        let b = MatSrc { data, rs: d, cs: 1 };
        gemm_driver(a, b, out.as_mut_slice(), d, n, d, true, &ex);
        let o = out.as_mut_slice();
        for i in 0..d {
            for j in (i + 1)..d {
                o[j * d + i] = o[i * d + j];
            }
        }
        out
    }

    /// The outer cross-product `tcrossprod(T) = T * T^t` (Gram matrix of the
    /// rows), exploiting symmetry.
    pub fn tcrossprod(&self) -> DenseMatrix {
        self.tcrossprod_with(&Runtime::executor())
    }

    /// [`DenseMatrix::tcrossprod`] with an explicit executor; the packed
    /// kernel reads the right operand through a transposed view, skips
    /// register tiles entirely below the diagonal, and the upper triangle
    /// is mirrored afterwards.
    pub fn tcrossprod_with(&self, ex: &Executor) -> DenseMatrix {
        let (n, d) = self.shape();
        let mut out = DenseMatrix::zeros(n, n);
        if n == 0 {
            return out;
        }
        let ex = ex.gated(n * (n + 1) / 2 * d.max(1));
        let data = self.as_slice();
        if d > 0 {
            let a = MatSrc { data, rs: d, cs: 1 };
            let b = MatSrc { data, rs: 1, cs: d };
            gemm_driver(a, b, out.as_mut_slice(), n, d, n, true, &ex);
        }
        let o = out.as_mut_slice();
        for i in 0..n {
            for j in (i + 1)..n {
                o[j * n + i] = o[i * n + j];
            }
        }
        out
    }

    /// `self^t * other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn t_matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        self.t_matmul_with(other, &Runtime::executor())
    }

    /// [`DenseMatrix::t_matmul`] with an explicit executor.
    ///
    /// This kernel scatters input rows into the output, so workers own
    /// disjoint bands of output rows and each scans the full input,
    /// accumulating only its own band — input-row order per element is
    /// preserved, keeping parallel results bit-identical to serial.
    ///
    /// # Panics
    /// Panics if `self.rows() != other.rows()`.
    pub fn t_matmul_with(&self, other: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "t_matmul: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        let (n, d) = self.shape();
        let p = other.cols();
        let mut out = DenseMatrix::zeros(d, p);
        if d == 0 || p == 0 || n == 0 {
            return out;
        }
        let ex = ex.gated(n * d * p);
        let a = self.as_slice();
        if p == 1 {
            // Tᵀ x for a vector x: accumulate x[i] * row(i) with a
            // contiguous inner loop instead of length-1 scatters; bands
            // split the output entries.
            let xs = other.as_slice();
            let band = ex.grain(d);
            ex.par_chunks_mut(out.as_mut_slice(), band, |bi, chunk| {
                let k0 = bi * band;
                let w = chunk.len();
                for (i, &xv) in xs.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let arow = &a[i * d + k0..i * d + k0 + w];
                    for (ov, &av) in chunk.iter_mut().zip(arow) {
                        *ov += xv * av;
                    }
                }
            });
            return out;
        }
        let asrc = MatSrc {
            data: a,
            rs: 1,
            cs: d,
        };
        let b = MatSrc {
            data: other.as_slice(),
            rs: p,
            cs: 1,
        };
        gemm_driver(asrc, b, out.as_mut_slice(), d, n, p, false, &ex);
        out
    }

    /// `self * other^t` without materializing the transpose.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_t(&self, other: &DenseMatrix) -> DenseMatrix {
        self.matmul_t_with(other, &Runtime::executor())
    }

    /// [`DenseMatrix::matmul_t`] with an explicit executor; output rows are
    /// independent, parallelized over row bands.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.cols()`.
    pub fn matmul_t_with(&self, other: &DenseMatrix, ex: &Executor) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "matmul_t: column counts differ ({} vs {})",
            self.cols(),
            other.cols()
        );
        let (m, k) = self.shape();
        let n = other.rows();
        let mut out = DenseMatrix::zeros(m, n);
        if m == 0 || n == 0 {
            return out;
        }
        let ex = ex.gated(m * n * k.max(1));
        if k == 0 {
            return out;
        }
        let a = MatSrc {
            data: self.as_slice(),
            rs: k,
            cs: 1,
        };
        let b = MatSrc {
            data: other.as_slice(),
            rs: 1,
            cs: k,
        };
        gemm_driver(a, b, out.as_mut_slice(), m, k, n, false, &ex);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    fn b() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]])
    }

    fn big(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut state = seed | 1;
        DenseMatrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matmul_known_product() {
        let c = a().matmul(&b());
        let expected = DenseMatrix::from_rows(&[&[58.0, 64.0], &[139.0, 154.0]]);
        assert_eq!(c, expected);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = a();
        assert_eq!(m.matmul(&DenseMatrix::identity(3)), m);
        assert_eq!(DenseMatrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matvec_and_vecmat() {
        let m = a();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.vecmat(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = a();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_large_blocked() {
        let m = DenseMatrix::from_fn(67, 45, |i, j| (i * 1000 + j) as f64);
        let t = m.transpose();
        for i in 0..67 {
            for j in 0..45 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn crossprod_matches_explicit() {
        let m = a();
        let expected = m.transpose().matmul(&m);
        assert!(m.crossprod().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn tcrossprod_matches_explicit() {
        let m = a();
        let expected = m.matmul(&m.transpose());
        assert!(m.tcrossprod().approx_eq(&expected, 1e-12));
    }

    #[test]
    fn fused_transpose_products() {
        let x = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let y = DenseMatrix::from_rows(&[&[1.0], &[0.5], &[-1.0]]);
        assert!(x.t_matmul(&y).approx_eq(&x.transpose().matmul(&y), 1e-12));
        let z = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.0]]);
        assert!(x.matmul_t(&z).approx_eq(&x.matmul(&z.transpose()), 1e-12));
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_serial() {
        // Larger than any band/parallel threshold games: exercise the
        // banded paths directly with explicit executors.
        let m = big(71, 23, 7);
        let x = big(23, 9, 11);
        let v: Vec<f64> = (0..23).map(|i| (i as f64) * 0.5 - 3.0).collect();
        let w: Vec<f64> = (0..71).map(|i| ((i * 13) % 7) as f64 - 2.0).collect();
        let y = big(71, 9, 13);
        let z = big(44, 23, 17);
        let serial = Executor::serial();
        for threads in [2, 3, 8] {
            let par = Executor::new(threads);
            assert_eq!(m.matmul_with(&x, &par), m.matmul_with(&x, &serial));
            assert_eq!(m.matvec_with(&v, &par), m.matvec_with(&v, &serial));
            assert_eq!(m.vecmat_with(&w, &par), m.vecmat_with(&w, &serial));
            assert_eq!(m.crossprod_with(&par), m.crossprod_with(&serial));
            assert_eq!(m.tcrossprod_with(&par), m.tcrossprod_with(&serial));
            assert_eq!(m.t_matmul_with(&y, &par), m.t_matmul_with(&y, &serial));
            assert_eq!(m.matmul_t_with(&z, &par), m.matmul_t_with(&z, &serial));
        }
    }

    #[test]
    fn blocked_gemm_matches_unblocked_across_k() {
        // k spans multiple KC blocks; blocking must not change results.
        let m = big(5, 2 * simd::KC + 37, 3);
        let x = big(2 * simd::KC + 37, 4, 5);
        let naive = DenseMatrix::from_fn(5, 4, |i, j| {
            (0..m.cols()).map(|k| m.get(i, k) * x.get(k, j)).sum()
        });
        assert!(m.matmul(&x).approx_eq(&naive, 1e-10));
    }

    #[test]
    fn degenerate_shapes_are_fine() {
        let e = DenseMatrix::zeros(0, 3);
        assert_eq!(e.crossprod().shape(), (3, 3));
        assert_eq!(e.tcrossprod().shape(), (0, 0));
        let w = DenseMatrix::zeros(4, 0);
        assert_eq!(w.crossprod().shape(), (0, 0));
        assert_eq!(w.matmul(&DenseMatrix::zeros(0, 2)).shape(), (4, 2));
        assert_eq!(w.t_matmul(&DenseMatrix::zeros(4, 2)).shape(), (0, 2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_dim_mismatch_panics() {
        a().matmul(&a());
    }
}
