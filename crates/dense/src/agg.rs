//! Aggregation operators: `rowSums`, `colSums`, `sum`, row min/max, norms.
//!
//! These correspond to the "Aggregation" rows of Table 1 in the paper and the
//! `rowMin` helper used by the K-Means LA formulation (Algorithm 7/15).
//!
//! The linear reductions run on the fixed-lane kernels of [`crate::simd`]
//! ([`morpheus_dense::simd::sum`](crate::simd::sum), min/max folds): eight
//! compile-time accumulator lanes combined in a fixed tree order, so every
//! result is deterministic run-to-run, across worker counts, and across the
//! `MORPHEUS_SIMD` gate. `colSums` keeps its per-column accumulator walk —
//! it is already one contiguous auto-vectorized add per input row.

use crate::simd;
use crate::DenseMatrix;

impl DenseMatrix {
    /// Row-wise sums, returned as an `n x 1` column vector (`rowSums(T)`).
    pub fn row_sums(&self) -> DenseMatrix {
        let sums: Vec<f64> = self.row_iter().map(simd::sum).collect();
        DenseMatrix::col_vector(&sums)
    }

    /// Column-wise sums, returned as a `1 x d` row vector (`colSums(T)`).
    pub fn col_sums(&self) -> DenseMatrix {
        let mut sums = vec![0.0; self.cols()];
        for row in self.row_iter() {
            for (s, &v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        DenseMatrix::row_vector(&sums)
    }

    /// Sum of all entries (`sum(T)`).
    pub fn sum(&self) -> f64 {
        simd::sum(self.as_slice())
    }

    /// Row-wise minima, returned as an `n x 1` column vector (`rowMin(D)`).
    ///
    /// Empty rows (zero columns) yield `f64::INFINITY`.
    pub fn row_min(&self) -> DenseMatrix {
        let mins: Vec<f64> = self.row_iter().map(simd::min).collect();
        DenseMatrix::col_vector(&mins)
    }

    /// Row-wise maxima, returned as an `n x 1` column vector.
    ///
    /// Empty rows yield `f64::NEG_INFINITY`.
    pub fn row_max(&self) -> DenseMatrix {
        let maxs: Vec<f64> = self.row_iter().map(simd::max).collect();
        DenseMatrix::col_vector(&maxs)
    }

    /// Index of the minimum entry in each row (ties broken toward the lowest
    /// index), used to validate K-Means assignment matrices.
    pub fn row_argmin(&self) -> Vec<usize> {
        self.row_iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .fold((0usize, f64::INFINITY), |(bi, bv), (i, &v)| {
                        if v < bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius norm `sqrt(sum(T^2))`.
    pub fn frobenius_norm(&self) -> f64 {
        simd::dot(self.as_slice(), self.as_slice()).sqrt()
    }

    /// Mean of all entries; `NaN` for empty matrices.
    pub fn mean(&self) -> f64 {
        self.sum() / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[-4.0, 5.0, 0.0]])
    }

    #[test]
    fn row_sums_shape_and_values() {
        let rs = m().row_sums();
        assert_eq!(rs.shape(), (2, 1));
        assert_eq!(rs.as_slice(), &[6.0, 1.0]);
    }

    #[test]
    fn col_sums_shape_and_values() {
        let cs = m().col_sums();
        assert_eq!(cs.shape(), (1, 3));
        assert_eq!(cs.as_slice(), &[-3.0, 7.0, 3.0]);
    }

    #[test]
    fn total_sum_consistent_with_row_and_col_sums() {
        let t = m();
        assert_eq!(t.sum(), 7.0);
        assert_eq!(t.row_sums().sum(), t.sum());
        assert_eq!(t.col_sums().sum(), t.sum());
    }

    #[test]
    fn row_extrema() {
        let t = m();
        assert_eq!(t.row_min().as_slice(), &[1.0, -4.0]);
        assert_eq!(t.row_max().as_slice(), &[3.0, 5.0]);
        assert_eq!(t.row_argmin(), vec![0, 0]);
        let t2 = DenseMatrix::from_rows(&[&[3.0, 1.0, 2.0]]);
        assert_eq!(t2.row_argmin(), vec![1]);
    }

    #[test]
    fn argmin_breaks_ties_low() {
        let t = DenseMatrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        assert_eq!(t.row_argmin(), vec![0]);
    }

    #[test]
    fn norms() {
        let t = DenseMatrix::from_rows(&[&[3.0, 4.0]]);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((t.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_rows_min_is_infinite() {
        let t = DenseMatrix::zeros(2, 0);
        assert_eq!(t.row_min().as_slice(), &[f64::INFINITY, f64::INFINITY]);
    }
}
