//! Explicit-SIMD compute kernels: the packed-panel GEMM microkernel and
//! the fixed-lane reduction primitives every aggregation is built on.
//!
//! # GEMM microkernel
//!
//! The matrix-product drivers in [`crate::DenseMatrix`] all bottom out in
//! one packed-panel, register-blocked kernel (the BLIS decomposition):
//!
//! * **B** is packed once per product into `KC x NR` column panels
//!   ([`pack_b`]), zero-padded to a multiple of [`NR`] columns, shared
//!   read-only by every row band.
//! * **A** is packed per band and `KC` block into `MR`-row panels stored
//!   k-major ([`GemmBand::run`]), so the microkernel streams both operands
//!   contiguously. Packing reads through a strided [`MatSrc`] view, which
//!   is how the transposed drivers (`t_matmul`, `matmul_t`, `crossprod`,
//!   `tcrossprod`) reuse the identical kernel without materializing a
//!   transpose.
//! * The microkernel computes an `MR x NR` register tile: with AVX2+FMA,
//!   8 vector accumulators (4 rows x 2 lanes-of-4) updated by
//!   broadcast-FMA per `k` step.
//!
//! Three ISA levels implement the same tile contract ([`GemmIsa`]); which
//! one runs is decided at runtime ([`GemmIsa::active`]) from CPU feature
//! detection and the `MORPHEUS_SIMD` gate in `morpheus-runtime`.
//!
//! # Determinism contract
//!
//! Every output element is accumulated by a single fused-multiply-add (or
//! multiply-add, for [`GemmIsa::Portable`]) chain in ascending-`k` order,
//! regardless of which tile computed it — full tiles, row/column remainder
//! tiles, and band boundaries all replay the identical per-element chain.
//! Consequences, property-tested in `tests/parallel_kernels_proptest.rs`:
//!
//! * results are bit-identical run-to-run and across worker counts;
//! * [`GemmIsa::Avx2Fma`] and [`GemmIsa::ScalarFma`] produce **bit-equal**
//!   outputs (an FMA rounds the same whether issued per lane or per
//!   scalar), so `MORPHEUS_SIMD=off` on FMA hardware changes schedule, not
//!   bits;
//! * [`GemmIsa::Portable`] (multiply-then-add, no FMA anywhere) agrees to
//!   rounding tolerance — it exists for hardware without FMA.
//!
//! The reduction kernels ([`sum`], [`dot`], [`dot_indexed`], [`min`],
//! [`max`]) are stricter: they split the input into a **compile-time
//! fixed** [`LANES`]-wide set of independent accumulators (never a
//! CPU-feature-dependent width) and combine them in a fixed tree order, so
//! their results are identical across ISA levels, `MORPHEUS_SIMD`
//! settings, worker counts, and runs — the explicit AVX2 paths execute the
//! exact same additions the portable loop does, just four per instruction.

// `std::arch` intrinsics are inherently unsafe to call; every unsafe
// block in this module is a feature-gated intrinsic sequence reached only
// after `is_x86_feature_detected!` confirms the ISA (see `GemmIsa`).
#![allow(unsafe_code)]

use morpheus_runtime::Runtime;

/// Rows of one register tile of the GEMM microkernel.
pub const MR: usize = 4;

/// Columns of one register tile (two 4-wide f64 vectors under AVX2).
pub const NR: usize = 8;

/// k-extent of one packed block: the `KC x NR` B panel revisited by a row
/// band stays L1/L2-resident while the band streams over it.
pub const KC: usize = 256;

/// Accumulator count of the fixed-lane reductions. Compile-time constant
/// on purpose: the lane decomposition defines the result bits, so it must
/// not vary with the instruction set the machine happens to have.
pub const LANES: usize = 8;

/// The instruction-set levels of the GEMM microkernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmIsa {
    /// Packed vector microkernel: AVX2 broadcast + FMA, 8 accumulator
    /// vectors per tile.
    Avx2Fma,
    /// Scalar microkernel over the same packed panels, accumulating with
    /// `f64::mul_add` compiled for the `fma` target feature —
    /// bit-identical to [`GemmIsa::Avx2Fma`] and the reference the
    /// vector kernel is property-tested against.
    ScalarFma,
    /// Scalar microkernel with plain multiply-then-add — no FMA
    /// instruction or libm fallback anywhere, for hardware without FMA.
    Portable,
}

impl GemmIsa {
    /// The level the plain kernel entry points dispatch to right now:
    /// a process-wide forced override when one is set (tests/benches),
    /// else the best level the CPU supports — demoted to the scalar
    /// microkernel when `MORPHEUS_SIMD` is off (see
    /// [`Runtime::simd_enabled`]).
    pub fn active() -> GemmIsa {
        if let Some(forced) = forced_isa() {
            return forced;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let fma = std::arch::is_x86_feature_detected!("fma");
            if Runtime::simd_enabled() && fma && avx2_detected() {
                return GemmIsa::Avx2Fma;
            }
            if fma {
                return GemmIsa::ScalarFma;
            }
        }
        GemmIsa::Portable
    }
}

/// The AVX2 probe behind both dispatchers, injectable via the
/// `simd.detect` failpoint: any fired kind makes the probe report
/// "unavailable" (counted as a SIMD fallback in
/// [`morpheus_runtime::faults::stats`]). GEMM then demotes to the
/// scalar-FMA microkernel and the reductions to their scalar lane bodies
/// — both bit-identical to the vector paths, so a flaky feature probe
/// degrades speed, never results. The FMA probe stays honest: `ScalarFma`
/// genuinely requires the instruction.
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_detected() -> bool {
    if morpheus_runtime::faults::check("simd.detect").is_some() {
        morpheus_runtime::faults::note(morpheus_runtime::faults::Degradation::SimdFallback);
        return false;
    }
    std::arch::is_x86_feature_detected!("avx2")
}

/// Process-wide ISA override: `0` none, else `GemmIsa` discriminant + 1.
static FORCED_ISA: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Forces every subsequent GEMM dispatch to one ISA level (`None` returns
/// to automatic detection). For tests and benches that compare kernel
/// paths; forcing a level the CPU lacks is the caller's bug (the AVX2
/// kernel is still only entered behind its own feature check).
pub fn force_isa(isa: Option<GemmIsa>) {
    let v = match isa {
        None => 0,
        Some(GemmIsa::Avx2Fma) => 1,
        Some(GemmIsa::ScalarFma) => 2,
        Some(GemmIsa::Portable) => 3,
    };
    FORCED_ISA.store(v, std::sync::atomic::Ordering::Relaxed);
}

fn forced_isa() -> Option<GemmIsa> {
    match FORCED_ISA.load(std::sync::atomic::Ordering::Relaxed) {
        1 => Some(GemmIsa::Avx2Fma),
        2 => Some(GemmIsa::ScalarFma),
        3 => Some(GemmIsa::Portable),
        _ => None,
    }
}

/// A strided read-only view of a row-major buffer: logical element
/// `(i, j)` lives at `data[i * rs + j * cs]`. `rs = row_len, cs = 1`
/// views the matrix as stored; `rs = 1, cs = row_len` views its
/// transpose — which is how every transposed product driver feeds the
/// same packing routines.
#[derive(Clone, Copy)]
pub struct MatSrc<'a> {
    /// Backing row-major buffer.
    pub data: &'a [f64],
    /// Stride between consecutive logical rows.
    pub rs: usize,
    /// Stride between consecutive logical columns.
    pub cs: usize,
}

impl MatSrc<'_> {
    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.rs + j * self.cs]
    }
}

/// B packed for the microkernel: per `KC` block, `ceil(n / NR)` panels of
/// `kc x NR` laid out panel-major (`panel[kk * NR + jl]`), zero-padded in
/// the last panel's columns. Shared read-only across row bands.
pub struct PackedB {
    data: Vec<f64>,
    /// Inner (k) dimension of the product.
    pub k: usize,
    /// Logical column count (pre-padding).
    pub n: usize,
    /// Panel count per block: `ceil(n / NR)`.
    pub panels: usize,
}

/// Packs the `k x n` operand `b` (any [`MatSrc`] striding) into
/// [`PackedB`] form. Cost is one strided read per element — `O(k * n)`
/// against the `O(m * k * n)` product it feeds.
pub fn pack_b(b: MatSrc<'_>, k: usize, n: usize) -> PackedB {
    let panels = n.div_ceil(NR).max(1);
    let mut data = vec![0.0f64; panels * NR * k];
    for kb in (0..k).step_by(KC) {
        let kc = KC.min(k - kb);
        let block = &mut data[panels * NR * kb..panels * NR * (kb + kc)];
        for jp in 0..panels {
            let panel = &mut block[jp * kc * NR..(jp + 1) * kc * NR];
            let nr = NR.min(n - (jp * NR).min(n));
            for kk in 0..kc {
                for jl in 0..nr {
                    panel[kk * NR + jl] = b.at(kb + kk, jp * NR + jl);
                }
            }
        }
    }
    PackedB { data, k, n, panels }
}

/// One band of the packed-panel GEMM: accumulates
/// `C[i0 .. i0 + rows, :] += A[i0 .. i0 + rows, :] * B` into `out_band`
/// (row-major, `rows * n` elements). Bands own disjoint output rows, so
/// the band-parallel drivers dispatch this on the shared executor.
pub struct GemmBand<'a> {
    /// Left operand view (full matrix; the band offsets into it).
    pub a: MatSrc<'a>,
    /// Packed right operand, shared across bands.
    pub b: &'a PackedB,
    /// First global output row of this band.
    pub i0: usize,
    /// When set, tiles entirely left of the diagonal are skipped — the
    /// symmetric drivers (`crossprod`, `tcrossprod`) compute the upper
    /// triangle only and mirror afterwards. Skipping is tile-granular:
    /// a diagonal tile still computes its few below-diagonal elements
    /// (the mirror pass overwrites them), which keeps every
    /// upper-triangle element's accumulation chain independent of band
    /// and tile alignment.
    pub tri_upper: bool,
}

impl GemmBand<'_> {
    /// Runs the band with the given ISA level's microkernel.
    pub fn run(&self, isa: GemmIsa, out_band: &mut [f64]) {
        let n = self.b.n;
        if n == 0 {
            return;
        }
        let rows = out_band.len() / n;
        let k = self.b.k;
        let panels = self.b.panels;
        let mut apanel = [0.0f64; MR * KC];
        let mut ctile = [0.0f64; MR * NR];
        for kb in (0..k).step_by(KC) {
            let kc = KC.min(k - kb);
            let block = &self.b.data[panels * NR * kb..panels * NR * (kb + kc)];
            for it in (0..rows).step_by(MR) {
                let mr = MR.min(rows - it);
                if mr < MR {
                    apanel[..kc * MR].fill(0.0);
                }
                // Pack the tile's A rows k-major: apanel[kk * MR + r].
                for r in 0..mr {
                    let row = self.i0 + it + r;
                    for kk in 0..kc {
                        apanel[kk * MR + r] = self.a.at(row, kb + kk);
                    }
                }
                let jp_start = if self.tri_upper {
                    (self.i0 + it) / NR
                } else {
                    0
                };
                for jp in jp_start..panels {
                    let nr = NR.min(n - jp * NR);
                    let c0 = it * n + jp * NR;
                    if mr == MR && nr == NR {
                        microkernel(
                            isa,
                            kc,
                            &apanel,
                            &block[jp * kc * NR..],
                            &mut out_band[c0..],
                            n,
                        );
                    } else {
                        // Remainder tile: stage the valid C region in a
                        // zero-padded MR x NR buffer, run the identical
                        // kernel, and write the valid region back — the
                        // per-element chains match the full-tile path
                        // exactly.
                        ctile.fill(0.0);
                        for r in 0..mr {
                            ctile[r * NR..r * NR + nr]
                                .copy_from_slice(&out_band[c0 + r * n..c0 + r * n + nr]);
                        }
                        microkernel(isa, kc, &apanel, &block[jp * kc * NR..], &mut ctile, NR);
                        for r in 0..mr {
                            out_band[c0 + r * n..c0 + r * n + nr]
                                .copy_from_slice(&ctile[r * NR..r * NR + nr]);
                        }
                    }
                }
            }
        }
    }
}

/// Dispatches one `MR x NR` tile update `C += A_panel * B_panel` to the
/// ISA level's kernel. `c` holds the tile's top-left corner with row
/// stride `ldc`; `ap` is k-major (`ap[kk * MR + r]`), `bp` panel-major
/// (`bp[kk * NR + jl]`).
#[inline]
fn microkernel(isa: GemmIsa, kc: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    match isa {
        #[cfg(target_arch = "x86_64")]
        GemmIsa::Avx2Fma => unsafe { kern_tile_avx2(kc, ap, bp, c, ldc) },
        #[cfg(not(target_arch = "x86_64"))]
        GemmIsa::Avx2Fma => kern_tile_scalar::<true>(kc, ap, bp, c, ldc),
        #[cfg(target_arch = "x86_64")]
        GemmIsa::ScalarFma => unsafe { kern_tile_scalar_fma(kc, ap, bp, c, ldc) },
        #[cfg(not(target_arch = "x86_64"))]
        GemmIsa::ScalarFma => kern_tile_scalar::<true>(kc, ap, bp, c, ldc),
        GemmIsa::Portable => kern_tile_scalar::<false>(kc, ap, bp, c, ldc),
    }
}

/// The scalar tile kernel: the reference semantics every other level must
/// reproduce (exactly, for the FMA levels). `FMA` selects fused
/// (`f64::mul_add`) vs plain multiply-add accumulation.
#[inline(always)]
fn kern_tile_scalar<const FMA: bool>(kc: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    for kk in 0..kc {
        let arow = &ap[kk * MR..kk * MR + MR];
        let brow = &bp[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let av = arow[r];
            let crow = &mut c[r * ldc..r * ldc + NR];
            for jl in 0..NR {
                crow[jl] = if FMA {
                    av.mul_add(brow[jl], crow[jl])
                } else {
                    crow[jl] + av * brow[jl]
                };
            }
        }
    }
}

/// [`kern_tile_scalar`] compiled with the `fma` target feature, so
/// `f64::mul_add` lowers to the hardware instruction instead of a libm
/// call. Callers must have verified `is_x86_feature_detected!("fma")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "fma")]
unsafe fn kern_tile_scalar_fma(kc: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    kern_tile_scalar::<true>(kc, ap, bp, c, ldc);
}

/// The AVX2+FMA tile kernel: 4 rows x 2 vectors of 4 accumulators, one
/// broadcast-FMA pair per row per `k` step — the identical per-element
/// chains as [`kern_tile_scalar::<true>`], four lanes at a time. Callers
/// must have verified `avx2` and `fma` support.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_tile_avx2(kc: usize, ap: &[f64], bp: &[f64], c: &mut [f64], ldc: usize) {
    use std::arch::x86_64::*;
    let cp = c.as_mut_ptr();
    // SAFETY: the dispatcher's debug-asserted bounds — c covers
    // (MR-1)*ldc + NR elements, ap covers kc*MR, bp covers kc*NR.
    unsafe {
        let mut acc = [[_mm256_setzero_pd(); 2]; MR];
        for (r, a) in acc.iter_mut().enumerate() {
            a[0] = _mm256_loadu_pd(cp.add(r * ldc));
            a[1] = _mm256_loadu_pd(cp.add(r * ldc + 4));
        }
        let a0 = ap.as_ptr();
        let b0 = bp.as_ptr();
        for kk in 0..kc {
            let bv0 = _mm256_loadu_pd(b0.add(kk * NR));
            let bv1 = _mm256_loadu_pd(b0.add(kk * NR + 4));
            for (r, a) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_pd(*a0.add(kk * MR + r));
                a[0] = _mm256_fmadd_pd(av, bv0, a[0]);
                a[1] = _mm256_fmadd_pd(av, bv1, a[1]);
            }
        }
        for (r, a) in acc.iter().enumerate() {
            _mm256_storeu_pd(cp.add(r * ldc), a[0]);
            _mm256_storeu_pd(cp.add(r * ldc + 4), a[1]);
        }
    }
}

// ---------------------------------------------------------------------
// Fixed-lane reductions
// ---------------------------------------------------------------------

/// Combines the [`LANES`] accumulators in the fixed tree order that
/// defines the reduction results: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline(always)]
fn combine(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Below this length the additive reductions ([`sum`], [`dot`],
/// [`dot_indexed`]) use a plain serial fold: the lane machinery (combine
/// tree, dispatch check, tail loop) costs more than the independent
/// chains save, and factorized operands routinely reduce rows of 10–30
/// elements. Determinism is unaffected — the accumulation order remains
/// a pure function of the input length, shared by every ISA level and
/// both `MORPHEUS_SIMD` settings. The min/max folds skip the cutover:
/// their result is order-independent on numbers, and the select-based
/// lane fold is faster at every width.
const LANE_CUTOVER: usize = 32;

/// Whether the explicit AVX2 reduction bodies may run. Results are
/// identical either way (same lane algorithm); this only picks the
/// instruction sequence.
#[inline]
fn reductions_use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        Runtime::simd_enabled() && avx2_detected()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Sum of a slice with [`LANES`] independent accumulators: lane `l` sums
/// elements `l, l + LANES, l + 2·LANES, …`; the lanes are combined by
/// [`combine`] and the tail (`len % LANES` elements) is then added in
/// order. Slices shorter than [`LANE_CUTOVER`] take a serial fold
/// instead. Deterministic across runs, worker counts, ISAs, and the
/// `MORPHEUS_SIMD` gate (the order depends only on the length) — and
/// ~3x faster than the single serial dependency chain it replaces on
/// long inputs (8 chains in flight cover the FP add latency).
#[inline]
pub fn sum(xs: &[f64]) -> f64 {
    if xs.len() < LANE_CUTOVER {
        return xs.iter().sum();
    }
    if reductions_use_avx2() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 support was just detected.
        return unsafe { sum_avx2(xs) };
    }
    sum_portable(xs)
}

/// The portable body of [`sum`] — public as the reference the AVX2 body
/// is tested bit-equal against.
pub fn sum_portable(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a += v;
        }
    }
    let mut s = combine(acc);
    for &v in tail {
        s += v;
    }
    s
}

/// [`sum`] with two 4-wide vector accumulators — the same eight lane
/// sums and combine tree as [`sum_portable`], four additions per
/// instruction.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn sum_avx2(xs: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    // SAFETY: each chunk is exactly LANES = 8 elements.
    unsafe {
        let mut v0 = _mm256_setzero_pd();
        let mut v1 = _mm256_setzero_pd();
        for c in chunks {
            let p = c.as_ptr();
            v0 = _mm256_add_pd(v0, _mm256_loadu_pd(p));
            v1 = _mm256_add_pd(v1, _mm256_loadu_pd(p.add(4)));
        }
        let mut acc = [0.0f64; LANES];
        _mm256_storeu_pd(acc.as_mut_ptr(), v0);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), v1);
        let mut s = combine(acc);
        for &v in tail {
            s += v;
        }
        s
    }
}

/// Dot product with the fixed-lane decomposition of [`sum`], accumulating
/// `a[i] * b[i]` with multiply-then-add (never FMA — an FMA here would
/// make the result depend on the ISA level). Slices shorter than
/// [`LANE_CUTOVER`] take a serial fold. Panics are the caller's
/// concern; the slices are truncated to the shorter length like `zip`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    if n < LANE_CUTOVER {
        return a[..n]
            .iter()
            .zip(&b[..n])
            .fold(0.0f64, |s, (x, y)| s + x * y);
    }
    if reductions_use_avx2() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2 support was just detected.
        return unsafe { dot_avx2(a, b) };
    }
    dot_portable(a, b)
}

/// The portable body of [`dot`] — the reference the AVX2 body is tested
/// bit-equal against.
pub fn dot_portable(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            acc[l] += a[i + l] * b[i + l];
        }
        i += LANES;
    }
    let mut s = combine(acc);
    while i < n {
        s += a[i] * b[i];
        i += 1;
    }
    s
}

/// [`dot`] with vector multiply + add (not FMA, matching the portable
/// body bit-for-bit).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    // SAFETY: all loads below stay within the first n elements.
    unsafe {
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut v0 = _mm256_setzero_pd();
        let mut v1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + LANES <= n {
            let p0 = _mm256_mul_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)));
            let p1 = _mm256_mul_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
            );
            v0 = _mm256_add_pd(v0, p0);
            v1 = _mm256_add_pd(v1, p1);
            i += LANES;
        }
        let mut acc = [0.0f64; LANES];
        _mm256_storeu_pd(acc.as_mut_ptr(), v0);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), v1);
        let mut s = combine(acc);
        while i < n {
            s += *ap.add(i) * *bp.add(i);
            i += 1;
        }
        s
    }
}

/// Gathered dot product `Σ vals[t] * x[idx[t]]` — the inner loop of the
/// sparse row-dot kernels (`spmv`, width-1 SpMM). Same fixed-lane
/// decomposition as [`dot`], with the same [`LANE_CUTOVER`] serial path
/// for short rows (sparse rows are routinely a handful of non-zeros);
/// the gathers stay scalar (no `vgatherdpd`), the win is the eight
/// independent accumulation chains.
///
/// # Panics
/// Panics if an index is out of bounds of `x`.
#[inline]
pub fn dot_indexed(vals: &[f64], idx: &[usize], x: &[f64]) -> f64 {
    let n = vals.len().min(idx.len());
    let (vals, idx) = (&vals[..n], &idx[..n]);
    if n < LANE_CUTOVER {
        return vals
            .iter()
            .zip(idx)
            .fold(0.0f64, |s, (&v, &j)| s + v * x[j]);
    }
    let mut acc = [0.0f64; LANES];
    let mut i = 0;
    while i + LANES <= n {
        for l in 0..LANES {
            acc[l] += vals[i + l] * x[idx[i + l]];
        }
        i += LANES;
    }
    let mut s = combine(acc);
    while i < n {
        s += vals[i] * x[idx[i]];
        i += 1;
    }
    s
}

/// Minimum of a slice over [`LANES`] independent fold chains (empty input
/// yields `f64::INFINITY`). The fold step is the comparison-select
/// `if v < m { v } else { m }` — precisely the semantics of the x86
/// `minpd` instruction, so the compiler lowers each lane step to a single
/// vector op (`f64::min` would need extra NaN-fixup instructions that
/// kept the old fold 2–3x off the sum rate). NaN *data* is skipped
/// exactly like the `f64::min` fold skipped it (`NaN < m` is false and
/// the accumulator starts finite, so a NaN is never selected), and on
/// numbers min is associative/commutative — the lane decomposition
/// cannot change the result.
#[inline]
pub fn min(xs: &[f64]) -> f64 {
    fold_lanes(xs, f64::INFINITY, |m, v| if v < m { v } else { m })
}

/// Maximum counterpart of [`min`] (empty input yields
/// `f64::NEG_INFINITY`); the select lowers to `maxpd`.
#[inline]
pub fn max(xs: &[f64]) -> f64 {
    fold_lanes(xs, f64::NEG_INFINITY, |m, v| if v > m { v } else { m })
}

#[inline(always)]
fn fold_lanes(xs: &[f64], init: f64, f: impl Fn(f64, f64) -> f64 + Copy) -> f64 {
    let mut acc = [init; LANES];
    let chunks = xs.chunks_exact(LANES);
    let tail = chunks.remainder();
    for c in chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a = f(*a, v);
        }
    }
    let mut m = f(
        f(f(acc[0], acc[1]), f(acc[2], acc[3])),
        f(f(acc[4], acc[5]), f(acc[6], acc[7])),
    );
    for &v in tail {
        m = f(m, v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn lane_sum_matches_reference_to_tolerance_and_is_exact_when_short() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let xs = series(n, n as u64 + 1);
            let serial: f64 = xs.iter().sum();
            let lane = sum(&xs);
            assert!(
                (lane - serial).abs() <= 1e-12 * serial.abs().max(1.0),
                "n={n}"
            );
            // Below the cutover the public entry IS the serial chain.
            if n < LANE_CUTOVER {
                assert_eq!(lane, serial, "n={n}");
            }
        }
    }

    #[test]
    fn avx2_reductions_bit_equal_portable() {
        // At and above the cutover the public entry dispatches to the
        // AVX2 body when available; it must match the portable lane
        // reference bit for bit (trivially true on non-AVX2 hosts).
        for n in [32, 33, 64, 257, 1000] {
            let a = series(n, 3);
            let b = series(n, 9);
            assert_eq!(sum(&a), sum_portable(&a), "sum n={n}");
            assert_eq!(dot(&a, &b), dot_portable(&a, &b), "dot n={n}");
        }
        // Below it, both the gate and the ISA are irrelevant: the serial
        // fold is shared.
        for n in [0, 1, 5, 8, 31] {
            let a = series(n, 3);
            let b = series(n, 9);
            assert_eq!(sum(&a), a.iter().sum::<f64>(), "short sum n={n}");
            let serial_dot = a.iter().zip(&b).fold(0.0f64, |s, (x, y)| s + x * y);
            assert_eq!(dot(&a, &b), serial_dot, "short dot n={n}");
        }
    }

    #[test]
    fn min_max_match_folds_and_ignore_nan() {
        let mut xs = series(100, 17);
        assert_eq!(min(&xs), xs.iter().copied().fold(f64::INFINITY, f64::min));
        assert_eq!(
            max(&xs),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
        let true_min = min(&xs);
        xs[13] = f64::NAN;
        assert_eq!(min(&xs), true_min, "NaN must be ignored, like f64::min");
    }

    #[test]
    fn dot_indexed_matches_gather_loop() {
        let vals = series(37, 5);
        let x = series(11, 7);
        let idx: Vec<usize> = (0..37).map(|i| (i * 3) % 11).collect();
        let serial: f64 = vals.iter().zip(&idx).map(|(&v, &c)| v * x[c]).sum();
        let lane = dot_indexed(&vals, &idx, &x);
        assert!((lane - serial).abs() < 1e-12);
    }

    #[test]
    fn packed_gemm_levels_agree_on_remainder_shapes() {
        // Shapes straddling every tile boundary: m % MR, n % NR, k % KC
        // all non-zero somewhere.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (5, 9, 17), (13, 300, 11)] {
            let a = series(m * k, 11);
            let b = series(k * n, 13);
            let asrc = MatSrc {
                data: &a,
                rs: k,
                cs: 1,
            };
            let bsrc = MatSrc {
                data: &b,
                rs: n,
                cs: 1,
            };
            let run = |isa: GemmIsa| {
                let packed = pack_b(bsrc, k, n);
                let mut out = vec![0.0f64; m * n];
                GemmBand {
                    a: asrc,
                    b: &packed,
                    i0: 0,
                    tri_upper: false,
                }
                .run(isa, &mut out);
                out
            };
            let portable = run(GemmIsa::Portable);
            // Naive reference.
            let mut naive = vec![0.0f64; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for kk in 0..k {
                        acc += a[i * k + kk] * b[kk * n + j];
                    }
                    naive[i * n + j] = acc;
                }
            }
            for (x, y) in portable.iter().zip(&naive) {
                assert!(
                    (x - y).abs() <= 1e-12 * y.abs().max(1.0),
                    "m={m} k={k} n={n}"
                );
            }
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("fma") {
                let scalar_fma = run(GemmIsa::ScalarFma);
                if std::arch::is_x86_feature_detected!("avx2") {
                    // The vector kernel must be BIT-identical to the
                    // scalar FMA microkernel, remainder tiles included.
                    assert_eq!(run(GemmIsa::Avx2Fma), scalar_fma, "m={m} k={k} n={n}");
                }
                for (x, y) in scalar_fma.iter().zip(&naive) {
                    assert!((x - y).abs() <= 1e-12 * y.abs().max(1.0));
                }
            }
        }
    }

    #[test]
    fn active_isa_is_consistent_with_forcing() {
        let auto = GemmIsa::active();
        force_isa(Some(GemmIsa::Portable));
        assert_eq!(GemmIsa::active(), GemmIsa::Portable);
        force_isa(None);
        assert_eq!(GemmIsa::active(), auto);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn injected_detect_failure_demotes_to_the_bit_identical_scalar_tier() {
        use morpheus_runtime::faults;
        let _guard = faults::exclusive();
        let healthy = GemmIsa::active();
        if healthy != GemmIsa::Avx2Fma {
            return; // no AVX2 to lose on this host (or the SIMD gate is off)
        }
        let fallbacks_before = faults::stats().simd_fallbacks;
        faults::configure("simd.detect=off").unwrap();
        assert_eq!(
            GemmIsa::active(),
            GemmIsa::ScalarFma,
            "a failed AVX2 probe must demote GEMM to the scalar-FMA tier"
        );
        // Reductions demote too, and stay bit-identical by construction.
        let xs = series(257, 5);
        let faulted_sum = sum(&xs);
        faults::clear();
        assert!(faults::stats().simd_fallbacks > fallbacks_before);
        assert_eq!(faulted_sum, sum(&xs), "demotion must not change bits");
        assert_eq!(GemmIsa::active(), healthy, "detection must recover");
    }
}
