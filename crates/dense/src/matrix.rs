//! The [`DenseMatrix`] type: representation, constructors, and accessors.

use crate::{DenseError, Result};
use std::fmt;

/// A dense, row-major `f64` matrix.
///
/// The backing buffer is a single contiguous `Vec<f64>` of length
/// `rows * cols`; element `(i, j)` lives at index `i * cols + j`. Vectors are
/// represented as `n x 1` (column vector) or `1 x n` (row vector) matrices,
/// mirroring R's treatment of vectors in matrix expressions.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a matrix from a raw row-major buffer.
    ///
    /// Returns [`DenseError::BufferLen`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(DenseError::BufferLen {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    /// Panics if the rows are jagged. Use [`DenseMatrix::try_from_rows`] for a
    /// fallible version.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        Self::try_from_rows(rows).expect("DenseMatrix::from_rows: jagged input")
    }

    /// Fallible version of [`DenseMatrix::from_rows`].
    pub fn try_from_rows(rows: &[&[f64]]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(DenseError::Jagged {
                    expected: ncols,
                    row: i,
                    found: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the all-ones matrix `1_{rows x cols}` used by the paper's
    /// K-Means formulation for row/column replication.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from a vector of diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &v) in diag.iter().enumerate() {
            m.data[i * n + i] = v;
        }
        m
    }

    /// Creates an `n x 1` column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Self {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has zero entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j]
    }

    /// Element mutator.
    ///
    /// # Panics
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[i * self.cols + j] = value;
    }

    /// Borrow of row `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new `Vec`.
    ///
    /// # Panics
    /// Panics if `j >= cols`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of bounds ({} cols)", self.cols);
        (0..self.rows)
            .map(|i| self.data[i * self.cols + j])
            .collect()
    }

    /// Iterator over rows as slices. Zero-column matrices yield `rows` empty
    /// slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        (0..self.rows).map(move |i| &self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Number of non-zero entries (exact comparison with `0.0`).
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// `true` if every entry of `self` is within `tol` of the corresponding
    /// entry of `other`, relative to the larger magnitude (absolute for
    /// near-zero entries).
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(&a, &b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }

    /// The diagonal entries of the matrix (length `min(rows, cols)`).
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.data[i * self.cols + i]).collect()
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        const MAX: usize = 8;
        for i in 0..self.rows.min(MAX) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(MAX) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.get(i, j))?;
            }
            if self.cols > MAX {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_happy_path() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
    }

    #[test]
    fn from_vec_bad_len() {
        let err = DenseMatrix::from_vec(2, 3, vec![1.0]).unwrap_err();
        assert!(matches!(err, DenseError::BufferLen { len: 1, .. }));
    }

    #[test]
    fn from_rows_jagged_rejected() {
        let err = DenseMatrix::try_from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, DenseError::Jagged { row: 1, .. }));
    }

    #[test]
    fn identity_and_diag() {
        let i3 = DenseMatrix::identity(3);
        assert_eq!(i3.diag(), vec![1.0, 1.0, 1.0]);
        assert_eq!(i3.nnz(), 3);
        let d = DenseMatrix::from_diag(&[2.0, 5.0]);
        assert_eq!(d.get(0, 0), 2.0);
        assert_eq!(d.get(1, 1), 5.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn vectors() {
        let c = DenseMatrix::col_vector(&[1.0, 2.0]);
        assert_eq!(c.shape(), (2, 1));
        let r = DenseMatrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
    }

    #[test]
    fn row_and_col_access() {
        let m = DenseMatrix::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0, 6.0]);
        let rows: Vec<_> = m.row_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[5.0, 6.0]);
    }

    #[test]
    fn from_fn_fills_in_row_major_order() {
        let m = DenseMatrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn approx_eq_tolerances() {
        let a = DenseMatrix::filled(2, 2, 1.0);
        let mut b = a.clone();
        b.set(0, 0, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        b.set(0, 0, 1.1);
        assert!(!a.approx_eq(&b, 1e-9));
        let c = DenseMatrix::zeros(2, 3);
        assert!(!a.approx_eq(&c, 1e-9));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        DenseMatrix::zeros(2, 2).get(2, 0);
    }

    #[test]
    fn empty_matrix() {
        let m = DenseMatrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.rows(), 0);
        assert_eq!(m.nnz(), 0);
    }
}
