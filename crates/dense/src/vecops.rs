//! Free functions on plain `&[f64]` vectors used across the workspace.
//!
//! The accumulating functions run on the fixed-lane reduction kernels of
//! [`crate::simd`], so their results are deterministic across runs, worker
//! counts, and the `MORPHEUS_SIMD` gate.

use crate::simd;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    simd::dot(a, b)
}

/// Euclidean (L2) norm of a slice.
pub fn l2_norm(a: &[f64]) -> f64 {
    simd::dot(a, a).sqrt()
}

/// Largest absolute element-wise difference between two slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Multiplies every element of `a` by `s` in place.
pub fn scale_in_place(a: &mut [f64], s: f64) {
    for v in a {
        *v *= s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn diffs_and_scaling() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
        let mut v = [1.0, -2.0];
        scale_in_place(&mut v, 3.0);
        assert_eq!(v, [3.0, -6.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
