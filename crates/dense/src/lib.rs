//! Dense `f64` matrix kernels for the Morpheus factorized linear-algebra stack.
//!
//! This crate is the lowest-level substrate of the workspace: a row-major,
//! heap-allocated dense matrix with the elementary and derived linear-algebra
//! operators that the paper *"Towards Linear Algebra over Normalized Data"*
//! (VLDB 2017) assumes from its host LA system (R + BLAS). Everything here is
//! written from scratch — no BLAS, no external numeric crates.
//!
//! # Conventions
//!
//! * Data examples are **rows** (the paper's convention), features are columns.
//! * All element types are `f64`.
//! * Shape mismatches in operators **panic** with a descriptive message, the
//!   same contract as R, NumPy, and the `ndarray` crate. Constructors that
//!   validate user-provided buffers return [`Result`] instead.
//!
//! # Example
//!
//! ```
//! use morpheus_dense::DenseMatrix;
//!
//! let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = DenseMatrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! assert_eq!(a.sum(), 10.0);
//! ```

mod agg;
mod arith;
mod error;
mod matmul;
mod matrix;
pub mod simd;
mod slicing;
mod vecops;

pub use error::{DenseError, Result};
pub use matrix::DenseMatrix;
pub use vecops::{dot, l2_norm, max_abs_diff, scale_in_place};

/// Relative tolerance used by the `approx_eq` helpers across the workspace.
pub const DEFAULT_REL_TOL: f64 = 1e-9;
