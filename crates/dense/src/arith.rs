//! Element-wise arithmetic: scalar ops, matrix-matrix ops, and scalar maps.
//!
//! These are the "Element-wise Scalar Op" and "Element-wise Matrix Op" rows of
//! Table 1 in the paper, implemented for regular dense matrices.

use crate::DenseMatrix;

macro_rules! scalar_op {
    ($(#[$doc:meta])* $name:ident, $op:tt) => {
        $(#[$doc])*
        pub fn $name(&self, x: f64) -> DenseMatrix {
            let mut out = self.clone();
            for v in out.as_mut_slice() {
                // The generic `$op` cannot be spelled as a compound
                // assignment, hence the allow.
                #[allow(clippy::assign_op_pattern)]
                {
                    *v = *v $op x;
                }
            }
            out
        }
    };
}

macro_rules! elementwise_op {
    ($(#[$doc:meta])* $name:ident, $op:tt) => {
        $(#[$doc])*
        ///
        /// # Panics
        /// Panics if the shapes differ.
        pub fn $name(&self, other: &DenseMatrix) -> DenseMatrix {
            assert_eq!(
                self.shape(),
                other.shape(),
                concat!("DenseMatrix::", stringify!($name), ": shape mismatch")
            );
            let mut out = self.clone();
            for (v, &o) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
                #[allow(clippy::assign_op_pattern)]
                {
                    *v = *v $op o;
                }
            }
            out
        }
    };
}

impl DenseMatrix {
    scalar_op!(
        /// Adds the scalar `x` to every entry (`T + x`).
        scalar_add, +
    );
    scalar_op!(
        /// Subtracts the scalar `x` from every entry (`T - x`).
        scalar_sub, -
    );
    scalar_op!(
        /// Multiplies every entry by the scalar `x` (`T * x`).
        scalar_mul, *
    );
    scalar_op!(
        /// Divides every entry by the scalar `x` (`T / x`).
        scalar_div, /
    );

    /// Computes `x - T` entry-wise (scalar on the left of a non-commutative op).
    pub fn scalar_rsub(&self, x: f64) -> DenseMatrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = x - *v;
        }
        out
    }

    /// Computes `x / T` entry-wise.
    pub fn scalar_rdiv(&self, x: f64) -> DenseMatrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = x / *v;
        }
        out
    }

    /// Raises every entry to the power `x` (`T ^ x`, element-wise).
    pub fn scalar_pow(&self, x: f64) -> DenseMatrix {
        // `powi` is markedly faster for the ubiquitous square.
        let mut out = self.clone();
        if x == 2.0 {
            for v in out.as_mut_slice() {
                *v = *v * *v;
            }
        } else {
            for v in out.as_mut_slice() {
                *v = v.powf(x);
            }
        }
        out
    }

    /// Applies an arbitrary scalar function `f` to every entry (`f(T)`).
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        let mut out = self.clone();
        for v in out.as_mut_slice() {
            *v = f(*v);
        }
        out
    }

    /// In-place variant of [`DenseMatrix::map`].
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Element-wise natural exponential (`exp(T)`).
    pub fn exp(&self) -> DenseMatrix {
        self.map(f64::exp)
    }

    /// Element-wise natural logarithm (`log(T)`).
    pub fn ln(&self) -> DenseMatrix {
        self.map(f64::ln)
    }

    /// Element-wise sigmoid `1 / (1 + exp(-t))`, the logistic-regression link.
    pub fn sigmoid(&self) -> DenseMatrix {
        self.map(|t| 1.0 / (1.0 + (-t).exp()))
    }

    elementwise_op!(
        /// Element-wise sum `T + X`.
        add, +
    );
    elementwise_op!(
        /// Element-wise difference `T - X`.
        sub, -
    );
    elementwise_op!(
        /// Element-wise (Hadamard) product `T * X`.
        mul_elem, *
    );
    elementwise_op!(
        /// Element-wise quotient `T / X`.
        div_elem, /
    );

    /// In-place element-wise sum.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (v, &o) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *v += o;
        }
    }

    /// In-place `self += alpha * other` (the BLAS `axpy` pattern).
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f64, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "axpy: shape mismatch");
        for (v, &o) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *v += alpha * o;
        }
    }

    /// In-place element-wise difference.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn sub_assign(&mut self, other: &DenseMatrix) {
        assert_eq!(self.shape(), other.shape(), "sub_assign: shape mismatch");
        for (v, &o) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *v -= o;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, x: f64) {
        for v in self.as_mut_slice() {
            *v *= x;
        }
    }

    /// Element-wise equality indicator: `1.0` where entries match within
    /// `tol`, else `0.0`. Used by K-Means for `D == rowMin(D)` assignment.
    ///
    /// # Panics
    /// Panics if the shapes differ.
    pub fn eq_indicator(&self, other: &DenseMatrix, tol: f64) -> DenseMatrix {
        assert_eq!(self.shape(), other.shape(), "eq_indicator: shape mismatch");
        let mut out = self.clone();
        for (v, &o) in out.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *v = if (*v - o).abs() <= tol { 1.0 } else { 0.0 };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]])
    }

    #[test]
    fn scalar_ops() {
        let m = sample();
        assert_eq!(m.scalar_add(1.0).as_slice(), &[2.0, -1.0, 4.0, 5.0]);
        assert_eq!(m.scalar_sub(1.0).as_slice(), &[0.0, -3.0, 2.0, 3.0]);
        assert_eq!(m.scalar_mul(2.0).as_slice(), &[2.0, -4.0, 6.0, 8.0]);
        assert_eq!(m.scalar_div(2.0).as_slice(), &[0.5, -1.0, 1.5, 2.0]);
        assert_eq!(m.scalar_rsub(0.0).as_slice(), &[-1.0, 2.0, -3.0, -4.0]);
        assert_eq!(m.scalar_rdiv(12.0).get(1, 0), 4.0);
    }

    #[test]
    fn pow_and_square() {
        let m = sample();
        assert_eq!(m.scalar_pow(2.0).as_slice(), &[1.0, 4.0, 9.0, 16.0]);
        let cubed = m.scalar_pow(3.0);
        assert!((cubed.get(1, 1) - 64.0).abs() < 1e-12);
    }

    #[test]
    fn scalar_functions() {
        let m = DenseMatrix::from_rows(&[&[0.0, 1.0]]);
        assert!((m.exp().get(0, 1) - std::f64::consts::E).abs() < 1e-12);
        assert!((m.exp().ln().get(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.sigmoid().get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn elementwise_ops() {
        let a = sample();
        let b = DenseMatrix::filled(2, 2, 2.0);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 0.0, 5.0, 6.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, -4.0, 1.0, 2.0]);
        assert_eq!(a.mul_elem(&b).as_slice(), &[2.0, -4.0, 6.0, 8.0]);
        assert_eq!(a.div_elem(&b).as_slice(), &[0.5, -1.0, 1.5, 2.0]);
    }

    #[test]
    fn in_place_ops() {
        let mut a = sample();
        let b = DenseMatrix::filled(2, 2, 1.0);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[2.0, -1.0, 4.0, 5.0]);
        a.sub_assign(&b);
        a.axpy(2.0, &b);
        assert_eq!(a.as_slice(), &[3.0, 0.0, 5.0, 6.0]);
        a.scale_in_place(0.5);
        assert_eq!(a.as_slice(), &[1.5, 0.0, 2.5, 3.0]);
    }

    #[test]
    fn eq_indicator_matches_kmeans_usage() {
        let d = DenseMatrix::from_rows(&[&[1.0, 2.0], &[5.0, 3.0]]);
        let m = DenseMatrix::from_rows(&[&[1.0, 1.0], &[3.0, 3.0]]);
        let a = d.eq_indicator(&m, 1e-12);
        assert_eq!(a.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        sample().add(&DenseMatrix::zeros(3, 2));
    }
}
