//! Error type for fallible dense-matrix constructors.

use std::fmt;

/// Errors produced by fallible [`crate::DenseMatrix`] constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseError {
    /// The provided buffer length does not equal `rows * cols`.
    BufferLen {
        /// Declared number of rows.
        rows: usize,
        /// Declared number of columns.
        cols: usize,
        /// Actual buffer length supplied.
        len: usize,
    },
    /// Rows of a jagged input had inconsistent lengths.
    Jagged {
        /// Length of the first row.
        expected: usize,
        /// Index of the offending row.
        row: usize,
        /// Length of the offending row.
        found: usize,
    },
}

impl fmt::Display for DenseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DenseError::BufferLen { rows, cols, len } => write!(
                f,
                "buffer length {len} does not match shape {rows}x{cols} (= {})",
                rows * cols
            ),
            DenseError::Jagged {
                expected,
                row,
                found,
            } => write!(
                f,
                "jagged input: row {row} has {found} entries, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for DenseError {}

/// Convenience alias for results with [`DenseError`].
pub type Result<T> = std::result::Result<T, DenseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_buffer_len() {
        let e = DenseError::BufferLen {
            rows: 2,
            cols: 3,
            len: 5,
        };
        assert!(e.to_string().contains("5"));
        assert!(e.to_string().contains("2x3"));
    }

    #[test]
    fn display_jagged() {
        let e = DenseError::Jagged {
            expected: 3,
            row: 1,
            found: 2,
        };
        assert!(e.to_string().contains("row 1"));
    }
}
