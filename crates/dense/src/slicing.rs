//! Row/column slicing, stacking, and broadcast helpers.
//!
//! The LMM rewrite splits the parameter matrix `X` by row ranges
//! (`X[1:dS,]`, `X[dS+1:d,]`), RMM and cross-product rewrites concatenate
//! partial results column-wise, and the K-Means/GNMF scripts replicate
//! vectors across rows/columns. This module provides those primitives.

use crate::DenseMatrix;
use std::ops::Range;

impl DenseMatrix {
    /// Copies the row range `range` into a new matrix (`X[range, ]`).
    ///
    /// # Panics
    /// Panics if `range.end > rows`.
    pub fn slice_rows(&self, range: Range<usize>) -> DenseMatrix {
        assert!(
            range.end <= self.rows(),
            "slice_rows: range end {} exceeds {} rows",
            range.end,
            self.rows()
        );
        let n = self.cols();
        let data = self.as_slice()[range.start * n..range.end * n].to_vec();
        DenseMatrix::from_vec(range.len(), n, data).expect("slice_rows: internal shape error")
    }

    /// Copies the column range `range` into a new matrix (`X[, range]`).
    ///
    /// # Panics
    /// Panics if `range.end > cols`.
    pub fn slice_cols(&self, range: Range<usize>) -> DenseMatrix {
        assert!(
            range.end <= self.cols(),
            "slice_cols: range end {} exceeds {} cols",
            range.end,
            self.cols()
        );
        let mut out = DenseMatrix::zeros(self.rows(), range.len());
        for i in 0..self.rows() {
            let src = &self.row(i)[range.clone()];
            out.row_mut(i).copy_from_slice(src);
        }
        out
    }

    /// Copies the rows at the given indices (gather), allowing repeats.
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> DenseMatrix {
        let n = self.cols();
        let mut out = DenseMatrix::zeros(indices.len(), n);
        for (dst, &src) in indices.iter().enumerate() {
            assert!(
                src < self.rows(),
                "gather_rows: index {src} out of bounds ({} rows)",
                self.rows()
            );
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Horizontal concatenation `[self, other]`.
    ///
    /// # Panics
    /// Panics if the row counts differ.
    pub fn hstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.rows(),
            other.rows(),
            "hstack: row counts differ ({} vs {})",
            self.rows(),
            other.rows()
        );
        DenseMatrix::hstack_all(&[self, other])
    }

    /// Horizontal concatenation of any number of blocks `[m0, m1, …]`.
    ///
    /// # Panics
    /// Panics if the blocks disagree on row count or the list is empty.
    pub fn hstack_all(blocks: &[&DenseMatrix]) -> DenseMatrix {
        assert!(!blocks.is_empty(), "hstack_all: no blocks");
        let rows = blocks[0].rows();
        for b in blocks {
            assert_eq!(b.rows(), rows, "hstack_all: row counts differ");
        }
        let cols: usize = blocks.iter().map(|b| b.cols()).sum();
        let mut out = DenseMatrix::zeros(rows, cols);
        for i in 0..rows {
            let orow = out.row_mut(i);
            let mut off = 0;
            for b in blocks {
                let w = b.cols();
                orow[off..off + w].copy_from_slice(b.row(i));
                off += w;
            }
        }
        out
    }

    /// Vertical concatenation of `self` on top of `other`.
    ///
    /// # Panics
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            self.cols(),
            other.cols(),
            "vstack: column counts differ ({} vs {})",
            self.cols(),
            other.cols()
        );
        let mut data = Vec::with_capacity(self.len() + other.len());
        data.extend_from_slice(self.as_slice());
        data.extend_from_slice(other.as_slice());
        DenseMatrix::from_vec(self.rows() + other.rows(), self.cols(), data)
            .expect("vstack: internal shape error")
    }

    /// Vertical concatenation of any number of blocks.
    ///
    /// # Panics
    /// Panics if the blocks disagree on column count or the list is empty.
    pub fn vstack_all(blocks: &[&DenseMatrix]) -> DenseMatrix {
        assert!(!blocks.is_empty(), "vstack_all: no blocks");
        let cols = blocks[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for b in blocks {
            assert_eq!(b.cols(), cols, "vstack_all: column counts differ");
            data.extend_from_slice(b.as_slice());
            rows += b.rows();
        }
        DenseMatrix::from_vec(rows, cols, data).expect("vstack_all: internal shape error")
    }

    /// Replicates a column vector across `k` columns:
    /// `v * 1_{1 x k}` in the paper's notation.
    ///
    /// # Panics
    /// Panics if `self` is not a column vector.
    pub fn replicate_cols(&self, k: usize) -> DenseMatrix {
        assert_eq!(self.cols(), 1, "replicate_cols: expected a column vector");
        let mut out = DenseMatrix::zeros(self.rows(), k);
        for i in 0..self.rows() {
            let v = self.get(i, 0);
            for o in out.row_mut(i) {
                *o = v;
            }
        }
        out
    }

    /// Replicates a row vector across `n` rows: `1_{n x 1} * v`.
    ///
    /// # Panics
    /// Panics if `self` is not a row vector.
    pub fn replicate_rows(&self, n: usize) -> DenseMatrix {
        assert_eq!(self.rows(), 1, "replicate_rows: expected a row vector");
        let mut out = DenseMatrix::zeros(n, self.cols());
        for i in 0..n {
            out.row_mut(i).copy_from_slice(self.row(0));
        }
        out
    }

    /// Scales row `i` by `weights[i]` (`diag(w) * T`).
    ///
    /// # Panics
    /// Panics if `weights.len() != rows`.
    pub fn scale_rows(&self, weights: &[f64]) -> DenseMatrix {
        assert_eq!(
            weights.len(),
            self.rows(),
            "scale_rows: weight length {} != rows {}",
            weights.len(),
            self.rows()
        );
        let mut out = self.clone();
        for (i, &w) in weights.iter().enumerate() {
            for v in out.row_mut(i) {
                *v *= w;
            }
        }
        out
    }

    /// Scales column `j` by `weights[j]` (`T * diag(w)`).
    ///
    /// # Panics
    /// Panics if `weights.len() != cols`.
    pub fn scale_cols(&self, weights: &[f64]) -> DenseMatrix {
        assert_eq!(
            weights.len(),
            self.cols(),
            "scale_cols: weight length {} != cols {}",
            weights.len(),
            self.cols()
        );
        let mut out = self.clone();
        for i in 0..out.rows() {
            for (v, &w) in out.row_mut(i).iter_mut().zip(weights) {
                *v *= w;
            }
        }
        out
    }

    /// Writes `block` into `self` starting at `(row_off, col_off)`.
    ///
    /// # Panics
    /// Panics if the block does not fit.
    pub fn set_block(&mut self, row_off: usize, col_off: usize, block: &DenseMatrix) {
        assert!(
            row_off + block.rows() <= self.rows() && col_off + block.cols() <= self.cols(),
            "set_block: {}x{} block at ({row_off}, {col_off}) does not fit in {}x{}",
            block.rows(),
            block.cols(),
            self.rows(),
            self.cols()
        );
        for i in 0..block.rows() {
            let dst = &mut self.row_mut(row_off + i)[col_off..col_off + block.cols()];
            dst.copy_from_slice(block.row(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]])
    }

    #[test]
    fn slice_rows_and_cols() {
        let t = m();
        assert_eq!(t.slice_rows(1..3).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(t.slice_rows(0..0).rows(), 0);
        let c = t.slice_cols(1..2);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.as_slice(), &[2.0, 5.0, 8.0]);
    }

    #[test]
    fn gather_rows_with_repeats() {
        let g = m().gather_rows(&[2, 0, 0]);
        assert_eq!(g.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(g.row(1), g.row(2));
    }

    #[test]
    fn stacking_round_trip() {
        let t = m();
        let left = t.slice_cols(0..1);
        let right = t.slice_cols(1..3);
        assert_eq!(left.hstack(&right), t);
        let top = t.slice_rows(0..2);
        let bottom = t.slice_rows(2..3);
        assert_eq!(top.vstack(&bottom), t);
        assert_eq!(DenseMatrix::vstack_all(&[&top, &bottom]), t);
        assert_eq!(
            DenseMatrix::hstack_all(&[&left, &t.slice_cols(1..2), &t.slice_cols(2..3)]),
            t
        );
    }

    #[test]
    fn replication_matches_ones_product() {
        let v = DenseMatrix::col_vector(&[1.0, 2.0]);
        let rep = v.replicate_cols(3);
        assert_eq!(rep, v.matmul(&DenseMatrix::ones(1, 3)));
        let r = DenseMatrix::row_vector(&[1.0, 2.0]);
        assert_eq!(r.replicate_rows(2), DenseMatrix::ones(2, 1).matmul(&r));
    }

    #[test]
    fn row_and_col_scaling() {
        let t = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.scale_rows(&[2.0, 0.0]).as_slice(), &[2.0, 4.0, 0.0, 0.0]);
        assert_eq!(t.scale_cols(&[0.0, 1.0]).as_slice(), &[0.0, 2.0, 0.0, 4.0]);
    }

    #[test]
    fn set_block_writes_in_place() {
        let mut t = DenseMatrix::zeros(3, 3);
        t.set_block(1, 1, &DenseMatrix::filled(2, 2, 9.0));
        assert_eq!(t.get(0, 0), 0.0);
        assert_eq!(t.get(1, 1), 9.0);
        assert_eq!(t.get(2, 2), 9.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn set_block_overflow_panics() {
        DenseMatrix::zeros(2, 2).set_block(1, 1, &DenseMatrix::filled(2, 2, 1.0));
    }
}
