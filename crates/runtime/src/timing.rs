//! Calibration timing hooks: minimal wall-clock measurement primitives for
//! code that needs *rates* (ns per operation), not statistics.
//!
//! The cost-based planner in `morpheus-core` calibrates a
//! per-machine profile by timing small kernel invocations. Those kernels
//! dispatch onto the resident worker pool, so the measured rates reflect
//! the exact execution environment the planner later schedules — which is
//! the whole point of calibrating instead of hard-coding constants.
//! [`warm_pool`] must run first so the one-time pool construction (thread
//! spawns) never pollutes a measurement.

use crate::Runtime;
use std::time::Instant;

/// Forces construction of the resident worker pool (and faults in the
/// thread-budget globals) so subsequent [`measure_ns`] calls time steady
///-state dispatch, not the one-time worker spawns.
pub fn warm_pool() {
    let ex = Runtime::executor();
    ex.for_each(ex.threads().max(1), |_| {});
}

/// Wall-clock nanoseconds per call of `f`: the *minimum* over `reps`
/// timed calls after one warmup call.
///
/// The minimum — not the median — because calibration wants the intrinsic
/// kernel rate: scheduling noise and interrupts only ever add time, so the
/// fastest observation is the least contaminated one.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn measure_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1, "measure_ns: need at least one repetition");
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Like [`measure_ns`] but divides by a per-call operation count, returning
/// ns per operation — the unit machine profiles store.
///
/// # Panics
/// Panics if `reps == 0` or `ops_per_call == 0`.
pub fn measure_ns_per_op(reps: usize, ops_per_call: usize, f: impl FnMut()) -> f64 {
    assert!(ops_per_call >= 1, "measure_ns_per_op: zero operation count");
    measure_ns(reps, f) / ops_per_call as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_ns_counts_calls() {
        let mut calls = 0usize;
        let ns = measure_ns(3, || calls += 1);
        assert_eq!(calls, 4); // 1 warmup + 3 timed
        assert!(ns >= 0.0);
    }

    #[test]
    fn per_op_divides() {
        let mut acc = 0u64;
        let ns = measure_ns_per_op(2, 1000, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(ns.is_finite());
        assert!(ns >= 0.0);
    }

    #[test]
    fn warm_pool_is_idempotent() {
        warm_pool();
        warm_pool();
    }
}
