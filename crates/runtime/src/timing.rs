//! Calibration timing hooks: minimal wall-clock measurement primitives for
//! code that needs *rates* (ns per operation), not statistics.
//!
//! The cost-based planner in `morpheus-core` calibrates a
//! per-machine profile by timing small kernel invocations. Those kernels
//! dispatch onto the resident worker pool, so the measured rates reflect
//! the exact execution environment the planner later schedules — which is
//! the whole point of calibrating instead of hard-coding constants.
//! [`warm_pool`] must run first so the one-time pool construction (thread
//! spawns) never pollutes a measurement.

use crate::Runtime;
use std::time::Instant;

/// Forces construction of the resident worker pool (and faults in the
/// thread-budget globals) so subsequent [`measure_ns`] calls time steady
///-state dispatch, not the one-time worker spawns.
pub fn warm_pool() {
    let ex = Runtime::executor();
    ex.for_each(ex.threads().max(1), |_| {});
}

/// Wall-clock nanoseconds per call of `f`: the *minimum* over `reps`
/// timed calls after one warmup call.
///
/// The minimum — not the median — because calibration wants the intrinsic
/// kernel rate: scheduling noise and interrupts only ever add time, so the
/// fastest observation is the least contaminated one.
///
/// # Panics
/// Panics if `reps == 0`.
pub fn measure_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1, "measure_ns: need at least one repetition");
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// Like [`measure_ns`] but divides by a per-call operation count, returning
/// ns per operation — the unit machine profiles store.
///
/// # Panics
/// Panics if `reps == 0` or `ops_per_call == 0`.
pub fn measure_ns_per_op(reps: usize, ops_per_call: usize, f: impl FnMut()) -> f64 {
    assert!(ops_per_call >= 1, "measure_ns_per_op: zero operation count");
    measure_ns(reps, f) / ops_per_call as f64
}

/// Like [`measure_ns`], but stops early once the timed calls have consumed
/// `budget_ns` of wall clock. At least one timed call (after the warmup)
/// always runs, so a result is produced even when a single call blows the
/// budget.
///
/// Calibration of the larger working-set tiers uses this: a DRAM-sized
/// GEMM can take tens of milliseconds per call on a slow machine, and a
/// fixed repetition count would turn first-use calibration into a
/// noticeable stall. The budget bounds the cost while letting fast
/// machines take every repetition.
///
/// # Panics
/// Panics if `max_reps == 0`.
pub fn measure_ns_budgeted(max_reps: usize, budget_ns: f64, mut f: impl FnMut()) -> f64 {
    assert!(max_reps >= 1, "measure_ns_budgeted: need at least one rep");
    f(); // warmup
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    for _ in 0..max_reps {
        let start = Instant::now();
        f();
        let t = start.elapsed().as_nanos() as f64;
        best = best.min(t);
        spent += t;
        if spent >= budget_ns {
            break;
        }
    }
    best
}

/// [`measure_ns_budgeted`] divided by a per-call operation count.
///
/// # Panics
/// Panics if `max_reps == 0` or `ops_per_call == 0`.
pub fn measure_ns_per_op_budgeted(
    max_reps: usize,
    budget_ns: f64,
    ops_per_call: usize,
    f: impl FnMut(),
) -> f64 {
    assert!(ops_per_call >= 1, "measure_ns_per_op_budgeted: zero ops");
    measure_ns_budgeted(max_reps, budget_ns, f) / ops_per_call as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_ns_counts_calls() {
        let mut calls = 0usize;
        let ns = measure_ns(3, || calls += 1);
        assert_eq!(calls, 4); // 1 warmup + 3 timed
        assert!(ns >= 0.0);
    }

    #[test]
    fn per_op_divides() {
        let mut acc = 0u64;
        let ns = measure_ns_per_op(2, 1000, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
        });
        assert!(ns.is_finite());
        assert!(ns >= 0.0);
    }

    #[test]
    fn warm_pool_is_idempotent() {
        warm_pool();
        warm_pool();
    }

    #[test]
    fn budgeted_measure_runs_at_least_once_and_stops_on_budget() {
        // Zero budget: exactly one timed call (plus the warmup).
        let mut calls = 0usize;
        let ns = measure_ns_budgeted(100, 0.0, || calls += 1);
        assert_eq!(calls, 2, "warmup + one timed call");
        assert!(ns.is_finite() && ns >= 0.0);
        // Huge budget: every repetition runs.
        let mut calls = 0usize;
        let _ = measure_ns_budgeted(5, 1e15, || calls += 1);
        assert_eq!(calls, 6);
    }

    #[test]
    fn budgeted_per_op_divides() {
        let ns = measure_ns_per_op_budgeted(3, 1e15, 1000, || {
            std::hint::black_box((0..1000u64).sum::<u64>());
        });
        assert!(ns.is_finite() && ns >= 0.0);
    }
}
